// End-to-end RapidWright-style flow on the cnvW1A1 network (the paper's
// application scenario): identify the 74 unique blocks of the 175-instance
// design, implement each in a tailored PBlock, and stitch the result onto
// the device -- comparing a constant correction factor against per-block
// minimal factors.

#include <cstdio>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "nn/cnv_w1a1.hpp"

int main() {
  using namespace mf;

  const Device device = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  std::printf("cnvW1A1: %zu instances, %zu unique blocks, %zu block nets\n",
              design.instances.size(), design.unique_modules.size(),
              design.nets.size());

  RwFlowOptions opts;
  opts.compute_timing = false;

  Timer t_const;
  CfPolicy constant;
  constant.constant_cf = 1.5;  // RapidWright's default
  const RwFlowResult with_const = run_rw_flow(design, device, constant, opts);

  Timer t_min;
  CfPolicy minimal;
  minimal.mode = CfPolicy::Mode::MinSearch;
  const RwFlowResult with_min = run_rw_flow(design, device, minimal, opts);

  Table table({"policy", "tool runs", "failed blocks", "unplaced", "placed",
               "coverage", "seconds"});
  table.row()
      .cell("constant CF=1.5")
      .cell(with_const.total_tool_runs)
      .cell(with_const.failed_blocks)
      .cell(with_const.stitch.unplaced)
      .cell(static_cast<int>(with_const.problem.instances.size()) -
            with_const.stitch.unplaced)
      .cell(with_const.stitch.coverage, 3)
      .cell(t_const.seconds(), 1);
  table.row()
      .cell("per-block minimal")
      .cell(with_min.total_tool_runs)
      .cell(with_min.failed_blocks)
      .cell(with_min.stitch.unplaced)
      .cell(static_cast<int>(with_min.problem.instances.size()) -
            with_min.stitch.unplaced)
      .cell(with_min.stitch.coverage, 3)
      .cell(t_min.seconds(), 1);
  table.print();

  // Show a few implemented blocks.
  std::printf("\nsample of implemented blocks (minimal CFs):\n");
  Table blocks({"block", "CF", "PBlock", "used slices", "tool runs"});
  for (const char* name : {"mvau_2", "mvau_18", "weights_14", "swu_1",
                           "thres_4", "pool_1"}) {
    for (const ImplementedBlock& blk : with_min.blocks) {
      if (blk.name != name || !blk.ok()) continue;
      blocks.row()
          .cell(blk.name)
          .cell(blk.macro.cf, 2)
          .cell(to_string(blk.macro.pblock))
          .cell(blk.macro.used_slices)
          .cell(blk.macro.tool_runs);
    }
  }
  blocks.print();
  return 0;
}
