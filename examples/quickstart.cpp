// Quickstart: implement one module through the tailored-PBlock flow.
//
// Demonstrates the core loop of the library: generate (or import) a mapped
// module, synthesize a resource report and shape report, find the minimal
// feasible correction factor, and inspect the resulting PBlock.

#include <cstdio>

#include "common/table.hpp"
#include "core/cf_search.hpp"
#include "fabric/catalog.hpp"
#include "fabric/pblock.hpp"
#include "rtlgen/generators.hpp"
#include "synth/optimize.hpp"
#include "timing/sta.hpp"

int main() {
  using namespace mf;

  const Device device = xc7z020_model();
  std::printf("device %s: %d slices (%d M), %d RAMB36, %d DSP48\n",
              device.name().c_str(), device.totals().slices,
              device.totals().slices_m, device.totals().bram36,
              device.totals().dsp);

  // A mixed module: LUT datapath, registers across 4 control sets, two
  // adder chains, some SRLs.
  Rng rng(1);
  MixedParams params;
  params.luts = 600;
  params.ffs = 700;
  params.carry_adders = 2;
  params.carry_width = 16;
  params.srls = 40;
  params.control_sets = 4;
  Module module = gen_mixed(params, rng);
  optimize(module.netlist);

  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);
  std::printf(
      "module '%s': %d LUTs, %d FFs, %d CARRY4, %d SRLs, %d control sets, "
      "max fanout %d\n",
      module.name.c_str(), report.stats.luts, report.stats.ffs,
      report.stats.carry4, report.stats.srls, report.stats.control_sets,
      report.stats.max_fanout);
  std::printf("estimated slices: %d (shape %dx%d, min height %d)\n",
              report.est_slices, shape.bbox_w, shape.bbox_h,
              shape.min_height);

  const CfSearchResult found = find_min_cf(module, report, shape, device);
  if (!found.found) {
    std::printf("no feasible CF found\n");
    return 1;
  }
  std::printf("minimal feasible CF: %.2f after %d tool runs\n", found.min_cf,
              found.tool_runs);
  std::printf("PBlock: %s -> %d used slices, fill ratio %.2f\n",
              to_string(found.pblock).c_str(), found.place.used_slices,
              found.place.fill_ratio);

  const TimingResult timing =
      analyze_timing(module.netlist, found.place.placement, found.place.route,
                     CfSearchOptions{}.place.route.cell_capacity);
  std::printf("longest path: %.3f ns\n", timing.longest_path_ns);
  return 0;
}
