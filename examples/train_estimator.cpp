// Train a correction-factor estimator from scratch: generate the synthetic
// RTL dataset, label it with minimal CFs from the feasibility oracle,
// balance, train all four model families, and compare them on held-out data
// -- the paper's Sections VI and VII in one program.

#include <cstdio>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/estimator.hpp"
#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace mf;

  const Device device = xc7z020_model();

  std::printf("1. generating and labelling the RTL dataset...\n");
  Timer t_label;
  const GroundTruth truth =
      build_ground_truth(dataset_sweep({2000, 42}), device);
  std::printf("   %zu modules labelled (%d infeasible dropped) in %.1fs\n",
              truth.samples.size(), truth.infeasible, t_label.seconds());

  std::printf("2. balancing to at most 75 samples per 0.02 CF bin...\n");
  Rng rng(7);
  const Dataset all = balance_by_target(
      make_dataset(FeatureSet::All, truth.samples), 0.02, 75, rng);
  Rng rng9(7);
  const Dataset lin9 = balance_by_target(
      make_dataset(FeatureSet::LinReg9, truth.samples), 0.02, 75, rng9);
  std::printf("   %zu samples remain\n", all.size());

  std::printf("3. training the four estimator families...\n\n");
  Rng split_rng(8);
  const auto [train, test] = train_test_split(all, 0.8, split_rng);
  Rng split_rng9(8);
  const auto [train9, test9] = train_test_split(lin9, 0.8, split_rng9);

  Table table({"model", "features", "mean rel. error", "median", "train s"});
  const EstimatorKind kinds[] = {
      EstimatorKind::LinearRegression, EstimatorKind::DecisionTree,
      EstimatorKind::RandomForest, EstimatorKind::NeuralNetwork};
  for (EstimatorKind kind : kinds) {
    const bool is_lin = kind == EstimatorKind::LinearRegression;
    const FeatureSet set = is_lin ? FeatureSet::LinReg9 : FeatureSet::All;
    CfEstimator est(kind, set);
    Timer t_train;
    est.train(is_lin ? train9 : train);
    const double seconds = t_train.seconds();
    const auto& eval = is_lin ? test9 : test;
    const std::vector<double> pred = est.predict_rows(eval.x);
    table.row()
        .cell(to_string(kind))
        .cell(to_string(set))
        .cell(fmt(100.0 * mean_relative_error(pred, eval.y), 2) + "%")
        .cell(fmt(100.0 * median_relative_error(pred, eval.y), 2) + "%")
        .cell(seconds, 2);
  }
  table.print();

  std::printf("\n4. what drives the forest's decisions:\n");
  CfEstimator rf(EstimatorKind::RandomForest, FeatureSet::All);
  rf.train(train);
  const auto names = feature_names(FeatureSet::All);
  const auto importance = rf.feature_importance();
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t i = 0; i < names.size(); ++i) {
    bars.emplace_back(names[i], importance[i]);
  }
  std::fputs(bar_chart(bars, 40).c_str(), stdout);
  return 0;
}
