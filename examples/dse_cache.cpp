// Design-space exploration with the implementation cache -- the flow's
// reason to exist (Sections I and III): iterate on one layer of the network
// and re-implement only the changed blocks, reusing everything else.

#include <cstdio>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "nn/cnv_w1a1.hpp"
#include "nn/finn_blocks.hpp"

int main() {
  using namespace mf;

  const Device device = xc7z020_model();
  CnvDesign design = build_cnv_w1a1();

  RwFlowOptions opts;
  opts.compute_timing = false;
  CfPolicy policy;
  policy.constant_cf = 1.3;

  ModuleCache cache;
  Table table({"DSE iteration", "blocks compiled", "cache hits", "tool runs",
               "unplaced", "seconds"});

  // Iteration 1: cold compile of the whole network.
  {
    Timer timer;
    const RwFlowResult r = cache.run(design, device, policy, opts);
    table.row()
        .cell("1: initial network")
        .cell(cache.misses())
        .cell(cache.hits())
        .cell(r.total_tool_runs)
        .cell(r.stitch.unplaced)
        .cell(timer.seconds(), 2);
  }

  // Iteration 2: the designer re-parameterises the conv5/conv6 MVAU (more
  // SIMD lanes). Only the new configuration compiles; 73 blocks come from
  // the cache.
  {
    const int idx = design.unique_index("mvau_10");
    Rng rng(99);
    Module replacement = gen_mvau({64, 3, 16, 6}, rng);
    replacement.name = "mvau_10_v2";
    design.unique_modules[static_cast<std::size_t>(idx)] = replacement;

    Timer timer;
    const int hits_before = cache.hits();
    const RwFlowResult r = cache.run(design, device, policy, opts);
    table.row()
        .cell("2: wider conv5/6 MVAU")
        .cell(1)
        .cell(cache.hits() - hits_before)
        .cell(r.total_tool_runs)
        .cell(r.stitch.unplaced)
        .cell(timer.seconds(), 2);
  }

  // Iteration 3: deeper fc2 thresholding.
  {
    const int idx = design.unique_index("thres_7");
    Rng rng(100);
    Module replacement = gen_threshold({14, 16}, rng);
    replacement.name = "thres_7_v2";
    design.unique_modules[static_cast<std::size_t>(idx)] = replacement;

    Timer timer;
    const int hits_before = cache.hits();
    const RwFlowResult r = cache.run(design, device, policy, opts);
    table.row()
        .cell("3: wider fc2 threshold")
        .cell(1)
        .cell(cache.hits() - hits_before)
        .cell(r.total_tool_runs)
        .cell(r.stitch.unplaced)
        .cell(timer.seconds(), 2);
  }

  // Iteration 4: the session is killed and resumed. Checkpoint the cache,
  // reload it into a fresh process stand-in, and re-run: zero compiles.
  {
    const std::string path = "/tmp/macroflow_dse_cache.txt";
    save_module_cache(path, cache);
    ModuleCache resumed;
    const CacheLoadStats stats = load_module_cache(path, resumed);
    std::remove(path.c_str());

    Timer timer;
    const RwFlowResult r = resumed.run(design, device, policy, opts);
    table.row()
        .cell("4: resume from checkpoint")
        .cell(resumed.misses())
        .cell(resumed.hits())
        .cell(r.total_tool_runs)
        .cell(r.stitch.unplaced)
        .cell(timer.seconds(), 2);
    std::printf("checkpoint: %d entries restored, %d corrupted\n",
                stats.loaded, stats.corrupted);
  }

  table.print();
  std::printf(
      "\nthe pre-implemented-block flow recompiles only the touched blocks;\n"
      "a flat flow would re-place and re-route the full design every time.\n");
  return 0;
}
