#pragma once
// Fault-tolerant tool-run layer.
//
// The paper's entire cost metric is "tool runs" (Section VIII), but in the
// real Vivado/RapidWright flow those runs crash, hang, and return spurious
// verdicts -- the pre-implemented-block cache exists precisely so a design
// iteration survives partial failure. This layer gives the simulator the
// same fault surface:
//
//   * FaultInjector -- seeded, deterministic injection of transient crashes,
//     timeouts, and spurious-infeasible verdicts at configurable per-run
//     probabilities. The decision for the k-th invocation of a block is a
//     pure function of (seed, block name, k), so chaos tests replay
//     bit-identically regardless of how sibling blocks interleave.
//   * ToolRunner -- wraps every feasibility check (the detailed-place calls
//     inside the CF searches) with retry + capped exponential backoff and a
//     per-block retry budget, surfacing a structured FlowError when the
//     budget is exhausted instead of a bare `bool`.
//
// Backoff is *simulated*: the runner accounts the wall-clock a real flow
// would have waited (ToolRunStats::backoff_ms) without sleeping, so chaos
// suites stay fast and deterministic.
//
// Note on layering: this header lives in flow/ (it is the flow's fault
// model) but is consumed by core/cf_search, which hosts the feasibility
// checks being wrapped. It depends only on place/ and common/.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "place/detailed_placer.hpp"

namespace mf {

/// What the injector does to one physical tool invocation.
enum class FaultKind : std::uint8_t {
  None,                ///< invocation runs the real check
  Crash,               ///< tool dies before producing a verdict
  Timeout,             ///< tool hangs past its deadline; no verdict
  SpuriousInfeasible,  ///< tool completes but reports a false "infeasible"
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct FaultInjectorOptions {
  bool enabled = false;  ///< master switch; disabled == zero faults
  std::uint64_t seed = 0xfa017ULL;
  double p_crash = 0.0;
  double p_timeout = 0.0;
  double p_spurious_infeasible = 0.0;
};

/// Deterministic fault source. `draw(block, k)` is a pure function of the
/// options' seed, the block name, and the per-block invocation ordinal `k`.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultInjectorOptions& opts);

  [[nodiscard]] bool enabled() const noexcept { return opts_.enabled; }
  [[nodiscard]] const FaultInjectorOptions& options() const noexcept {
    return opts_;
  }

  /// Fault decision for the k-th invocation of `block`.
  [[nodiscard]] FaultKind draw(std::string_view block, int ordinal) const;

 private:
  FaultInjectorOptions opts_;
};

/// Structured error taxonomy for the flow (replaces `bool ok`).
enum class FlowErrorKind : std::uint8_t {
  None,              ///< no error
  ToolCrash,         ///< crashes exhausted the retry budget
  ToolTimeout,       ///< timeouts exhausted the retry budget
  Infeasible,        ///< every completed check up to max_cf said infeasible
  NoPBlock,          ///< no rectangle exists at any searched CF
  DegradedExhausted, ///< escalated-CF fallback failed too
};

[[nodiscard]] const char* to_string(FlowErrorKind kind) noexcept;

struct FlowError {
  FlowErrorKind kind = FlowErrorKind::None;
  std::string block;
  double cf = 0.0;    ///< CF the failing check ran at (0 when n/a)
  int attempts = 0;   ///< physical invocations spent on the failing check

  [[nodiscard]] bool failed() const noexcept {
    return kind != FlowErrorKind::None;
  }
};

/// Human-readable one-liner, e.g. "tool-crash block=mvau_3 cf=1.2 attempts=4".
[[nodiscard]] std::string to_string(const FlowError& error);

struct RetryOptions {
  /// Physical invocations allowed per feasibility check (1 = no retry).
  int max_attempts_per_check = 4;
  /// Total retries (re-invocations after crash/timeout) allowed per block
  /// across all of its checks -- RapidLayout-style "give up on a block that
  /// keeps burning the cluster".
  int retry_budget_per_block = 16;
  double backoff_base_ms = 50.0;
  double backoff_factor = 2.0;
  double backoff_cap_ms = 2000.0;
};

struct ToolRunnerOptions {
  FaultInjectorOptions fault;
  RetryOptions retry;
};

/// Aggregate counters across every check routed through one ToolRunner.
struct ToolRunStats {
  long invocations = 0;  ///< physical tool invocations, retries included
  long completed = 0;    ///< invocations that produced a verdict; equals the
                         ///< paper's tool-run count for the wrapped searches
  long crashes = 0;
  long timeouts = 0;
  long spurious = 0;     ///< feasible verdicts flipped to infeasible
  long retries = 0;
  double backoff_ms = 0.0;  ///< simulated wall-clock spent backing off
};

/// Wraps feasibility checks with fault injection and a retry policy.
///
/// Thread safety: one runner may be shared by a parallel flow, with the
/// contract that all checks for a given block come from a single task (the
/// flow implements one block per task, so this holds by construction).
/// Per-block state lives in a shard-locked map -- the shard lock covers only
/// the map lookup/insert, never the placement call -- and every counter is
/// per-block, so the final aggregate stats() are bit-identical at any thread
/// count (FaultInjector::draw is a pure function of (seed, block, ordinal),
/// and backoff_ms is summed in shard-then-name order, which depends only on
/// the set of block names, not on scheduling).
class ToolRunner {
 public:
  ToolRunner() : ToolRunner(ToolRunnerOptions{}) {}
  explicit ToolRunner(const ToolRunnerOptions& opts);
  ToolRunner(const ToolRunner& other);
  ToolRunner& operator=(const ToolRunner& other);

  struct CheckOutcome {
    bool completed = false;  ///< a verdict was produced (possibly spurious)
    PlaceResult place;       ///< valid when completed
    FlowError error;         ///< set when !completed
    int attempts = 0;        ///< physical invocations this check consumed
  };

  /// Run one feasibility check for `block` at correction factor `cf`.
  /// `check` executes the real placement; it is only called when the
  /// injector lets the invocation complete.
  CheckOutcome run_check(const std::string& block, double cf,
                         const std::function<PlaceResult()>& check);

  /// Grant `block` a fresh retry budget. The degradation path calls this so
  /// the escalated-CF fallback is not doomed by the budget the primary
  /// search already burned.
  void grant_fresh_budget(const std::string& block);

  [[nodiscard]] bool fault_injection_enabled() const noexcept {
    return injector_.enabled();
  }
  /// Aggregate over every block, summed in a schedule-independent order.
  [[nodiscard]] ToolRunStats stats() const;
  [[nodiscard]] int retries_used(const std::string& block) const;
  /// Physical invocations spent on one block so far. Parallel flows use the
  /// per-block delta instead of a global-invocations delta, which would
  /// absorb sibling blocks' interleaved checks.
  [[nodiscard]] long invocations_for(const std::string& block) const;
  [[nodiscard]] const ToolRunnerOptions& options() const noexcept {
    return opts_;
  }

 private:
  /// All mutable per-block state, touched only by the task implementing the
  /// block (node pointers into the shard map stay valid across inserts).
  struct BlockState {
    int ordinal = 0;       ///< per-block invocation count
    int retries_used = 0;  ///< per-block budget tracking
    ToolRunStats stats;    ///< this block's contribution to the aggregate
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, BlockState> blocks;
  };
  static constexpr std::size_t kShards = 16;

  [[nodiscard]] Shard& shard_of(std::string_view block) const noexcept;
  [[nodiscard]] BlockState& state_of(const std::string& block) const;

  ToolRunnerOptions opts_;
  FaultInjector injector_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace mf
