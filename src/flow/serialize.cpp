#include "flow/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"

namespace mf {
namespace {

constexpr const char* kHeader = "macroflow-ground-truth v3";
constexpr const char* kSampleFooter = "# samples ";

constexpr const char* kCacheHeader = "macroflow-module-cache v1";
constexpr const char* kCacheFooter = "# entries ";

// Binary container identities (the `meta` section): format lineage
// continues from the text versions -- ground truth text is v3, binary is
// v4; module cache text is v1, binary is v2.
constexpr const char* kGtKind = "ground-truth";
constexpr std::uint32_t kGtBinaryVersion = 4;
constexpr const char* kCacheKind = "module-cache";
constexpr std::uint32_t kCacheBinaryVersion = 2;

/// Hex checksum of one entry's payload text.
std::string checksum_of(const std::string& payload) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << fnv1a64(payload);
  return out.str();
}

/// std::getline keeps a trailing '\r' when the file has CRLF line endings
/// (written on Windows or round-tripped through a CRLF-normalizing tool).
/// Strip it before header compares, checksums, and parsing -- otherwise a
/// CRLF checkpoint is rejected wholesale (header mismatch) or every entry
/// is miscounted as corrupt (checksum over "payload\r").
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Every persisted name flows through the whitespace-delimited text formats
/// sooner or later (directly, or via `macroflow convert`), so both writers
/// enforce the same contract.
void check_name(const std::string& name) {
  MF_CHECK_MSG(serializable_name(name),
               "module name '" + name +
                   "' is not serialisable (empty, leading '#', or embedded "
                   "whitespace would corrupt the on-disk format)");
}

/// Shared meta section: lets loaders (and `macroflow convert`) tell the
/// binary artifact kinds apart before touching the data section.
void write_meta(BinWriter& writer, const char* kind, std::uint32_t version) {
  writer.begin_section("meta");
  writer.str(kind);
  writer.u32(version);
}

/// Verify the meta section of an opened container; false on kind/version
/// mismatch (with a diagnostic in `*error` when non-null).
bool check_meta(const BinFile& file, const char* kind, std::uint32_t version,
                std::string* error) {
  const std::optional<std::string_view> meta = file.section("meta");
  if (!meta) {
    if (error != nullptr) *error = "missing meta section";
    return false;
  }
  BinCursor cursor(*meta);
  const std::string got_kind = cursor.str(256);
  const std::uint32_t got_version = cursor.u32();
  if (!cursor.at_end() || got_kind != kind) {
    if (error != nullptr) {
      *error = "not a " + std::string(kind) + " container";
    }
    return false;
  }
  if (got_version != version) {
    if (error != nullptr) {
      *error = "unsupported " + std::string(kind) + " format version " +
               std::to_string(got_version);
    }
    return false;
  }
  return true;
}

}  // namespace

std::string ground_truth_to_text(const std::vector<LabeledModule>& samples) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "# name min_cf luts ffs carry4 srls lutrams bram18 bram36 dsp cells"
         " control_sets max_fanout slices_luts slices_ffs slices_carry"
         " est est_m bram36_equiv dsp_need bbox_w bbox_h min_height"
         " carry_columns chains...\n";
  for (const LabeledModule& s : samples) {
    check_name(s.name);
    const NetlistStats& st = s.report.stats;
    // min_cf goes through the shortest-round-trip formatter: the default
    // ostream precision (6 digits) silently rounded labels, so a
    // save/load/save cycle -- or a text->binary->text conversion -- was not
    // byte-identical and the dataset drifted.
    out << s.name << ' ' << format_double(s.min_cf) << ' ' << st.luts << ' '
        << st.ffs << ' ' << st.carry4 << ' ' << st.srls << ' ' << st.lutrams
        << ' ' << st.bram18 << ' ' << st.bram36 << ' ' << st.dsp << ' '
        << st.cells << ' ' << st.control_sets << ' ' << st.max_fanout << ' '
        << s.report.slices_for_luts << ' ' << s.report.slices_for_ffs << ' '
        << s.report.slices_for_carry << ' ' << s.report.est_slices << ' '
        << s.report.est_slices_m << ' ' << s.report.bram36 << ' '
        << s.report.dsp << ' ' << s.shape.bbox_w << ' ' << s.shape.bbox_h
        << ' ' << s.shape.min_height << ' ' << s.shape.carry_columns;
    for (int len : st.carry_chains) out << ' ' << len;
    out << '\n';
  }
  // Sample-count footer: a truncated file fails to parse instead of
  // silently yielding a prefix of the dataset.
  out << kSampleFooter << samples.size() << '\n';
  return out.str();
}

std::optional<std::vector<LabeledModule>> ground_truth_from_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  strip_cr(line);
  if (line != kHeader) return std::nullopt;

  std::vector<LabeledModule> samples;
  bool footer_seen = false;
  std::size_t footer_count = 0;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.rfind(kSampleFooter, 0) == 0) {
      // Checked parse: a tampered footer ("-1", "1e99", trailing junk) is
      // corruption, not a wrapped size_t.
      const std::optional<std::size_t> count = parse_number<std::size_t>(
          line.substr(std::string(kSampleFooter).size()));
      if (!count) return std::nullopt;
      footer_count = *count;
      footer_seen = true;
      continue;
    }
    if (line.front() == '#') continue;
    if (footer_seen) return std::nullopt;  // data after the footer: corrupt
    std::istringstream row(line);
    LabeledModule s;
    NetlistStats& st = s.report.stats;
    if (!(row >> s.name >> s.min_cf >> st.luts >> st.ffs >> st.carry4 >>
          st.srls >> st.lutrams >> st.bram18 >> st.bram36 >> st.dsp >>
          st.cells >> st.control_sets >> st.max_fanout >>
          s.report.slices_for_luts >> s.report.slices_for_ffs >>
          s.report.slices_for_carry >> s.report.est_slices >>
          s.report.est_slices_m >> s.report.bram36 >> s.report.dsp >>
          s.shape.bbox_w >> s.shape.bbox_h >> s.shape.min_height >>
          s.shape.carry_columns)) {
      return std::nullopt;
    }
    int len = 0;
    while (row >> len) st.carry_chains.push_back(len);
    samples.push_back(std::move(s));
  }
  if (!footer_seen || footer_count != samples.size()) return std::nullopt;
  return samples;
}

std::string ground_truth_to_binary(
    const std::vector<LabeledModule>& samples) {
  BinWriter writer;
  write_meta(writer, kGtKind, kGtBinaryVersion);
  writer.begin_section("data");
  writer.u64(samples.size());
  for (const LabeledModule& s : samples) {
    check_name(s.name);
    const NetlistStats& st = s.report.stats;
    writer.str(s.name);
    writer.f64(s.min_cf);
    writer.i32(st.luts);
    writer.i32(st.ffs);
    writer.i32(st.carry4);
    writer.i32(st.srls);
    writer.i32(st.lutrams);
    writer.i32(st.bram18);
    writer.i32(st.bram36);
    writer.i32(st.dsp);
    writer.i32(st.cells);
    writer.i32(st.control_sets);
    writer.i32(st.max_fanout);
    writer.u32(static_cast<std::uint32_t>(st.carry_chains.size()));
    for (int len : st.carry_chains) writer.i32(len);
    writer.i32(s.report.slices_for_luts);
    writer.i32(s.report.slices_for_ffs);
    writer.i32(s.report.slices_for_carry);
    writer.i32(s.report.est_slices);
    writer.i32(s.report.est_slices_m);
    writer.i32(s.report.bram36);
    writer.i32(s.report.dsp);
    writer.i32(s.shape.bbox_w);
    writer.i32(s.shape.bbox_h);
    writer.i32(s.shape.min_height);
    writer.i32(s.shape.carry_columns);
  }
  return writer.finish();
}

std::optional<std::vector<LabeledModule>> ground_truth_from_binary(
    std::string_view bytes, std::string* error) {
  const std::optional<BinFile> file = BinFile::open(bytes, error);
  if (!file) return std::nullopt;
  if (!check_meta(*file, kGtKind, kGtBinaryVersion, error)) {
    return std::nullopt;
  }
  const std::optional<std::string_view> data = file->section("data");
  if (!data) {
    if (error != nullptr) *error = "missing data section";
    return std::nullopt;
  }
  BinCursor cursor(*data);
  const std::uint64_t count = cursor.u64();
  // Plausibility bound before the reserve: a sample is >= 100 bytes, so a
  // tampered count can never drive a wild allocation (the checksums make
  // this unreachable in practice; the bound makes it impossible).
  if (!cursor.ok() || count > cursor.remaining() / 100) {
    if (error != nullptr) *error = "sample count exceeds data section size";
    return std::nullopt;
  }
  std::vector<LabeledModule> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && cursor.ok(); ++i) {
    // Filled in place (no per-sample move) -- this loop is the hot path the
    // >= 10x bench_persist load gate measures.
    LabeledModule& s = samples.emplace_back();
    NetlistStats& st = s.report.stats;
    const std::uint32_t name_len = cursor.u32();
    if (name_len > (1u << 20)) cursor.fail();
    s.name.assign(cursor.raw(name_len));
    s.min_cf = cursor.f64();
    st.luts = cursor.i32();
    st.ffs = cursor.i32();
    st.carry4 = cursor.i32();
    st.srls = cursor.i32();
    st.lutrams = cursor.i32();
    st.bram18 = cursor.i32();
    st.bram36 = cursor.i32();
    st.dsp = cursor.i32();
    st.cells = cursor.i32();
    st.control_sets = cursor.i32();
    st.max_fanout = cursor.i32();
    const std::uint32_t chains = cursor.u32();
    if (!cursor.ok() || chains > cursor.remaining() / 4) {
      cursor.fail();
      break;
    }
    st.carry_chains.reserve(chains);
    for (std::uint32_t c = 0; c < chains; ++c) {
      st.carry_chains.push_back(cursor.i32());
    }
    s.report.slices_for_luts = cursor.i32();
    s.report.slices_for_ffs = cursor.i32();
    s.report.slices_for_carry = cursor.i32();
    s.report.est_slices = cursor.i32();
    s.report.est_slices_m = cursor.i32();
    s.report.bram36 = cursor.i32();
    s.report.dsp = cursor.i32();
    s.shape.bbox_w = cursor.i32();
    s.shape.bbox_h = cursor.i32();
    s.shape.min_height = cursor.i32();
    s.shape.carry_columns = cursor.i32();
    if (!serializable_name(s.name)) cursor.fail();
    if (!cursor.ok()) break;  // partial tail discarded with the whole load
  }
  if (!cursor.at_end()) {
    if (error != nullptr) *error = "malformed ground-truth data section";
    return std::nullopt;
  }
  return samples;
}

bool save_ground_truth(const std::string& path,
                       const std::vector<LabeledModule>& samples,
                       PersistFormat format) {
  // Atomic temp-file + rename: a crash or full disk mid-write leaves the
  // previous ground-truth file intact instead of a torn one (which the
  // footer/checksums would reject, discarding the whole cached labelling).
  return atomic_write_file(path, format == PersistFormat::Binary
                                     ? ground_truth_to_binary(samples)
                                     : ground_truth_to_text(samples));
}

std::optional<std::vector<LabeledModule>> load_ground_truth(
    const std::string& path) {
  // Whole-file read (the atomic-write counterpart): a concurrently renamed
  // replacement can never be observed half-old, half-new.
  const std::optional<std::string> text = read_file(path);
  if (!text) return std::nullopt;
  if (is_binfile(*text)) return ground_truth_from_binary(*text);
  return ground_truth_from_text(*text);
}

namespace {

/// Payload (everything but the trailing checksum) of one cache entry.
std::string cache_entry_payload(const ImplementedBlock& b) {
  std::ostringstream out;
  const Macro& m = b.macro;
  // Doubles through format_double: shortest text that parses back to the
  // exact bits (setprecision(17) round-tripped too, but printed 0.15 as
  // 0.14999999999999999 -- not byte-stable against the binary format).
  out << b.name << ' ' << static_cast<int>(b.status) << ' '
      << format_double(b.seed_cf) << ' ' << (b.first_run_success ? 1 : 0)
      << ' ' << b.attempts << ' ' << static_cast<int>(b.error.kind) << ' '
      << format_double(b.error.cf) << ' ' << b.error.attempts << ' '
      << format_double(m.cf) << ' ' << format_double(m.fill_ratio) << ' '
      << m.tool_runs << ' ' << m.used_slices << ' ' << m.est_slices << ' '
      << format_double(m.longest_path_ns) << ' ' << m.pblock.col_lo << ' '
      << m.pblock.col_hi << ' ' << m.pblock.row_lo << ' ' << m.pblock.row_hi
      << ' ' << m.footprint.height << ' '
      << (m.footprint.uses_bram_or_dsp ? 1 : 0) << ' '
      << m.footprint.kinds.size();
  for (ColumnKind kind : m.footprint.kinds) {
    out << ' ' << static_cast<int>(kind);
  }
  return out.str();
}

std::optional<ImplementedBlock> parse_cache_entry(const std::string& payload) {
  std::istringstream row(payload);
  ImplementedBlock b;
  int status = 0;
  int first = 0;
  int error_kind = 0;
  int hard = 0;
  std::size_t num_kinds = 0;
  Macro& m = b.macro;
  if (!(row >> b.name >> status >> b.seed_cf >> first >> b.attempts >>
        error_kind >> b.error.cf >> b.error.attempts >> m.cf >>
        m.fill_ratio >> m.tool_runs >> m.used_slices >> m.est_slices >>
        m.longest_path_ns >> m.pblock.col_lo >> m.pblock.col_hi >>
        m.pblock.row_lo >> m.pblock.row_hi >> m.footprint.height >> hard >>
        num_kinds)) {
    return std::nullopt;
  }
  if (status < 0 || status > static_cast<int>(FlowStatus::Failed)) {
    return std::nullopt;
  }
  b.status = static_cast<FlowStatus>(status);
  if (b.status == FlowStatus::Failed) return std::nullopt;  // never cached
  b.first_run_success = first != 0;
  if (error_kind < 0 ||
      error_kind > static_cast<int>(FlowErrorKind::DegradedExhausted)) {
    return std::nullopt;
  }
  b.error.kind = static_cast<FlowErrorKind>(error_kind);
  b.error.block = b.name;
  m.name = b.name;
  m.footprint.uses_bram_or_dsp = hard != 0;
  m.footprint.kinds.reserve(num_kinds);
  for (std::size_t i = 0; i < num_kinds; ++i) {
    int kind = 0;
    if (!(row >> kind) || kind < 0 ||
        kind > static_cast<int>(ColumnKind::Clock)) {
      return std::nullopt;
    }
    m.footprint.kinds.push_back(static_cast<ColumnKind>(kind));
  }
  int extra = 0;
  if (row >> extra) return std::nullopt;  // trailing garbage
  return b;
}

/// Shared validation for both cache loaders: enum ranges and the
/// never-cached Failed status.
bool cache_entry_valid(const ImplementedBlock& b, int status, int error_kind) {
  if (status < 0 || status > static_cast<int>(FlowStatus::Failed)) {
    return false;
  }
  if (static_cast<FlowStatus>(status) == FlowStatus::Failed) return false;
  if (error_kind < 0 ||
      error_kind > static_cast<int>(FlowErrorKind::DegradedExhausted)) {
    return false;
  }
  return serializable_name(b.name);
}

}  // namespace

std::string module_cache_to_text(const ModuleCache& cache) {
  std::ostringstream out;
  out << kCacheHeader << '\n';
  out << "# name status seed_cf first attempts err_kind err_cf err_attempts"
         " cf fill tool_runs used_slices est_slices longest_ns"
         " pblock(c0 c1 r0 r1) fp_height fp_hard n_kinds kinds... checksum\n";
  for (const auto& [name, block] : cache.entries()) {
    check_name(name);
    const std::string payload = cache_entry_payload(block);
    out << payload << ' ' << checksum_of(payload) << '\n';
  }
  out << kCacheFooter << cache.entries().size() << '\n';
  return out.str();
}

CacheLoadStats module_cache_from_text(const std::string& text,
                                      ModuleCache& cache) {
  CacheLoadStats stats;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return stats;
  strip_cr(line);
  if (line != kCacheHeader) return stats;
  stats.header_ok = true;

  bool footer_seen = false;
  std::size_t footer_count = 0;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.rfind(kCacheFooter, 0) == 0) {
      // Checked parse (see ground_truth_from_text): a tampered count is a
      // missing footer, not a wrapped size_t.
      if (const std::optional<std::size_t> count = parse_number<std::size_t>(
              line.substr(std::string(kCacheFooter).size()))) {
        footer_count = *count;
        footer_seen = true;
      }
      continue;
    }
    if (line.front() == '#') continue;
    // Split off the trailing checksum; verify before parsing.
    const std::size_t cut = line.find_last_of(' ');
    if (cut == std::string::npos) {
      ++stats.corrupted;
      continue;
    }
    const std::string payload = line.substr(0, cut);
    if (line.substr(cut + 1) != checksum_of(payload)) {
      ++stats.corrupted;
      continue;
    }
    std::optional<ImplementedBlock> block = parse_cache_entry(payload);
    if (!block) {
      ++stats.corrupted;
      continue;
    }
    cache.restore(std::move(*block));
    ++stats.loaded;
  }
  stats.complete =
      footer_seen &&
      footer_count == static_cast<std::size_t>(stats.loaded + stats.corrupted);
  return stats;
}

std::string module_cache_to_binary(const ModuleCache& cache) {
  BinWriter writer;
  write_meta(writer, kCacheKind, kCacheBinaryVersion);
  writer.begin_section("data");
  writer.u64(cache.entries().size());
  for (const auto& [name, b] : cache.entries()) {
    check_name(name);
    const Macro& m = b.macro;
    writer.str(b.name);
    writer.u8(static_cast<std::uint8_t>(b.status));
    writer.f64(b.seed_cf);
    writer.u8(b.first_run_success ? 1 : 0);
    writer.i32(b.attempts);
    writer.u8(static_cast<std::uint8_t>(b.error.kind));
    writer.f64(b.error.cf);
    writer.i32(b.error.attempts);
    writer.f64(m.cf);
    writer.f64(m.fill_ratio);
    writer.i32(m.tool_runs);
    writer.i32(m.used_slices);
    writer.i32(m.est_slices);
    writer.f64(m.longest_path_ns);
    writer.i32(m.pblock.col_lo);
    writer.i32(m.pblock.col_hi);
    writer.i32(m.pblock.row_lo);
    writer.i32(m.pblock.row_hi);
    writer.i32(m.footprint.height);
    writer.u8(m.footprint.uses_bram_or_dsp ? 1 : 0);
    writer.u32(static_cast<std::uint32_t>(m.footprint.kinds.size()));
    for (ColumnKind kind : m.footprint.kinds) {
      writer.u8(static_cast<std::uint8_t>(kind));
    }
  }
  return writer.finish();
}

CacheLoadStats module_cache_from_binary(std::string_view bytes,
                                        ModuleCache& cache) {
  CacheLoadStats stats;
  const std::optional<BinFile> file = BinFile::open(bytes);
  if (!file || !check_meta(*file, kCacheKind, kCacheBinaryVersion, nullptr)) {
    return stats;
  }
  const std::optional<std::string_view> data = file->section("data");
  if (!data) return stats;
  stats.header_ok = true;
  BinCursor cursor(*data);
  const std::uint64_t count = cursor.u64();
  // An entry is >= 80 bytes; bound the count before trusting it.
  if (!cursor.ok() || count > cursor.remaining() / 80) return stats;
  std::vector<ImplementedBlock> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && cursor.ok(); ++i) {
    ImplementedBlock b;
    Macro& m = b.macro;
    b.name = cursor.str();
    const int status = cursor.u8();
    b.seed_cf = cursor.f64();
    b.first_run_success = cursor.u8() != 0;
    b.attempts = cursor.i32();
    const int error_kind = cursor.u8();
    b.error.cf = cursor.f64();
    b.error.attempts = cursor.i32();
    m.cf = cursor.f64();
    m.fill_ratio = cursor.f64();
    m.tool_runs = cursor.i32();
    m.used_slices = cursor.i32();
    m.est_slices = cursor.i32();
    m.longest_path_ns = cursor.f64();
    m.pblock.col_lo = cursor.i32();
    m.pblock.col_hi = cursor.i32();
    m.pblock.row_lo = cursor.i32();
    m.pblock.row_hi = cursor.i32();
    m.footprint.height = cursor.i32();
    m.footprint.uses_bram_or_dsp = cursor.u8() != 0;
    const std::uint32_t kinds = cursor.u32();
    if (!cursor.ok() || kinds > cursor.remaining()) {
      cursor.fail();
      break;
    }
    m.footprint.kinds.reserve(kinds);
    bool kinds_ok = true;
    for (std::uint32_t k = 0; k < kinds; ++k) {
      const int kind = cursor.u8();
      if (kind > static_cast<int>(ColumnKind::Clock)) kinds_ok = false;
      m.footprint.kinds.push_back(static_cast<ColumnKind>(kind));
    }
    if (!kinds_ok || !cache_entry_valid(b, status, error_kind)) {
      cursor.fail();
      break;
    }
    b.status = static_cast<FlowStatus>(status);
    b.error.kind = static_cast<FlowErrorKind>(error_kind);
    b.error.block = b.name;
    m.name = b.name;
    entries.push_back(std::move(b));
  }
  if (!cursor.at_end()) return stats;  // header_ok, but nothing restored
  // All-or-nothing: entries only reach the cache once the whole section
  // parsed (the container checksums make partial damage unreachable anyway).
  for (ImplementedBlock& b : entries) cache.restore(std::move(b));
  stats.loaded = static_cast<int>(count);
  stats.complete = true;
  return stats;
}

bool save_module_cache(const std::string& path, const ModuleCache& cache,
                       PersistFormat format) {
  // Atomic replace: the checkpoint is the crash-recovery story itself, so a
  // crash *while checkpointing* must never destroy the previous checkpoint.
  return atomic_write_file(path, format == PersistFormat::Binary
                                     ? module_cache_to_binary(cache)
                                     : module_cache_to_text(cache));
}

CacheLoadStats load_module_cache(const std::string& path, ModuleCache& cache) {
  const std::optional<std::string> text = read_file(path);
  if (!text) return CacheLoadStats{};
  if (is_binfile(*text)) return module_cache_from_binary(*text, cache);
  return module_cache_from_text(*text, cache);
}

}  // namespace mf
