#include "flow/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"

namespace mf {
namespace {

constexpr const char* kHeader = "macroflow-ground-truth v3";
constexpr const char* kSampleFooter = "# samples ";

constexpr const char* kCacheHeader = "macroflow-module-cache v1";
constexpr const char* kCacheFooter = "# entries ";

/// Hex checksum of one entry's payload text.
std::string checksum_of(const std::string& payload) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << fnv1a64(payload);
  return out.str();
}

/// std::getline keeps a trailing '\r' when the file has CRLF line endings
/// (written on Windows or round-tripped through a CRLF-normalizing tool).
/// Strip it before header compares, checksums, and parsing -- otherwise a
/// CRLF checkpoint is rejected wholesale (header mismatch) or every entry
/// is miscounted as corrupt (checksum over "payload\r").
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

std::string ground_truth_to_text(const std::vector<LabeledModule>& samples) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "# name min_cf luts ffs carry4 srls lutrams bram18 bram36 dsp cells"
         " control_sets max_fanout slices_luts slices_ffs slices_carry"
         " est est_m bram36_equiv dsp_need bbox_w bbox_h min_height"
         " carry_columns chains...\n";
  for (const LabeledModule& s : samples) {
    const NetlistStats& st = s.report.stats;
    out << s.name << ' ' << s.min_cf << ' ' << st.luts << ' ' << st.ffs << ' '
        << st.carry4 << ' ' << st.srls << ' ' << st.lutrams << ' '
        << st.bram18 << ' ' << st.bram36 << ' ' << st.dsp << ' ' << st.cells
        << ' ' << st.control_sets << ' ' << st.max_fanout << ' '
        << s.report.slices_for_luts << ' ' << s.report.slices_for_ffs << ' '
        << s.report.slices_for_carry << ' ' << s.report.est_slices << ' '
        << s.report.est_slices_m << ' ' << s.report.bram36 << ' '
        << s.report.dsp << ' ' << s.shape.bbox_w << ' ' << s.shape.bbox_h
        << ' ' << s.shape.min_height << ' ' << s.shape.carry_columns;
    for (int len : st.carry_chains) out << ' ' << len;
    out << '\n';
  }
  // Sample-count footer: a truncated file fails to parse instead of
  // silently yielding a prefix of the dataset.
  out << kSampleFooter << samples.size() << '\n';
  return out.str();
}

std::optional<std::vector<LabeledModule>> ground_truth_from_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  strip_cr(line);
  if (line != kHeader) return std::nullopt;

  std::vector<LabeledModule> samples;
  bool footer_seen = false;
  std::size_t footer_count = 0;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.rfind(kSampleFooter, 0) == 0) {
      std::istringstream footer(line.substr(std::string(kSampleFooter).size()));
      if (!(footer >> footer_count)) return std::nullopt;
      footer_seen = true;
      continue;
    }
    if (line.front() == '#') continue;
    if (footer_seen) return std::nullopt;  // data after the footer: corrupt
    std::istringstream row(line);
    LabeledModule s;
    NetlistStats& st = s.report.stats;
    if (!(row >> s.name >> s.min_cf >> st.luts >> st.ffs >> st.carry4 >>
          st.srls >> st.lutrams >> st.bram18 >> st.bram36 >> st.dsp >>
          st.cells >> st.control_sets >> st.max_fanout >>
          s.report.slices_for_luts >> s.report.slices_for_ffs >>
          s.report.slices_for_carry >> s.report.est_slices >>
          s.report.est_slices_m >> s.report.bram36 >> s.report.dsp >>
          s.shape.bbox_w >> s.shape.bbox_h >> s.shape.min_height >>
          s.shape.carry_columns)) {
      return std::nullopt;
    }
    int len = 0;
    while (row >> len) st.carry_chains.push_back(len);
    samples.push_back(std::move(s));
  }
  if (!footer_seen || footer_count != samples.size()) return std::nullopt;
  return samples;
}

bool save_ground_truth(const std::string& path,
                       const std::vector<LabeledModule>& samples) {
  // Atomic temp-file + rename: a crash or full disk mid-write leaves the
  // previous ground-truth file intact instead of a torn one (which the
  // footer would reject, discarding the whole cached labelling).
  return atomic_write_file(path, ground_truth_to_text(samples));
}

std::optional<std::vector<LabeledModule>> load_ground_truth(
    const std::string& path) {
  // Whole-file read (the atomic-write counterpart): a concurrently renamed
  // replacement can never be observed half-old, half-new.
  const std::optional<std::string> text = read_file(path);
  if (!text) return std::nullopt;
  return ground_truth_from_text(*text);
}

namespace {

/// Payload (everything but the trailing checksum) of one cache entry.
std::string cache_entry_payload(const ImplementedBlock& b) {
  std::ostringstream out;
  out << std::setprecision(17);
  const Macro& m = b.macro;
  out << b.name << ' ' << static_cast<int>(b.status) << ' ' << b.seed_cf
      << ' ' << (b.first_run_success ? 1 : 0) << ' ' << b.attempts << ' '
      << static_cast<int>(b.error.kind) << ' ' << b.error.cf << ' '
      << b.error.attempts << ' ' << m.cf << ' ' << m.fill_ratio << ' '
      << m.tool_runs << ' ' << m.used_slices << ' ' << m.est_slices << ' '
      << m.longest_path_ns << ' ' << m.pblock.col_lo << ' '
      << m.pblock.col_hi << ' ' << m.pblock.row_lo << ' ' << m.pblock.row_hi
      << ' ' << m.footprint.height << ' '
      << (m.footprint.uses_bram_or_dsp ? 1 : 0) << ' '
      << m.footprint.kinds.size();
  for (ColumnKind kind : m.footprint.kinds) {
    out << ' ' << static_cast<int>(kind);
  }
  return out.str();
}

std::optional<ImplementedBlock> parse_cache_entry(const std::string& payload) {
  std::istringstream row(payload);
  ImplementedBlock b;
  int status = 0;
  int first = 0;
  int error_kind = 0;
  int hard = 0;
  std::size_t num_kinds = 0;
  Macro& m = b.macro;
  if (!(row >> b.name >> status >> b.seed_cf >> first >> b.attempts >>
        error_kind >> b.error.cf >> b.error.attempts >> m.cf >>
        m.fill_ratio >> m.tool_runs >> m.used_slices >> m.est_slices >>
        m.longest_path_ns >> m.pblock.col_lo >> m.pblock.col_hi >>
        m.pblock.row_lo >> m.pblock.row_hi >> m.footprint.height >> hard >>
        num_kinds)) {
    return std::nullopt;
  }
  if (status < 0 || status > static_cast<int>(FlowStatus::Failed)) {
    return std::nullopt;
  }
  b.status = static_cast<FlowStatus>(status);
  if (b.status == FlowStatus::Failed) return std::nullopt;  // never cached
  b.first_run_success = first != 0;
  if (error_kind < 0 ||
      error_kind > static_cast<int>(FlowErrorKind::DegradedExhausted)) {
    return std::nullopt;
  }
  b.error.kind = static_cast<FlowErrorKind>(error_kind);
  b.error.block = b.name;
  m.name = b.name;
  m.footprint.uses_bram_or_dsp = hard != 0;
  m.footprint.kinds.reserve(num_kinds);
  for (std::size_t i = 0; i < num_kinds; ++i) {
    int kind = 0;
    if (!(row >> kind) || kind < 0 ||
        kind > static_cast<int>(ColumnKind::Clock)) {
      return std::nullopt;
    }
    m.footprint.kinds.push_back(static_cast<ColumnKind>(kind));
  }
  int extra = 0;
  if (row >> extra) return std::nullopt;  // trailing garbage
  return b;
}

}  // namespace

std::string module_cache_to_text(const ModuleCache& cache) {
  std::ostringstream out;
  out << kCacheHeader << '\n';
  out << "# name status seed_cf first attempts err_kind err_cf err_attempts"
         " cf fill tool_runs used_slices est_slices longest_ns"
         " pblock(c0 c1 r0 r1) fp_height fp_hard n_kinds kinds... checksum\n";
  for (const auto& [name, block] : cache.entries()) {
    const std::string payload = cache_entry_payload(block);
    out << payload << ' ' << checksum_of(payload) << '\n';
  }
  out << kCacheFooter << cache.entries().size() << '\n';
  return out.str();
}

CacheLoadStats module_cache_from_text(const std::string& text,
                                      ModuleCache& cache) {
  CacheLoadStats stats;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return stats;
  strip_cr(line);
  if (line != kCacheHeader) return stats;
  stats.header_ok = true;

  bool footer_seen = false;
  std::size_t footer_count = 0;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.rfind(kCacheFooter, 0) == 0) {
      std::istringstream footer(line.substr(std::string(kCacheFooter).size()));
      if (footer >> footer_count) footer_seen = true;
      continue;
    }
    if (line.front() == '#') continue;
    // Split off the trailing checksum; verify before parsing.
    const std::size_t cut = line.find_last_of(' ');
    if (cut == std::string::npos) {
      ++stats.corrupted;
      continue;
    }
    const std::string payload = line.substr(0, cut);
    if (line.substr(cut + 1) != checksum_of(payload)) {
      ++stats.corrupted;
      continue;
    }
    std::optional<ImplementedBlock> block = parse_cache_entry(payload);
    if (!block) {
      ++stats.corrupted;
      continue;
    }
    cache.restore(std::move(*block));
    ++stats.loaded;
  }
  stats.complete =
      footer_seen &&
      footer_count == static_cast<std::size_t>(stats.loaded + stats.corrupted);
  return stats;
}

bool save_module_cache(const std::string& path, const ModuleCache& cache) {
  // Atomic replace: the checkpoint is the crash-recovery story itself, so a
  // crash *while checkpointing* must never destroy the previous checkpoint.
  return atomic_write_file(path, module_cache_to_text(cache));
}

CacheLoadStats load_module_cache(const std::string& path, ModuleCache& cache) {
  const std::optional<std::string> text = read_file(path);
  if (!text) return CacheLoadStats{};
  return module_cache_from_text(*text, cache);
}

}  // namespace mf
