#include "flow/serialize.hpp"

#include <fstream>
#include <sstream>

namespace mf {
namespace {

constexpr const char* kHeader = "macroflow-ground-truth v2";

}  // namespace

std::string ground_truth_to_text(const std::vector<LabeledModule>& samples) {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "# name min_cf luts ffs carry4 srls lutrams bram18 bram36 dsp cells"
         " control_sets max_fanout slices_luts slices_ffs slices_carry"
         " est est_m bram36_equiv dsp_need bbox_w bbox_h min_height"
         " carry_columns chains...\n";
  for (const LabeledModule& s : samples) {
    const NetlistStats& st = s.report.stats;
    out << s.name << ' ' << s.min_cf << ' ' << st.luts << ' ' << st.ffs << ' '
        << st.carry4 << ' ' << st.srls << ' ' << st.lutrams << ' '
        << st.bram18 << ' ' << st.bram36 << ' ' << st.dsp << ' ' << st.cells
        << ' ' << st.control_sets << ' ' << st.max_fanout << ' '
        << s.report.slices_for_luts << ' ' << s.report.slices_for_ffs << ' '
        << s.report.slices_for_carry << ' ' << s.report.est_slices << ' '
        << s.report.est_slices_m << ' ' << s.report.bram36 << ' '
        << s.report.dsp << ' ' << s.shape.bbox_w << ' ' << s.shape.bbox_h
        << ' ' << s.shape.min_height << ' ' << s.shape.carry_columns;
    for (int len : st.carry_chains) out << ' ' << len;
    out << '\n';
  }
  return out.str();
}

std::optional<std::vector<LabeledModule>> ground_truth_from_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  std::vector<LabeledModule> samples;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    LabeledModule s;
    NetlistStats& st = s.report.stats;
    if (!(row >> s.name >> s.min_cf >> st.luts >> st.ffs >> st.carry4 >>
          st.srls >> st.lutrams >> st.bram18 >> st.bram36 >> st.dsp >>
          st.cells >> st.control_sets >> st.max_fanout >>
          s.report.slices_for_luts >> s.report.slices_for_ffs >>
          s.report.slices_for_carry >> s.report.est_slices >>
          s.report.est_slices_m >> s.report.bram36 >> s.report.dsp >>
          s.shape.bbox_w >> s.shape.bbox_h >> s.shape.min_height >>
          s.shape.carry_columns)) {
      return std::nullopt;
    }
    int len = 0;
    while (row >> len) st.carry_chains.push_back(len);
    samples.push_back(std::move(s));
  }
  return samples;
}

bool save_ground_truth(const std::string& path,
                       const std::vector<LabeledModule>& samples) {
  std::ofstream out(path);
  if (!out) return false;
  out << ground_truth_to_text(samples);
  return static_cast<bool>(out);
}

std::optional<std::vector<LabeledModule>> load_ground_truth(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ground_truth_from_text(buffer.str());
}

}  // namespace mf
