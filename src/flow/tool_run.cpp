#include "flow/tool_run.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mf {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Crash: return "crash";
    case FaultKind::Timeout: return "timeout";
    case FaultKind::SpuriousInfeasible: return "spurious-infeasible";
  }
  return "?";
}

const char* to_string(FlowErrorKind kind) noexcept {
  switch (kind) {
    case FlowErrorKind::None: return "none";
    case FlowErrorKind::ToolCrash: return "tool-crash";
    case FlowErrorKind::ToolTimeout: return "tool-timeout";
    case FlowErrorKind::Infeasible: return "infeasible";
    case FlowErrorKind::NoPBlock: return "no-pblock";
    case FlowErrorKind::DegradedExhausted: return "degraded-exhausted";
  }
  return "?";
}

std::string to_string(const FlowError& error) {
  std::ostringstream out;
  out << to_string(error.kind) << " block=" << error.block << " cf=" << error.cf
      << " attempts=" << error.attempts;
  return out.str();
}

FaultInjector::FaultInjector(const FaultInjectorOptions& opts) : opts_(opts) {
  MF_CHECK_MSG(opts.p_crash >= 0.0 && opts.p_timeout >= 0.0 &&
                   opts.p_spurious_infeasible >= 0.0,
               "fault probabilities must be non-negative");
  MF_CHECK_MSG(
      opts.p_crash + opts.p_timeout + opts.p_spurious_infeasible <= 1.0,
      "fault probabilities must sum to <= 1");
}

FaultKind FaultInjector::draw(std::string_view block, int ordinal) const {
  if (!opts_.enabled) return FaultKind::None;
  // Pure hash of (seed, block, ordinal): the decision stream of one block is
  // independent of every other block's, so chaos runs replay bit-identically
  // under any interleaving (and later, any parallel schedule).
  std::uint64_t state = opts_.seed;
  state ^= splitmix64(state) ^ fnv1a64(block);
  state ^= splitmix64(state) ^ static_cast<std::uint64_t>(ordinal);
  const std::uint64_t word = splitmix64(state);
  const double u = static_cast<double>(word >> 11) * 0x1.0p-53;
  if (u < opts_.p_crash) return FaultKind::Crash;
  if (u < opts_.p_crash + opts_.p_timeout) return FaultKind::Timeout;
  if (u < opts_.p_crash + opts_.p_timeout + opts_.p_spurious_infeasible) {
    return FaultKind::SpuriousInfeasible;
  }
  return FaultKind::None;
}

ToolRunner::ToolRunner(const ToolRunnerOptions& opts)
    : opts_(opts), injector_(opts.fault) {
  MF_CHECK_MSG(opts.retry.max_attempts_per_check >= 1,
               "a check needs at least one attempt");
  MF_CHECK_MSG(opts.retry.retry_budget_per_block >= 0,
               "retry budget must be non-negative");
}

int ToolRunner::retries_used(const std::string& block) const {
  const auto it = retries_used_.find(block);
  return it == retries_used_.end() ? 0 : it->second;
}

void ToolRunner::grant_fresh_budget(const std::string& block) {
  retries_used_[block] = 0;
}

ToolRunner::CheckOutcome ToolRunner::run_check(
    const std::string& block, double cf,
    const std::function<PlaceResult()>& check) {
  CheckOutcome outcome;
  for (;;) {
    const int ordinal = ordinal_[block]++;
    ++stats_.invocations;
    ++outcome.attempts;
    const FaultKind fault = injector_.draw(block, ordinal);
    if (fault == FaultKind::Crash || fault == FaultKind::Timeout) {
      if (fault == FaultKind::Crash) {
        ++stats_.crashes;
      } else {
        ++stats_.timeouts;
      }
      const bool check_exhausted =
          outcome.attempts >= opts_.retry.max_attempts_per_check;
      const bool block_exhausted =
          retries_used_[block] >= opts_.retry.retry_budget_per_block;
      if (check_exhausted || block_exhausted) {
        outcome.error.kind = fault == FaultKind::Crash
                                 ? FlowErrorKind::ToolCrash
                                 : FlowErrorKind::ToolTimeout;
        outcome.error.block = block;
        outcome.error.cf = cf;
        outcome.error.attempts = outcome.attempts;
        return outcome;
      }
      ++retries_used_[block];
      ++stats_.retries;
      // Capped exponential backoff, accounted rather than slept: attempt 1
      // waits base, attempt 2 waits base*factor, ... up to the cap.
      double wait = opts_.retry.backoff_base_ms;
      for (int i = 1; i < outcome.attempts; ++i) {
        wait *= opts_.retry.backoff_factor;
      }
      stats_.backoff_ms += std::min(wait, opts_.retry.backoff_cap_ms);
      continue;
    }
    // The invocation completes and yields a verdict: one paper tool run.
    outcome.place = check();
    ++stats_.completed;
    if (fault == FaultKind::SpuriousInfeasible && outcome.place.feasible) {
      ++stats_.spurious;
      outcome.place.feasible = false;
      outcome.place.fail_reason = "injected: spurious infeasible verdict";
    }
    outcome.completed = true;
    return outcome;
  }
}

}  // namespace mf
