#include "flow/tool_run.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mf {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Crash: return "crash";
    case FaultKind::Timeout: return "timeout";
    case FaultKind::SpuriousInfeasible: return "spurious-infeasible";
  }
  return "?";
}

const char* to_string(FlowErrorKind kind) noexcept {
  switch (kind) {
    case FlowErrorKind::None: return "none";
    case FlowErrorKind::ToolCrash: return "tool-crash";
    case FlowErrorKind::ToolTimeout: return "tool-timeout";
    case FlowErrorKind::Infeasible: return "infeasible";
    case FlowErrorKind::NoPBlock: return "no-pblock";
    case FlowErrorKind::DegradedExhausted: return "degraded-exhausted";
  }
  return "?";
}

std::string to_string(const FlowError& error) {
  std::ostringstream out;
  out << to_string(error.kind) << " block=" << error.block << " cf=" << error.cf
      << " attempts=" << error.attempts;
  return out.str();
}

FaultInjector::FaultInjector(const FaultInjectorOptions& opts) : opts_(opts) {
  MF_CHECK_MSG(opts.p_crash >= 0.0 && opts.p_timeout >= 0.0 &&
                   opts.p_spurious_infeasible >= 0.0,
               "fault probabilities must be non-negative");
  MF_CHECK_MSG(
      opts.p_crash + opts.p_timeout + opts.p_spurious_infeasible <= 1.0,
      "fault probabilities must sum to <= 1");
}

FaultKind FaultInjector::draw(std::string_view block, int ordinal) const {
  if (!opts_.enabled) return FaultKind::None;
  // Pure hash of (seed, block, ordinal): the decision stream of one block is
  // independent of every other block's, so chaos runs replay bit-identically
  // under any interleaving (and later, any parallel schedule).
  std::uint64_t state = opts_.seed;
  state ^= splitmix64(state) ^ fnv1a64(block);
  state ^= splitmix64(state) ^ static_cast<std::uint64_t>(ordinal);
  const std::uint64_t word = splitmix64(state);
  const double u = static_cast<double>(word >> 11) * 0x1.0p-53;
  if (u < opts_.p_crash) return FaultKind::Crash;
  if (u < opts_.p_crash + opts_.p_timeout) return FaultKind::Timeout;
  if (u < opts_.p_crash + opts_.p_timeout + opts_.p_spurious_infeasible) {
    return FaultKind::SpuriousInfeasible;
  }
  return FaultKind::None;
}

ToolRunner::ToolRunner(const ToolRunnerOptions& opts)
    : opts_(opts), injector_(opts.fault) {
  MF_CHECK_MSG(opts.retry.max_attempts_per_check >= 1,
               "a check needs at least one attempt");
  MF_CHECK_MSG(opts.retry.retry_budget_per_block >= 0,
               "retry budget must be non-negative");
}

ToolRunner::ToolRunner(const ToolRunner& other)
    : opts_(other.opts_), injector_(other.injector_) {
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(other.shards_[s].mutex);
    shards_[s].blocks = other.shards_[s].blocks;
  }
}

ToolRunner& ToolRunner::operator=(const ToolRunner& other) {
  if (this == &other) return *this;
  opts_ = other.opts_;
  injector_ = other.injector_;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::map<std::string, BlockState> copy;
    {
      std::lock_guard<std::mutex> lock(other.shards_[s].mutex);
      copy = other.shards_[s].blocks;
    }
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].blocks = std::move(copy);
  }
  return *this;
}

ToolRunner::Shard& ToolRunner::shard_of(std::string_view block)
    const noexcept {
  return shards_[fnv1a64(block) % kShards];
}

ToolRunner::BlockState& ToolRunner::state_of(const std::string& block) const {
  Shard& shard = shard_of(block);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.blocks[block];  // std::map nodes never move on insert
}

ToolRunStats ToolRunner::stats() const {
  // Per-block contributions are schedule-independent, and the (shard, name)
  // summation order depends only on the block names present, so the
  // aggregate -- including the floating-point backoff_ms sum -- is
  // bit-identical at any thread count.
  ToolRunStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, state] : shard.blocks) {
      total.invocations += state.stats.invocations;
      total.completed += state.stats.completed;
      total.crashes += state.stats.crashes;
      total.timeouts += state.stats.timeouts;
      total.spurious += state.stats.spurious;
      total.retries += state.stats.retries;
      total.backoff_ms += state.stats.backoff_ms;
    }
  }
  return total;
}

int ToolRunner::retries_used(const std::string& block) const {
  Shard& shard = shard_of(block);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.blocks.find(block);
  return it == shard.blocks.end() ? 0 : it->second.retries_used;
}

long ToolRunner::invocations_for(const std::string& block) const {
  Shard& shard = shard_of(block);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.blocks.find(block);
  return it == shard.blocks.end() ? 0 : it->second.stats.invocations;
}

void ToolRunner::grant_fresh_budget(const std::string& block) {
  state_of(block).retries_used = 0;
}

ToolRunner::CheckOutcome ToolRunner::run_check(
    const std::string& block, double cf,
    const std::function<PlaceResult()>& check) {
  // Contract: all checks for one block come from a single task, so `state`
  // is mutated without the shard lock (the lock only guards the map).
  BlockState& state = state_of(block);
  CheckOutcome outcome;
  for (;;) {
    const int ordinal = state.ordinal++;
    ++state.stats.invocations;
    ++outcome.attempts;
    const FaultKind fault = injector_.draw(block, ordinal);
    if (fault == FaultKind::Crash || fault == FaultKind::Timeout) {
      if (fault == FaultKind::Crash) {
        ++state.stats.crashes;
      } else {
        ++state.stats.timeouts;
      }
      const bool check_exhausted =
          outcome.attempts >= opts_.retry.max_attempts_per_check;
      const bool block_exhausted =
          state.retries_used >= opts_.retry.retry_budget_per_block;
      if (check_exhausted || block_exhausted) {
        outcome.error.kind = fault == FaultKind::Crash
                                 ? FlowErrorKind::ToolCrash
                                 : FlowErrorKind::ToolTimeout;
        outcome.error.block = block;
        outcome.error.cf = cf;
        outcome.error.attempts = outcome.attempts;
        return outcome;
      }
      ++state.retries_used;
      ++state.stats.retries;
      // Capped exponential backoff, accounted rather than slept: attempt 1
      // waits base, attempt 2 waits base*factor, ... up to the cap.
      double wait = opts_.retry.backoff_base_ms;
      for (int i = 1; i < outcome.attempts; ++i) {
        wait *= opts_.retry.backoff_factor;
      }
      state.stats.backoff_ms += std::min(wait, opts_.retry.backoff_cap_ms);
      continue;
    }
    // The invocation completes and yields a verdict: one paper tool run.
    outcome.place = check();
    ++state.stats.completed;
    if (fault == FaultKind::SpuriousInfeasible && outcome.place.feasible) {
      ++state.stats.spurious;
      outcome.place.feasible = false;
      outcome.place.fail_reason = "injected: spurious infeasible verdict";
    }
    outcome.completed = true;
    return outcome;
  }
}

}  // namespace mf
