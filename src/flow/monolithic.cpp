#include "flow/monolithic.hpp"

#include <set>

#include "synth/optimize.hpp"

namespace mf {

Module flatten(const BlockDesign& design,
               std::vector<std::pair<std::size_t, std::size_t>>* cell_ranges) {
  Module flat;
  flat.name = "flat";
  Netlist& nl = flat.netlist;
  if (cell_ranges != nullptr) {
    cell_ranges->clear();
    cell_ranges->reserve(design.instances.size());
  }

  int chain_offset = 0;
  for (const BlockInstance& inst : design.instances) {
    const Netlist& src =
        design.unique_modules[static_cast<std::size_t>(inst.macro)].netlist;
    const std::size_t cell_base = nl.num_cells();
    const NetId net_base = static_cast<NetId>(nl.num_nets());

    // Copy nets first so ids stay topological within the instance.
    for (std::size_t n = 0; n < src.num_nets(); ++n) {
      const Net& net = src.net(static_cast<NetId>(n));
      nl.add_net(net.label, net.is_clock);
    }
    // Control sets: intern the remapped triples.
    std::vector<ControlSetId> cs_map(src.num_control_sets());
    for (std::size_t c = 0; c < src.num_control_sets(); ++c) {
      const ControlSet& cs = src.control_set(static_cast<ControlSetId>(c));
      auto remap = [&](NetId id) {
        return id == kInvalidId ? kInvalidId : id + net_base;
      };
      cs_map[c] = nl.make_control_set(remap(cs.clk), remap(cs.sr),
                                      remap(cs.ce));
    }
    // Cells.
    int max_chain = -1;
    for (std::size_t i = 0; i < src.num_cells(); ++i) {
      const Cell& cell = src.cell(static_cast<CellId>(i));
      const CellId id = nl.add_cell(cell.kind);
      for (NetId in : cell.inputs) nl.connect_input(id, in + net_base);
      if (cell.out != kInvalidId) nl.set_output(id, cell.out + net_base);
      if (cell.control_set != kInvalidId) {
        nl.bind_control_set(id,
                            cs_map[static_cast<std::size_t>(cell.control_set)]);
      }
      if (cell.chain != kInvalidId) {
        nl.set_chain(id, cell.chain + chain_offset, cell.chain_pos);
        max_chain = std::max(max_chain, cell.chain);
      }
    }
    chain_offset += max_chain + 1;
    for (NetId out : src.outputs()) nl.mark_output(out + net_base);

    if (cell_ranges != nullptr) {
      cell_ranges->emplace_back(cell_base, nl.num_cells());
    }
  }
  return flat;
}

MonolithicResult place_monolithic(const BlockDesign& design,
                                  const Device& device,
                                  const MonolithicOptions& opts) {
  MonolithicResult result;
  // Optimize per unique module *before* flattening: post-flatten optimisation
  // would re-number cells and invalidate the per-instance ranges.
  BlockDesign optimized = design;
  for (Module& module : optimized.unique_modules) optimize(module.netlist);

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  Module flat = flatten(optimized, &ranges);
  result.report = make_report(flat.netlist);

  const PBlock whole{0, device.num_columns() - 1, 0, device.rows() - 1};
  const PlaceResult place =
      place_in_pblock(flat, result.report, device, whole, opts.place);
  result.feasible = place.feasible;
  result.fail_reason = place.fail_reason;
  result.used_slices = place.used_slices;
  result.utilization = static_cast<double>(place.used_slices) /
                       std::max(1, device.totals().slices);

  // Per-instance slice usage: distinct slice coordinates its cells occupy.
  result.instance_slices.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    std::set<std::pair<int, int>> coords;
    for (std::size_t i = lo; i < hi; ++i) {
      const CellPlacement& p = place.placement[i];
      const CellKind kind = flat.netlist.cell(static_cast<CellId>(i)).kind;
      const bool clb = kind == CellKind::Lut || kind == CellKind::Ff ||
                       kind == CellKind::Carry4 || kind == CellKind::Srl ||
                       kind == CellKind::LutRam;
      if (p.placed() && clb) coords.emplace(p.col, p.row);
    }
    result.instance_slices.push_back(static_cast<int>(coords.size()));
  }

  if (opts.compute_timing && place.used_slices > 0) {
    result.longest_path_ns =
        analyze_timing(flat.netlist, place.placement, place.route,
                       opts.place.route.cell_capacity)
            .longest_path_ns;
  }
  return result;
}

}  // namespace mf
