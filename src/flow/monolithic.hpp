#pragma once
// Monolithic full-device baseline (the "AMD EDA tool" column of Table I and
// Figure 5a).
//
// Flattens the whole block design into a single netlist and packs it into
// the entire device with the same detailed placer the per-PBlock flow uses.
// Because the device is the PBlock, the packer is free to interleave blocks
// and reach near-total utilization -- the paper's flat run lands at 99.98%
// of the xc7z020's slices. Per-instance slice usage is recovered from the
// flattened cell ranges (the AMD column's 30/34/32/29 for the four mvau_18
// instances arises the same way: each instance is implemented in context).

#include <string>
#include <vector>

#include "place/detailed_placer.hpp"
#include "stitch/macro.hpp"
#include "timing/sta.hpp"

namespace mf {

struct MonolithicOptions {
  MonolithicOptions() {
    // Full-effort mode: the flat commercial flow closes designs at ~99.98%
    // utilization by spending far more router effort (congestion-driven
    // restructuring, detour routing) than the quick per-PBlock feasibility
    // checks model -- 3x the channel budget stands in for that effort gap.
    // It also spreads into whatever slack the device offers (no dense-pack
    // margin), which is how the real tool ends up touching nearly every
    // slice of a 95%-demand design.
    place.route.cell_capacity *= 3.0;
    place.spread_margin = 1.0;
    place.spread_offset = 0.0;
  }
  DetailedPlaceOptions place;
  bool compute_timing = true;
};

struct MonolithicResult {
  bool feasible = false;
  std::string fail_reason;
  int used_slices = 0;
  double utilization = 0.0;  ///< used slices / device slices
  double longest_path_ns = 0.0;
  /// Used slices per design instance, aligned with design.instances. Slices
  /// shared between instances (packer seam effects) count for each sharer.
  std::vector<int> instance_slices;
  ResourceReport report;  ///< of the flattened netlist
};

/// Flatten `design` into one module (each instance gets a private copy of
/// its unique module's netlist). Exposed for tests.
Module flatten(const BlockDesign& design,
               std::vector<std::pair<std::size_t, std::size_t>>* cell_ranges =
                   nullptr);

MonolithicResult place_monolithic(const BlockDesign& design,
                                  const Device& device,
                                  const MonolithicOptions& opts = {});

}  // namespace mf
