#pragma once
// The RapidWright-style pre-implemented-block flow, end to end:
//
//   1. identify unique blocks in the block design;
//   2. per unique block: synthesize & optimize, quick-place (shape report),
//      pick a CF (constant or estimator), generate the PBlock, place & route
//      inside it -- retrying per the Section VIII schedule when infeasible;
//   3. cache the implementation (a Macro) and reuse it for every instance;
//   4. stitch all instances onto the device with simulated annealing.
//
// The implementation cache is the flow's reason to exist: when a design
// iteration touches one block, only that block re-runs steps 2-3.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cf_search.hpp"
#include "core/estimator.hpp"
#include "stitch/macro.hpp"
#include "stitch/sa_stitcher.hpp"
#include "timing/sta.hpp"

namespace mf {

/// How the flow chooses each block's correction factor.
struct CfPolicy {
  enum class Mode {
    Constant,   ///< fixed CF for every block (RW's default, 1.5)
    Estimator,  ///< per-block CF from a trained CfEstimator
    MinSearch,  ///< exhaustive minimal-CF search (ground-truth baseline)
  };
  Mode mode = Mode::Constant;
  double constant_cf = 1.5;
  const CfEstimator* estimator = nullptr;  ///< required for Estimator mode
};

struct RwFlowOptions {
  CfSearchOptions search;      ///< placement / search knobs
  StitchOptions stitch;        ///< annealer knobs
  bool run_stitch = true;
  bool compute_timing = true;
};

/// One unique block after implementation.
struct ImplementedBlock {
  std::string name;
  bool ok = false;
  Macro macro;
  ResourceReport report;
  ShapeReport shape;
  double seed_cf = 0.0;  ///< CF the policy proposed
  bool first_run_success = false;
};

struct RwFlowResult {
  std::vector<ImplementedBlock> blocks;  ///< aligned with unique_modules
  StitchProblem problem;
  StitchResult stitch;
  int total_tool_runs = 0;
  int failed_blocks = 0;
};

/// Implement one module: synthesize, quick-place, then run the seeded CF
/// search from `seed_cf`.
ImplementedBlock implement_block(const Module& module, const Device& device,
                                 double seed_cf, const RwFlowOptions& opts);

/// Full flow over a block design.
RwFlowResult run_rw_flow(const BlockDesign& design, const Device& device,
                         const CfPolicy& policy, const RwFlowOptions& opts = {});

/// Implementation cache keyed by unique-block name, for DSE scenarios where
/// a design revision re-uses most blocks (the paper's motivating use case).
class ModuleCache {
 public:
  [[nodiscard]] const ImplementedBlock* find(const std::string& name) const;
  void store(ImplementedBlock block);
  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }
  [[nodiscard]] int hits() const noexcept { return hits_; }
  [[nodiscard]] int misses() const noexcept { return misses_; }

  /// Like run_rw_flow, but consults / fills the cache per unique block.
  RwFlowResult run(const BlockDesign& design, const Device& device,
                   const CfPolicy& policy, const RwFlowOptions& opts = {});

 private:
  std::map<std::string, ImplementedBlock> cache_;
  mutable int hits_ = 0;
  int misses_ = 0;
};

}  // namespace mf
