#pragma once
// The RapidWright-style pre-implemented-block flow, end to end:
//
//   1. identify unique blocks in the block design;
//   2. per unique block: synthesize & optimize, quick-place (shape report),
//      pick a CF (constant or estimator), generate the PBlock, place & route
//      inside it -- retrying per the Section VIII schedule when infeasible;
//   3. cache the implementation (a Macro) and reuse it for every instance;
//   4. stitch all instances onto the device with simulated annealing.
//
// The implementation cache is the flow's reason to exist: when a design
// iteration touches one block, only that block re-runs steps 2-3.

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/cf_search.hpp"
#include "core/estimator.hpp"
#include "flow/tool_run.hpp"
#include "stitch/macro.hpp"
#include "stitch/sa_stitcher.hpp"
#include "timing/sta.hpp"

namespace mf {

/// How the flow chooses each block's correction factor.
struct CfPolicy {
  enum class Mode {
    Constant,   ///< fixed CF for every block (RW's default, 1.5)
    Estimator,  ///< per-block CF from a trained CfEstimator
    MinSearch,  ///< exhaustive minimal-CF search (ground-truth baseline)
  };
  Mode mode = Mode::Constant;
  double constant_cf = 1.5;
  const CfEstimator* estimator = nullptr;  ///< required for Estimator mode
};

struct RwFlowOptions {
  CfSearchOptions search;      ///< placement / search knobs (incl. runner)
  StitchOptions stitch;        ///< annealer knobs
  bool run_stitch = true;
  bool compute_timing = true;
  /// Graceful degradation: when the primary search fails *under fault
  /// injection* (search.runner attached and injection enabled), retry once
  /// with an escalated constant CF before declaring the block failed. With
  /// injection disabled the flow is bit-identical to the infallible-tool
  /// behaviour -- no extra searches, no extra tool runs.
  bool degrade_on_failure = true;
  double degrade_cf = 2.5;  ///< escalated CF for the fallback attempt
  /// Worker threads for the per-block implement loop (the blocks are
  /// independent). The stitch parallelises separately via multi-start
  /// annealing: set stitch.restarts / stitch.jobs. 1 = sequential, 0 = auto
  /// (hardware concurrency). Results are bit-identical at any value: blocks
  /// land in pre-sized slots, the ToolRunner keeps per-block state, and the
  /// fault-injection stream is a pure function of (seed, block, ordinal).
  int jobs = MF_JOBS_DEFAULT;
  /// Cooperative cancellation (common/cancel.hpp). A tripped token stops new
  /// per-block implements (in-flight blocks drain), skips the stitch, and
  /// marks not-yet-implemented blocks FlowStatus::Cancelled. The same token
  /// is forwarded into the annealer (subsumes stitch.max_seconds) so a
  /// deadline covers the flow end to end.
  const CancelToken* cancel = nullptr;
  /// ModuleCache::run only: when non-empty, the cache is checkpointed here
  /// (atomically; flow/serialize.hpp) after the merge -- including on
  /// cancellation, so a cancelled run resumes with its completed blocks.
  std::string checkpoint_path;
};

/// Per-block outcome of the flow.
enum class FlowStatus : std::uint8_t {
  Ok,        ///< implemented at the policy's CF (possibly after refinement)
  Degraded,  ///< primary search failed; escalated constant-CF fallback stuck
  Failed,    ///< no implementation; excluded from the stitch problem
  Cancelled, ///< flow cancelled before this block ran; retried on resume
};

[[nodiscard]] const char* to_string(FlowStatus status) noexcept;

/// One unique block after implementation.
struct ImplementedBlock {
  std::string name;
  FlowStatus status = FlowStatus::Failed;
  FlowError error;   ///< why the block failed (or why it was degraded)
  int attempts = 0;  ///< physical tool invocations incl. retries (0: no runner)
  Macro macro;
  ResourceReport report;
  ShapeReport shape;
  double seed_cf = 0.0;  ///< CF the policy proposed
  bool first_run_success = false;

  /// Compatibility accessor for the old `bool ok` field: true when the block
  /// produced a usable macro (cleanly or degraded). Cancelled blocks never
  /// ran, so they are not ok -- and not cached either.
  [[nodiscard]] bool ok() const noexcept {
    return status == FlowStatus::Ok || status == FlowStatus::Degraded;
  }
  [[nodiscard]] bool degraded() const noexcept {
    return status == FlowStatus::Degraded;
  }
};

struct RwFlowResult {
  std::vector<ImplementedBlock> blocks;  ///< aligned with unique_modules
  StitchProblem problem;
  StitchResult stitch;
  int total_tool_runs = 0;
  int failed_blocks = 0;
  int degraded_blocks = 0;
  /// Cancellation outcome: `cancelled` is true when the token tripped during
  /// the run (even if every block had already finished -- the stitch is then
  /// skipped); cancelled_blocks counts blocks marked FlowStatus::Cancelled.
  bool cancelled = false;
  int cancelled_blocks = 0;
  std::vector<FlowError> errors;  ///< one per failed block, in block order
};

/// Implement one module: synthesize, quick-place, then run the seeded CF
/// search from `seed_cf`.
ImplementedBlock implement_block(const Module& module, const Device& device,
                                 double seed_cf, const RwFlowOptions& opts);

/// Full flow over a block design.
RwFlowResult run_rw_flow(const BlockDesign& design, const Device& device,
                         const CfPolicy& policy, const RwFlowOptions& opts = {});

/// Implementation cache keyed by unique-block name, for DSE scenarios where
/// a design revision re-uses most blocks (the paper's motivating use case).
///
/// Failure semantics: only blocks that produced a usable macro are stored.
/// A failed implementation is *not* cached, so the next run retries it --
/// caching a failure would pin a transient tool fault forever.
///
/// The cache can be checkpointed to disk (versioned, per-entry checksummed;
/// see flow/serialize.hpp) so an interrupted flow resumes with its
/// implemented macros intact and re-runs only missing/corrupted blocks.
///
/// Thread safety: find/store/restore take an internal mutex, so concurrent
/// lookups and insertions are safe. `run` itself consults the cache and
/// inserts new blocks sequentially (only the implement work fans out), so
/// hit/miss counters and insertion order are identical at any `jobs` value.
/// find()'s returned pointer stays valid across inserts (std::map nodes are
/// stable) but callers must not hold it across an erase (none exists).
class ModuleCache {
 public:
  [[nodiscard]] const ImplementedBlock* find(const std::string& name) const;
  void store(ImplementedBlock block);
  /// Insert without counting a miss -- used by checkpoint restore.
  void restore(ImplementedBlock block);
  [[nodiscard]] std::size_t size() const noexcept { return cache_.size(); }
  [[nodiscard]] int hits() const noexcept { return hits_; }
  [[nodiscard]] int misses() const noexcept { return misses_; }
  [[nodiscard]] const std::map<std::string, ImplementedBlock>& entries()
      const noexcept {
    return cache_;
  }

  /// Like run_rw_flow, but consults / fills the cache per unique block.
  RwFlowResult run(const BlockDesign& design, const Device& device,
                   const CfPolicy& policy, const RwFlowOptions& opts = {});

 private:
  mutable std::mutex mutex_;
  std::map<std::string, ImplementedBlock> cache_;
  mutable int hits_ = 0;
  int misses_ = 0;
};

}  // namespace mf
