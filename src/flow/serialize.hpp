#pragma once
// Plain-text serialisation of labelled ground truth and of the module cache.
//
// Labelling 2,000 modules costs ~10 s; the estimator benches and the CLI can
// cache the result on disk (opt-in via MACROFLOW_GT_CACHE) and reload it
// instantly. The format is a versioned, self-describing text table -- stable
// across runs, diffable, and safe to regenerate at any time. A sample-count
// footer makes truncation detectable: a cut-off file is rejected as corrupt
// instead of silently loading a prefix of the dataset.
//
// The module-cache checkpoint is the flow's crash-recovery story: every
// implemented macro is written as one line with a per-entry FNV-1a checksum
// plus an entry-count footer. On reload, entries with a bad checksum (or a
// truncated tail) are dropped and counted, so an interrupted flow resumes
// with its good macros intact and re-runs only the corrupted/missing blocks.

#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "flow/rw_flow.hpp"

namespace mf {

/// Serialise labelled samples (one line per sample, versioned header,
/// sample-count footer).
std::string ground_truth_to_text(const std::vector<LabeledModule>& samples);

/// Parse samples back; nullopt on malformed input, version mismatch, or a
/// missing/mismatching footer (truncated file).
std::optional<std::vector<LabeledModule>> ground_truth_from_text(
    const std::string& text);

/// File helpers; load returns nullopt when the file is missing or invalid.
bool save_ground_truth(const std::string& path,
                       const std::vector<LabeledModule>& samples);
std::optional<std::vector<LabeledModule>> load_ground_truth(
    const std::string& path);

/// Outcome of restoring a ModuleCache checkpoint.
struct CacheLoadStats {
  bool header_ok = false;  ///< file existed and carried the right version
  bool complete = false;   ///< footer present and every entry accounted for
  int loaded = 0;          ///< entries restored into the cache
  int corrupted = 0;       ///< entries dropped (checksum/parse failure)
};

/// Serialise every cached implementation (macro + status metadata). Blocks
/// re-derive report/shape on re-synthesis, so only what the stitcher and
/// the accounting need is persisted.
std::string module_cache_to_text(const ModuleCache& cache);

/// Restore entries into `cache` (via ModuleCache::restore -- no miss
/// accounting). Corrupted entries are skipped and counted; the caller
/// re-runs whatever the next flow invocation finds missing.
CacheLoadStats module_cache_from_text(const std::string& text,
                                      ModuleCache& cache);

/// File helpers for checkpoint/resume of an interrupted flow.
bool save_module_cache(const std::string& path, const ModuleCache& cache);
CacheLoadStats load_module_cache(const std::string& path, ModuleCache& cache);

}  // namespace mf
