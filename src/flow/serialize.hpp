#pragma once
// Plain-text serialisation of labelled ground truth.
//
// Labelling 2,000 modules costs ~10 s; the estimator benches and the CLI can
// cache the result on disk (opt-in via MACROFLOW_GT_CACHE) and reload it
// instantly. The format is a versioned, self-describing text table -- stable
// across runs, diffable, and safe to regenerate at any time.

#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"

namespace mf {

/// Serialise labelled samples (one line per sample, versioned header).
std::string ground_truth_to_text(const std::vector<LabeledModule>& samples);

/// Parse samples back; nullopt on malformed input or version mismatch.
std::optional<std::vector<LabeledModule>> ground_truth_from_text(
    const std::string& text);

/// File helpers; load returns nullopt when the file is missing or invalid.
bool save_ground_truth(const std::string& path,
                       const std::vector<LabeledModule>& samples);
std::optional<std::vector<LabeledModule>> load_ground_truth(
    const std::string& path);

}  // namespace mf
