#pragma once
// Serialisation of labelled ground truth and of the module cache, in two
// interconvertible on-disk representations.
//
// The *text* formats are versioned, self-describing line tables -- stable
// across runs, diffable, and safe to regenerate at any time. A sample-count
// footer makes truncation detectable, and the module-cache entries carry
// per-entry FNV-1a checksums so an interrupted flow resumes with its good
// macros intact.
//
// The *binary* formats (ground-truth v4-bin, module-cache v2-bin) pack the
// same data into the common/binfile container: little-endian sections with
// per-section checksums, bulk-read on load without per-line parsing. They
// exist for scale -- million-module datasets and per-shard farm checkpoints
// reload ~10x+ faster (gated by bench_persist) -- while the text format
// remains the interchange path. Loaders auto-detect the format by magic, so
// every existing text file keeps loading; `macroflow convert` migrates
// files in either direction, byte-identically round-trippable because all
// text doubles go through the shortest-round-trip formatter in
// common/parse_num.hpp.
//
// Module (and cache-entry) names must be whitespace-free and must not start
// with '#': the text formats are whitespace-delimited, so an embedded space
// would shift every following field on load. Writers reject such names with
// MF_CHECK (both text and binary paths); loaders treat them as corruption.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/binfile.hpp"
#include "core/estimator.hpp"
#include "flow/rw_flow.hpp"

namespace mf {

/// Serialise labelled samples (one line per sample, versioned header,
/// sample-count footer).
std::string ground_truth_to_text(const std::vector<LabeledModule>& samples);

/// Parse samples back; nullopt on malformed input, version mismatch, or a
/// missing/mismatching footer (truncated file).
std::optional<std::vector<LabeledModule>> ground_truth_from_text(
    const std::string& text);

/// Binary ground truth (v4-bin): the same samples in a binfile container.
std::string ground_truth_to_binary(const std::vector<LabeledModule>& samples);

/// Parse a binary ground-truth file; nullopt on any damage (the container
/// verifies checksums wholesale -- there is no partial load). When `error`
/// is non-null it receives a one-line diagnostic.
std::optional<std::vector<LabeledModule>> ground_truth_from_binary(
    std::string_view bytes, std::string* error = nullptr);

/// File helpers; load auto-detects text vs binary by magic and returns
/// nullopt when the file is missing or invalid.
bool save_ground_truth(const std::string& path,
                       const std::vector<LabeledModule>& samples,
                       PersistFormat format = PersistFormat::Text);
std::optional<std::vector<LabeledModule>> load_ground_truth(
    const std::string& path);

/// Outcome of restoring a ModuleCache checkpoint.
struct CacheLoadStats {
  bool header_ok = false;  ///< file existed and carried the right version
  bool complete = false;   ///< footer present and every entry accounted for
  int loaded = 0;          ///< entries restored into the cache
  int corrupted = 0;       ///< entries dropped (checksum/parse failure)
};

/// Serialise every cached implementation (macro + status metadata). Blocks
/// re-derive report/shape on re-synthesis, so only what the stitcher and
/// the accounting need is persisted.
std::string module_cache_to_text(const ModuleCache& cache);

/// Restore entries into `cache` (via ModuleCache::restore -- no miss
/// accounting). Corrupted entries are skipped and counted; the caller
/// re-runs whatever the next flow invocation finds missing.
CacheLoadStats module_cache_from_text(const std::string& text,
                                      ModuleCache& cache);

/// Binary module cache (v2-bin). Integrity is whole-file (container
/// checksums): a damaged binary checkpoint loads nothing (header_ok=false)
/// rather than a subset -- the flow then re-runs from scratch, which is
/// always safe.
std::string module_cache_to_binary(const ModuleCache& cache);
CacheLoadStats module_cache_from_binary(std::string_view bytes,
                                        ModuleCache& cache);

/// File helpers for checkpoint/resume of an interrupted flow; load
/// auto-detects text vs binary by magic.
bool save_module_cache(const std::string& path, const ModuleCache& cache,
                       PersistFormat format = PersistFormat::Text);
CacheLoadStats load_module_cache(const std::string& path, ModuleCache& cache);

}  // namespace mf
