#pragma once
// Ground-truth dataset construction shared by the estimator benches and the
// examples: realize generator specs (or the cnvW1A1 blocks), synthesize, and
// label each with its minimal feasible CF from the oracle search.

#include <vector>

#include "common/thread_pool.hpp"
#include "core/cf_search.hpp"
#include "core/estimator.hpp"
#include "rtlgen/sweep.hpp"
#include "stitch/macro.hpp"

namespace mf {

struct GroundTruth {
  std::vector<LabeledModule> samples;
  int infeasible = 0;  ///< specs dropped because no CF <= max_cf worked
};

/// Label every spec of the sweep. `search.start` defaults to the paper's
/// 0.9 for dataset generation (Section VII). `jobs` fans the per-spec
/// realize + min-CF search out over a worker pool; results are
/// bit-identical at any value (1 = sequential, 0 = hardware concurrency).
GroundTruth build_ground_truth(const std::vector<GenSpec>& specs,
                               const Device& device,
                               const CfSearchOptions& search = {},
                               int jobs = MF_JOBS_DEFAULT);

/// Label the unique blocks of a block design (cnvW1A1: Figures 4/11/12).
/// Uses a lower search start to expose hard-block-dominated minima and
/// optionally drops trivially small blocks (the paper removes one-/two-tile
/// modules, leaving 63 of 74 for the estimator evaluation).
GroundTruth label_blocks(const BlockDesign& design, const Device& device,
                         double search_start = 0.5, int min_est_slices = 0,
                         int jobs = MF_JOBS_DEFAULT);

}  // namespace mf
