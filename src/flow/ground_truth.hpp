#pragma once
// Ground-truth dataset construction shared by the estimator benches and the
// examples: realize generator specs (or the cnvW1A1 blocks), synthesize, and
// label each with its minimal feasible CF from the oracle search.

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/cf_search.hpp"
#include "core/estimator.hpp"
#include "rtlgen/sweep.hpp"
#include "stitch/macro.hpp"

namespace mf {

struct GroundTruth {
  std::vector<LabeledModule> samples;
  int infeasible = 0;  ///< specs dropped because no CF <= max_cf worked
};

/// Label every spec of the sweep. `search.start` defaults to the paper's
/// 0.9 for dataset generation (Section VII). `jobs` fans the per-spec
/// realize + min-CF search out over a worker pool; results are
/// bit-identical at any value (1 = sequential, 0 = hardware concurrency).
GroundTruth build_ground_truth(const std::vector<GenSpec>& specs,
                               const Device& device,
                               const CfSearchOptions& search = {},
                               int jobs = MF_JOBS_DEFAULT);

/// Label the unique blocks of a block design (cnvW1A1: Figures 4/11/12).
/// Uses a lower search start to expose hard-block-dominated minima and
/// optionally drops trivially small blocks (the paper removes one-/two-tile
/// modules, leaving 63 of 74 for the estimator evaluation).
GroundTruth label_blocks(const BlockDesign& design, const Device& device,
                         double search_start = 0.5, int min_est_slices = 0,
                         int jobs = MF_JOBS_DEFAULT);

/// Bookkeeping from a shard merge; `warnings` carries one human-readable
/// line per anomaly (duplicate keys, samples outside the expected order).
struct ShardMergeStats {
  int shards = 0;              ///< shard lists consumed
  long samples = 0;            ///< samples in the merged result
  int duplicates_dropped = 0;  ///< same module key seen in > 1 place
  int unknown_dropped = 0;     ///< samples whose key is not in `order`
  std::vector<std::string> warnings;
};

/// Merge per-shard sample lists back into one dataset ordered by `order`
/// (the global module-key order of the generating sweep -- the order a
/// single-process run would have produced). Keys in `order` that no shard
/// labelled are skipped (infeasible, or their shard was quarantined).
///
/// Duplicate keys are resolved deterministically, never appended twice:
/// the sample from the lowest shard index wins (within one shard, the
/// earliest occurrence), and every loser is counted in
/// `duplicates_dropped` with a warning naming the key -- a silent
/// duplicate would poison downstream training with conflicting labels.
/// The result is a pure function of (shard_samples, order), independent of
/// which worker processes produced the shards or in what order they
/// finished; merging the shards of an uninterrupted sharded run reproduces
/// the single-process dataset byte-for-byte once serialised.
std::vector<LabeledModule> merge_ground_truth_shards(
    std::vector<std::vector<LabeledModule>> shard_samples,
    const std::vector<std::string>& order, ShardMergeStats* stats = nullptr);

}  // namespace mf
