#include "flow/rw_flow.hpp"

#include <algorithm>

#include "flow/serialize.hpp"
#include "synth/optimize.hpp"

namespace mf {

const char* to_string(FlowStatus status) noexcept {
  switch (status) {
    case FlowStatus::Ok: return "ok";
    case FlowStatus::Degraded: return "degraded";
    case FlowStatus::Failed: return "failed";
    case FlowStatus::Cancelled: return "cancelled";
  }
  return "?";
}

namespace {

/// Build the Macro record from a successful placement.
Macro make_macro(const std::string& name, const Device& device,
                 const ResourceReport& report, double cf, int tool_runs,
                 const PBlock& pblock, const PlaceResult& place,
                 const Module& module, const RwFlowOptions& opts) {
  Macro macro;
  macro.name = name;
  macro.pblock = pblock;
  macro.footprint = footprint_of(device, pblock, report.uses_bram_or_dsp());
  macro.used_slices = place.used_slices;
  macro.est_slices = report.est_slices;
  macro.cf = cf;
  macro.fill_ratio = place.fill_ratio;
  macro.tool_runs = tool_runs;
  if (opts.compute_timing) {
    macro.longest_path_ns =
        analyze_timing(module.netlist, place.placement, place.route,
                       opts.search.place.route.cell_capacity)
            .longest_path_ns;
  }
  return macro;
}

/// One unique block under the given policy -- the task body of the parallel
/// per-block loop. Pure function of (module, device, policy, opts): it
/// touches no shared mutable state except the (thread-safe, per-block)
/// ToolRunner, so tasks may run in any order on any thread.
ImplementedBlock implement_with_policy(const Module& module,
                                       const Device& device,
                                       const CfPolicy& policy,
                                       const RwFlowOptions& opts) {
  switch (policy.mode) {
    case CfPolicy::Mode::Constant:
      return implement_block(module, device, policy.constant_cf, opts);
    case CfPolicy::Mode::Estimator: {
      MF_CHECK_MSG(policy.estimator != nullptr && policy.estimator->trained(),
                   "estimator policy needs a trained estimator");
      // Synthesize once to extract features, then implement from the
      // predicted CF (implement_block re-synthesizes; netlists are small
      // enough that clarity wins over caching the synthesis).
      Module synth = module;
      optimize(synth.netlist);
      const ResourceReport report = make_report(synth.netlist);
      const ShapeReport shape = quick_place(report);
      const double cf = policy.estimator->estimate(report, shape);
      return implement_block(module, device, cf, opts);
    }
    case CfPolicy::Mode::MinSearch: {
      ImplementedBlock block;
      Module synth = module;
      optimize(synth.netlist);
      const ResourceReport report = make_report(synth.netlist);
      const ShapeReport shape = quick_place(report);
      CfSearchOptions search = opts.search;
      search.start = 0.5;  // expose hard-block-dominated minima
      const CfSearchResult found =
          find_min_cf(synth, report, shape, device, search);
      block.name = module.name;
      block.report = report;
      block.shape = shape;
      block.seed_cf = search.start;
      if (found.found) {
        block.status = FlowStatus::Ok;
        block.macro =
            make_macro(module.name, device, report, found.min_cf,
                       found.tool_runs, found.pblock, found.place, synth,
                       opts);
      } else {
        block.error = found.error.failed()
                          ? found.error
                          : FlowError{FlowErrorKind::Infeasible,
                                      module.name, search.start, 0};
        block.macro.tool_runs = found.tool_runs;
      }
      return block;
    }
  }
  return ImplementedBlock{};  // unreachable
}

/// Accumulate one finished block into the result counters (sequential, in
/// unique-module order, so totals and error order match jobs=1 exactly).
void account_block(RwFlowResult& result, const ImplementedBlock& block) {
  result.total_tool_runs += block.macro.tool_runs;
  if (!block.ok()) {
    ++result.failed_blocks;
    result.errors.push_back(block.error);
  } else if (block.degraded()) {
    ++result.degraded_blocks;
  }
}

/// Assemble the stitch problem over the successful blocks and run the
/// annealer. Shared tail of run_rw_flow and ModuleCache::run.
void assemble_and_stitch(RwFlowResult& result, const BlockDesign& design,
                         const Device& device, const RwFlowOptions& opts) {
  result.problem.macros.reserve(result.blocks.size());
  std::vector<int> macro_index(result.blocks.size(), -1);
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    if (!result.blocks[i].ok()) continue;
    macro_index[i] = static_cast<int>(result.problem.macros.size());
    result.problem.macros.push_back(result.blocks[i].macro);
  }
  std::vector<int> inst_map(design.instances.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    const int mi =
        macro_index[static_cast<std::size_t>(design.instances[i].macro)];
    if (mi >= 0) {
      result.problem.instances.push_back(
          BlockInstance{design.instances[i].name, mi});
      inst_map[i] = next++;
    }
  }
  // Re-map nets onto the surviving instance indices.
  for (const BlockNet& net : design.nets) {
    BlockNet mapped;
    mapped.weight = net.weight;
    for (int inst : net.instances) {
      const int m = inst_map[static_cast<std::size_t>(inst)];
      if (m >= 0) mapped.instances.push_back(m);
    }
    if (mapped.instances.size() >= 2) {
      result.problem.nets.push_back(std::move(mapped));
    }
  }
  if (opts.run_stitch && !result.problem.instances.empty()) {
    // Forward the flow token so a deadline also bounds the annealer (every
    // restart polls it through the stitcher's amortized watchdog).
    StitchOptions stitch_opts = opts.stitch;
    if (stitch_opts.cancel == nullptr) stitch_opts.cancel = opts.cancel;
    result.stitch = stitch(device, result.problem, stitch_opts);
  }
}

/// Mark every not-yet-implemented slot Cancelled (its name filled in so
/// diagnostics and checkpoints stay readable) and record the cancellation
/// in the result. Returns true when the run was cancelled.
bool finish_cancelled(RwFlowResult& result, const BlockDesign& design,
                      const std::vector<char>& done,
                      const std::vector<std::size_t>* indices,
                      const CancelToken* cancel) {
  for (std::size_t k = 0; k < done.size(); ++k) {
    if (done[k]) continue;
    const std::size_t i = indices != nullptr ? (*indices)[k] : k;
    ImplementedBlock& block = result.blocks[i];
    block = ImplementedBlock{};
    block.name = design.unique_modules[i].name;
    block.status = FlowStatus::Cancelled;
    ++result.cancelled_blocks;
  }
  result.cancelled =
      result.cancelled_blocks > 0 || (cancel != nullptr && cancel->cancelled());
  return result.cancelled;
}

}  // namespace

ImplementedBlock implement_block(const Module& module, const Device& device,
                                 double seed_cf, const RwFlowOptions& opts) {
  ImplementedBlock block;
  block.name = module.name;
  block.seed_cf = seed_cf;

  // Synthesize & optimize on a private copy (the design owns its netlists).
  Module synth = module;
  optimize(synth.netlist);
  block.report = make_report(synth.netlist);
  block.shape = quick_place(block.report);

  ToolRunner* runner = opts.search.runner;
  // Per-block delta, not a global-invocations delta: sibling blocks running
  // on other workers must not leak into this block's attempt count.
  const long invocations_before =
      runner != nullptr ? runner->invocations_for(module.name) : 0;

  const SeededSearchResult search = seeded_cf_search(
      synth, block.report, block.shape, device, seed_cf, opts.search);
  int tool_runs = search.tool_runs;

  if (search.found) {
    block.status = FlowStatus::Ok;
    block.first_run_success = search.first_run_success;
    block.macro = make_macro(module.name, device, block.report, search.cf,
                             tool_runs, search.pblock, search.place, synth,
                             opts);
  } else {
    FlowError why = search.error.failed()
                        ? search.error
                        : FlowError{FlowErrorKind::Infeasible, module.name,
                                    seed_cf, 0};
    // Graceful degradation: under an active fault model any single verdict
    // may be lying (spurious infeasible) or the retry budget may have been
    // burned by transients, so escalate once to a generous constant CF with
    // a fresh budget. Deliberately armed only when injection is enabled --
    // an unfaulted flow stays bit-identical to the historical behaviour.
    const bool degrade = opts.degrade_on_failure && runner != nullptr &&
                         runner->fault_injection_enabled();
    bool rescued = false;
    if (degrade) {
      runner->grant_fresh_budget(module.name);
      const double fallback_cf = std::min(std::max(opts.degrade_cf, seed_cf),
                                          opts.search.max_cf);
      const SeededSearchResult fallback = seeded_cf_search(
          synth, block.report, block.shape, device, fallback_cf, opts.search);
      tool_runs += fallback.tool_runs;
      if (fallback.found) {
        rescued = true;
        block.status = FlowStatus::Degraded;
        block.error = why;  // records why the primary search failed
        block.macro = make_macro(module.name, device, block.report,
                                 fallback.cf, tool_runs, fallback.pblock,
                                 fallback.place, synth, opts);
      } else {
        why = fallback.error.failed()
                  ? fallback.error
                  : FlowError{FlowErrorKind::DegradedExhausted, module.name,
                              fallback_cf, 0};
      }
    }
    if (!rescued) {
      block.status = FlowStatus::Failed;
      block.error = why;
      block.macro.tool_runs = tool_runs;
    }
  }
  if (runner != nullptr) {
    block.attempts = static_cast<int>(runner->invocations_for(module.name) -
                                      invocations_before);
  }
  return block;
}

RwFlowResult run_rw_flow(const BlockDesign& design, const Device& device,
                         const CfPolicy& policy, const RwFlowOptions& opts) {
  RwFlowResult result;

  // Per-block implement, fanned out over opts.jobs workers. Each task owns
  // one pre-sized slot; the ToolRunner (if any) is shard-locked with
  // per-block counters; nothing else is shared. Accumulation below runs
  // sequentially in unique-module order, so the result -- including error
  // order and tool-run totals -- is bit-identical at any thread count.
  result.blocks.resize(design.unique_modules.size());
  std::vector<char> done(design.unique_modules.size(), 0);
  parallel_for_each(opts.jobs, design.unique_modules.size(),
                    [&](std::size_t i) {
                      result.blocks[i] = implement_with_policy(
                          design.unique_modules[i], device, policy, opts);
                      done[i] = 1;
                    },
                    opts.cancel);
  const bool cancelled =
      finish_cancelled(result, design, done, nullptr, opts.cancel);
  for (const ImplementedBlock& block : result.blocks) {
    if (block.status == FlowStatus::Cancelled) continue;
    account_block(result, block);
  }

  // A cancelled run returns its completed blocks but no stitch: a partial
  // placement would be mistaken for a real QoR result.
  if (!cancelled) assemble_and_stitch(result, design, device, opts);
  return result;
}

const ImplementedBlock* ModuleCache::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(name);
  if (it == cache_.end()) return nullptr;
  ++hits_;
  return &it->second;
}

void ModuleCache::store(ImplementedBlock block) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  cache_[block.name] = std::move(block);
}

void ModuleCache::restore(ImplementedBlock block) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_[block.name] = std::move(block);
}

RwFlowResult ModuleCache::run(const BlockDesign& design, const Device& device,
                              const CfPolicy& policy,
                              const RwFlowOptions& opts) {
  // Split the design into cached and uncached blocks (sequential -- the
  // hit/miss counters and cache insertion order must not depend on the
  // schedule), implement the misses in parallel, then merge in block order.
  RwFlowResult result;
  result.blocks.resize(design.unique_modules.size());
  std::vector<std::size_t> miss_indices;
  for (std::size_t i = 0; i < design.unique_modules.size(); ++i) {
    if (const ImplementedBlock* cached =
            find(design.unique_modules[i].name)) {
      result.blocks[i] = *cached;
    } else {
      miss_indices.push_back(i);
    }
  }

  std::vector<char> done(miss_indices.size(), 0);
  parallel_for_each(
      opts.jobs, miss_indices.size(),
      [&](std::size_t m) {
        const Module& module = design.unique_modules[miss_indices[m]];
        double seed_cf = policy.constant_cf;
        if (policy.mode == CfPolicy::Mode::Estimator) {
          MF_CHECK(policy.estimator != nullptr &&
                   policy.estimator->trained());
          Module synth = module;
          optimize(synth.netlist);
          const ResourceReport report = make_report(synth.netlist);
          seed_cf = policy.estimator->estimate(report, quick_place(report));
        }
        result.blocks[miss_indices[m]] =
            implement_block(module, device, seed_cf, opts);
        done[m] = 1;
      },
      opts.cancel);
  const bool cancelled =
      finish_cancelled(result, design, done, &miss_indices, opts.cancel);

  // Sequential merge in unique-module order: counters, error order, and
  // cache insertions all match the jobs=1 run exactly.
  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < design.unique_modules.size(); ++i) {
    const ImplementedBlock& block = result.blocks[i];
    const bool was_miss =
        next_miss < miss_indices.size() && miss_indices[next_miss] == i;
    if (!was_miss) {
      if (block.degraded()) ++result.degraded_blocks;
      continue;
    }
    ++next_miss;
    // A cancelled slot never ran: no tool runs, no miss, nothing to cache.
    // The resumed run compiles it as a fresh miss.
    if (block.status == FlowStatus::Cancelled) continue;
    result.total_tool_runs += block.macro.tool_runs;
    if (!block.ok()) {
      ++result.failed_blocks;
      result.errors.push_back(block.error);
      // A failed implementation is compiled (a miss) but never cached:
      // caching it would pin a transient tool fault across design
      // iterations. The next run retries the block from scratch.
      std::lock_guard<std::mutex> lock(mutex_);
      ++misses_;
    } else {
      if (block.degraded()) ++result.degraded_blocks;
      store(block);
    }
  }

  // Checkpoint the cache -- including (especially) on cancellation, so a
  // cancelled run resumes with every completed block intact. The write is
  // atomic; a crash here leaves the previous checkpoint, never a torn one.
  if (!opts.checkpoint_path.empty()) {
    save_module_cache(opts.checkpoint_path, *this);
  }

  if (!cancelled) assemble_and_stitch(result, design, device, opts);
  return result;
}

}  // namespace mf
