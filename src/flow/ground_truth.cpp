#include "flow/ground_truth.hpp"

#include <map>
#include <optional>
#include <utility>

#include "common/thread_pool.hpp"
#include "synth/optimize.hpp"

namespace mf {
namespace {

bool label_one(const Module& original, const Device& device,
               const CfSearchOptions& search, LabeledModule& out) {
  Module module = original;
  optimize(module.netlist);
  out.name = module.name;
  out.report = make_report(module.netlist);
  out.shape = quick_place(out.report);
  const CfSearchResult found =
      find_min_cf(module, out.report, out.shape, device, search);
  if (!found.found) return false;
  out.min_cf = found.min_cf;
  return true;
}

}  // namespace

GroundTruth build_ground_truth(const std::vector<GenSpec>& specs,
                               const Device& device,
                               const CfSearchOptions& search, int jobs) {
  // Realize + label each spec independently (realize() seeds its own Rng
  // from the spec, so tasks share nothing), collect into spec-indexed slots,
  // then compact sequentially -- sample order and the infeasible count are
  // bit-identical at any thread count.
  std::vector<std::optional<LabeledModule>> labeled(specs.size());
  parallel_for_each(jobs, specs.size(), [&](std::size_t i) {
    const Module module = realize(specs[i]);
    LabeledModule sample;
    if (label_one(module, device, search, sample)) {
      labeled[i] = std::move(sample);
    }
  });

  GroundTruth truth;
  truth.samples.reserve(specs.size());
  for (std::optional<LabeledModule>& sample : labeled) {
    if (sample) {
      truth.samples.push_back(std::move(*sample));
    } else {
      ++truth.infeasible;
    }
  }
  return truth;
}

GroundTruth label_blocks(const BlockDesign& design, const Device& device,
                         double search_start, int min_est_slices, int jobs) {
  CfSearchOptions search;
  search.start = search_start;
  std::vector<std::optional<LabeledModule>> labeled(
      design.unique_modules.size());
  parallel_for_each(jobs, design.unique_modules.size(), [&](std::size_t i) {
    LabeledModule sample;
    if (label_one(design.unique_modules[i], device, search, sample)) {
      labeled[i] = std::move(sample);
    }
  });

  GroundTruth truth;
  truth.samples.reserve(design.unique_modules.size());
  for (std::optional<LabeledModule>& sample : labeled) {
    if (!sample) {
      ++truth.infeasible;
      continue;
    }
    if (sample->report.est_slices < min_est_slices) continue;
    truth.samples.push_back(std::move(*sample));
  }
  return truth;
}

std::vector<LabeledModule> merge_ground_truth_shards(
    std::vector<std::vector<LabeledModule>> shard_samples,
    const std::vector<std::string>& order, ShardMergeStats* stats) {
  ShardMergeStats local;
  local.shards = static_cast<int>(shard_samples.size());

  // First pass: key -> winning sample. Shards are visited in index order and
  // the first claim of a key wins, which makes the winner the lowest shard
  // index (and, within a shard, the earliest occurrence) by construction.
  std::map<std::string, LabeledModule*> winners;
  std::map<std::string, std::size_t> known_order;
  for (std::size_t i = 0; i < order.size(); ++i) known_order.emplace(order[i], i);
  for (std::size_t shard = 0; shard < shard_samples.size(); ++shard) {
    for (LabeledModule& sample : shard_samples[shard]) {
      if (known_order.find(sample.name) == known_order.end()) {
        ++local.unknown_dropped;
        local.warnings.push_back("shard " + std::to_string(shard) +
                                 ": unknown module key '" + sample.name +
                                 "' dropped");
        continue;
      }
      const auto [it, inserted] = winners.emplace(sample.name, &sample);
      if (!inserted) {
        ++local.duplicates_dropped;
        local.warnings.push_back(
            "duplicate module key '" + sample.name + "' in shard " +
            std::to_string(shard) + " dropped (lowest shard index wins)");
      }
    }
  }

  // Second pass: emit in the global order a single-process run would have
  // used, so the merged dataset serialises byte-identically to it.
  std::vector<LabeledModule> merged;
  merged.reserve(winners.size());
  for (const std::string& key : order) {
    const auto it = winners.find(key);
    if (it == winners.end()) continue;  // infeasible or quarantined
    merged.push_back(std::move(*it->second));
  }
  local.samples = static_cast<long>(merged.size());
  if (stats != nullptr) *stats = std::move(local);
  return merged;
}

}  // namespace mf
