#include "flow/ground_truth.hpp"

#include "synth/optimize.hpp"

namespace mf {
namespace {

bool label_one(const Module& original, const Device& device,
               const CfSearchOptions& search, LabeledModule& out) {
  Module module = original;
  optimize(module.netlist);
  out.name = module.name;
  out.report = make_report(module.netlist);
  out.shape = quick_place(out.report);
  const CfSearchResult found =
      find_min_cf(module, out.report, out.shape, device, search);
  if (!found.found) return false;
  out.min_cf = found.min_cf;
  return true;
}

}  // namespace

GroundTruth build_ground_truth(const std::vector<GenSpec>& specs,
                               const Device& device,
                               const CfSearchOptions& search) {
  GroundTruth truth;
  truth.samples.reserve(specs.size());
  for (const GenSpec& spec : specs) {
    const Module module = realize(spec);
    LabeledModule sample;
    if (label_one(module, device, search, sample)) {
      truth.samples.push_back(std::move(sample));
    } else {
      ++truth.infeasible;
    }
  }
  return truth;
}

GroundTruth label_blocks(const BlockDesign& design, const Device& device,
                         double search_start, int min_est_slices) {
  CfSearchOptions search;
  search.start = search_start;
  GroundTruth truth;
  truth.samples.reserve(design.unique_modules.size());
  for (const Module& module : design.unique_modules) {
    LabeledModule sample;
    if (!label_one(module, device, search, sample)) {
      ++truth.infeasible;
      continue;
    }
    if (sample.report.est_slices < min_est_slices) continue;
    truth.samples.push_back(std::move(sample));
  }
  return truth;
}

}  // namespace mf
