#pragma once
// Estimator feature extraction (Sections VI-B and VII).
//
// Four feature sets match the paper's Table II columns:
//   Classical       -- raw synthesis counts: LUTs, CLBMs (M slices), FFs,
//                      control sets, carry elements, max fanout;
//   ClassicalStar   -- Classical + quick-placement shape features
//                      ("Classical Features with Placement Features");
//   Additional      -- hand-crafted *relative* features, size-invariant:
//                      Carry/All, CLBM/All, FF/All, density, control sets
//                      per FF slice, fanout per cell;
//   All             -- union of the above.
// LinReg9 is the nine-input set Section VI-B feeds the linear regression.

#include <string>
#include <vector>

#include "place/quick_placer.hpp"
#include "synth/report.hpp"

namespace mf {

enum class FeatureSet : int {
  Classical,
  ClassicalStar,
  Additional,
  All,
  LinReg9,
};

[[nodiscard]] const char* to_string(FeatureSet set) noexcept;

/// Human-readable names, index-aligned with extract_features().
std::vector<std::string> feature_names(FeatureSet set);

/// Extract the feature vector for one module.
std::vector<double> extract_features(FeatureSet set,
                                     const ResourceReport& report,
                                     const ShapeReport& shape);

}  // namespace mf
