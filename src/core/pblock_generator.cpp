#include "core/pblock_generator.hpp"

#include <algorithm>
#include <cmath>

namespace mf {
namespace {

/// Needs that a candidate rectangle must cover. The CF scales the slice
/// demand *including* the M-slice share (RapidWright applies the factor to
/// the resource counts); hard-block needs are absolute -- sites cannot be
/// padded, which is why hard-block-dominated modules stop responding to the
/// CF (Figure 4's sub-0.7 bins).
FabricResources needs_of(const ResourceReport& report, double cf) {
  FabricResources needs;
  needs.slices = std::max(
      1, static_cast<int>(std::ceil(report.est_slices * cf)));
  needs.slices_m = static_cast<int>(
      std::ceil(report.est_slices_m * std::max(1.0, cf)));
  needs.bram36 = report.bram36;
  needs.dsp = report.dsp;
  return needs;
}

}  // namespace

PBlockDims pblock_dims(const ResourceReport& report, const ShapeReport& shape,
                       double cf, const Device& device) {
  const int target = std::max(
      1, static_cast<int>(std::ceil(report.est_slices * cf)));
  // Constant aspect: W/H == shape.aspect(), W*H ~= target.
  int height = static_cast<int>(std::ceil(
      std::sqrt(static_cast<double>(target) / std::max(shape.aspect(), 1e-6))));
  height = std::max(height, shape.min_height);
  height = std::min(height, device.rows());
  int width = (target + height - 1) / height;
  return PBlockDims{std::max(width, 1), height};
}

std::optional<PBlock> generate_pblock(const Device& device,
                                      const ResourceReport& report,
                                      const ShapeReport& shape, double cf,
                                      const PBlockGenOptions& opts) {
  const FabricResources needs = needs_of(report, cf);
  PBlockDims dims = pblock_dims(report, shape, cf, device);

  // Hard-block needs can force a taller rectangle than the slice target
  // suggests: each BRAM/DSP column supplies one site pitch per kBramRowPitch
  // rows, so a single column must span at least this many rows.
  const int hard_rows =
      std::max(needs.bram36,
               (needs.dsp + kDspPerPitch - 1) / kDspPerPitch) *
      kBramRowPitch;
  if (hard_rows > dims.height) {
    dims.height = std::min(hard_rows + 1, device.rows());
  }

  // Widen until some anchor covers all needs (widening is how the generator
  // picks up extra M / BRAM / DSP columns while the aspect stays fixed for
  // the slice part).
  for (int width = dims.width; width <= device.num_columns(); ++width) {
    // Slide the rectangle over all anchors, preferring the requested one.
    for (int row0 = opts.anchor_row;
         row0 + dims.height <= device.rows(); ++row0) {
      // Running resource count over a sliding column window.
      const int row_hi = row0 + dims.height - 1;
      FabricResources window;
      int lo = 0;
      auto add_col = [&](int c, int sign) {
        switch (device.column(c)) {
          case ColumnKind::ClbL:
            window.slices += sign * dims.height;
            break;
          case ColumnKind::ClbM:
            window.slices += sign * dims.height;
            window.slices_m += sign * dims.height;
            break;
          case ColumnKind::Bram:
            window.bram36 += sign * Device::bram_sites_in_rows(row0, row_hi);
            break;
          case ColumnKind::Dsp:
            window.dsp += sign * Device::dsp_sites_in_rows(row0, row_hi);
            break;
          case ColumnKind::Clock:
            break;
        }
      };
      for (int c = 0; c < width && c < device.num_columns(); ++c) {
        add_col(c, +1);
      }
      PBlock best{};
      double best_score = 0.0;
      for (int hi = width - 1; hi < device.num_columns(); ++hi) {
        if (hi >= width) {
          add_col(hi, +1);
          add_col(lo, -1);
          ++lo;
        }
        if (lo < opts.anchor_col || !window.covers(needs)) continue;
        if (opts.policy == AnchorPolicy::FirstFit) {
          return PBlock{lo, hi, row0, row_hi};
        }
        // MinWaste: surplus slices are mild waste; hard-block sites covered
        // but unused are expensive (they sterilise BRAM/DSP columns for the
        // rest of the design and shrink the macro's relocation freedom).
        const double score =
            (window.slices - needs.slices) +
            25.0 * std::max(0, window.bram36 - needs.bram36) +
            25.0 * std::max(0, window.dsp - needs.dsp);
        if (best.empty() || score < best_score) {
          best = PBlock{lo, hi, row0, row_hi};
          best_score = score;
        }
      }
      if (!best.empty()) return best;
    }
    // Do not loop over widths forever when the height already spans the
    // device and the widest window failed: full-width failed => impossible.
    if (width == device.num_columns()) break;
  }
  return std::nullopt;
}

}  // namespace mf
