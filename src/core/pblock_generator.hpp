#pragma once
// PBlock generation -- the Figure 1 algorithm.
//
// Given synthesis resource counts and the quick-placement shape report, the
// generator sizes a rectangle whose slice count is `est_slices * CF`, keeps
// the shape report's aspect ratio and carry-chain minimum height constant
// (RapidWright's "constant PBlocks aspect ratio, W/L"), and then slides it
// over the device to the first anchor whose column mix also satisfies the
// M-slice / BRAM / DSP needs. Because hard-block needs can force a rectangle
// larger than `est_slices * CF`, small CFs stop changing the PBlock for
// hard-block-dominated modules -- the paper's explanation for the sub-0.7
// bins of Figure 4.

#include <optional>

#include "fabric/device.hpp"
#include "place/quick_placer.hpp"
#include "synth/report.hpp"

namespace mf {

/// How the generator picks among the anchor positions that cover the needs.
/// The paper leaves PBlock *position* to future work ("their position is not
/// studied here"); MinWaste implements the obvious next step: prefer windows
/// that waste no hard-block columns the module does not use -- such windows
/// also relocate to more places during stitching.
enum class AnchorPolicy : int {
  FirstFit,  ///< leftmost covering window (the baseline behaviour)
  MinWaste,  ///< minimise surplus slices + unneeded BRAM/DSP columns
};

struct PBlockGenOptions {
  /// Preferred top-left anchor; the generator scans right/down from here.
  int anchor_col = 0;
  int anchor_row = 0;
  AnchorPolicy policy = AnchorPolicy::FirstFit;
};

/// Build the PBlock for `report` at correction factor `cf`; nullopt when no
/// position on `device` satisfies the resource needs at any width.
std::optional<PBlock> generate_pblock(const Device& device,
                                      const ResourceReport& report,
                                      const ShapeReport& shape, double cf,
                                      const PBlockGenOptions& opts = {});

/// The rectangle dimensions Figure 1 derives before anchoring: height from
/// the aspect ratio (respecting the carry minimum), width from the slice
/// target. Exposed for tests and the resolution study.
struct PBlockDims {
  int width = 1;
  int height = 1;
};
PBlockDims pblock_dims(const ResourceReport& report, const ShapeReport& shape,
                       double cf, const Device& device);

}  // namespace mf
