#include "core/cf_search.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mf {
namespace {

/// One feasibility check: generate the PBlock at `cf` and try to place the
/// module inside it. `attempt == nullopt` with `error.failed()` means the
/// tool-run layer gave up on the check; plain nullopt means no PBlock exists
/// at this CF at all (not a tool run).
struct Attempt {
  PBlock pblock;
  PlaceResult place;
};

struct AttemptResult {
  std::optional<Attempt> attempt;
  FlowError error;
};

AttemptResult attempt_cf(const Module& module, const ResourceReport& report,
                         const ShapeReport& shape, const Device& device,
                         double cf, const CfSearchOptions& opts) {
  AttemptResult result;
  const std::optional<PBlock> pb =
      generate_pblock(device, report, shape, cf, opts.pblock);
  if (!pb) return result;
  if (opts.runner != nullptr) {
    ToolRunner::CheckOutcome out = opts.runner->run_check(
        module.name, cf,
        [&] { return place_in_pblock(module, report, device, *pb, opts.place); });
    if (!out.completed) {
      result.error = std::move(out.error);
      return result;
    }
    result.attempt = Attempt{*pb, std::move(out.place)};
    return result;
  }
  result.attempt =
      Attempt{*pb, place_in_pblock(module, report, device, *pb, opts.place)};
  return result;
}

}  // namespace

CfSearchResult find_min_cf(const Module& module, const ResourceReport& report,
                           const ShapeReport& shape, const Device& device,
                           const CfSearchOptions& opts) {
  MF_CHECK_MSG(opts.step > 0.0, "CF search step must be positive");
  MF_CHECK_MSG(opts.max_cf >= opts.start,
               "CF search range is empty: max_cf must be >= start");
  CfSearchResult result;
  PBlock last_tried;
  bool last_feasible = false;

  for (double cf = opts.start; cf <= opts.max_cf + 1e-9; cf += opts.step) {
    const std::optional<PBlock> pb =
        generate_pblock(device, report, shape, cf, opts.pblock);
    if (!pb) continue;  // no rectangle at this CF (device too small)
    if (opts.dedupe_pblocks && !last_tried.empty() && *pb == last_tried) {
      if (last_feasible) {
        // Unreachable in the upward sweep (we stop at first success), but
        // kept for safety with custom callers.
        result.min_cf = cf;
        return result;
      }
      continue;
    }
    last_tried = *pb;
    PlaceResult place;
    if (opts.runner != nullptr) {
      ToolRunner::CheckOutcome out = opts.runner->run_check(
          module.name, cf, [&] {
            return place_in_pblock(module, report, device, *pb, opts.place);
          });
      if (!out.completed) {
        result.error = std::move(out.error);
        return result;
      }
      place = std::move(out.place);
    } else {
      place = place_in_pblock(module, report, device, *pb, opts.place);
    }
    ++result.tool_runs;
    last_feasible = place.feasible;
    if (place.feasible) {
      result.found = true;
      result.min_cf = cf;
      result.pblock = *pb;
      result.place = std::move(place);
      return result;
    }
  }
  return result;
}

SeededSearchResult seeded_cf_search(const Module& module,
                                    const ResourceReport& report,
                                    const ShapeReport& shape,
                                    const Device& device, double seed_cf,
                                    const CfSearchOptions& opts) {
  MF_CHECK_MSG(opts.step > 0.0, "CF search step must be positive");
  MF_CHECK_MSG(seed_cf > 0.0, "seed CF must be positive");
  MF_CHECK_MSG(seed_cf <= opts.max_cf + 1e-9,
               "seed CF above max_cf: the search could never refine past the "
               "cap -- raise max_cf or fix the seed");
  SeededSearchResult result;

  // First run at the seed. Counting note: like the seed implementation, the
  // seeded search counts every *attempt* as a tool run (a no-PBlock attempt
  // still launched the tool); only an attempt the runner aborted without a
  // verdict is uncounted.
  AttemptResult first = attempt_cf(module, report, shape, device, seed_cf, opts);
  if (first.error.failed()) {
    result.error = std::move(first.error);
    return result;
  }
  ++result.tool_runs;
  if (first.attempt && first.attempt->place.feasible) {
    result.found = true;
    result.first_run_success = true;
    result.cf = seed_cf;
    result.pblock = first.attempt->pblock;
    result.place = std::move(first.attempt->place);
    return result;
  }

  // Coarse upward steps of 0.1.
  double lo = seed_cf;
  double hi = seed_cf;
  std::optional<Attempt> feasible;
  for (double cf = seed_cf + 0.1; cf <= opts.max_cf + 1e-9; cf += 0.1) {
    AttemptResult attempt =
        attempt_cf(module, report, shape, device, cf, opts);
    if (attempt.error.failed()) {
      result.error = std::move(attempt.error);
      return result;
    }
    ++result.tool_runs;
    if (attempt.attempt && attempt.attempt->place.feasible) {
      hi = cf;
      feasible = std::move(attempt.attempt);
      break;
    }
    lo = cf;
  }
  if (!feasible) return result;

  // Refine (lo, hi] at the fine resolution; keep the smallest feasible CF.
  for (double cf = lo + opts.step; cf < hi - 1e-9; cf += opts.step) {
    AttemptResult attempt =
        attempt_cf(module, report, shape, device, cf, opts);
    if (attempt.error.failed()) {
      result.error = std::move(attempt.error);
      return result;
    }
    ++result.tool_runs;
    if (attempt.attempt && attempt.attempt->place.feasible) {
      result.found = true;
      result.cf = cf;
      result.pblock = attempt.attempt->pblock;
      result.place = std::move(attempt.attempt->place);
      return result;
    }
  }
  result.found = true;
  result.cf = hi;
  result.pblock = feasible->pblock;
  result.place = std::move(feasible->place);
  return result;
}

}  // namespace mf
