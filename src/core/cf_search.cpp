#include "core/cf_search.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mf {
namespace {

/// One feasibility check: generate the PBlock at `cf` and try to place the
/// module inside it. Returns nullopt when no PBlock exists at all.
struct Attempt {
  PBlock pblock;
  PlaceResult place;
};

std::optional<Attempt> attempt_cf(const Module& module,
                                  const ResourceReport& report,
                                  const ShapeReport& shape,
                                  const Device& device, double cf,
                                  const CfSearchOptions& opts) {
  const std::optional<PBlock> pb =
      generate_pblock(device, report, shape, cf, opts.pblock);
  if (!pb) return std::nullopt;
  Attempt attempt;
  attempt.pblock = *pb;
  attempt.place = place_in_pblock(module, report, device, *pb, opts.place);
  return attempt;
}

}  // namespace

CfSearchResult find_min_cf(const Module& module, const ResourceReport& report,
                           const ShapeReport& shape, const Device& device,
                           const CfSearchOptions& opts) {
  MF_CHECK(opts.step > 0.0);
  CfSearchResult result;
  PBlock last_tried;
  bool last_feasible = false;

  for (double cf = opts.start; cf <= opts.max_cf + 1e-9; cf += opts.step) {
    const std::optional<PBlock> pb =
        generate_pblock(device, report, shape, cf, opts.pblock);
    if (!pb) continue;  // no rectangle at this CF (device too small)
    if (opts.dedupe_pblocks && !last_tried.empty() && *pb == last_tried) {
      if (last_feasible) {
        // Unreachable in the upward sweep (we stop at first success), but
        // kept for safety with custom callers.
        result.min_cf = cf;
        return result;
      }
      continue;
    }
    last_tried = *pb;
    ++result.tool_runs;
    PlaceResult place = place_in_pblock(module, report, device, *pb,
                                        opts.place);
    last_feasible = place.feasible;
    if (place.feasible) {
      result.found = true;
      result.min_cf = cf;
      result.pblock = *pb;
      result.place = std::move(place);
      return result;
    }
  }
  return result;
}

SeededSearchResult seeded_cf_search(const Module& module,
                                    const ResourceReport& report,
                                    const ShapeReport& shape,
                                    const Device& device, double seed_cf,
                                    const CfSearchOptions& opts) {
  SeededSearchResult result;

  // First run at the seed.
  std::optional<Attempt> first =
      attempt_cf(module, report, shape, device, seed_cf, opts);
  ++result.tool_runs;
  if (first && first->place.feasible) {
    result.found = true;
    result.first_run_success = true;
    result.cf = seed_cf;
    result.pblock = first->pblock;
    result.place = std::move(first->place);
    return result;
  }

  // Coarse upward steps of 0.1.
  double lo = seed_cf;
  double hi = seed_cf;
  std::optional<Attempt> feasible;
  for (double cf = seed_cf + 0.1; cf <= opts.max_cf + 1e-9; cf += 0.1) {
    std::optional<Attempt> attempt =
        attempt_cf(module, report, shape, device, cf, opts);
    ++result.tool_runs;
    if (attempt && attempt->place.feasible) {
      hi = cf;
      feasible = std::move(attempt);
      break;
    }
    lo = cf;
  }
  if (!feasible) return result;

  // Refine (lo, hi] at the fine resolution; keep the smallest feasible CF.
  for (double cf = lo + opts.step; cf < hi - 1e-9; cf += opts.step) {
    std::optional<Attempt> attempt =
        attempt_cf(module, report, shape, device, cf, opts);
    ++result.tool_runs;
    if (attempt && attempt->place.feasible) {
      result.found = true;
      result.cf = cf;
      result.pblock = attempt->pblock;
      result.place = std::move(attempt->place);
      return result;
    }
  }
  result.found = true;
  result.cf = hi;
  result.pblock = feasible->pblock;
  result.place = std::move(feasible->place);
  return result;
}

}  // namespace mf
