#include "core/features.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mf {
namespace {

std::vector<std::string> classical_names() {
  return {"LUTs", "CLBMs", "FFs", "ControlSets", "Carry", "MaxFanout"};
}

std::vector<double> classical_values(const ResourceReport& r) {
  return {static_cast<double>(r.stats.luts + r.stats.m_lut_cells()),
          static_cast<double>(r.est_slices_m),
          static_cast<double>(r.stats.ffs),
          static_cast<double>(r.stats.control_sets),
          static_cast<double>(r.stats.carry4),
          static_cast<double>(r.stats.max_fanout)};
}

std::vector<std::string> placement_names() {
  return {"ShapeArea", "ShapeAspect"};
}

std::vector<double> placement_values(const ShapeReport& s) {
  return {static_cast<double>(s.area()), s.aspect()};
}

std::vector<std::string> additional_names() {
  return {"Carry/All", "CLBM/All", "FF/All",
          "Density",   "CS/FFsl",  "Fanout/Cells"};
}

std::vector<double> additional_values(const ResourceReport& r) {
  const double all = std::max(1, r.est_slices);
  const double carry_ratio = r.slices_for_carry / all;
  const double m_ratio = r.est_slices_m / all;
  const double ff_ratio = r.slices_for_ffs / all;
  // Density (Section V-E): total per-class slice demand relative to the
  // estimate. The estimate is the max of the three classes, so a value near
  // 1 means one class dominates (easy packing) while values towards 3 mean
  // LUTs, FFs and carry all fill the same slices and compete for them.
  const double density =
      (static_cast<double>(r.slices_for_luts) + r.slices_for_ffs +
       r.slices_for_carry) /
      all;
  const double ff_slices = std::max(1, r.slices_for_ffs);
  const double cs_per_ff_slice = r.stats.control_sets / ff_slices;
  const double fanout_per_cell =
      static_cast<double>(r.stats.max_fanout) / std::max(1, r.stats.cells);
  return {carry_ratio, m_ratio,        ff_ratio,
          density,     cs_per_ff_slice, fanout_per_cell};
}

template <typename T>
void append(std::vector<T>& into, std::vector<T> from) {
  into.insert(into.end(), std::make_move_iterator(from.begin()),
              std::make_move_iterator(from.end()));
}

}  // namespace

const char* to_string(FeatureSet set) noexcept {
  switch (set) {
    case FeatureSet::Classical:
      return "Classical";
    case FeatureSet::ClassicalStar:
      return "Classical*";
    case FeatureSet::Additional:
      return "Additional";
    case FeatureSet::All:
      return "All";
    case FeatureSet::LinReg9:
      return "LinReg9";
  }
  return "?";
}

std::vector<std::string> feature_names(FeatureSet set) {
  std::vector<std::string> names;
  switch (set) {
    case FeatureSet::Classical:
      names = classical_names();
      break;
    case FeatureSet::ClassicalStar:
      names = classical_names();
      append(names, placement_names());
      break;
    case FeatureSet::Additional:
      names = additional_names();
      break;
    case FeatureSet::All:
      names = classical_names();
      append(names, placement_names());
      append(names, additional_names());
      break;
    case FeatureSet::LinReg9:
      names = {"MaxFanout", "ControlSets", "Density",
               "CLBM/All",  "Carry/All",   "ShapeW",
               "ShapeH",    "ShapeArea",   "ShapeAspect"};
      break;
  }
  return names;
}

std::vector<double> extract_features(FeatureSet set,
                                     const ResourceReport& report,
                                     const ShapeReport& shape) {
  std::vector<double> values;
  switch (set) {
    case FeatureSet::Classical:
      values = classical_values(report);
      break;
    case FeatureSet::ClassicalStar:
      values = classical_values(report);
      append(values, placement_values(shape));
      break;
    case FeatureSet::Additional:
      values = additional_values(report);
      break;
    case FeatureSet::All:
      values = classical_values(report);
      append(values, placement_values(shape));
      append(values, additional_values(report));
      break;
    case FeatureSet::LinReg9: {
      const std::vector<double> rel = additional_values(report);
      values = {static_cast<double>(report.stats.max_fanout),
                static_cast<double>(report.stats.control_sets),
                rel[3],  // density
                rel[1],  // m ratio
                rel[0],  // carry ratio
                static_cast<double>(shape.bbox_w),
                static_cast<double>(shape.bbox_h),
                static_cast<double>(shape.area()),
                shape.aspect()};
      break;
    }
  }
  MF_CHECK(values.size() == feature_names(set).size());
  return values;
}

}  // namespace mf
