#pragma once
// Correction-factor search loops.
//
// Two searches from the paper:
//  * find_min_cf      -- ground truth: sweep the CF upward at a fixed
//                        resolution until place-and-route inside the PBlock
//                        succeeds (Section VII: start 0.9, step 0.02; the
//                        Figure 4 study uses a lower start to expose the
//                        hard-block-dominated bins).
//  * seeded_cf_search -- production flow (Section VIII): run once at the
//                        estimator's CF; on failure step up coarsely (+0.1)
//                        until feasible, then refine the last interval at
//                        0.02. Every feasibility check is one "tool run",
//                        the cost metric the paper compares against a
//                        constant-CF=0.9 search (which needs 1.8x more).

#include <optional>

#include "core/pblock_generator.hpp"
#include "flow/tool_run.hpp"
#include "place/detailed_placer.hpp"
#include "place/quick_placer.hpp"

namespace mf {

struct CfSearchOptions {
  double start = 0.9;
  double step = 0.02;
  double max_cf = 3.0;  ///< search abandoned past this factor
  DetailedPlaceOptions place;
  PBlockGenOptions pblock;
  /// Skip re-running placement when the CF step produced an identical
  /// PBlock (pure speed-up; results are unchanged). Disabled when counting
  /// tool runs the way the paper does.
  bool dedupe_pblocks = true;
  /// Optional fault-tolerant tool-run layer. When set, every feasibility
  /// check routes through it (fault injection + retry/backoff); when the
  /// runner gives up on a check, the search aborts with `error` set. A null
  /// runner reproduces the historical infallible-tool behaviour exactly.
  ToolRunner* runner = nullptr;
};

struct CfSearchResult {
  bool found = false;
  double min_cf = 0.0;
  int tool_runs = 0;       ///< feasibility checks actually executed
  PBlock pblock;           ///< PBlock at min_cf (valid when found)
  PlaceResult place;       ///< placement at min_cf (valid when found)
  FlowError error;         ///< persistent tool failure that aborted the search
};

/// Minimal feasible CF by upward sweep.
CfSearchResult find_min_cf(const Module& module, const ResourceReport& report,
                           const ShapeReport& shape, const Device& device,
                           const CfSearchOptions& opts = {});

struct SeededSearchResult {
  bool found = false;
  double cf = 0.0;             ///< CF actually used for the implementation
  bool first_run_success = false;
  int tool_runs = 0;
  PBlock pblock;
  PlaceResult place;
  FlowError error;             ///< persistent tool failure that aborted the search
};

/// Estimator-seeded search (Section VIII). `seed_cf` is the estimator's
/// prediction (or a constant like 0.9 for the baseline). Fails fast (throws
/// CheckError) on contradictory options: `step <= 0`, or a `seed_cf` outside
/// `(0, max_cf]` -- a seed above the cap could never refine and used to burn
/// one attempt before silently returning `found = false`.
SeededSearchResult seeded_cf_search(const Module& module,
                                    const ResourceReport& report,
                                    const ShapeReport& shape,
                                    const Device& device, double seed_cf,
                                    const CfSearchOptions& opts = {});

}  // namespace mf
