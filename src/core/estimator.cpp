#include "core/estimator.hpp"

#include "common/check.hpp"
#include "ml/model_io.hpp"

namespace mf {

Dataset make_dataset(FeatureSet set,
                     const std::vector<LabeledModule>& samples) {
  Dataset data;
  data.feature_names = feature_names(set);
  for (const LabeledModule& sample : samples) {
    data.add(extract_features(set, sample.report, sample.shape),
             sample.min_cf, sample.name);
  }
  return data;
}

const char* to_string(EstimatorKind kind) noexcept {
  switch (kind) {
    case EstimatorKind::LinearRegression:
      return "LinearRegression";
    case EstimatorKind::NeuralNetwork:
      return "NeuralNetwork";
    case EstimatorKind::DecisionTree:
      return "DecisionTree";
    case EstimatorKind::RandomForest:
      return "RandomForest";
    case EstimatorKind::GradientBoosting:
      return "GradientBoosting";
  }
  return "?";
}

std::optional<EstimatorKind> estimator_kind_from_string(
    const std::string& text) {
  const EstimatorKind kinds[] = {
      EstimatorKind::LinearRegression, EstimatorKind::NeuralNetwork,
      EstimatorKind::DecisionTree, EstimatorKind::RandomForest,
      EstimatorKind::GradientBoosting,
  };
  for (EstimatorKind kind : kinds) {
    if (text == to_string(kind)) return kind;
  }
  if (text == "linreg") return EstimatorKind::LinearRegression;
  if (text == "mlp") return EstimatorKind::NeuralNetwork;
  if (text == "dtree") return EstimatorKind::DecisionTree;
  if (text == "rforest") return EstimatorKind::RandomForest;
  if (text == "gboost") return EstimatorKind::GradientBoosting;
  return std::nullopt;
}

CfEstimator::CfEstimator(EstimatorKind kind, FeatureSet features,
                         Options options)
    : kind_(kind), features_(features), options_(options) {
  switch (kind_) {
    case EstimatorKind::LinearRegression:
      model_ = LinearRegression(options_.linreg_ridge);
      break;
    case EstimatorKind::NeuralNetwork:
      model_ = Mlp();
      break;
    case EstimatorKind::DecisionTree:
      model_ = DecisionTree();
      break;
    case EstimatorKind::RandomForest:
      model_ = RandomForest();
      break;
    case EstimatorKind::GradientBoosting:
      model_ = GradientBoosting();
      break;
  }
}

void CfEstimator::train(const Dataset& data) {
  MF_CHECK(data.size() > 0);
  MF_CHECK_MSG(data.dim() == feature_names(features_).size(),
               "dataset feature set mismatch");
  switch (kind_) {
    case EstimatorKind::LinearRegression:
      std::get<LinearRegression>(model_).fit(data.x, data.y);
      break;
    case EstimatorKind::NeuralNetwork:
      std::get<Mlp>(model_).fit(data.x, data.y, options_.mlp);
      break;
    case EstimatorKind::DecisionTree: {
      Rng rng(options_.seed);
      std::get<DecisionTree>(model_).fit(data.x, data.y, options_.dtree, rng);
      break;
    }
    case EstimatorKind::RandomForest:
      std::get<RandomForest>(model_).fit(data.x, data.y, options_.rforest);
      break;
    case EstimatorKind::GradientBoosting:
      std::get<GradientBoosting>(model_).fit(data.x, data.y, options_.gboost);
      break;
  }
  trained_ = true;
}

double CfEstimator::predict_row(const std::vector<double>& row) const {
  MF_CHECK_MSG(trained_, "estimator not trained");
  return std::visit([&](const auto& model) { return model.predict(row); },
                    model_);
}

std::vector<double> CfEstimator::predict_rows(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict_row(row));
  return out;
}

double CfEstimator::estimate(const ResourceReport& report,
                             const ShapeReport& shape) const {
  return predict_row(extract_features(features_, report, shape));
}

namespace {

void save_options(ModelWriter& out, const CfEstimator::Options& o) {
  out.i64(o.dtree.max_depth);
  out.i64(o.dtree.min_samples_leaf);
  out.i64(o.dtree.mtry);
  out.i64(o.rforest.trees);
  out.i64(o.rforest.max_depth);
  out.i64(o.rforest.min_samples_leaf);
  out.i64(o.rforest.mtry);
  out.u64(o.rforest.seed);
  out.i64(o.mlp.hidden);
  out.i64(o.mlp.epochs);
  out.i64(o.mlp.batch_size);
  out.f64(o.mlp.learning_rate);
  out.f64(o.mlp.adam_beta1);
  out.f64(o.mlp.adam_beta2);
  out.f64(o.mlp.adam_eps);
  out.u64(o.mlp.seed);
  out.i64(o.gboost.rounds);
  out.i64(o.gboost.max_depth);
  out.i64(o.gboost.min_samples_leaf);
  out.f64(o.gboost.learning_rate);
  out.f64(o.gboost.subsample);
  out.u64(o.gboost.seed);
  out.f64(o.linreg_ridge);
  out.u64(o.seed);
  out.endl();
}

CfEstimator::Options load_options(ModelReader& in) {
  // jobs knobs are machine-local execution policy, not model state: they
  // are not serialised and keep their compile-time default on load.
  CfEstimator::Options o;
  o.dtree.max_depth = static_cast<int>(in.i64_in(1, 1 << 20));
  o.dtree.min_samples_leaf = static_cast<int>(in.i64_in(1, 1 << 20));
  o.dtree.mtry = static_cast<int>(in.i64_in(0, 1 << 20));
  o.rforest.trees = static_cast<int>(in.i64_in(1, 1 << 20));
  o.rforest.max_depth = static_cast<int>(in.i64_in(1, 1 << 20));
  o.rforest.min_samples_leaf = static_cast<int>(in.i64_in(1, 1 << 20));
  o.rforest.mtry = static_cast<int>(in.i64_in(0, 1 << 20));
  o.rforest.seed = in.u64();
  o.mlp.hidden = static_cast<int>(in.i64_in(1, 1 << 20));
  o.mlp.epochs = static_cast<int>(in.i64_in(1, 1 << 20));
  o.mlp.batch_size = static_cast<int>(in.i64_in(1, 1 << 20));
  o.mlp.learning_rate = in.f64();
  o.mlp.adam_beta1 = in.f64();
  o.mlp.adam_beta2 = in.f64();
  o.mlp.adam_eps = in.f64();
  o.mlp.seed = in.u64();
  o.gboost.rounds = static_cast<int>(in.i64_in(1, 1 << 20));
  o.gboost.max_depth = static_cast<int>(in.i64_in(1, 1 << 20));
  o.gboost.min_samples_leaf = static_cast<int>(in.i64_in(1, 1 << 20));
  o.gboost.learning_rate = in.f64();
  o.gboost.subsample = in.f64();
  o.gboost.seed = in.u64();
  o.linreg_ridge = in.f64();
  o.seed = in.u64();
  return o;
}

}  // namespace

void CfEstimator::save(ModelWriter& out) const {
  MF_CHECK_MSG(trained_, "only trained estimators can be saved");
  out.str(to_string(kind_));
  out.str(to_string(features_));
  out.endl();
  save_options(out, options_);
  std::visit([&](const auto& model) { model.save(out); }, model_);
}

std::optional<CfEstimator> CfEstimator::load(ModelReader& in) {
  const std::optional<EstimatorKind> kind =
      estimator_kind_from_string(in.str());
  const std::string set_name = in.str();
  std::optional<FeatureSet> features;
  for (FeatureSet set :
       {FeatureSet::Classical, FeatureSet::ClassicalStar,
        FeatureSet::Additional, FeatureSet::All, FeatureSet::LinReg9}) {
    if (set_name == to_string(set)) features = set;
  }
  if (!in.ok() || !kind || !features) {
    in.fail();
    return std::nullopt;
  }
  CfEstimator estimator(*kind, *features, load_options(in));
  std::visit([&](auto& model) { model.load(in); }, estimator.model_);
  if (!in.ok()) return std::nullopt;
  // The fitted model must accept exactly this feature set's input width.
  const std::size_t dim = feature_names(*features).size();
  const bool dim_ok = std::visit(
      [&](const auto& model) {
        using M = std::decay_t<decltype(model)>;
        if constexpr (std::is_same_v<M, LinearRegression>) {
          return model.weights().size() == dim + 1;
        } else if constexpr (std::is_same_v<M, Mlp>) {
          return model.in_dim() == static_cast<int>(dim);
        } else {
          return model.feature_importance().size() == dim;
        }
      },
      estimator.model_);
  if (!dim_ok) {
    in.fail();
    return std::nullopt;
  }
  estimator.trained_ = true;
  return estimator;
}

std::vector<double> CfEstimator::feature_importance() const {
  MF_CHECK_MSG(trained_, "estimator not trained");
  if (const auto* tree = std::get_if<DecisionTree>(&model_)) {
    return tree->feature_importance();
  }
  if (const auto* forest = std::get_if<RandomForest>(&model_)) {
    return forest->feature_importance();
  }
  if (const auto* gb = std::get_if<GradientBoosting>(&model_)) {
    return gb->feature_importance();
  }
  return {};
}

}  // namespace mf
