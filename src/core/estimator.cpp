#include "core/estimator.hpp"

#include "common/check.hpp"

namespace mf {

Dataset make_dataset(FeatureSet set,
                     const std::vector<LabeledModule>& samples) {
  Dataset data;
  data.feature_names = feature_names(set);
  for (const LabeledModule& sample : samples) {
    data.add(extract_features(set, sample.report, sample.shape),
             sample.min_cf, sample.name);
  }
  return data;
}

const char* to_string(EstimatorKind kind) noexcept {
  switch (kind) {
    case EstimatorKind::LinearRegression:
      return "LinearRegression";
    case EstimatorKind::NeuralNetwork:
      return "NeuralNetwork";
    case EstimatorKind::DecisionTree:
      return "DecisionTree";
    case EstimatorKind::RandomForest:
      return "RandomForest";
    case EstimatorKind::GradientBoosting:
      return "GradientBoosting";
  }
  return "?";
}

CfEstimator::CfEstimator(EstimatorKind kind, FeatureSet features,
                         Options options)
    : kind_(kind), features_(features), options_(options) {
  switch (kind_) {
    case EstimatorKind::LinearRegression:
      model_ = LinearRegression(options_.linreg_ridge);
      break;
    case EstimatorKind::NeuralNetwork:
      model_ = Mlp();
      break;
    case EstimatorKind::DecisionTree:
      model_ = DecisionTree();
      break;
    case EstimatorKind::RandomForest:
      model_ = RandomForest();
      break;
    case EstimatorKind::GradientBoosting:
      model_ = GradientBoosting();
      break;
  }
}

void CfEstimator::train(const Dataset& data) {
  MF_CHECK(data.size() > 0);
  MF_CHECK_MSG(data.dim() == feature_names(features_).size(),
               "dataset feature set mismatch");
  switch (kind_) {
    case EstimatorKind::LinearRegression:
      std::get<LinearRegression>(model_).fit(data.x, data.y);
      break;
    case EstimatorKind::NeuralNetwork:
      std::get<Mlp>(model_).fit(data.x, data.y, options_.mlp);
      break;
    case EstimatorKind::DecisionTree: {
      Rng rng(options_.seed);
      std::get<DecisionTree>(model_).fit(data.x, data.y, options_.dtree, rng);
      break;
    }
    case EstimatorKind::RandomForest:
      std::get<RandomForest>(model_).fit(data.x, data.y, options_.rforest);
      break;
    case EstimatorKind::GradientBoosting:
      std::get<GradientBoosting>(model_).fit(data.x, data.y, options_.gboost);
      break;
  }
  trained_ = true;
}

double CfEstimator::predict_row(const std::vector<double>& row) const {
  MF_CHECK_MSG(trained_, "estimator not trained");
  return std::visit([&](const auto& model) { return model.predict(row); },
                    model_);
}

std::vector<double> CfEstimator::predict_rows(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict_row(row));
  return out;
}

double CfEstimator::estimate(const ResourceReport& report,
                             const ShapeReport& shape) const {
  return predict_row(extract_features(features_, report, shape));
}

std::vector<double> CfEstimator::feature_importance() const {
  MF_CHECK_MSG(trained_, "estimator not trained");
  if (const auto* tree = std::get_if<DecisionTree>(&model_)) {
    return tree->feature_importance();
  }
  if (const auto* forest = std::get_if<RandomForest>(&model_)) {
    return forest->feature_importance();
  }
  if (const auto* gb = std::get_if<GradientBoosting>(&model_)) {
    return gb->feature_importance();
  }
  return {};
}

}  // namespace mf
