#pragma once
// CfEstimator: the paper's second contribution, as a public API.
//
// Wraps the four model classes of Section VI-B (linear regression, shallow
// NN, decision tree, random forest) behind one train/estimate interface
// operating on (ResourceReport, ShapeReport) pairs -- i.e. exactly the
// artefacts the Figure 1 pipeline has in hand when it must size a PBlock.

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/features.hpp"
#include "ml/dataset.hpp"
#include "ml/dtree.hpp"
#include "ml/linreg.hpp"
#include "ml/mlp.hpp"
#include "ml/gboost.hpp"
#include "ml/rforest.hpp"

namespace mf {

/// One labelled training sample: a module's synthesis artefacts plus its
/// ground-truth minimal CF from find_min_cf.
struct LabeledModule {
  std::string name;
  ResourceReport report;
  ShapeReport shape;
  double min_cf = 0.0;
};

/// Assemble a Dataset by extracting `set` features from every sample.
Dataset make_dataset(FeatureSet set, const std::vector<LabeledModule>& samples);

enum class EstimatorKind : int {
  LinearRegression,
  NeuralNetwork,
  DecisionTree,
  RandomForest,
  GradientBoosting,  ///< extension beyond the paper's four families
};

[[nodiscard]] const char* to_string(EstimatorKind kind) noexcept;

/// Parse the to_string() spelling (or a CLI-friendly lowercase alias:
/// linreg, mlp, dtree, rforest, gboost) back to a kind.
std::optional<EstimatorKind> estimator_kind_from_string(
    const std::string& text);

class CfEstimator {
 public:
  struct Options {
    DTreeOptions dtree;      // depth 20 default, as in the paper
    RForestOptions rforest;  // 1,000 trees, depth 20
    MlpOptions mlp;          // 25 hidden neurons, ReLU, Adam
    GBoostOptions gboost;    // extension: 300 rounds of depth-4 trees
    double linreg_ridge = 1e-6;
    std::uint64_t seed = 3;
  };

  CfEstimator(EstimatorKind kind, FeatureSet features)
      : CfEstimator(kind, features, Options{}) {}
  CfEstimator(EstimatorKind kind, FeatureSet features, Options options);

  /// Train on a dataset whose rows were extracted with the same FeatureSet.
  void train(const Dataset& data);

  /// Predict the CF for one module.
  [[nodiscard]] double estimate(const ResourceReport& report,
                                const ShapeReport& shape) const;
  [[nodiscard]] double predict_row(const std::vector<double>& row) const;
  [[nodiscard]] std::vector<double> predict_rows(
      const std::vector<std::vector<double>>& rows) const;

  /// Impurity feature importance; empty for non-tree models.
  [[nodiscard]] std::vector<double> feature_importance() const;

  /// Bit-exact persistence of a *trained* estimator (kind, feature set,
  /// training options, fitted model) via ml/model_io.hpp. load() returns
  /// nullopt on any malformed token or inconsistent model state; callers
  /// wanting checksummed, versioned files use serve/bundle.hpp on top.
  void save(ModelWriter& out) const;
  static std::optional<CfEstimator> load(ModelReader& in);

  [[nodiscard]] EstimatorKind kind() const noexcept { return kind_; }
  [[nodiscard]] FeatureSet features() const noexcept { return features_; }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  EstimatorKind kind_;
  FeatureSet features_;
  Options options_;
  bool trained_ = false;
  std::variant<LinearRegression, Mlp, DecisionTree, RandomForest,
               GradientBoosting>
      model_;
};

}  // namespace mf
