#pragma once
// Bitset occupancy grid for the SA stitcher.
//
// The stitcher only ever asks two questions of the device grid: "is this
// w x h rectangle free?" and "mark / unmark this rectangle". The historical
// representation (a vector<int> of occupant ids) answered both one cell at a
// time. Since the annealer always lifts a block off the grid before probing
// its own destination, occupant *identity* is never actually needed -- a
// plain occupied/free bit per cell suffices, and a row of a footprint can be
// tested with one or two 64-bit mask ANDs instead of w individual loads.
//
// Layout: row-major words, `words_per_row = ceil(cols / 64)`; bit c of row
// r's word block is column c. A w-wide footprint spans at most
// ceil(w / 64) + 1 words per row.

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace mf {

class OccupancyGrid {
 public:
  OccupancyGrid() = default;

  OccupancyGrid(int cols, int rows)
      : cols_(cols),
        rows_(rows),
        words_per_row_((cols + 63) / 64),
        words_(static_cast<std::size_t>(words_per_row_) *
                   static_cast<std::size_t>(rows),
               0) {
    MF_CHECK(cols >= 0 && rows >= 0);
  }

  /// True when no cell of the w x h rectangle anchored at (col, row) is set.
  [[nodiscard]] bool region_free(int col, int row, int w, int h) const {
    const int w_lo = col >> 6;
    const int w_hi = (col + w - 1) >> 6;
    for (int wi = w_lo; wi <= w_hi; ++wi) {
      const std::uint64_t mask = word_mask(wi, col, w);
      const std::uint64_t* p = words_.data() +
                               static_cast<std::size_t>(row) * words_per_row_ +
                               wi;
      for (int r = 0; r < h; ++r, p += words_per_row_) {
        if ((*p & mask) != 0) return false;
      }
    }
    return true;
  }

  void fill(int col, int row, int w, int h) { apply<true>(col, row, w, h); }
  void clear(int col, int row, int w, int h) { apply<false>(col, row, w, h); }

  /// Single-cell probe (tests / invariant checks only).
  [[nodiscard]] bool occupied(int col, int row) const {
    const std::uint64_t word =
        words_[static_cast<std::size_t>(row) * words_per_row_ + (col >> 6)];
    return (word >> (col & 63)) & 1;
  }

  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }

 private:
  /// Bits of word `wi` covered by columns [col, col + w).
  [[nodiscard]] std::uint64_t word_mask(int wi, int col, int w) const {
    const int base = wi << 6;
    const int lo = col > base ? col - base : 0;
    const int hi = (col + w - base) < 64 ? (col + w - base) : 64;
    const std::uint64_t span = hi - lo == 64
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << (hi - lo)) - 1);
    return span << lo;
  }

  template <bool Set>
  void apply(int col, int row, int w, int h) {
    const int w_lo = col >> 6;
    const int w_hi = (col + w - 1) >> 6;
    for (int wi = w_lo; wi <= w_hi; ++wi) {
      const std::uint64_t mask = word_mask(wi, col, w);
      std::uint64_t* p = words_.data() +
                         static_cast<std::size_t>(row) * words_per_row_ + wi;
      for (int r = 0; r < h; ++r, p += words_per_row_) {
        if constexpr (Set) {
          *p |= mask;
        } else {
          *p &= ~mask;
        }
      }
    }
  }

  int cols_ = 0;
  int rows_ = 0;
  int words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mf
