#pragma once
// Stitcher engine interface and the shared option / result types.
//
// PR 3 left the simulated annealer as the only way to solve a stitch
// problem. This header extracts the contract every placement engine obeys --
// same problem in, same StitchResult out, deterministic for a given
// (options, seed) -- so the portfolio driver (stitch/portfolio.hpp) can race
// engines against each other on the deterministic thread pool:
//
//   * "sa"       -- the incremental simulated annealer (stitch/sa_stitcher);
//   * "evo"      -- RapidLayout-style evolutionary search over placement
//                   permutations (stitch/evo_stitcher);
//   * "analytic" -- a deterministic centroid pre-placer with footprint-legal
//                   snapping (stitch/analytic_placer); it also doubles as
//                   the warm start for SA configurations.
//
// Determinism rules (the portfolio's bit-identity contract depends on all
// three):
//   1. an Engine::run is a pure function of (device, problem, options) --
//      no wall-clock or scheduling inputs feed the walk;
//   2. every raced configuration derives its seed from task_seed, never from
//      sibling scheduling;
//   3. winners are chosen by (cost, lowest config index) -- or by
//      (moves-to-target, lowest config index) under a first-to-target race
//      -- so the outcome is identical at any `jobs` value.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "fabric/device.hpp"
#include "stitch/macro.hpp"

#ifndef MF_JOBS_DEFAULT
#define MF_JOBS_DEFAULT 1
#endif

namespace mf {

/// The engine families the stitcher can run. Portfolio is a meta-engine:
/// it races a configurable set of the other three.
enum class StitchEngine : std::uint8_t { Sa, Evo, Analytic, Portfolio };

[[nodiscard]] const char* to_string(StitchEngine engine) noexcept;

/// Parse an engine name ("sa", "evo", "analytic", "portfolio"); nullopt on
/// anything else. Callers must fail fast on nullopt -- a silent SA fallback
/// would hide typos in --stitch-engine.
[[nodiscard]] std::optional<StitchEngine> stitch_engine_from_string(
    std::string_view name) noexcept;

struct StitchOptions {
  std::uint64_t seed = 99;
  double initial_temp = 0.0;  ///< 0 = auto (from initial cost scale)
  double cooling = 0.95;
  int moves_per_temp = 0;  ///< 0 = auto (10 x instances)
  double min_temp_ratio = 1e-4;  ///< stop when T < ratio * T0
  double unplaced_penalty = 0.0;  ///< 0 = auto (device half-perimeter x 4)
  int place_retry_every = 25;  ///< try to un-park an unplaced block this often
  /// Stop annealing after this many temperature steps without a >0.1% cost
  /// improvement (0 = anneal the full schedule). Easier problems quiesce
  /// sooner, which is what makes SA convergence a quality metric.
  int stagnation_temps = 15;
  /// Watchdog: hard iteration budget on the walk (0 = unbounded). When the
  /// budget trips, the walk stops and the best-so-far snapshot is restored,
  /// so an over-budget run degrades to its best intermediate placement
  /// instead of running unbounded. Deterministic (move-count based).
  long max_moves = 0;
  /// Watchdog: wall-clock budget in seconds (0 = unbounded). Same
  /// degradation semantics as max_moves, but non-deterministic -- meant for
  /// production service deadlines, not for reproducible experiments.
  double max_seconds = 0.0;
  /// Cooperative cancellation (common/cancel.hpp): polled by the same
  /// amortised watchdog check as max_seconds, with the same degradation
  /// semantics (stop, restore best-so-far, watchdog_fired = true). This
  /// subsumes max_seconds for end-to-end deadlines -- one token armed with
  /// set_deadline_seconds() bounds the whole flow, every raced engine
  /// configuration included.
  const CancelToken* cancel = nullptr;
  /// Independent restarts per engine (multi-start). 1 = one run seeded with
  /// `seed` -- exactly the historical single-start behaviour, move for
  /// move. K > 1 runs K independent configurations, restart k seeded with
  /// task_seed(seed, "restart:<k>"); the lowest final cost wins, ties going
  /// to the lowest k. Deterministic at any `jobs` value. The analytic
  /// engine is seed-free, so it contributes one configuration regardless.
  int restarts = 1;
  /// Worker threads for the raced-configuration fan-out (1 = sequential,
  /// 0 = auto, i.e. hardware concurrency). Results are bit-identical at any
  /// value -- each configuration is an isolated engine run with its own
  /// derived seed, written into a pre-sized slot.
  int jobs = MF_JOBS_DEFAULT;
  /// Run the pre-incremental reference cost engine inside SA: naive per-net
  /// bounding box rescans, a per-cell occupant grid, and O(instances)
  /// candidate scans per move. Kept for differential tests and the
  /// bench_stitch A/B; results are bit-identical to the default incremental
  /// engine, only slower. SA-only (the other engines ignore it).
  bool reference_engine = false;

  // -- engine selection / portfolio knobs -----------------------------------
  /// Which engine solves the problem. Portfolio races `portfolio` (or the
  /// default analytic + sa + evo set) and returns the winner.
  StitchEngine engine = StitchEngine::Sa;
  /// Engines raced when `engine == Portfolio` (empty = analytic, sa, evo,
  /// in that config-index order). Portfolio itself is not a valid entry.
  std::vector<StitchEngine> portfolio;
  /// Per-configuration move budget for raced runs (0 = every engine runs
  /// its natural schedule). Maps onto the SA watchdog (max_moves) and the
  /// evolutionary generation budget, so "cost at equal budget" comparisons
  /// are exact. Must be >= 0.
  long engine_budget = 0;
  /// First-to-target race: when > 0, the portfolio winner is the
  /// configuration that first reaches cost <= target_cost (fewest moves,
  /// ties to the lowest config index), falling back to best-at-budget when
  /// no configuration reaches it. Engines record the crossing move index in
  /// StitchResult::target_move either way.
  double target_cost = 0.0;
  /// Evolutionary population size (>= 2). Individual 0 is the deterministic
  /// greedy (or analytic warm-start) placement; the rest are randomized.
  int evo_population = 12;
  /// Evolutionary generation cap (0 = run until the move budget or
  /// stagnation stops the search).
  int evo_generations = 0;
  /// Seed SA (and evolutionary individual 0) with the analytic pre-placement
  /// instead of the greedy initial placement. The portfolio sets this
  /// automatically for its SA configurations whenever the analytic engine
  /// is also in the race; a pure-SA portfolio stays cold-started so
  /// `engines=sa, restarts=1` reproduces the historical run move for move.
  bool warm_start = false;
};

/// Fail-fast validation of the engine/portfolio knobs. Returns a message on
/// the first violated constraint, nullopt when the options are usable.
/// stitch() turns a violation into an MF_CHECK failure; the CLI reports it
/// and exits 2 before any flow work starts.
[[nodiscard]] std::optional<std::string> stitch_options_error(
    const StitchOptions& opts);

struct BlockPlacement {
  int col = -1;
  int row = -1;
  [[nodiscard]] bool placed() const noexcept { return col >= 0; }
};

/// Per-configuration accounting of one raced engine run. StitchResult keeps
/// the historical aggregate fields (total_moves, restart_index,
/// restart_moves) for existing consumers; `engines` is the per-engine
/// breakdown a multi-engine run needs.
struct EngineStats {
  std::string engine;       ///< "sa" | "evo" | "analytic"
  int config = 0;           ///< index in the raced configuration list
  std::uint64_t seed = 0;   ///< seed this configuration ran with
  bool warm_start = false;  ///< analytic pre-placement seeded this run
  long moves = 0;           ///< move attempts consumed
  long evals = 0;           ///< cost evaluations (accepted + rejected probes)
  double seconds = 0.0;     ///< wall clock (informative; never bit-stable)
  double best_cost = 0.0;   ///< final cost of this configuration
  int unplaced = 0;
  /// First move index at which this configuration's cost reached
  /// target_cost (-1 = never, or no target set).
  long target_move = -1;
};

struct StitchResult {
  std::vector<BlockPlacement> positions;  ///< per instance
  int unplaced = 0;
  double wirelength = 0.0;  ///< final HPWL cost (penalty excluded)
  double cost = 0.0;        ///< wirelength + unplaced penalty
  long total_moves = 0;
  long accepted = 0;
  long rejected = 0;
  long illegal = 0;  ///< moves discarded for overlap / no legal anchor
  /// First move index after which the cost stays within 1% of the final
  /// cost -- the convergence metric behind the paper's "1.37x faster".
  long converge_move = 0;
  /// True when a watchdog budget (max_moves / max_seconds / cancel) cut the
  /// run short; the result is the best placement seen up to that point.
  bool watchdog_fired = false;
  double seconds = 0.0;  ///< wall clock of the whole stitch (all configs)
  /// Which raced configuration produced this result (0 when a single run).
  /// For multi-start SA this is the historical winning restart index.
  int restart_index = 0;
  /// Moves summed over every raced configuration (== total_moves for a
  /// single run).
  long restart_moves = 0;
  /// (move index, cost) samples for convergence plots; one sample per
  /// temperature step / generation, downsampled by stride doubling to at
  /// most ~4096 entries so pathological schedules cannot grow the trace
  /// unbounded. Always the WINNING configuration's trace only; `engine`
  /// tags which engine produced it (the trace-text header carries the tag).
  std::vector<std::pair<long, double>> cost_trace;
  /// Fraction of device slices covered by placed macro rectangles.
  double coverage = 0.0;
  /// Engine tag of the run that produced `positions` / `cost_trace`.
  std::string engine = "sa";
  /// First move index at which the walk's cost reached target_cost
  /// (-1 = never, or no target was set).
  long target_move = -1;
  /// Per-configuration breakdown of every raced engine run, in config-index
  /// order. A plain single run carries one entry.
  std::vector<EngineStats> engines;
};

/// One placement engine. A run is one deterministic configuration: the
/// portfolio driver clamps restarts/jobs to 1 and derives the seed before
/// calling, so implementations never fan out themselves.
class Engine {
 public:
  virtual ~Engine() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual StitchResult run(const Device& device,
                                         const StitchProblem& problem,
                                         const StitchOptions& opts) const = 0;
};

/// Engine factory for the three concrete families (not Portfolio -- the
/// portfolio driver is the caller, not a callee).
[[nodiscard]] const Engine& engine_for(StitchEngine kind);

/// Serialize a result's cost trace to the versioned text form used by the
/// golden-trace regression fixtures:
///   macroflow-cost-trace v1 engine=<tag> samples=<n>
///   <move> <16-hex-digit IEEE-754 bits of cost>
/// The hex encoding keeps the bytes bit-exact across platforms.
[[nodiscard]] std::string trace_to_text(const StitchResult& result);

}  // namespace mf
