#include "stitch/analytic_placer.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "stitch/placement_state.hpp"

namespace mf {
namespace {

/// Damped Gauss-Seidel sweeps of the continuous phase. Few iterations
/// suffice: the legalizer only needs the relative geometry to be roughly
/// right, not a converged quadratic solution.
constexpr int kCentroidIterations = 24;
constexpr double kDamping = 0.5;

}  // namespace

std::vector<BlockPlacement> analytic_placement(const Device& device,
                                               const StitchProblem& problem) {
  const StitchOptions defaults;
  const PlacementContext ctx(device, problem, defaults);
  PlacementState state(ctx);

  // Phase 0: a legal greedy seed gives every instance a spread-out starting
  // point (all-at-center would make every centroid coincide and the sweeps
  // would never break the symmetry).
  for (int inst : ctx.greedy_order()) {
    const int hit = state.first_free_anchor(inst);
    if (hit < 0) continue;
    const auto& anchor = ctx.anchors_of(inst)[static_cast<std::size_t>(hit)];
    MF_CHECK(state.try_place(inst, anchor.first, anchor.second));
  }

  const std::size_t n = problem.instances.size();
  std::vector<double> half_w(n);
  std::vector<double> half_h(n);
  std::vector<double> cc(n);
  std::vector<double> rr(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Macro& macro = ctx.macro_of(static_cast<int>(i));
    half_w[i] = macro.footprint.width() / 2.0;
    half_h[i] = macro.footprint.height / 2.0;
    const BlockPlacement& p = state.positions()[i];
    if (p.placed()) {
      cc[i] = p.col + half_w[i];
      rr[i] = p.row + half_h[i];
    } else {
      cc[i] = device.num_columns() / 2.0;
      rr[i] = device.rows() / 2.0;
    }
  }

  std::vector<std::vector<int>> nets_of(n);
  for (std::size_t net = 0; net < problem.nets.size(); ++net) {
    for (int inst : problem.nets[net].instances) {
      nets_of[static_cast<std::size_t>(inst)].push_back(static_cast<int>(net));
    }
  }

  // Phase 1: pull each instance toward the weighted mean of its nets'
  // bounding-box centers (the point that minimizes that net's HPWL term for
  // this instance), sweeping in index order so later instances already see
  // this sweep's updates (Gauss-Seidel).
  for (int iter = 0; iter < kCentroidIterations; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum_w = 0.0;
      double target_c = 0.0;
      double target_r = 0.0;
      for (int net : nets_of[i]) {
        const BlockNet& bn = problem.nets[static_cast<std::size_t>(net)];
        double c0 = 0.0, c1 = 0.0, r0 = 0.0, r1 = 0.0;
        int count = 0;
        for (int other : bn.instances) {
          const auto o = static_cast<std::size_t>(other);
          if (o == i) continue;
          if (count == 0) {
            c0 = c1 = cc[o];
            r0 = r1 = rr[o];
          } else {
            c0 = std::min(c0, cc[o]);
            c1 = std::max(c1, cc[o]);
            r0 = std::min(r0, rr[o]);
            r1 = std::max(r1, rr[o]);
          }
          ++count;
        }
        if (count == 0) continue;
        sum_w += bn.weight;
        target_c += bn.weight * 0.5 * (c0 + c1);
        target_r += bn.weight * 0.5 * (r0 + r1);
      }
      if (sum_w <= 0.0) continue;
      cc[i] = (1.0 - kDamping) * cc[i] + kDamping * (target_c / sum_w);
      rr[i] = (1.0 - kDamping) * rr[i] + kDamping * (target_r / sum_w);
    }
  }

  // Phase 2: legalize -- most-constrained first (the greedy order), each
  // instance snapped to the free anchor nearest its continuous position.
  state.clear();
  for (int inst : ctx.greedy_order()) {
    const auto i = static_cast<std::size_t>(inst);
    const int hit =
        state.nearest_free_anchor(inst, cc[i] - half_w[i], rr[i] - half_h[i]);
    if (hit < 0) continue;
    const auto& anchor = ctx.anchors_of(inst)[static_cast<std::size_t>(hit)];
    MF_CHECK(state.try_place(inst, anchor.first, anchor.second));
  }
  return state.positions();
}

StitchResult stitch_analytic(const Device& device,
                             const StitchProblem& problem,
                             const StitchOptions& opts) {
  Timer timer;
  const PlacementContext ctx(device, problem, opts);
  PlacementState state(ctx);
  const std::vector<BlockPlacement> placement =
      analytic_placement(device, problem);
  StitchResult result;
  result.engine = "analytic";
  for (std::size_t i = 0; i < placement.size(); ++i) {
    ++result.total_moves;
    if (!placement[i].placed()) {
      ++result.illegal;
      continue;
    }
    MF_CHECK(
        state.try_place(static_cast<int>(i), placement[i].col, placement[i].row));
    ++result.accepted;
  }
  state.greedy_fill();
  result.cost_trace.emplace_back(0, state.cost());
  finalize_from_state(ctx, state, result);
  if (opts.target_cost > 0.0 && result.cost <= opts.target_cost) {
    result.target_move = result.total_moves;
  }
  result.restart_moves = result.total_moves;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace mf
