#include "stitch/incremental_cost.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mf {

IncrementalWirelength::IncrementalWirelength(const StitchProblem& problem)
    : problem_(&problem),
      boxes_(problem.nets.size()),
      nets_of_(problem.instances.size()),
      half_w_(problem.instances.size()),
      half_h_(problem.instances.size()),
      center_c_(problem.instances.size(), 0.0),
      center_r_(problem.instances.size(), 0.0),
      placed_(problem.instances.size(), 0) {
  for (std::size_t i = 0; i < problem.instances.size(); ++i) {
    const Macro& macro =
        problem.macros[static_cast<std::size_t>(problem.instances[i].macro)];
    half_w_[i] = macro.footprint.width() / 2.0;
    half_h_[i] = macro.footprint.height / 2.0;
  }
  for (std::size_t n = 0; n < problem.nets.size(); ++n) {
    for (int inst : problem.nets[n].instances) {
      nets_of_[static_cast<std::size_t>(inst)].push_back(static_cast<int>(n));
    }
  }
}

void IncrementalWirelength::add_center(NetBox& box, double cc, double rr) {
  if (box.placed == 0) {
    box.cmin = box.cmax = cc;
    box.rmin = box.rmax = rr;
    box.at_cmin = box.at_cmax = 1;
    box.at_rmin = box.at_rmax = 1;
  } else {
    if (cc < box.cmin) {
      box.cmin = cc;
      box.at_cmin = 1;
    } else if (cc == box.cmin) {
      ++box.at_cmin;
    }
    if (cc > box.cmax) {
      box.cmax = cc;
      box.at_cmax = 1;
    } else if (cc == box.cmax) {
      ++box.at_cmax;
    }
    if (rr < box.rmin) {
      box.rmin = rr;
      box.at_rmin = 1;
    } else if (rr == box.rmin) {
      ++box.at_rmin;
    }
    if (rr > box.rmax) {
      box.rmax = rr;
      box.at_rmax = 1;
    } else if (rr == box.rmax) {
      ++box.at_rmax;
    }
  }
  ++box.placed;
}

bool IncrementalWirelength::remove_center(NetBox& box, double cc, double rr) {
  if (box.placed == 1) {
    box = NetBox{};
    return true;
  }
  // A boundary whose only occupant leaves forces a rescan: the new extreme
  // is held by some interior center the box does not remember.
  if ((cc == box.cmin && box.at_cmin == 1) ||
      (cc == box.cmax && box.at_cmax == 1) ||
      (rr == box.rmin && box.at_rmin == 1) ||
      (rr == box.rmax && box.at_rmax == 1)) {
    return false;
  }
  if (cc == box.cmin) --box.at_cmin;
  if (cc == box.cmax) --box.at_cmax;
  if (rr == box.rmin) --box.at_rmin;
  if (rr == box.rmax) --box.at_rmax;
  --box.placed;
  return true;
}

void IncrementalWirelength::rescan_net(int net) {
  NetBox box;
  const BlockNet& bn = problem_->nets[static_cast<std::size_t>(net)];
  for (int inst : bn.instances) {
    const auto i = static_cast<std::size_t>(inst);
    if (placed_[i] == 0) continue;
    add_center(box, center_c_[i], center_r_[i]);
  }
  boxes_[static_cast<std::size_t>(net)] = box;
  ++rescans_;
  refresh_cost(net);
}

void IncrementalWirelength::refresh_cost(int net) {
  NetBox& box = boxes_[static_cast<std::size_t>(net)];
  if (box.placed < 2) {
    box.cost = 0.0;
    return;
  }
  const BlockNet& bn = problem_->nets[static_cast<std::size_t>(net)];
  box.cost = bn.weight * ((box.cmax - box.cmin) + (box.rmax - box.rmin));
}

void IncrementalWirelength::place(int instance, int col, int row) {
  const auto i = static_cast<std::size_t>(instance);
  const bool moving = placed_[i] != 0;
  const double old_cc = center_c_[i];
  const double old_rr = center_r_[i];
  const double cc = col + half_w_[i];
  const double rr = row + half_h_[i];
  // Commit the authoritative position first so a rescan sees final state.
  center_c_[i] = cc;
  center_r_[i] = rr;
  placed_[i] = 1;
  for (int n : nets_of_[i]) {
    NetBox& box = boxes_[static_cast<std::size_t>(n)];
    if (moving && !remove_center(box, old_cc, old_rr)) {
      rescan_net(n);  // rescan already includes the new center
      continue;
    }
    add_center(box, cc, rr);
    refresh_cost(n);
  }
}

void IncrementalWirelength::unplace(int instance) {
  const auto i = static_cast<std::size_t>(instance);
  if (placed_[i] == 0) return;
  placed_[i] = 0;
  const double cc = center_c_[i];
  const double rr = center_r_[i];
  for (int n : nets_of_[i]) {
    NetBox& box = boxes_[static_cast<std::size_t>(n)];
    if (!remove_center(box, cc, rr)) {
      rescan_net(n);
      continue;
    }
    refresh_cost(n);
  }
}

void IncrementalWirelength::clear() {
  std::fill(placed_.begin(), placed_.end(), char{0});
  std::fill(boxes_.begin(), boxes_.end(), NetBox{});
}

double IncrementalWirelength::instance_cost(int instance) const {
  double total = 0.0;
  for (int n : nets_of_[static_cast<std::size_t>(instance)]) {
    total += boxes_[static_cast<std::size_t>(n)].cost;
  }
  return total;
}

double IncrementalWirelength::total() const {
  double total = 0.0;
  for (const NetBox& box : boxes_) total += box.cost;
  return total;
}

double IncrementalWirelength::full_recompute() const {
  double total = 0.0;
  for (std::size_t n = 0; n < problem_->nets.size(); ++n) {
    const BlockNet& bn = problem_->nets[n];
    double c0 = 0.0, c1 = 0.0, r0 = 0.0, r1 = 0.0;
    int count = 0;
    for (int inst : bn.instances) {
      const auto i = static_cast<std::size_t>(inst);
      if (placed_[i] == 0) continue;
      const double cc = center_c_[i];
      const double rr = center_r_[i];
      if (count == 0) {
        c0 = c1 = cc;
        r0 = r1 = rr;
      } else {
        c0 = std::min(c0, cc);
        c1 = std::max(c1, cc);
        r0 = std::min(r0, rr);
        r1 = std::max(r1, rr);
      }
      ++count;
    }
    if (count >= 2) total += bn.weight * ((c1 - c0) + (r1 - r0));
  }
  return total;
}

}  // namespace mf
