#pragma once
// Shared placement machinery for the non-SA stitcher engines.
//
// The analytic pre-placer and the evolutionary engine both need the same
// three ingredients the annealer keeps fused into its hot loop: the legal
// anchor lists per macro (footprint-compatible positions), the bitset
// occupancy grid, and the incremental HPWL engine so a single-block move
// costs O(move) instead of O(netlist). PlacementContext holds the immutable
// per-problem geometry (shared by every individual in a population);
// PlacementState is one mutable placement with cached cost -- value-copyable
// so evolutionary individuals can be cloned for crossover.

#include <utility>
#include <vector>

#include "fabric/device.hpp"
#include "stitch/engine.hpp"
#include "stitch/incremental_cost.hpp"
#include "stitch/macro.hpp"
#include "stitch/occupancy.hpp"

namespace mf {

/// Immutable per-problem geometry shared by every PlacementState: anchor
/// lists, the greedy placement order, and the unplaced-block penalty.
class PlacementContext {
 public:
  PlacementContext(const Device& device, const StitchProblem& problem,
                   const StitchOptions& opts);

  [[nodiscard]] const Device& device() const noexcept { return *device_; }
  [[nodiscard]] const StitchProblem& problem() const noexcept {
    return *problem_;
  }
  [[nodiscard]] double penalty() const noexcept { return penalty_; }

  [[nodiscard]] const Macro& macro_of(int instance) const {
    return problem_->macros[static_cast<std::size_t>(
        problem_->instances[static_cast<std::size_t>(instance)].macro)];
  }

  /// (col, row)-sorted legal anchors of the instance's macro.
  [[nodiscard]] const std::vector<std::pair<int, int>>& anchors_of(
      int instance) const {
    return anchors_[static_cast<std::size_t>(
        problem_->instances[static_cast<std::size_t>(instance)].macro)];
  }

  /// Instances in the annealer's greedy placement order: fewest legal
  /// anchors first (constrained blocks get first pick), then larger area,
  /// then lower index. Deterministic.
  [[nodiscard]] const std::vector<int>& greedy_order() const noexcept {
    return greedy_order_;
  }

 private:
  const Device* device_;
  const StitchProblem* problem_;
  std::vector<std::vector<std::pair<int, int>>> anchors_;  ///< per macro
  std::vector<int> greedy_order_;
  double penalty_ = 0.0;
};

/// One mutable placement over a PlacementContext, with O(move) cost
/// maintenance. Copyable: the grid and the incremental engine are plain
/// value types, so cloning an individual is a handful of vector copies.
class PlacementState {
 public:
  explicit PlacementState(const PlacementContext& ctx);

  [[nodiscard]] const std::vector<BlockPlacement>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] int unplaced() const noexcept { return unplaced_; }
  [[nodiscard]] double wirelength() const { return cost_engine_.total(); }
  /// wirelength + penalty * unplaced -- the engines' objective.
  [[nodiscard]] double cost() const {
    return cost_engine_.total() + ctx_->penalty() * unplaced_;
  }
  /// Cached HPWL over the instance's nets (the term a move can change).
  [[nodiscard]] double instance_cost(int instance) const {
    return cost_engine_.instance_cost(instance);
  }

  /// True when the instance's footprint fits at (col, row) on the current
  /// grid, ignoring the instance's own cells if it is placed there (the
  /// probe lifts and restores them, hence non-const).
  [[nodiscard]] bool region_free(int instance, int col, int row);

  /// Place an unplaced instance; false when the region is occupied.
  bool try_place(int instance, int col, int row);

  /// Move a placed instance to (col, row); false (state unchanged) when the
  /// destination is occupied by another block. Self-overlap is legal.
  bool try_move(int instance, int col, int row);

  void unplace(int instance);
  void clear();

  /// First free anchor of the instance in (col, row) order, or -1.
  [[nodiscard]] int first_free_anchor(int instance) const;

  /// Free anchor closest to the continuous point (col, row) by Manhattan
  /// distance, ties to the lowest anchor index; -1 when none is free. The
  /// analytic legalizer's snapping primitive.
  [[nodiscard]] int nearest_free_anchor(int instance, double col,
                                        double row) const;

  /// Greedy post-pass: repeatedly try to place every parked block (largest
  /// area first, then lowest index) at its first free anchor until nothing
  /// more fits. Mirrors the annealer's final_fill.
  void greedy_fill();

 private:
  void fill_cells(int instance, int col, int row);
  void clear_cells(int instance, int col, int row);

  const PlacementContext* ctx_;
  OccupancyGrid grid_;
  IncrementalWirelength cost_engine_;
  std::vector<BlockPlacement> positions_;
  int unplaced_ = 0;
};

/// Coverage + converge_move bookkeeping shared by the engines' wrap-up:
/// fills positions/unplaced/wirelength/cost/coverage/converge_move of
/// `result` from the state and the already-recorded cost_trace.
void finalize_from_state(const PlacementContext& ctx,
                         const PlacementState& state, StitchResult& result);

}  // namespace mf
