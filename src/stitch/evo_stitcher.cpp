#include "stitch/evo_stitcher.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "stitch/analytic_placer.hpp"
#include "stitch/placement_state.hpp"

namespace mf {
namespace {

/// Stop after this many generations without a >0.1% best-cost improvement
/// (mirrors the annealer's stagnation_temps idea at generation granularity).
constexpr int kStagnantGenerations = 24;
/// Probability a crossover child adopts the other parent's position for a
/// given instance.
constexpr double kAdoptProbability = 0.3;
/// Probability an uphill mutation is kept anyway (exploration noise on top
/// of the greedy accept bias).
constexpr double kUphillKeep = 0.05;

struct Individual {
  PlacementState state;
  double cost = 0.0;
};

/// SA-equivalent move budget: moves_per_temp x the cooling-schedule step
/// count, i.e. what a full (non-stagnating) anneal of the same options
/// would spend. Keeps "cost at equal budget" comparisons exact.
[[nodiscard]] long default_budget(const StitchOptions& opts,
                                  std::size_t instances) {
  const long per_temp = opts.moves_per_temp > 0
                            ? opts.moves_per_temp
                            : 10 * static_cast<long>(instances);
  long temps = 1;
  if (opts.cooling > 0.0 && opts.cooling < 1.0 && opts.min_temp_ratio > 0.0 &&
      opts.min_temp_ratio < 1.0) {
    temps = static_cast<long>(
        std::ceil(std::log(opts.min_temp_ratio) / std::log(opts.cooling)));
    temps = std::clamp<long>(temps, 1, 4096);
  }
  return per_temp * temps;
}

}  // namespace

StitchResult stitch_evo(const Device& device, const StitchProblem& problem,
                        const StitchOptions& opts) {
  Timer timer;
  const PlacementContext ctx(device, problem, opts);
  Rng rng(opts.seed);
  const std::size_t n = problem.instances.size();
  const int pop_size = std::max(2, opts.evo_population);
  const long budget =
      opts.max_moves > 0 ? opts.max_moves : default_budget(opts, n);

  StitchResult result;
  result.engine = "evo";

  // A mutation / adoption / placement attempt is one "move" -- the same
  // accounting granularity as an SA move attempt.
  auto charge = [&result]() -> long { return ++result.total_moves; };

  // -- initial population ---------------------------------------------------
  std::vector<Individual> pop;
  pop.reserve(static_cast<std::size_t>(pop_size));
  {
    // Individual 0 is deterministic: the analytic pre-placement under
    // warm_start, the annealer's greedy order otherwise -- a quality floor
    // the randomized individuals have to beat.
    PlacementState state(ctx);
    if (opts.warm_start) {
      const std::vector<BlockPlacement> warm =
          analytic_placement(device, problem);
      for (std::size_t i = 0; i < warm.size(); ++i) {
        charge();
        if (!warm[i].placed()) continue;
        MF_CHECK(state.try_place(static_cast<int>(i), warm[i].col,
                                 warm[i].row));
        ++result.accepted;
      }
    } else {
      for (int inst : ctx.greedy_order()) {
        charge();
        const int hit = state.first_free_anchor(inst);
        if (hit < 0) {
          ++result.illegal;
          continue;
        }
        const auto& anchor =
            ctx.anchors_of(inst)[static_cast<std::size_t>(hit)];
        MF_CHECK(state.try_place(inst, anchor.first, anchor.second));
        ++result.accepted;
      }
    }
    pop.push_back({std::move(state), 0.0});
    pop.back().cost = pop.back().state.cost();
  }
  for (int k = 1; k < pop_size; ++k) {
    // Randomized greedy: shuffled placement order, a few random anchor
    // samples per instance before falling back to the ordered scan. Each
    // individual sees a fresh slice of the one RNG stream.
    PlacementState state(ctx);
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    for (int inst : order) {
      charge();
      const auto& candidates = ctx.anchors_of(inst);
      if (candidates.empty()) {
        ++result.illegal;
        continue;
      }
      bool placed = false;
      for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
        const auto& [col, row] = candidates[rng.index(candidates.size())];
        placed = state.try_place(inst, col, row);
      }
      if (!placed) {
        const int hit = state.first_free_anchor(inst);
        if (hit >= 0) {
          const auto& anchor = candidates[static_cast<std::size_t>(hit)];
          MF_CHECK(state.try_place(inst, anchor.first, anchor.second));
          placed = true;
        }
      }
      if (placed) {
        ++result.accepted;
      } else {
        ++result.illegal;
      }
    }
    pop.push_back({std::move(state), 0.0});
    pop.back().cost = pop.back().state.cost();
  }

  auto best_cost_of = [&pop]() {
    double best = pop.front().cost;
    for (const Individual& ind : pop) best = std::min(best, ind.cost);
    return best;
  };

  double best_cost = best_cost_of();
  result.cost_trace.emplace_back(result.total_moves, best_cost);
  auto note_target = [&]() {
    if (opts.target_cost > 0.0 && result.target_move < 0 &&
        best_cost <= opts.target_cost) {
      result.target_move = result.total_moves;
    }
  };
  note_target();

  // -- generations ----------------------------------------------------------
  const std::size_t elite =
      std::max<std::size_t>(1, static_cast<std::size_t>(pop_size) / 2);
  double stagnant_best = best_cost;
  int stagnant = 0;
  int generation = 0;
  std::vector<std::size_t> ranked(pop.size());
  while (result.total_moves < budget) {
    if (opts.evo_generations > 0 && generation >= opts.evo_generations) break;
    if ((opts.cancel != nullptr && opts.cancel->cancelled()) ||
        (opts.max_seconds > 0.0 && timer.seconds() >= opts.max_seconds)) {
      result.watchdog_fired = true;
      break;
    }
    ++generation;

    // A budget that ran dry mid-generation can have shrunk the population.
    ranked.resize(pop.size());
    std::iota(ranked.begin(), ranked.end(), 0);
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      if (pop[a].cost != pop[b].cost) return pop[a].cost < pop[b].cost;
      return a < b;
    });

    // Children first (they clone parents still sitting in `pop`), then the
    // survivors are moved out -- one vector swap per generation.
    auto tournament = [&]() -> std::size_t {
      const std::size_t a = ranked[rng.index(elite)];
      const std::size_t b = ranked[rng.index(elite)];
      return pop[a].cost <= pop[b].cost ? a : b;
    };
    std::vector<Individual> next;
    next.reserve(pop.size());
    for (std::size_t child = elite;
         child < pop.size() && result.total_moves < budget; ++child) {
      const std::size_t pa = tournament();
      const std::size_t pb = tournament();
      Individual kid = pop[pa];  // clone (grid + cost caches copy by value)
      const PlacementState& donor = pop[pb].state;
      // Crossover: adopt a random subset of the donor's positions when the
      // spot is free -- teleporting sub-layouts between parents, the move
      // class SA lacks.
      for (std::size_t i = 0; i < n; ++i) {
        if (!rng.bernoulli(kAdoptProbability)) continue;
        const BlockPlacement& want = donor.positions()[i];
        if (!want.placed()) continue;
        const BlockPlacement& have = kid.state.positions()[i];
        if (have.placed() && have.col == want.col && have.row == want.row) {
          continue;
        }
        charge();
        const int inst = static_cast<int>(i);
        const bool ok = have.placed()
                            ? kid.state.try_move(inst, want.col, want.row)
                            : kid.state.try_place(inst, want.col, want.row);
        if (ok) {
          ++result.accepted;
        } else {
          ++result.illegal;
        }
        if (result.total_moves >= budget) break;
      }
      // Mutation: a few random legal-anchor moves with a greedy accept bias
      // (downhill always, uphill rarely); parked blocks get unpark tries.
      const long mutations =
          std::max<long>(1, static_cast<long>(n) / 8);
      for (long m = 0; m < mutations && result.total_moves < budget; ++m) {
        const int inst = static_cast<int>(rng.index(n));
        const auto& candidates = ctx.anchors_of(inst);
        if (candidates.empty()) continue;
        charge();
        const BlockPlacement old =
            kid.state.positions()[static_cast<std::size_t>(inst)];
        if (!old.placed()) {
          bool placed = false;
          for (int attempt = 0; attempt < 4 && !placed; ++attempt) {
            const auto& [col, row] = candidates[rng.index(candidates.size())];
            placed = kid.state.try_place(inst, col, row);
          }
          if (placed) {
            ++result.accepted;
          } else {
            ++result.illegal;
          }
          continue;
        }
        const auto& [col, row] = candidates[rng.index(candidates.size())];
        if (col == old.col && row == old.row) continue;
        const double before = kid.state.instance_cost(inst);
        if (!kid.state.try_move(inst, col, row)) {
          ++result.illegal;
          continue;
        }
        const double delta = kid.state.instance_cost(inst) - before;
        if (delta <= 0.0 || rng.bernoulli(kUphillKeep)) {
          ++result.accepted;
        } else {
          MF_CHECK(kid.state.try_move(inst, old.col, old.row));
          ++result.rejected;
        }
      }
      kid.cost = kid.state.cost();
      next.push_back(std::move(kid));
    }
    for (std::size_t s = 0; s < elite; ++s) {
      next.push_back(std::move(pop[ranked[s]]));
    }
    pop = std::move(next);

    best_cost = best_cost_of();
    result.cost_trace.emplace_back(result.total_moves, best_cost);
    note_target();
    if (best_cost < stagnant_best * 0.999) {
      stagnant_best = best_cost;
      stagnant = 0;
    } else if (++stagnant >= kStagnantGenerations) {
      break;
    }
  }

  // -- wrap-up --------------------------------------------------------------
  std::size_t winner = 0;
  for (std::size_t i = 1; i < pop.size(); ++i) {
    if (pop[i].cost < pop[winner].cost) winner = i;
  }
  PlacementState& final_state = pop[winner].state;
  final_state.greedy_fill();
  finalize_from_state(ctx, final_state, result);
  if (opts.target_cost > 0.0 && result.target_move < 0 &&
      result.cost <= opts.target_cost) {
    result.target_move = result.total_moves;
  }
  result.restart_moves = result.total_moves;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace mf
