#include "stitch/engine.hpp"

#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "stitch/analytic_placer.hpp"
#include "stitch/evo_stitcher.hpp"
#include "stitch/sa_stitcher.hpp"

namespace mf {
namespace {

class SaEngine final : public Engine {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "sa"; }
  [[nodiscard]] StitchResult run(const Device& device,
                                 const StitchProblem& problem,
                                 const StitchOptions& opts) const override {
    return stitch_sa_single(device, problem, opts);
  }
};

class EvoEngine final : public Engine {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "evo"; }
  [[nodiscard]] StitchResult run(const Device& device,
                                 const StitchProblem& problem,
                                 const StitchOptions& opts) const override {
    return stitch_evo(device, problem, opts);
  }
};

class AnalyticEngine final : public Engine {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "analytic";
  }
  [[nodiscard]] StitchResult run(const Device& device,
                                 const StitchProblem& problem,
                                 const StitchOptions& opts) const override {
    return stitch_analytic(device, problem, opts);
  }
};

}  // namespace

const char* to_string(StitchEngine engine) noexcept {
  switch (engine) {
    case StitchEngine::Sa:
      return "sa";
    case StitchEngine::Evo:
      return "evo";
    case StitchEngine::Analytic:
      return "analytic";
    case StitchEngine::Portfolio:
      return "portfolio";
  }
  return "sa";
}

std::optional<StitchEngine> stitch_engine_from_string(
    std::string_view name) noexcept {
  if (name == "sa") return StitchEngine::Sa;
  if (name == "evo") return StitchEngine::Evo;
  if (name == "analytic") return StitchEngine::Analytic;
  if (name == "portfolio") return StitchEngine::Portfolio;
  return std::nullopt;
}

std::optional<std::string> stitch_options_error(const StitchOptions& opts) {
  if (opts.restarts < 1) {
    return "stitch restarts must be >= 1 (got " +
           std::to_string(opts.restarts) + ")";
  }
  if (opts.jobs < 0) {
    return "stitch jobs must be >= 0 (got " + std::to_string(opts.jobs) + ")";
  }
  if (opts.evo_population < 2) {
    return "evolutionary population must be >= 2 (got " +
           std::to_string(opts.evo_population) + ")";
  }
  if (opts.evo_generations < 0) {
    return "evolutionary generation cap must be >= 0 (got " +
           std::to_string(opts.evo_generations) + ")";
  }
  if (opts.engine_budget < 0) {
    return "engine budget must be >= 0 (got " +
           std::to_string(opts.engine_budget) + ")";
  }
  if (opts.target_cost < 0.0) {
    return "target cost must be >= 0";
  }
  for (const StitchEngine entry : opts.portfolio) {
    if (entry == StitchEngine::Portfolio) {
      return "a portfolio cannot race itself (nested 'portfolio' entry)";
    }
  }
  if (!opts.portfolio.empty() && opts.engine != StitchEngine::Portfolio) {
    return "a portfolio engine list requires engine=portfolio";
  }
  return std::nullopt;
}

const Engine& engine_for(StitchEngine kind) {
  static const SaEngine sa;
  static const EvoEngine evo;
  static const AnalyticEngine analytic;
  switch (kind) {
    case StitchEngine::Evo:
      return evo;
    case StitchEngine::Analytic:
      return analytic;
    case StitchEngine::Sa:
    case StitchEngine::Portfolio:
      break;
  }
  MF_CHECK(kind == StitchEngine::Sa);
  return sa;
}

std::string trace_to_text(const StitchResult& result) {
  std::string out = "macroflow-cost-trace v1 engine=" + result.engine +
                    " samples=" + std::to_string(result.cost_trace.size()) +
                    "\n";
  char buf[64];
  for (const auto& [move, cost] : result.cost_trace) {
    unsigned long long bits = 0;
    static_assert(sizeof bits == sizeof cost);
    std::memcpy(&bits, &cost, sizeof bits);
    std::snprintf(buf, sizeof buf, "%ld %016llx\n", move, bits);
    out += buf;
  }
  return out;
}

}  // namespace mf
