#include "stitch/macro.hpp"

namespace mf {

int BlockDesign::unique_index(const std::string& name) const {
  for (std::size_t i = 0; i < unique_modules.size(); ++i) {
    if (unique_modules[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace mf
