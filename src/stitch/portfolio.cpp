#include "stitch/portfolio.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace mf {
namespace {

struct RacedConfig {
  StitchEngine kind = StitchEngine::Sa;
  std::uint64_t seed = 0;
  bool warm_start = false;
};

/// Winner comparison. Returns true when `a` beats `b`; with equal merit the
/// caller keeps the lower config index (it iterates ascending and only
/// replaces on a strict win).
[[nodiscard]] bool beats(const StitchResult& a, const StitchResult& b,
                         double target_cost) {
  if (target_cost > 0.0) {
    const bool ra = a.target_move >= 0;
    const bool rb = b.target_move >= 0;
    if (ra != rb) return ra;
    if (ra && rb && a.target_move != b.target_move) {
      return a.target_move < b.target_move;
    }
  }
  return a.cost < b.cost;
}

}  // namespace

EngineStats engine_stats_of(const StitchResult& run, int config,
                            std::uint64_t seed, bool warm_start) {
  EngineStats stats;
  stats.engine = run.engine;
  stats.config = config;
  stats.seed = seed;
  stats.warm_start = warm_start;
  stats.moves = run.total_moves;
  stats.evals = run.accepted + run.rejected;
  stats.seconds = run.seconds;
  stats.best_cost = run.cost;
  stats.unplaced = run.unplaced;
  stats.target_move = run.target_move;
  return stats;
}

StitchResult run_portfolio(const Device& device, const StitchProblem& problem,
                           const StitchOptions& opts) {
  Timer timer;
  std::vector<StitchEngine> engines;
  if (opts.engine == StitchEngine::Portfolio) {
    engines = opts.portfolio.empty()
                  ? std::vector<StitchEngine>{StitchEngine::Analytic,
                                              StitchEngine::Sa,
                                              StitchEngine::Evo}
                  : opts.portfolio;
  } else {
    engines = {opts.engine};
  }
  const bool races_analytic =
      std::find(engines.begin(), engines.end(), StitchEngine::Analytic) !=
      engines.end();
  const bool multi_engine = engines.size() > 1;
  const int restarts = std::max(1, opts.restarts);

  // Engine-major config order; the analytic engine is seed-free, so extra
  // restarts of it would be identical copies -- it contributes one config.
  // SA configs are warm-started when the analytic engine is also racing:
  // its pre-placement is computed anyway, and the quenched warm anneal is
  // the portfolio's strongest runner. A single-engine-list portfolio stays
  // cold so `engines=sa` reproduces the historical multi-start bit-exactly.
  std::vector<RacedConfig> configs;
  for (const StitchEngine kind : engines) {
    const int reps = kind == StitchEngine::Analytic ? 1 : restarts;
    for (int k = 0; k < reps; ++k) {
      RacedConfig config;
      config.kind = kind;
      config.seed = restarts == 1
                        ? opts.seed
                        : task_seed(opts.seed, "restart:" + std::to_string(k));
      config.warm_start =
          opts.warm_start ||
          (kind == StitchEngine::Sa && multi_engine && races_analytic);
      configs.push_back(config);
    }
  }
  MF_CHECK(!configs.empty());

  // Pre-sized slots + per-config derived seeds: bit-identical at any jobs.
  std::vector<StitchResult> runs(configs.size());
  parallel_for_each(opts.jobs, configs.size(), [&](std::size_t i) {
    StitchOptions one = opts;
    one.engine = configs[i].kind;
    one.restarts = 1;
    one.jobs = 1;
    one.seed = configs[i].seed;
    one.warm_start = configs[i].warm_start;
    if (opts.engine_budget > 0) one.max_moves = opts.engine_budget;
    runs[i] = engine_for(configs[i].kind).run(device, problem, one);
  });

  std::size_t best = 0;
  long all_moves = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    all_moves += runs[i].total_moves;
    if (i > 0 && beats(runs[i], runs[best], opts.target_cost)) best = i;
  }
  std::vector<EngineStats> stats;
  stats.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    stats.push_back(engine_stats_of(runs[i], static_cast<int>(i),
                                    configs[i].seed, configs[i].warm_start));
  }
  StitchResult result = std::move(runs[best]);
  result.restart_index = static_cast<int>(best);
  result.restart_moves = all_moves;
  result.engines = std::move(stats);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace mf
