#pragma once
// Evolutionary stitcher engine (RapidLayout-style).
//
// A (mu + lambda) evolutionary search over placements: a population of
// footprint-legal placements evolves by elitist selection, position-adoption
// crossover, and legal-anchor mutation with a greedy accept bias. Every
// individual carries its own occupancy bitset and incremental HPWL engine
// (stitch/placement_state), so evaluating a mutation is O(move) -- the same
// cache structure that made the annealer fast.
//
// RapidLayout (PAPERS.md) showed this family beating SA on FPGA hard-block
// placement because crossover teleports whole sub-layouts instead of walking
// them cell by cell; here it is one configuration in the portfolio race
// rather than a replacement.
//
// Deterministic: one RNG seeded with opts.seed drives the entire run on a
// single thread; the portfolio fans out configurations, never this engine.

#include "fabric/device.hpp"
#include "stitch/engine.hpp"
#include "stitch/macro.hpp"

namespace mf {

/// One evolutionary run for one configuration (restarts/jobs ignored;
/// `opts.seed` used directly). Population size from opts.evo_population;
/// move budget from opts.max_moves (0 = an SA-equivalent schedule budget,
/// moves_per_temp x temperature-step count, so "equal budget" comparisons
/// against SA hold by construction).
[[nodiscard]] StitchResult stitch_evo(const Device& device,
                                      const StitchProblem& problem,
                                      const StitchOptions& opts);

}  // namespace mf
