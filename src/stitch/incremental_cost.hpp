#pragma once
// Incremental half-perimeter wirelength (HPWL) engine for the SA stitcher.
//
// The annealer's cost of a move is the change in HPWL over the nets of the
// moved instance. The historical code recomputed every touched net's
// bounding box from scratch -- O(net fan-in) per net per probe. This engine
// caches, per net, the bounding box of the placed instance centers plus the
// *multiplicity* of instances sitting on each of the four boundaries
// (VPR-style incremental bounding boxes). A move then updates each touched
// net in O(1), falling back to an exact rescan of one net only when the
// instance that alone defined a boundary moves inward.
//
// Exactness is the contract, not an approximation: every cached per-net
// cost is bitwise identical to what a from-scratch scan of that net would
// produce (min/max of a set of doubles does not depend on evaluation order,
// and the cost expression is the same), which is what lets the annealer's
// accept/reject decisions -- and therefore whole SA trajectories -- stay
// bit-identical to the pre-incremental engine. A debug build asserts
// `|total() - full_recompute()| < 1e-6` at every temperature step.

#include <vector>

#include "stitch/macro.hpp"

namespace mf {

class IncrementalWirelength {
 public:
  explicit IncrementalWirelength(const StitchProblem& problem);

  /// Set `instance`'s anchor. Handles both a fresh placement and a move of
  /// an already-placed instance; every net of the instance is updated.
  void place(int instance, int col, int row);

  /// Remove `instance` from the placement. No-op when not placed.
  void unplace(int instance);

  /// Unplace everything (used when restoring a best-so-far snapshot).
  void clear();

  /// Cached HPWL of one net (0 when fewer than two instances are placed).
  [[nodiscard]] double net_cost(int net) const {
    return boxes_[static_cast<std::size_t>(net)].cost;
  }

  /// Sum of the cached costs of the instance's nets, in adjacency order --
  /// the same order (and therefore the same floating-point sum) as a naive
  /// per-net rescan loop.
  [[nodiscard]] double instance_cost(int instance) const;

  /// Sum of all cached net costs in net-index order; bitwise equal to
  /// `full_recompute()` by construction.
  [[nodiscard]] double total() const;

  /// From-scratch HPWL over the engine's current placement, ignoring every
  /// cache. Reference for the debug invariant and the property tests.
  [[nodiscard]] double full_recompute() const;

  [[nodiscard]] bool placed(int instance) const {
    return placed_[static_cast<std::size_t>(instance)] != 0;
  }

  [[nodiscard]] const std::vector<int>& nets_of(int instance) const {
    return nets_of_[static_cast<std::size_t>(instance)];
  }

  /// Number of O(fan-in) boundary rescans taken so far (perf accounting).
  [[nodiscard]] long rescans() const noexcept { return rescans_; }

 private:
  /// Bounding box of one net's placed instance centers. `at_*` counts how
  /// many placed centers sit exactly on that boundary; a removal only needs
  /// a rescan when it takes a boundary's count to zero.
  struct NetBox {
    double cmin = 0.0, cmax = 0.0;
    double rmin = 0.0, rmax = 0.0;
    int placed = 0;
    int at_cmin = 0, at_cmax = 0;
    int at_rmin = 0, at_rmax = 0;
    double cost = 0.0;
  };

  void add_center(NetBox& box, double cc, double rr);
  /// Cheap removal; returns false when the box must be rescanned (the
  /// removed center was the last one on some boundary).
  bool remove_center(NetBox& box, double cc, double rr);
  void rescan_net(int net);
  void refresh_cost(int net);

  const StitchProblem* problem_;
  std::vector<NetBox> boxes_;
  std::vector<std::vector<int>> nets_of_;
  std::vector<double> half_w_, half_h_;  ///< per-instance center offsets
  std::vector<double> center_c_, center_r_;
  std::vector<char> placed_;
  long rescans_ = 0;
};

}  // namespace mf
