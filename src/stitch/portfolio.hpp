#pragma once
// Engine portfolio race for the stitcher.
//
// Runs engine x restart configurations on the deterministic thread pool and
// returns the winner. Two policies:
//   * best-at-budget (default): every configuration runs to completion
//     (optionally capped by StitchOptions::engine_budget); the lowest final
//     cost wins, ties to the lowest config index.
//   * first-to-target (target_cost > 0): the configuration that reached
//     cost <= target in the fewest moves wins (ties to the lowest config
//     index); when none reached it, best-at-budget decides.
//
// Every configuration runs to completion either way -- there is no
// cross-configuration early kill -- which is what keeps the race
// bit-identical at any `jobs` value: a slot's result can never depend on a
// sibling's scheduling. Cancellation (CancelToken / deadline) reaches every
// configuration through the shared token in the options.
//
// Config list construction (stable, documented order): for each engine in
// the raced list, `restarts` configurations (the analytic engine, being
// seed-free, contributes exactly one). Seeds follow the multi-start rule:
// restarts == 1 uses opts.seed directly -- so a portfolio of
// `engines=sa, restarts=1` reproduces the historical single-start SA run
// move for move -- and restarts == K > 1 seeds restart k with
// task_seed(opts.seed, "restart:<k>") for every engine alike.

#include <cstdint>
#include <string_view>

#include "fabric/device.hpp"
#include "stitch/engine.hpp"
#include "stitch/macro.hpp"

namespace mf {

/// Race the configured engines and return the winning result with aggregate
/// accounting (restart_index = winning config, restart_moves = moves summed
/// over all configs, engines = per-config EngineStats).
[[nodiscard]] StitchResult run_portfolio(const Device& device,
                                         const StitchProblem& problem,
                                         const StitchOptions& opts);

/// Per-configuration stats row derived from one engine run.
[[nodiscard]] EngineStats engine_stats_of(const StitchResult& run, int config,
                                          std::uint64_t seed, bool warm_start);

}  // namespace mf
