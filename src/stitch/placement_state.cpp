#include "stitch/placement_state.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace mf {

PlacementContext::PlacementContext(const Device& device,
                                   const StitchProblem& problem,
                                   const StitchOptions& opts)
    : device_(&device), problem_(&problem) {
  anchors_.resize(problem.macros.size());
  for (std::size_t m = 0; m < problem.macros.size(); ++m) {
    const Macro& macro = problem.macros[m];
    anchors_[m] =
        compatible_anchors(device, macro.footprint, macro.pblock.row_lo);
    std::sort(anchors_[m].begin(), anchors_[m].end());
  }
  greedy_order_.resize(problem.instances.size());
  std::iota(greedy_order_.begin(), greedy_order_.end(), 0);
  std::sort(greedy_order_.begin(), greedy_order_.end(), [&](int a, int b) {
    const std::size_t ca = anchors_of(a).size();
    const std::size_t cb = anchors_of(b).size();
    if (ca != cb) return ca < cb;
    const long aa = macro_of(a).area();
    const long bb = macro_of(b).area();
    if (aa != bb) return aa > bb;  // big blocks first
    return a < b;
  });
  penalty_ = opts.unplaced_penalty > 0.0
                 ? opts.unplaced_penalty
                 : 4.0 * (device.num_columns() + device.rows());
}

PlacementState::PlacementState(const PlacementContext& ctx)
    : ctx_(&ctx),
      grid_(ctx.device().num_columns(), ctx.device().rows()),
      cost_engine_(ctx.problem()),
      positions_(ctx.problem().instances.size()),
      unplaced_(static_cast<int>(ctx.problem().instances.size())) {}

void PlacementState::fill_cells(int instance, int col, int row) {
  const Macro& macro = ctx_->macro_of(instance);
  grid_.fill(col, row, macro.footprint.width(), macro.footprint.height);
}

void PlacementState::clear_cells(int instance, int col, int row) {
  const Macro& macro = ctx_->macro_of(instance);
  grid_.clear(col, row, macro.footprint.width(), macro.footprint.height);
}

bool PlacementState::region_free(int instance, int col, int row) {
  const Macro& macro = ctx_->macro_of(instance);
  const int w = macro.footprint.width();
  const int h = macro.footprint.height;
  const BlockPlacement& p = positions_[static_cast<std::size_t>(instance)];
  if (!p.placed()) return grid_.region_free(col, row, w, h);
  // Self-overlap: lift the instance's own cells for the probe, then restore
  // (the grid is bit-identical on return).
  clear_cells(instance, p.col, p.row);
  const bool free = grid_.region_free(col, row, w, h);
  fill_cells(instance, p.col, p.row);
  return free;
}

bool PlacementState::try_place(int instance, int col, int row) {
  const auto i = static_cast<std::size_t>(instance);
  MF_CHECK(!positions_[i].placed());
  const Macro& macro = ctx_->macro_of(instance);
  if (!grid_.region_free(col, row, macro.footprint.width(),
                         macro.footprint.height)) {
    return false;
  }
  fill_cells(instance, col, row);
  cost_engine_.place(instance, col, row);
  positions_[i] = {col, row};
  --unplaced_;
  return true;
}

bool PlacementState::try_move(int instance, int col, int row) {
  const auto i = static_cast<std::size_t>(instance);
  const BlockPlacement old = positions_[i];
  MF_CHECK(old.placed());
  if (col == old.col && row == old.row) return true;
  const Macro& macro = ctx_->macro_of(instance);
  clear_cells(instance, old.col, old.row);
  if (!grid_.region_free(col, row, macro.footprint.width(),
                         macro.footprint.height)) {
    fill_cells(instance, old.col, old.row);
    return false;
  }
  fill_cells(instance, col, row);
  cost_engine_.place(instance, col, row);
  positions_[i] = {col, row};
  return true;
}

void PlacementState::unplace(int instance) {
  const auto i = static_cast<std::size_t>(instance);
  const BlockPlacement& p = positions_[i];
  if (!p.placed()) return;
  clear_cells(instance, p.col, p.row);
  cost_engine_.unplace(instance);
  positions_[i] = BlockPlacement{};
  ++unplaced_;
}

void PlacementState::clear() {
  grid_.reset();
  cost_engine_.clear();
  positions_.assign(positions_.size(), BlockPlacement{});
  unplaced_ = static_cast<int>(positions_.size());
}

int PlacementState::first_free_anchor(int instance) const {
  const auto& candidates = ctx_->anchors_of(instance);
  const Macro& macro = ctx_->macro_of(instance);
  const int w = macro.footprint.width();
  const int h = macro.footprint.height;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (grid_.region_free(candidates[i].first, candidates[i].second, w, h)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int PlacementState::nearest_free_anchor(int instance, double col,
                                        double row) const {
  const auto& candidates = ctx_->anchors_of(instance);
  const Macro& macro = ctx_->macro_of(instance);
  const int w = macro.footprint.width();
  const int h = macro.footprint.height;
  // Probe anchors in ascending Manhattan distance from the target point so
  // the first free one is the answer; ties resolve to the lowest anchor
  // index (stable sort over a distance-only key). The sort is O(A log A)
  // once per snap, which beats probing every anchor's footprint on crowded
  // grids where most probes fail.
  std::vector<std::pair<double, int>> order;
  order.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double d = std::abs(candidates[i].first - col) +
                     std::abs(candidates[i].second - row);
    order.emplace_back(d, static_cast<int>(i));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [dist, idx] : order) {
    const auto& [c, r] = candidates[static_cast<std::size_t>(idx)];
    if (grid_.region_free(c, r, w, h)) return idx;
  }
  return -1;
}

void PlacementState::greedy_fill() {
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<int> parked;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!positions_[i].placed()) parked.push_back(static_cast<int>(i));
    }
    std::sort(parked.begin(), parked.end(), [&](int a, int b) {
      const long aa = ctx_->macro_of(a).area();
      const long bb = ctx_->macro_of(b).area();
      if (aa != bb) return aa > bb;
      return a < b;
    });
    for (int inst : parked) {
      const int hit = first_free_anchor(inst);
      if (hit < 0) continue;
      const auto& anchor =
          ctx_->anchors_of(inst)[static_cast<std::size_t>(hit)];
      MF_CHECK(try_place(inst, anchor.first, anchor.second));
      progress = true;
    }
  }
}

void finalize_from_state(const PlacementContext& ctx,
                         const PlacementState& state, StitchResult& result) {
  result.positions = state.positions();
  result.unplaced = state.unplaced();
  result.wirelength = state.wirelength();
  result.cost = state.cost();

  long covered = 0;
  for (std::size_t i = 0; i < result.positions.size(); ++i) {
    if (!result.positions[i].placed()) continue;
    const Macro& macro = ctx.macro_of(static_cast<int>(i));
    int clb_cols = 0;
    for (ColumnKind kind : macro.footprint.kinds) {
      if (is_clb(kind)) ++clb_cols;
    }
    covered += static_cast<long>(clb_cols) * macro.footprint.height;
  }
  result.coverage = static_cast<double>(covered) /
                    std::max(1, ctx.device().totals().slices);

  const double threshold = result.cost * 1.01 + 1e-9;
  result.converge_move = result.total_moves;
  for (const auto& [move, cost] : result.cost_trace) {
    if (cost <= threshold) {
      result.converge_move = move;
      break;
    }
  }
}

}  // namespace mf
