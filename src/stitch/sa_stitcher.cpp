#include "stitch/sa_stitcher.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/indexed_set.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "stitch/analytic_placer.hpp"
#include "stitch/incremental_cost.hpp"
#include "stitch/occupancy.hpp"
#include "stitch/portfolio.hpp"

namespace mf {
namespace {

/// cost_trace cap: one sample per temperature step until the schedule gets
/// pathological, then stride-doubled so the trace never exceeds ~4k entries.
constexpr std::size_t kTraceCap = 4096;

/// Mutable SA state over one stitching run (one restart).
///
/// Two cost/grid engines share this walk, selected by
/// StitchOptions::reference_engine:
///   * incremental (default): cached per-net bounding boxes, a bitset
///     occupancy grid, and Fenwick order-statistics block selection;
///   * reference: the pre-incremental code -- naive per-net rescans, a
///     per-cell occupant grid, O(instances) candidate list rebuilds.
/// Both draw the same RNG sequence and compute bit-identical move deltas
/// (per-net min/max does not depend on how it is maintained), so they
/// produce bit-identical results; tests and bench_stitch rely on that.
class Annealer {
 public:
  Annealer(const Device& device, const StitchProblem& problem,
           const StitchOptions& opts)
      : device_(device),
        problem_(problem),
        opts_(opts),
        rng_(opts.seed),
        incremental_(!opts.reference_engine) {}

  StitchResult run() {
    timer_.restart();
    prepare();
    if (opts_.warm_start) {
      warm_initial();
    } else {
      greedy_initial();
    }
    anneal();
    final_fill();
    finish();
    result_.engine = "sa";
    result_.seconds = timer_.seconds();
    result_.restart_moves = result_.total_moves;
    return std::move(result_);
  }

 private:
  // -- setup ----------------------------------------------------------------
  void prepare() {
    if (incremental_) {
      bits_ = OccupancyGrid(device_.num_columns(), device_.rows());
      cost_engine_.emplace(problem_);
      placed_set_ = IndexedIdSet(problem_.instances.size());
      parked_set_ = IndexedIdSet(problem_.instances.size());
      for (std::size_t i = 0; i < problem_.instances.size(); ++i) {
        parked_set_.insert(static_cast<int>(i));
      }
    } else {
      grid_.assign(static_cast<std::size_t>(device_.num_columns()) *
                       static_cast<std::size_t>(device_.rows()),
                   -1);
      nets_of_.assign(problem_.instances.size(), {});
      for (std::size_t n = 0; n < problem_.nets.size(); ++n) {
        for (int inst : problem_.nets[n].instances) {
          nets_of_[static_cast<std::size_t>(inst)].push_back(
              static_cast<int>(n));
        }
      }
    }
    anchors_.resize(problem_.macros.size());
    anchor_runs_.resize(problem_.macros.size());
    for (std::size_t m = 0; m < problem_.macros.size(); ++m) {
      const Macro& macro = problem_.macros[m];
      anchors_[m] = compatible_anchors(device_, macro.footprint,
                                       macro.pblock.row_lo);
      // compatible_anchors already emits (col, row)-ascending; sorting here
      // is an idempotent guard so the binary-searched scan windows below
      // stay correct if a future anchor generator emits another order.
      std::sort(anchors_[m].begin(), anchors_[m].end());
      build_runs(static_cast<int>(m));
    }
    positions_.assign(problem_.instances.size(), BlockPlacement{});
    scan_cache_.assign(problem_.instances.size(), ScanCache{});
    unplaced_ = static_cast<int>(problem_.instances.size());
    if (opts_.unplaced_penalty > 0.0) {
      penalty_ = opts_.unplaced_penalty;
    } else {
      penalty_ = 4.0 * (device_.num_columns() + device_.rows());
    }
  }

  [[nodiscard]] const Macro& macro_of(int instance) const {
    return problem_.macros[static_cast<std::size_t>(
        problem_.instances[static_cast<std::size_t>(instance)].macro)];
  }

  [[nodiscard]] const std::vector<std::pair<int, int>>& anchors_of(
      int instance) const {
    return anchors_[static_cast<std::size_t>(
        problem_.instances[static_cast<std::size_t>(instance)].macro)];
  }

  // -- occupancy ------------------------------------------------------------
  [[nodiscard]] int& grid_at(int col, int row) {
    return grid_[static_cast<std::size_t>(col) *
                     static_cast<std::size_t>(device_.rows()) +
                 static_cast<std::size_t>(row)];
  }

  [[nodiscard]] bool region_free(int instance, int col, int row) {
    const Macro& macro = macro_of(instance);
    const int w = macro.footprint.width();
    const int h = macro.footprint.height;
    if (incremental_) return bits_.region_free(col, row, w, h);
    for (int c = col; c < col + w; ++c) {
      for (int r = row; r < row + h; ++r) {
        const int occupant = grid_at(c, r);
        if (occupant != -1 && occupant != instance) return false;
      }
    }
    return true;
  }

  /// Mark / unmark the instance's footprint cells without touching its
  /// recorded position (used to lift a block while probing destinations).
  void fill_cells(int instance, int col, int row) {
    const Macro& macro = macro_of(instance);
    if (incremental_) {
      bits_.fill(col, row, macro.footprint.width(), macro.footprint.height);
      return;
    }
    for (int c = col; c < col + macro.footprint.width(); ++c) {
      for (int r = row; r < row + macro.footprint.height; ++r) {
        grid_at(c, r) = instance;
      }
    }
  }

  void clear_cells(int instance, int col, int row) {
    const Macro& macro = macro_of(instance);
    if (incremental_) {
      bits_.clear(col, row, macro.footprint.width(), macro.footprint.height);
      return;
    }
    for (int c = col; c < col + macro.footprint.width(); ++c) {
      for (int r = row; r < row + macro.footprint.height; ++r) {
        grid_at(c, r) = -1;
      }
    }
  }

  /// Place the instance at (col, row). The caller has already cleared the
  /// old footprint cells when this is a move of a placed instance.
  void place(int instance, int col, int row) {
    fill_cells(instance, col, row);
    const auto i = static_cast<std::size_t>(instance);
    if (!positions_[i].placed()) {
      --unplaced_;
      if (incremental_) {
        parked_set_.erase(instance);
        placed_set_.insert(instance);
      }
    }
    if (incremental_) {
      cost_engine_->place(instance, col, row);
      ++occupancy_epoch_;
    }
    positions_[i] = {col, row};
  }

  void unplace(int instance) {
    const auto i = static_cast<std::size_t>(instance);
    const BlockPlacement& p = positions_[i];
    if (!p.placed()) return;
    clear_cells(instance, p.col, p.row);
    ++unplaced_;
    if (incremental_) {
      placed_set_.erase(instance);
      parked_set_.insert(instance);
      cost_engine_->unplace(instance);
      ++occupancy_epoch_;
    }
    positions_[i] = BlockPlacement{};
  }

  // -- cost -----------------------------------------------------------------
  [[nodiscard]] std::pair<double, double> center_of(int instance) const {
    const BlockPlacement& p = positions_[static_cast<std::size_t>(instance)];
    const Macro& macro = macro_of(instance);
    return {p.col + macro.footprint.width() / 2.0,
            p.row + macro.footprint.height / 2.0};
  }

  [[nodiscard]] double net_cost(int net) const {
    const BlockNet& bn = problem_.nets[static_cast<std::size_t>(net)];
    double c0 = 0.0;
    double c1 = 0.0;
    double r0 = 0.0;
    double r1 = 0.0;
    int count = 0;
    for (int inst : bn.instances) {
      if (!positions_[static_cast<std::size_t>(inst)].placed()) continue;
      const auto [cc, rr] = center_of(inst);
      if (count == 0) {
        c0 = c1 = cc;
        r0 = r1 = rr;
      } else {
        c0 = std::min(c0, cc);
        c1 = std::max(c1, cc);
        r0 = std::min(r0, rr);
        r1 = std::max(r1, rr);
      }
      ++count;
    }
    if (count < 2) return 0.0;
    return bn.weight * ((c1 - c0) + (r1 - r0));
  }

  [[nodiscard]] double full_wirelength() const {
    if (incremental_) return cost_engine_->total();
    double total = 0.0;
    for (std::size_t n = 0; n < problem_.nets.size(); ++n) {
      total += net_cost(static_cast<int>(n));
    }
    return total;
  }

  /// HPWL restricted to the instance's nets -- the cost term a move of this
  /// instance can change. Cached sum on the incremental engine, per-net
  /// rescans on the reference engine; bitwise equal either way.
  [[nodiscard]] double local_cost(int instance) const {
    if (incremental_) return cost_engine_->instance_cost(instance);
    double total = 0.0;
    for (int n : nets_of_[static_cast<std::size_t>(instance)]) {
      total += net_cost(n);
    }
    return total;
  }

  [[nodiscard]] int unplaced_count() const { return unplaced_; }

  // -- block selection ------------------------------------------------------
  /// k-th placed instance in ascending id order (the order the historical
  /// code materialised as a vector each move).
  [[nodiscard]] int placed_kth(std::size_t k) {
    if (incremental_) return placed_set_.kth(static_cast<int>(k));
    return placed_scratch_[k];
  }

  [[nodiscard]] std::size_t placed_size() {
    if (incremental_) return static_cast<std::size_t>(placed_set_.size());
    placed_scratch_.clear();
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (positions_[i].placed()) placed_scratch_.push_back(static_cast<int>(i));
    }
    return placed_scratch_.size();
  }

  [[nodiscard]] int parked_kth(std::size_t k) {
    if (incremental_) return parked_set_.kth(static_cast<int>(k));
    return parked_scratch_[k];
  }

  [[nodiscard]] std::size_t parked_size() {
    if (incremental_) return static_cast<std::size_t>(parked_set_.size());
    parked_scratch_.clear();
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!positions_[i].placed()) parked_scratch_.push_back(static_cast<int>(i));
    }
    return parked_scratch_.size();
  }

  // -- initial placement ----------------------------------------------------
  void greedy_initial() {
    std::vector<int> order(problem_.instances.size());
    std::iota(order.begin(), order.end(), 0);
    // Anchor-constrained blocks first (BRAM/DSP users have few legal
    // positions -- give them first pick), then big blocks before small.
    auto anchor_count = [&](int inst) { return anchors_of(inst).size(); };
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const std::size_t ca = anchor_count(a);
      const std::size_t cb = anchor_count(b);
      if (ca != cb) return ca < cb;
      const long aa = macro_of(a).area();
      const long bb = macro_of(b).area();
      if (aa != bb) return aa > bb;  // big blocks first
      return a < b;
    });
    for (int inst : order) {
      const auto& candidates = anchors_of(inst);
      const int hit = first_free_anchor(inst, candidates.size());
      if (hit >= 0) {
        place(inst, candidates[static_cast<std::size_t>(hit)].first,
              candidates[static_cast<std::size_t>(hit)].second);
      }
    }
  }

  /// Seed the walk with the deterministic analytic pre-placement instead of
  /// the greedy order. The pre-placer's output is footprint-legal and
  /// overlap-free by construction; the region_free probe below is a cheap
  /// belt-and-braces guard against a future legalizer bug corrupting the
  /// occupancy state.
  void warm_initial() {
    const std::vector<BlockPlacement> warm =
        analytic_placement(device_, problem_);
    MF_CHECK(warm.size() == positions_.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
      if (!warm[i].placed()) continue;
      MF_CHECK(region_free(static_cast<int>(i), warm[i].col, warm[i].row));
      place(static_cast<int>(i), warm[i].col, warm[i].row);
    }
  }

  /// First-to-target bookkeeping: record the move index the walk's cost
  /// first reached the target. Pure observation -- it never perturbs the
  /// walk, so a targeted run stays move-for-move identical to an untargeted
  /// one.
  void note_target(double cost) {
    if (opts_.target_cost > 0.0 && result_.target_move < 0 &&
        cost <= opts_.target_cost) {
      result_.target_move = result_.total_moves;
    }
  }

  // -- annealing ------------------------------------------------------------
  void anneal() {
    wirelength_ = full_wirelength();
    double cost = wirelength_ + penalty_ * unplaced_count();
    // Warm starts quench from a low temperature: the pre-placement is
    // already good, and the historical T0 would scramble it back to random
    // before any downhill work happens. Cold starts keep the historical
    // auto schedule bit-exactly.
    const double auto_t0 = 0.2 * (device_.num_columns() + device_.rows());
    const double t0 = opts_.initial_temp > 0.0
                          ? opts_.initial_temp
                          : (opts_.warm_start ? 0.05 * auto_t0 : auto_t0);
    const int moves_per_temp =
        opts_.moves_per_temp > 0
            ? opts_.moves_per_temp
            : 10 * static_cast<int>(problem_.instances.size());
    const double t_min = t0 * opts_.min_temp_ratio;

    record_trace(0, cost);
    note_target(cost);
    double stagnant_best = cost;
    int stagnant_temps = 0;
    double best_cost = cost;
    std::vector<BlockPlacement> best_positions = positions_;
    for (double temp = t0; temp > t_min && !result_.watchdog_fired;
         temp *= opts_.cooling) {
      for (int k = 0; k < moves_per_temp; ++k) {
        // Watchdog: a budgeted anneal stops mid-schedule and degrades to
        // the best snapshot seen so far (restored below). The wall-clock and
        // cancel-token checks are amortised over 32 moves to keep the hot
        // loop cheap (the token's deadline path consults a clock too).
        if ((opts_.max_moves > 0 && result_.total_moves >= opts_.max_moves) ||
            (opts_.max_seconds > 0.0 && result_.total_moves % 32 == 0 &&
             timer_.seconds() >= opts_.max_seconds) ||
            (opts_.cancel != nullptr && result_.total_moves % 32 == 0 &&
             opts_.cancel->cancelled())) {
          result_.watchdog_fired = true;
          break;
        }
        ++result_.total_moves;
        if (opts_.place_retry_every > 0 &&
            result_.total_moves % opts_.place_retry_every == 0 &&
            try_unpark(cost)) {
          note_target(cost);
          continue;
        }
        displace_move(temp, cost);
        note_target(cost);
      }
      record_trace(result_.total_moves, cost);
#if !defined(NDEBUG)
      // Debug invariant: the cached incremental wirelength never drifts from
      // a from-scratch recompute (it is exact by construction).
      if (incremental_) {
        MF_CHECK(std::abs(cost_engine_->total() -
                          cost_engine_->full_recompute()) < 1e-6);
      }
#endif
      if (cost < best_cost) {
        best_cost = cost;
        best_positions = positions_;
      }
      // Quiescence detection: when the cost has not improved by more than
      // 0.1% for a while, further cooling is wasted annealing. Easier
      // placement problems (tighter macros, fewer illegal moves) quiesce
      // sooner -- the mechanism behind the paper's "converged 1.37x faster".
      // Only once every block is placed: while blocks are parked, progress
      // arrives in rare unpark events that a stagnation window would miss.
      if (opts_.stagnation_temps > 0 && unplaced_count() == 0) {
        if (cost < stagnant_best * 0.999) {
          stagnant_best = cost;
          stagnant_temps = 0;
        } else if (++stagnant_temps >= opts_.stagnation_temps) {
          break;
        }
      }
    }
    // Keep the best solution seen, not wherever the walk happened to stop.
    if (best_cost < cost - 1e-9) {
      restore(best_positions);
    }
  }

  /// Append one (move, cost) sample; when the trace hits the cap, drop every
  /// other retained sample and double the sampling stride. With sane
  /// schedules (< 4096 temperature steps) this never fires and the trace is
  /// exactly the historical one-sample-per-step record.
  void record_trace(long move, double cost) {
    if (trace_step_++ % trace_stride_ != 0) return;
    auto& trace = result_.cost_trace;
    trace.emplace_back(move, cost);
    if (trace.size() >= kTraceCap) {
      std::size_t keep = 0;
      for (std::size_t i = 0; i < trace.size(); i += 2) trace[keep++] = trace[i];
      trace.resize(keep);
      trace_stride_ *= 2;
    }
  }

  /// Rebuild the occupancy state and positions from a snapshot.
  void restore(const std::vector<BlockPlacement>& snapshot) {
    if (incremental_) {
      bits_.reset();
      cost_engine_->clear();
      placed_set_.clear();
      parked_set_.clear();
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        parked_set_.insert(static_cast<int>(i));
      }
    } else {
      std::fill(grid_.begin(), grid_.end(), -1);
    }
    positions_.assign(positions_.size(), BlockPlacement{});
    unplaced_ = static_cast<int>(positions_.size());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (snapshot[i].placed()) {
        place(static_cast<int>(i), snapshot[i].col, snapshot[i].row);
      }
    }
  }

  /// Group a macro's (col, row)-sorted anchor list into per-column runs so
  /// the ordered free-anchor scan can slide one row-occupancy test down each
  /// column instead of probing every anchor's full h-row footprint.
  void build_runs(int macro_index) {
    const auto& list = anchors_[static_cast<std::size_t>(macro_index)];
    auto& runs = anchor_runs_[static_cast<std::size_t>(macro_index)];
    runs.clear();
    std::size_t i = 0;
    while (i < list.size()) {
      AnchorRun run;
      run.begin = i;
      run.col = list[i].first;
      run.first_row = list[i].second;
      std::size_t j = i + 1;
      while (j < list.size() && list[j].first == run.col) ++j;
      run.end = j;
      run.stride = j - i > 1 ? list[i + 1].second - run.first_row : 1;
      run.uniform = run.stride > 0;
      for (std::size_t k = i + 1; run.uniform && k < j; ++k) {
        run.uniform = list[k].second - list[k - 1].second == run.stride;
      }
      runs.push_back(run);
      i = j;
    }
  }

  /// First free anchor of `instance` among candidates[0, end), in (col, row)
  /// order -- the compaction / fill scan. Returns the index or -1.
  ///
  /// The incremental engine walks the column runs with a sliding count of
  /// consecutive unblocked rows: anchor (col, s) is free exactly when the h
  /// rows [s, s+h) each have the footprint's column span free, i.e. when the
  /// run of free rows ending at s+h-1 is >= h. Visiting rows in ascending
  /// order yields the same first hit as probing every anchor's footprint,
  /// with one O(words) row test per row instead of h per anchor.
  [[nodiscard]] int first_free_anchor(int instance, std::size_t end) {
    const auto& candidates = anchors_of(instance);
    if (!incremental_) {
      for (std::size_t i = 0; i < end; ++i) {
        if (region_free(instance, candidates[i].first, candidates[i].second)) {
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    // Negative-result memoization. Within one occupancy epoch (no committed
    // place/unplace since), the scan is a pure function of (instance, end):
    // the instance's own placement state -- lifted during compaction probes,
    // absent during unpark probes -- is itself fixed for the epoch. A failed
    // scan over [0, e) therefore stays failed for every end <= e until the
    // epoch advances. On a crowded device almost every scan fails and the
    // epoch advances only on accepted moves, so this skips nearly all of
    // them.
    if (scan_known_failed(instance, end)) return -1;
    ScanCache& cache = scan_cache_[static_cast<std::size_t>(instance)];
    const int hit = scan_free_anchor(instance, end);
    if (hit < 0) {
      if (cache.epoch != occupancy_epoch_) {
        cache.epoch = occupancy_epoch_;
        cache.failed_end = end;
      } else {
        cache.failed_end = std::max(cache.failed_end, end);
      }
    }
    return hit;
  }

  /// True when the memo proves the ordered scan over [0, end) fails at the
  /// current occupancy epoch.
  [[nodiscard]] bool scan_known_failed(int instance, std::size_t end) const {
    const ScanCache& cache = scan_cache_[static_cast<std::size_t>(instance)];
    return cache.epoch == occupancy_epoch_ && end <= cache.failed_end;
  }

  /// The uncached ordered scan behind first_free_anchor (incremental mode).
  [[nodiscard]] int scan_free_anchor(int instance, std::size_t end) {
    const auto& candidates = anchors_of(instance);
    const Macro& macro = macro_of(instance);
    const int w = macro.footprint.width();
    const int h = macro.footprint.height;
    const auto& runs = anchor_runs_[static_cast<std::size_t>(
        problem_.instances[static_cast<std::size_t>(instance)].macro)];
    for (const AnchorRun& run : runs) {
      if (run.begin >= end) break;
      const std::size_t last = std::min(run.end, end);
      if (!run.uniform) {
        for (std::size_t i = run.begin; i < last; ++i) {
          if (bits_.region_free(candidates[i].first, candidates[i].second, w,
                                h)) {
            return static_cast<int>(i);
          }
        }
        continue;
      }
      const int last_row = candidates[last - 1].second;
      int free_rows = 0;
      for (int r = run.first_row; r <= last_row + h - 1; ++r) {
        free_rows = bits_.region_free(run.col, r, w, 1) ? free_rows + 1 : 0;
        if (free_rows < h) continue;
        const int offset = r - h + 1 - run.first_row;
        if (offset % run.stride != 0) continue;
        return static_cast<int>(run.begin) + offset / run.stride;
      }
    }
    return -1;
  }

  /// Attempt to place a parked block; always accepted when legal (the
  /// penalty dwarfs any wirelength increase). Mostly samples random anchors
  /// (cheap); every few calls it scans the instance's full anchor list so a
  /// lone remaining hole is found eventually.
  bool try_unpark(double& cost) {
    const std::size_t parked = parked_size();
    if (parked == 0) return false;
    const int inst = parked_kth(rng_.index(parked));
    const auto& candidates = anchors_of(inst);
    if (candidates.empty()) return false;

    auto place_at = [&](int col, int row) {
      const double before = local_cost(inst);
      place(inst, col, row);
      cost += local_cost(inst) - before - penalty_;
      ++result_.accepted;
    };
    for (int attempt = 0; attempt < 10; ++attempt) {
      const auto& [col, row] = candidates[rng_.index(candidates.size())];
      if (!region_free(inst, col, row)) continue;
      place_at(col, row);
      return true;
    }
    if (++unpark_failures_ % 8 == 0) {
      const int hit = first_free_anchor(inst, candidates.size());
      if (hit >= 0) {
        place_at(candidates[static_cast<std::size_t>(hit)].first,
                 candidates[static_cast<std::size_t>(hit)].second);
        return true;
      }
    }
    ++result_.illegal;
    return true;  // consumed the move
  }

  /// Post-anneal greedy fill: repeatedly scan every parked block's full
  /// anchor list (largest blocks first) until no more fit. RW's stitcher
  /// ends the same way -- whatever still fits is placed, the rest is
  /// reported unplaced (Figure 5's counts).
  void final_fill() {
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<int> parked;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (!positions_[i].placed()) parked.push_back(static_cast<int>(i));
      }
      std::sort(parked.begin(), parked.end(), [&](int a, int b) {
        return macro_of(a).area() > macro_of(b).area();
      });
      for (int inst : parked) {
        const auto& candidates = anchors_of(inst);
        const int hit = first_free_anchor(inst, candidates.size());
        if (hit < 0) continue;
        place(inst, candidates[static_cast<std::size_t>(hit)].first,
              candidates[static_cast<std::size_t>(hit)].second);
        progress = true;
      }
    }
  }

  void displace_move(double temp, double& cost) {
    const std::size_t placed = placed_size();
    if (placed == 0) return;
    const int inst = placed_kth(rng_.index(placed));
    const auto& candidates = anchors_of(inst);
    if (candidates.empty()) return;

    // 1-in-5 moves are compaction attempts: try the lowest-index (leftmost)
    // free anchor, which keeps free space contiguous instead of fragmenting
    // it across the fabric. The rest are uniform random displacements.
    int col = -1;
    int row = -1;
    const BlockPlacement old = positions_[static_cast<std::size_t>(inst)];
    if (rng_.index(5) == 0) {
      // The anchor list is (col, row)-sorted, so the candidates strictly
      // left of / below the current anchor are exactly [0, lower_bound) --
      // a binary-searched window instead of a scan-until-current walk.
      const std::size_t end = static_cast<std::size_t>(
          std::lower_bound(candidates.begin(), candidates.end(),
                           std::make_pair(old.col, old.row)) -
          candidates.begin());
      // When the memo already knows the lifted scan fails this epoch, skip
      // the lift itself -- the grid round-trip is the expensive part.
      if (incremental_ && scan_known_failed(inst, end)) {
        ++result_.illegal;
        return;
      }
      clear_cells(inst, old.col, old.row);
      const int hit = first_free_anchor(inst, end);
      if (hit >= 0) {
        col = candidates[static_cast<std::size_t>(hit)].first;
        row = candidates[static_cast<std::size_t>(hit)].second;
      }
      fill_cells(inst, old.col, old.row);
      if (col < 0) {
        ++result_.illegal;
        return;
      }
    } else {
      const auto& pick = candidates[rng_.index(candidates.size())];
      col = pick.first;
      row = pick.second;
    }
    if (col == old.col && row == old.row) return;

    // Lift the block so self-overlap does not block the move -- but only
    // when the old and new rectangles can actually intersect; a disjoint
    // destination probes identically on the unlifted grid, saving the
    // clear/fill round-trip on the (common) illegal outcome.
    const Macro& macro = macro_of(inst);
    const int w = macro.footprint.width();
    const int h = macro.footprint.height;
    const bool lift = !incremental_ || (col < old.col + w && old.col < col + w &&
                                        row < old.row + h && old.row < row + h);
    if (lift) {
      clear_cells(inst, old.col, old.row);
      if (!region_free(inst, col, row)) {
        fill_cells(inst, old.col, old.row);
        ++result_.illegal;
        return;
      }
    } else {
      if (!region_free(inst, col, row)) {
        ++result_.illegal;
        return;
      }
      clear_cells(inst, old.col, old.row);
    }
    const double before = local_cost(inst);
    place(inst, col, row);
    const double delta = local_cost(inst) - before;
    if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temp)) {
      cost += delta;
      ++result_.accepted;
    } else {
      clear_cells(inst, col, row);
      place(inst, old.col, old.row);
      ++result_.rejected;
    }
  }

  // -- wrap-up --------------------------------------------------------------
  void finish() {
    wirelength_ = full_wirelength();
    cost_ = wirelength_ + penalty_ * unplaced_count();
    result_.positions = positions_;
    result_.unplaced = unplaced_count();
    result_.wirelength = wirelength_;
    result_.cost = cost_;
    // final_fill can push the cost through the target after the walk ends.
    note_target(cost_);

    long covered = 0;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!positions_[i].placed()) continue;
      const Macro& macro = macro_of(static_cast<int>(i));
      int clb_cols = 0;
      for (ColumnKind kind : macro.footprint.kinds) {
        if (is_clb(kind)) ++clb_cols;
      }
      covered += static_cast<long>(clb_cols) * macro.footprint.height;
    }
    result_.coverage = static_cast<double>(covered) /
                       std::max(1, device_.totals().slices);

    // Convergence: first trace sample whose cost is within 1% of the final.
    const double threshold = result_.cost * 1.01 + 1e-9;
    result_.converge_move = result_.total_moves;
    for (const auto& [move, cost] : result_.cost_trace) {
      if (cost <= threshold) {
        result_.converge_move = move;
        break;
      }
    }
  }

  const Device& device_;
  const StitchProblem& problem_;
  const StitchOptions& opts_;
  Rng rng_;
  Timer timer_;
  const bool incremental_;

  // Incremental engine state.
  OccupancyGrid bits_;
  std::optional<IncrementalWirelength> cost_engine_;
  IndexedIdSet placed_set_;
  IndexedIdSet parked_set_;

  // Reference engine state.
  std::vector<int> grid_;
  std::vector<std::vector<int>> nets_of_;
  std::vector<int> placed_scratch_;
  std::vector<int> parked_scratch_;

  /// One maximal same-column slice of a macro's sorted anchor list. When the
  /// rows step by a uniform stride the free-anchor scan slides down the
  /// column; otherwise it falls back to per-anchor footprint probes.
  struct AnchorRun {
    std::size_t begin = 0, end = 0;  ///< index window into the anchor list
    int col = 0;
    int first_row = 0;
    int stride = 1;  ///< row step between consecutive anchors (uniform runs)
    bool uniform = true;
  };

  /// Per-instance memo of a failed ordered anchor scan, valid for one
  /// occupancy epoch (see first_free_anchor).
  struct ScanCache {
    long epoch = -1;
    std::size_t failed_end = 0;  ///< no free anchor in [0, failed_end)
  };

  std::vector<std::vector<std::pair<int, int>>> anchors_;  ///< per macro
  std::vector<std::vector<AnchorRun>> anchor_runs_;        ///< per macro
  std::vector<ScanCache> scan_cache_;                      ///< per instance
  long occupancy_epoch_ = 0;  ///< bumped on every committed place / unplace
  std::vector<BlockPlacement> positions_;
  int unplaced_ = 0;
  long unpark_failures_ = 0;
  long trace_step_ = 0;
  long trace_stride_ = 1;
  double penalty_ = 0.0;
  double wirelength_ = 0.0;
  double cost_ = 0.0;
  StitchResult result_;
};

}  // namespace

StitchResult stitch_sa_single(const Device& device,
                              const StitchProblem& problem,
                              const StitchOptions& opts) {
  Annealer annealer(device, problem, opts);
  return annealer.run();
}

StitchResult stitch(const Device& device, const StitchProblem& problem,
                    const StitchOptions& opts) {
  MF_CHECK(!problem.instances.empty());
  for (const BlockInstance& inst : problem.instances) {
    MF_CHECK(inst.macro >= 0 &&
             static_cast<std::size_t>(inst.macro) < problem.macros.size());
  }
  if (const auto error = stitch_options_error(opts)) {
    MF_CHECK_MSG(false, *error);
  }
  // Historical fast path: a single SA configuration runs the annealer
  // directly with opts.seed -- move for move the pre-portfolio behaviour.
  // Everything else (multi-start, other engines, races) is a portfolio of
  // one-or-more configurations.
  if (opts.engine == StitchEngine::Sa && opts.restarts == 1) {
    StitchResult result = stitch_sa_single(device, problem, opts);
    result.engines.push_back(
        engine_stats_of(result, 0, opts.seed, opts.warm_start));
    return result;
  }
  return run_portfolio(device, problem, opts);
}

}  // namespace mf
