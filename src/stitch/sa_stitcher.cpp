#include "stitch/sa_stitcher.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace mf {
namespace {

/// Mutable SA state over one stitching run.
class Annealer {
 public:
  Annealer(const Device& device, const StitchProblem& problem,
           const StitchOptions& opts)
      : device_(device), problem_(problem), opts_(opts), rng_(opts.seed) {}

  StitchResult run() {
    timer_.restart();
    prepare();
    greedy_initial();
    anneal();
    final_fill();
    finish();
    result_.seconds = timer_.seconds();
    return std::move(result_);
  }

 private:
  // -- setup ----------------------------------------------------------------
  void prepare() {
    grid_.assign(static_cast<std::size_t>(device_.num_columns()) *
                     static_cast<std::size_t>(device_.rows()),
                 -1);
    anchors_.resize(problem_.macros.size());
    for (std::size_t m = 0; m < problem_.macros.size(); ++m) {
      const Macro& macro = problem_.macros[m];
      anchors_[m] = compatible_anchors(device_, macro.footprint,
                                       macro.pblock.row_lo);
    }
    positions_.assign(problem_.instances.size(), BlockPlacement{});
    nets_of_.assign(problem_.instances.size(), {});
    for (std::size_t n = 0; n < problem_.nets.size(); ++n) {
      for (int inst : problem_.nets[n].instances) {
        nets_of_[static_cast<std::size_t>(inst)].push_back(
            static_cast<int>(n));
      }
    }
    if (opts_.unplaced_penalty > 0.0) {
      penalty_ = opts_.unplaced_penalty;
    } else {
      penalty_ = 4.0 * (device_.num_columns() + device_.rows());
    }
  }

  [[nodiscard]] const Macro& macro_of(int instance) const {
    return problem_.macros[static_cast<std::size_t>(
        problem_.instances[static_cast<std::size_t>(instance)].macro)];
  }

  [[nodiscard]] int& grid_at(int col, int row) {
    return grid_[static_cast<std::size_t>(col) *
                     static_cast<std::size_t>(device_.rows()) +
                 static_cast<std::size_t>(row)];
  }

  [[nodiscard]] bool region_free(int instance, int col, int row) {
    const Macro& macro = macro_of(instance);
    const int w = macro.footprint.width();
    const int h = macro.footprint.height;
    for (int c = col; c < col + w; ++c) {
      for (int r = row; r < row + h; ++r) {
        const int occupant = grid_at(c, r);
        if (occupant != -1 && occupant != instance) return false;
      }
    }
    return true;
  }

  void fill_region(int instance, int col, int row, int value) {
    const Macro& macro = macro_of(instance);
    for (int c = col; c < col + macro.footprint.width(); ++c) {
      for (int r = row; r < row + macro.footprint.height; ++r) {
        grid_at(c, r) = value;
      }
    }
  }

  void place(int instance, int col, int row) {
    fill_region(instance, col, row, instance);
    positions_[static_cast<std::size_t>(instance)] = {col, row};
  }

  void unplace(int instance) {
    const BlockPlacement& p = positions_[static_cast<std::size_t>(instance)];
    if (!p.placed()) return;
    fill_region(instance, p.col, p.row, -1);
    positions_[static_cast<std::size_t>(instance)] = BlockPlacement{};
  }

  // -- cost -------------------------------------------------------------------
  [[nodiscard]] std::pair<double, double> center_of(int instance) const {
    const BlockPlacement& p = positions_[static_cast<std::size_t>(instance)];
    const Macro& macro = macro_of(instance);
    return {p.col + macro.footprint.width() / 2.0,
            p.row + macro.footprint.height / 2.0};
  }

  [[nodiscard]] double net_cost(int net) const {
    const BlockNet& bn = problem_.nets[static_cast<std::size_t>(net)];
    double c0 = 0.0;
    double c1 = 0.0;
    double r0 = 0.0;
    double r1 = 0.0;
    int count = 0;
    for (int inst : bn.instances) {
      if (!positions_[static_cast<std::size_t>(inst)].placed()) continue;
      const auto [cc, rr] = center_of(inst);
      if (count == 0) {
        c0 = c1 = cc;
        r0 = r1 = rr;
      } else {
        c0 = std::min(c0, cc);
        c1 = std::max(c1, cc);
        r0 = std::min(r0, rr);
        r1 = std::max(r1, rr);
      }
      ++count;
    }
    if (count < 2) return 0.0;
    return bn.weight * ((c1 - c0) + (r1 - r0));
  }

  [[nodiscard]] double full_wirelength() const {
    double total = 0.0;
    for (std::size_t n = 0; n < problem_.nets.size(); ++n) {
      total += net_cost(static_cast<int>(n));
    }
    return total;
  }

  [[nodiscard]] double local_cost(int instance) const {
    double total = 0.0;
    for (int n : nets_of_[static_cast<std::size_t>(instance)]) {
      total += net_cost(n);
    }
    return total;
  }

  [[nodiscard]] int unplaced_count() const {
    int count = 0;
    for (const BlockPlacement& p : positions_) {
      if (!p.placed()) ++count;
    }
    return count;
  }

  // -- initial placement ------------------------------------------------------
  void greedy_initial() {
    std::vector<int> order(problem_.instances.size());
    std::iota(order.begin(), order.end(), 0);
    // Anchor-constrained blocks first (BRAM/DSP users have few legal
    // positions -- give them first pick), then big blocks before small.
    auto anchor_count = [&](int inst) {
      return anchors_[static_cast<std::size_t>(
                          problem_.instances[static_cast<std::size_t>(inst)]
                              .macro)]
          .size();
    };
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const std::size_t ca = anchor_count(a);
      const std::size_t cb = anchor_count(b);
      if (ca != cb) return ca < cb;
      const long aa = macro_of(a).area();
      const long bb = macro_of(b).area();
      if (aa != bb) return aa > bb;  // big blocks first
      return a < b;
    });
    for (int inst : order) {
      const auto& candidates = anchors_[static_cast<std::size_t>(
          problem_.instances[static_cast<std::size_t>(inst)].macro)];
      for (const auto& [col, row] : candidates) {
        if (region_free(inst, col, row)) {
          place(inst, col, row);
          break;
        }
      }
    }
  }

  // -- annealing ---------------------------------------------------------------
  void anneal() {
    wirelength_ = full_wirelength();
    double cost = wirelength_ + penalty_ * unplaced_count();
    const double t0 =
        opts_.initial_temp > 0.0
            ? opts_.initial_temp
            : 0.2 * (device_.num_columns() + device_.rows());
    const int moves_per_temp =
        opts_.moves_per_temp > 0
            ? opts_.moves_per_temp
            : 10 * static_cast<int>(problem_.instances.size());
    const double t_min = t0 * opts_.min_temp_ratio;

    result_.cost_trace.emplace_back(0, cost);
    double stagnant_best = cost;
    int stagnant_temps = 0;
    double best_cost = cost;
    std::vector<BlockPlacement> best_positions = positions_;
    for (double temp = t0; temp > t_min && !result_.watchdog_fired;
         temp *= opts_.cooling) {
      for (int k = 0; k < moves_per_temp; ++k) {
        // Watchdog: a budgeted anneal stops mid-schedule and degrades to
        // the best snapshot seen so far (restored below). The wall-clock
        // check is amortised over 32 moves to keep the hot loop cheap.
        if ((opts_.max_moves > 0 && result_.total_moves >= opts_.max_moves) ||
            (opts_.max_seconds > 0.0 && result_.total_moves % 32 == 0 &&
             timer_.seconds() >= opts_.max_seconds)) {
          result_.watchdog_fired = true;
          break;
        }
        ++result_.total_moves;
        if (opts_.place_retry_every > 0 &&
            result_.total_moves % opts_.place_retry_every == 0 &&
            try_unpark(cost)) {
          continue;
        }
        displace_move(temp, cost);
      }
      result_.cost_trace.emplace_back(result_.total_moves, cost);
      if (cost < best_cost) {
        best_cost = cost;
        best_positions = positions_;
      }
      // Quiescence detection: when the cost has not improved by more than
      // 0.1% for a while, further cooling is wasted annealing. Easier
      // placement problems (tighter macros, fewer illegal moves) quiesce
      // sooner -- the mechanism behind the paper's "converged 1.37x faster".
      // Only once every block is placed: while blocks are parked, progress
      // arrives in rare unpark events that a stagnation window would miss.
      if (opts_.stagnation_temps > 0 && unplaced_count() == 0) {
        if (cost < stagnant_best * 0.999) {
          stagnant_best = cost;
          stagnant_temps = 0;
        } else if (++stagnant_temps >= opts_.stagnation_temps) {
          break;
        }
      }
    }
    // Keep the best solution seen, not wherever the walk happened to stop.
    if (best_cost < cost - 1e-9) {
      restore(best_positions);
    }
  }

  /// Rebuild the occupancy grid and positions from a snapshot.
  void restore(const std::vector<BlockPlacement>& snapshot) {
    std::fill(grid_.begin(), grid_.end(), -1);
    positions_.assign(positions_.size(), BlockPlacement{});
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (snapshot[i].placed()) {
        place(static_cast<int>(i), snapshot[i].col, snapshot[i].row);
      }
    }
  }

  /// Attempt to place a parked block; always accepted when legal (the
  /// penalty dwarfs any wirelength increase). Mostly samples random anchors
  /// (cheap); every few calls it scans the instance's full anchor list so a
  /// lone remaining hole is found eventually.
  bool try_unpark(double& cost) {
    std::vector<int> parked;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!positions_[i].placed()) parked.push_back(static_cast<int>(i));
    }
    if (parked.empty()) return false;
    const int inst = parked[rng_.index(parked.size())];
    const auto& candidates = anchors_[static_cast<std::size_t>(
        problem_.instances[static_cast<std::size_t>(inst)].macro)];
    if (candidates.empty()) return false;

    auto place_at = [&](int col, int row) {
      const double before = local_cost(inst);
      place(inst, col, row);
      cost += local_cost(inst) - before - penalty_;
      ++result_.accepted;
    };
    for (int attempt = 0; attempt < 10; ++attempt) {
      const auto& [col, row] = candidates[rng_.index(candidates.size())];
      if (!region_free(inst, col, row)) continue;
      place_at(col, row);
      return true;
    }
    if (++unpark_failures_ % 8 == 0) {
      for (const auto& [col, row] : candidates) {
        if (!region_free(inst, col, row)) continue;
        place_at(col, row);
        return true;
      }
    }
    ++result_.illegal;
    return true;  // consumed the move
  }

  /// Post-anneal greedy fill: repeatedly scan every parked block's full
  /// anchor list (largest blocks first) until no more fit. RW's stitcher
  /// ends the same way -- whatever still fits is placed, the rest is
  /// reported unplaced (Figure 5's counts).
  void final_fill() {
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<int> parked;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (!positions_[i].placed()) parked.push_back(static_cast<int>(i));
      }
      std::sort(parked.begin(), parked.end(), [&](int a, int b) {
        return macro_of(a).area() > macro_of(b).area();
      });
      for (int inst : parked) {
        const auto& candidates = anchors_[static_cast<std::size_t>(
            problem_.instances[static_cast<std::size_t>(inst)].macro)];
        for (const auto& [col, row] : candidates) {
          if (!region_free(inst, col, row)) continue;
          place(inst, col, row);
          progress = true;
          break;
        }
      }
    }
  }

  void displace_move(double temp, double& cost) {
    std::vector<int>* placed = &placed_scratch_;
    placed->clear();
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (positions_[i].placed()) placed->push_back(static_cast<int>(i));
    }
    if (placed->empty()) return;
    const int inst = (*placed)[rng_.index(placed->size())];
    const auto& candidates = anchors_[static_cast<std::size_t>(
        problem_.instances[static_cast<std::size_t>(inst)].macro)];
    if (candidates.empty()) return;

    // 1-in-5 moves are compaction attempts: try the lowest-index (leftmost)
    // free anchor, which keeps free space contiguous instead of fragmenting
    // it across the fabric. The rest are uniform random displacements.
    int col = -1;
    int row = -1;
    if (rng_.index(5) == 0) {
      const BlockPlacement current = positions_[static_cast<std::size_t>(inst)];
      fill_region(inst, current.col, current.row, -1);
      for (const auto& [c, r] : candidates) {
        if (c == current.col && r == current.row) break;  // already leftmost
        if (region_free(inst, c, r)) {
          col = c;
          row = r;
          break;
        }
      }
      fill_region(inst, current.col, current.row, inst);
      if (col < 0) {
        ++result_.illegal;
        return;
      }
    } else {
      const auto& pick = candidates[rng_.index(candidates.size())];
      col = pick.first;
      row = pick.second;
    }
    const BlockPlacement old = positions_[static_cast<std::size_t>(inst)];
    if (col == old.col && row == old.row) return;

    // Temporarily lift the block so self-overlap does not block the move.
    fill_region(inst, old.col, old.row, -1);
    if (!region_free(inst, col, row)) {
      fill_region(inst, old.col, old.row, inst);
      ++result_.illegal;
      return;
    }
    const double before = local_cost(inst);
    place(inst, col, row);
    const double delta = local_cost(inst) - before;
    if (delta <= 0.0 || rng_.uniform() < std::exp(-delta / temp)) {
      cost += delta;
      ++result_.accepted;
    } else {
      unplace(inst);
      place(inst, old.col, old.row);
      ++result_.rejected;
    }
  }

  // -- wrap-up -----------------------------------------------------------------
  void finish() {
    wirelength_ = full_wirelength();
    cost_ = wirelength_ + penalty_ * unplaced_count();
    result_.positions = positions_;
    result_.unplaced = unplaced_count();
    result_.wirelength = wirelength_;
    result_.cost = cost_;

    long covered = 0;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!positions_[i].placed()) continue;
      const Macro& macro = macro_of(static_cast<int>(i));
      int clb_cols = 0;
      for (ColumnKind kind : macro.footprint.kinds) {
        if (is_clb(kind)) ++clb_cols;
      }
      covered += static_cast<long>(clb_cols) * macro.footprint.height;
    }
    result_.coverage = static_cast<double>(covered) /
                       std::max(1, device_.totals().slices);

    // Convergence: first trace sample whose cost is within 1% of the final.
    const double threshold = result_.cost * 1.01 + 1e-9;
    result_.converge_move = result_.total_moves;
    for (const auto& [move, cost] : result_.cost_trace) {
      if (cost <= threshold) {
        result_.converge_move = move;
        break;
      }
    }
  }

  const Device& device_;
  const StitchProblem& problem_;
  const StitchOptions& opts_;
  Rng rng_;
  Timer timer_;

  std::vector<int> grid_;
  std::vector<std::vector<std::pair<int, int>>> anchors_;  ///< per macro
  std::vector<BlockPlacement> positions_;
  std::vector<std::vector<int>> nets_of_;
  std::vector<int> placed_scratch_;
  long unpark_failures_ = 0;
  double penalty_ = 0.0;
  double wirelength_ = 0.0;
  double cost_ = 0.0;
  StitchResult result_;
};

}  // namespace

StitchResult stitch(const Device& device, const StitchProblem& problem,
                    const StitchOptions& opts) {
  MF_CHECK(!problem.instances.empty());
  for (const BlockInstance& inst : problem.instances) {
    MF_CHECK(inst.macro >= 0 &&
             static_cast<std::size_t>(inst.macro) < problem.macros.size());
  }
  Annealer annealer(device, problem, opts);
  return annealer.run();
}

}  // namespace mf
