#pragma once
// Deterministic analytic pre-placer.
//
// A two-phase centroid placer in the DREAMPlaceFPGA-MP spirit, scaled down
// to the stitcher's rectangle-on-anchors model: (1) damped Gauss-Seidel
// iterations pull every instance's continuous position toward the weighted
// centroid of its nets' bounding boxes (force-directed wirelength descent
// with no legality constraints); (2) a legalization pass snaps instances --
// most-constrained first -- onto the nearest free footprint-compatible
// anchor of the occupancy bitset. No RNG anywhere: the result is a pure
// function of (device, problem), identical for every seed, which is what
// lets one analytic configuration stand in a portfolio of seeded engines
// and double as the warm start for SA.

#include <vector>

#include "fabric/device.hpp"
#include "stitch/engine.hpp"
#include "stitch/macro.hpp"

namespace mf {

/// The legalized pre-placement only (positions per instance; unplaceable
/// blocks stay {-1, -1}). This is the SA warm-start input.
[[nodiscard]] std::vector<BlockPlacement> analytic_placement(
    const Device& device, const StitchProblem& problem);

/// Full engine run: pre-placement + greedy fill + stats/trace. Ignores the
/// seed (deterministic) and the move budget (one pass is the whole run).
[[nodiscard]] StitchResult stitch_analytic(const Device& device,
                                           const StitchProblem& problem,
                                           const StitchOptions& opts);

}  // namespace mf
