#pragma once
// Pre-implemented macro and the block-level stitching problem.
//
// A Macro is one unique block after per-PBlock implementation: its rectangle
// (hence relocation footprint), resource usage and quality metrics. The
// StitchProblem is the block design of Figure 2 reduced to what the stitcher
// needs: instances referencing macros, plus inter-block nets.

#include <string>
#include <vector>

#include "fabric/pblock.hpp"
#include "netlist/netlist.hpp"

namespace mf {

struct Macro {
  std::string name;
  PBlock pblock;        ///< rectangle at its implementation origin
  Footprint footprint;  ///< relocation constraint derived from `pblock`
  int used_slices = 0;
  int est_slices = 0;
  double cf = 0.0;          ///< correction factor it was implemented with
  double fill_ratio = 0.0;  ///< placement regularity (1.0 = rectangular)
  int tool_runs = 0;        ///< feasibility checks spent implementing it
  double longest_path_ns = 0.0;

  [[nodiscard]] long area() const noexcept { return pblock.area(); }
};

struct BlockInstance {
  std::string name;
  int macro = -1;  ///< index into StitchProblem::macros
};

/// Inter-block net: indices into StitchProblem::instances.
struct BlockNet {
  std::vector<int> instances;
  double weight = 1.0;
};

struct StitchProblem {
  std::vector<Macro> macros;
  std::vector<BlockInstance> instances;
  std::vector<BlockNet> nets;
};

/// A block design before implementation: the input of the RW-style flow
/// (unique modules + the instance/connectivity diagram).
struct BlockDesign {
  std::vector<Module> unique_modules;
  std::vector<BlockInstance> instances;  ///< macro = unique module index
  std::vector<BlockNet> nets;

  /// Index of a unique module by name; -1 when absent.
  [[nodiscard]] int unique_index(const std::string& name) const;
};

}  // namespace mf
