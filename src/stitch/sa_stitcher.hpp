#pragma once
// Simulated-annealing stitcher.
//
// Reproduces RapidWright's final stage: place every pre-implemented block on
// the device, connected copies close together, no overlaps. The cost is the
// half-perimeter wirelength of the inter-block nets plus a penalty per
// unplaced block (RW instead fails placement; parking lets us *count*
// unplaced blocks like the paper's Figure 5 does).
//
// The mechanism under study lives in the legality rules: a block is only
// placeable at anchors whose column-kind sequence matches its footprint
// (Section IV: relocation needs same-type columns), and blocks must not
// overlap. Looser CFs mean larger, more irregular footprints, fewer legal
// anchors, more rejected moves -- which is exactly why the paper's estimator
// speeds SA convergence 1.37x and cuts the final cost by 40%.
//
// The hot loop runs on an incremental cost engine (stitch/incremental_cost:
// per-net bounding boxes with boundary multiplicities) and a bitset
// occupancy grid (stitch/occupancy), with O(log n) random block selection
// (common/indexed_set) -- all bit-identical in behaviour to the naive
// reference engine, which `StitchOptions::reference_engine` keeps available
// for differential tests and benches.
//
// The option/result types and the Engine interface live in stitch/engine.hpp;
// `stitch()` below is the front door that dispatches to the requested engine
// (SA stays the default) or to the portfolio race (stitch/portfolio.hpp).

#include "stitch/engine.hpp"

namespace mf {

/// Solve a stitch problem with the engine selected by `opts.engine`.
/// The default (SA, restarts = 1) is the historical single-start annealer,
/// move for move; everything else routes through the portfolio driver.
StitchResult stitch(const Device& device, const StitchProblem& problem,
                    const StitchOptions& opts = {});

/// One SA run for one configuration (restarts/jobs ignored; `opts.seed` used
/// directly; honours `opts.warm_start` via the analytic pre-placer). This is
/// the SA engine the portfolio races.
StitchResult stitch_sa_single(const Device& device,
                              const StitchProblem& problem,
                              const StitchOptions& opts);

}  // namespace mf
