#pragma once
// Simulated-annealing stitcher.
//
// Reproduces RapidWright's final stage: place every pre-implemented block on
// the device, connected copies close together, no overlaps. The cost is the
// half-perimeter wirelength of the inter-block nets plus a penalty per
// unplaced block (RW instead fails placement; parking lets us *count*
// unplaced blocks like the paper's Figure 5 does).
//
// The mechanism under study lives in the legality rules: a block is only
// placeable at anchors whose column-kind sequence matches its footprint
// (Section IV: relocation needs same-type columns), and blocks must not
// overlap. Looser CFs mean larger, more irregular footprints, fewer legal
// anchors, more rejected moves -- which is exactly why the paper's estimator
// speeds SA convergence 1.37x and cuts the final cost by 40%.
//
// The hot loop runs on an incremental cost engine (stitch/incremental_cost:
// per-net bounding boxes with boundary multiplicities) and a bitset
// occupancy grid (stitch/occupancy), with O(log n) random block selection
// (common/indexed_set) -- all bit-identical in behaviour to the naive
// reference engine, which `StitchOptions::reference_engine` keeps available
// for differential tests and benches. `restarts` / `jobs` add deterministic
// parallel multi-start annealing on top.

#include <cstdint>
#include <vector>

#include "common/cancel.hpp"
#include "fabric/device.hpp"
#include "stitch/macro.hpp"

#ifndef MF_JOBS_DEFAULT
#define MF_JOBS_DEFAULT 1
#endif

namespace mf {

struct StitchOptions {
  std::uint64_t seed = 99;
  double initial_temp = 0.0;  ///< 0 = auto (from initial cost scale)
  double cooling = 0.95;
  int moves_per_temp = 0;  ///< 0 = auto (10 x instances)
  double min_temp_ratio = 1e-4;  ///< stop when T < ratio * T0
  double unplaced_penalty = 0.0;  ///< 0 = auto (device half-perimeter x 4)
  int place_retry_every = 25;  ///< try to un-park an unplaced block this often
  /// Stop annealing after this many temperature steps without a >0.1% cost
  /// improvement (0 = anneal the full schedule). Easier problems quiesce
  /// sooner, which is what makes SA convergence a quality metric.
  int stagnation_temps = 15;
  /// Watchdog: hard iteration budget on the anneal (0 = unbounded). When the
  /// budget trips, the walk stops and the best-so-far snapshot is restored,
  /// so an over-budget anneal degrades to its best intermediate placement
  /// instead of running unbounded. Deterministic (move-count based).
  long max_moves = 0;
  /// Watchdog: wall-clock budget in seconds on the anneal (0 = unbounded).
  /// Same degradation semantics as max_moves, but non-deterministic -- meant
  /// for production service deadlines, not for reproducible experiments.
  double max_seconds = 0.0;
  /// Cooperative cancellation (common/cancel.hpp): polled by the same
  /// amortised watchdog check as max_seconds, with the same degradation
  /// semantics (stop, restore best-so-far, watchdog_fired = true). This
  /// subsumes max_seconds for end-to-end deadlines -- one token armed with
  /// set_deadline_seconds() bounds the whole flow, annealer included, and
  /// every multi-start restart polls the same token.
  const CancelToken* cancel = nullptr;
  /// Independent annealing restarts (multi-start SA). 1 = one anneal seeded
  /// with `seed` -- exactly the historical single-start behaviour, move for
  /// move. K > 1 runs K independent anneals, restart k seeded with
  /// task_seed(seed, "restart:<k>"); the lowest final cost wins, ties going
  /// to the lowest k. Deterministic at any `jobs` value.
  int restarts = 1;
  /// Worker threads for the multi-start fan-out (1 = sequential, 0 = auto,
  /// i.e. hardware concurrency). Results are bit-identical at any value --
  /// each restart is an isolated annealer with its own derived seed.
  int jobs = MF_JOBS_DEFAULT;
  /// Run the pre-incremental reference cost engine: naive per-net bounding
  /// box rescans, a per-cell occupant grid, and O(instances) candidate
  /// scans per move. Kept for differential tests and the bench_stitch A/B;
  /// results are bit-identical to the default incremental engine, only
  /// slower.
  bool reference_engine = false;
};

struct BlockPlacement {
  int col = -1;
  int row = -1;
  [[nodiscard]] bool placed() const noexcept { return col >= 0; }
};

struct StitchResult {
  std::vector<BlockPlacement> positions;  ///< per instance
  int unplaced = 0;
  double wirelength = 0.0;  ///< final HPWL cost (penalty excluded)
  double cost = 0.0;        ///< wirelength + unplaced penalty
  long total_moves = 0;
  long accepted = 0;
  long rejected = 0;
  long illegal = 0;  ///< moves discarded for overlap / no legal anchor
  /// First move index after which the cost stays within 1% of the final
  /// cost -- the convergence metric behind the paper's "1.37x faster".
  long converge_move = 0;
  /// True when a watchdog budget (max_moves / max_seconds) cut the anneal
  /// short; the result is the best placement seen up to that point.
  bool watchdog_fired = false;
  double seconds = 0.0;  ///< wall clock of the whole stitch (all restarts)
  /// Which restart produced this result (0 when restarts = 1).
  int restart_index = 0;
  /// SA moves summed over every restart (== total_moves when restarts = 1).
  long restart_moves = 0;
  /// (move index, cost) samples for convergence plots; one sample per
  /// temperature step, downsampled by stride doubling to at most ~4096
  /// entries so pathological schedules cannot grow the trace unbounded.
  std::vector<std::pair<long, double>> cost_trace;
  /// Fraction of device slices covered by placed macro rectangles.
  double coverage = 0.0;
};

StitchResult stitch(const Device& device, const StitchProblem& problem,
                    const StitchOptions& opts = {});

}  // namespace mf
