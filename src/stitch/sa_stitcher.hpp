#pragma once
// Simulated-annealing stitcher.
//
// Reproduces RapidWright's final stage: place every pre-implemented block on
// the device, connected copies close together, no overlaps. The cost is the
// half-perimeter wirelength of the inter-block nets plus a penalty per
// unplaced block (RW instead fails placement; parking lets us *count*
// unplaced blocks like the paper's Figure 5 does).
//
// The mechanism under study lives in the legality rules: a block is only
// placeable at anchors whose column-kind sequence matches its footprint
// (Section IV: relocation needs same-type columns), and blocks must not
// overlap. Looser CFs mean larger, more irregular footprints, fewer legal
// anchors, more rejected moves -- which is exactly why the paper's estimator
// speeds SA convergence 1.37x and cuts the final cost by 40%.

#include <cstdint>
#include <vector>

#include "fabric/device.hpp"
#include "stitch/macro.hpp"

namespace mf {

struct StitchOptions {
  std::uint64_t seed = 99;
  double initial_temp = 0.0;  ///< 0 = auto (from initial cost scale)
  double cooling = 0.95;
  int moves_per_temp = 0;  ///< 0 = auto (10 x instances)
  double min_temp_ratio = 1e-4;  ///< stop when T < ratio * T0
  double unplaced_penalty = 0.0;  ///< 0 = auto (device half-perimeter x 4)
  int place_retry_every = 25;  ///< try to un-park an unplaced block this often
  /// Stop annealing after this many temperature steps without a >0.1% cost
  /// improvement (0 = anneal the full schedule). Easier problems quiesce
  /// sooner, which is what makes SA convergence a quality metric.
  int stagnation_temps = 15;
  /// Watchdog: hard iteration budget on the anneal (0 = unbounded). When the
  /// budget trips, the walk stops and the best-so-far snapshot is restored,
  /// so an over-budget anneal degrades to its best intermediate placement
  /// instead of running unbounded. Deterministic (move-count based).
  long max_moves = 0;
  /// Watchdog: wall-clock budget in seconds on the anneal (0 = unbounded).
  /// Same degradation semantics as max_moves, but non-deterministic -- meant
  /// for production service deadlines, not for reproducible experiments.
  double max_seconds = 0.0;
};

struct BlockPlacement {
  int col = -1;
  int row = -1;
  [[nodiscard]] bool placed() const noexcept { return col >= 0; }
};

struct StitchResult {
  std::vector<BlockPlacement> positions;  ///< per instance
  int unplaced = 0;
  double wirelength = 0.0;  ///< final HPWL cost (penalty excluded)
  double cost = 0.0;        ///< wirelength + unplaced penalty
  long total_moves = 0;
  long accepted = 0;
  long rejected = 0;
  long illegal = 0;  ///< moves discarded for overlap / no legal anchor
  /// First move index after which the cost stays within 1% of the final
  /// cost -- the convergence metric behind the paper's "1.37x faster".
  long converge_move = 0;
  /// True when a watchdog budget (max_moves / max_seconds) cut the anneal
  /// short; the result is the best placement seen up to that point.
  bool watchdog_fired = false;
  double seconds = 0.0;
  /// (move index, cost) samples for convergence plots.
  std::vector<std::pair<long, double>> cost_trace;
  /// Fraction of device slices covered by placed macro rectangles.
  double coverage = 0.0;
};

StitchResult stitch(const Device& device, const StitchProblem& problem,
                    const StitchOptions& opts = {});

}  // namespace mf
