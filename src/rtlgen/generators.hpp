#pragma once
// Synthetic RTL generators (Section VI-A of the paper).
//
// The paper builds its training set not from cnvW1A1 variants but from
// generic RTL generators, each stressing one of the PBlock-size factors of
// Section V:
//   * shift registers  -> FF-dominated designs, parametrizable control sets
//     and fanin (a tool attribute forces FF mapping, i.e. no SRLs);
//   * LUTRAM memories  -> register-free, M-slice dominated designs;
//   * sum-of-squares   -> carry-chain dominated designs;
//   * LFSRs            -> FF + LUT + carry + SRL mixes;
//   * a generic template (Figure 6) covering the whole design space.
//
// Each generator returns a mapped Module with genuine connectivity, so
// control sets, fanout and carry chains are measured, not asserted.

#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace mf {

/// Parallel shift registers mapped to FFs ("mostly FFs" corner case).
struct ShiftRegParams {
  int chains = 8;        ///< parallel FF chains
  int depth = 16;        ///< FFs per chain
  int control_sets = 1;  ///< distinct (reset, enable) groups, >= 1
  int fanin = 4;         ///< inputs of the LUT feeding each chain head
};
Module gen_shiftreg(const ShiftRegParams& params, Rng& rng);

/// Distributed-RAM memory ("no registers at all, mainly LUTRAMs").
struct LutRamParams {
  int width = 8;   ///< data bits
  int depth = 64;  ///< words; one LutRam cell covers 32 words x 1 bit
};
Module gen_lutram(const LutRamParams& params, Rng& rng);

/// Sum of squares over `terms` inputs of `width` bits (carry-chain heavy).
struct CarryParams {
  int terms = 4;
  int width = 16;
  bool register_output = true;
};
Module gen_carry(const CarryParams& params, Rng& rng);

/// Bank of LFSRs with tap LUTs, cycle counters (carry) and SRL delay lines.
struct LfsrParams {
  int count = 4;         ///< parallel LFSRs
  int width = 16;        ///< register length per LFSR
  int taps = 4;          ///< feedback taps (LUT fanin)
  int srl_delay = 1;     ///< SRL cells per LFSR output (0 = none)
  int control_sets = 1;
};
Module gen_lfsr(const LfsrParams& params, Rng& rng);

/// FIR filter: tap delay line + multiply/accumulate ladder. The carry-and-
/// register workload of classic DSP datapaths; `use_dsp` moves the products
/// into DSP48 blocks (hard-block-driven PBlocks).
struct FirParams {
  int taps = 8;
  int width = 16;
  bool use_dsp = false;
};
Module gen_fir(const FirParams& params, Rng& rng);

/// Moore FSM: state register, random next-state cloud, output decoder.
/// State bits are natural high-fanout nets.
struct FsmParams {
  int state_bits = 6;
  int outputs = 24;
  int transitions_per_state = 6;
};
Module gen_fsm(const FsmParams& params, Rng& rng);

/// Generic design-space template (Figure 6): datapath of LUT layers and
/// registers with adder chains, SRL/LUTRAM side structures, optional hard
/// blocks, and a tunable high-fanout broadcast net.
struct MixedParams {
  int luts = 200;         ///< approximate LUT target
  int ffs = 200;          ///< approximate FF target
  int carry_adders = 2;   ///< number of adder chains
  int carry_width = 16;   ///< bits per adder
  int srls = 0;
  int lutrams = 0;
  int bram = 0;           ///< RAMB36 cells
  int dsp = 0;
  int control_sets = 2;
  int fanout_boost = 0;   ///< extra LUT loads on one broadcast net
};
Module gen_mixed(const MixedParams& params, Rng& rng);

}  // namespace mf
