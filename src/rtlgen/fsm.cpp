#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_fsm(const FsmParams& params, Rng& rng) {
  MF_CHECK(params.state_bits >= 2 && params.state_bits <= 12);
  MF_CHECK(params.outputs >= 1 && params.transitions_per_state >= 1);
  Module module;
  module.name = "fsm";
  module.params = "bits=" + std::to_string(params.state_bits) +
                  " outs=" + std::to_string(params.outputs) +
                  " tps=" + std::to_string(params.transitions_per_state);
  NetlistBuilder b(module.netlist);

  const ControlSetId cs = b.control_set(b.input("rst"));
  const std::vector<NetId> events = b.input_bus(8, "ev");

  // State register; its Q bits drive the entire next-state cloud and output
  // decoder -- naturally high-fanout nets (Section V-D).
  std::vector<NetId> state_d(static_cast<std::size_t>(params.state_bits));
  for (auto& d : state_d) d = b.input();
  std::vector<NetId> state_q = b.register_bus(state_d, cs);

  // Next-state cloud: per state bit, a tree over state + events, replicated
  // per transition for combinational depth.
  std::vector<NetId> cloud_in = state_q;
  cloud_in.insert(cloud_in.end(), events.begin(), events.end());
  for (int bit = 0; bit < params.state_bits; ++bit) {
    std::vector<NetId> terms;
    for (int t = 0; t < params.transitions_per_state; ++t) {
      std::vector<NetId> picks(5);
      for (NetId& p : picks) p = cloud_in[rng.index(cloud_in.size())];
      terms.push_back(b.lut(picks));
    }
    const NetId next = b.reduce(terms, 6);
    module.netlist.mark_output(b.ff(next, cs));
  }

  // Moore output decoder.
  const std::vector<NetId> outs =
      b.lut_layer(state_q, params.outputs, std::min(params.state_bits, 6));
  for (NetId n : outs) module.netlist.mark_output(n);
  return module;
}

}  // namespace mf
