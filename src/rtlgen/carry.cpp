#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_carry(const CarryParams& params, Rng& rng) {
  (void)rng;
  MF_CHECK(params.terms >= 1 && params.width >= 2);

  Module module;
  module.name = "carry";
  module.params = "terms=" + std::to_string(params.terms) +
                  " width=" + std::to_string(params.width);
  NetlistBuilder b(module.netlist);

  // sum = x0^2 + x1^2 + ... : each square is a shift-add ladder (width/2
  // adders of growing width), then an accumulation tree -- all ripple-carry,
  // producing many chains whose longest one dictates PBlock height.
  std::vector<std::vector<NetId>> squares;
  squares.reserve(static_cast<std::size_t>(params.terms));
  for (int t = 0; t < params.terms; ++t) {
    const std::vector<NetId> x =
        b.input_bus(params.width, "x" + std::to_string(t));
    // Partial-product rows: x & x[i], modelled as one AND LUT per bit, then
    // summed pairwise. We use width/2 rows to keep the module from exploding
    // quadratically while still being carry-dominated.
    const int rows = std::max(2, params.width / 2);
    std::vector<std::vector<NetId>> partials;
    partials.reserve(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      std::vector<NetId> row(static_cast<std::size_t>(params.width));
      for (int i = 0; i < params.width; ++i) {
        row[static_cast<std::size_t>(i)] =
            b.lut({x[static_cast<std::size_t>(i)],
                   x[static_cast<std::size_t>(r) % x.size()]});
      }
      partials.push_back(std::move(row));
    }
    // Reduce rows with a balanced adder tree.
    while (partials.size() > 1) {
      std::vector<std::vector<NetId>> next;
      for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
        next.push_back(b.adder(partials[i], partials[i + 1]));
      }
      if (partials.size() % 2 == 1) next.push_back(partials.back());
      partials = std::move(next);
    }
    squares.push_back(std::move(partials.front()));
  }

  // Accumulate the squares.
  while (squares.size() > 1) {
    std::vector<std::vector<NetId>> next;
    for (std::size_t i = 0; i + 1 < squares.size(); i += 2) {
      next.push_back(b.adder(squares[i], squares[i + 1]));
    }
    if (squares.size() % 2 == 1) next.push_back(squares.back());
    squares = std::move(next);
  }

  std::vector<NetId> sum = squares.front();
  if (params.register_output) {
    const ControlSetId cs = b.control_set(b.input("rst"));
    sum = b.register_bus(sum, cs);
  }
  for (NetId n : sum) module.netlist.mark_output(n);
  return module;
}

}  // namespace mf
