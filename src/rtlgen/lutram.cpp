#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_lutram(const LutRamParams& params, Rng& rng) {
  (void)rng;  // fully deterministic in its parameters
  MF_CHECK(params.width > 0 && params.depth > 0);

  Module module;
  module.name = "lutram";
  module.params = "width=" + std::to_string(params.width) +
                  " depth=" + std::to_string(params.depth);
  NetlistBuilder b(module.netlist);

  // One LutRam cell models a RAM32X1: 32 words x 1 bit on an M-slice LUT
  // site. A width x depth memory therefore needs width * ceil(depth/32)
  // cells plus a read-mux LUT tree per data bit.
  const int banks = (params.depth + 31) / 32;
  const int addr_bits = [&] {
    int bits = 0;
    while ((1 << bits) < params.depth) ++bits;
    return std::max(bits, 1);
  }();

  const std::vector<NetId> addr = b.input_bus(addr_bits, "addr");
  const std::vector<NetId> din = b.input_bus(params.width, "din");
  const NetId we = b.input("we");
  const ControlSetId cs = b.control_set(kInvalidId, we);

  const std::size_t low_bits = std::min<std::size_t>(addr.size(), 5);
  const std::span<const NetId> low_addr(addr.data(), low_bits);

  for (int bit = 0; bit < params.width; ++bit) {
    std::vector<NetId> bank_outs;
    bank_outs.reserve(static_cast<std::size_t>(banks));
    for (int bank = 0; bank < banks; ++bank) {
      bank_outs.push_back(
          b.lutram(low_addr, din[static_cast<std::size_t>(bit)], cs));
    }
    // Read mux over banks (plus the high address bits as selects).
    std::vector<NetId> mux_in = bank_outs;
    for (std::size_t i = low_bits; i < addr.size(); ++i) {
      mux_in.push_back(addr[i]);
    }
    const NetId q = b.reduce(mux_in, 4);
    module.netlist.mark_output(q);
  }
  return module;
}

}  // namespace mf
