#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_fir(const FirParams& params, Rng& rng) {
  MF_CHECK(params.taps >= 2 && params.width >= 4);
  Module module;
  module.name = "fir";
  module.params = "taps=" + std::to_string(params.taps) +
                  " width=" + std::to_string(params.width) +
                  (params.use_dsp ? " dsp" : " fabric");
  NetlistBuilder b(module.netlist);

  const ControlSetId cs = b.control_set(b.input("rst"), b.input("en"));
  const std::vector<NetId> sample = b.input_bus(params.width, "x");

  // Tap delay line: a registered bus per tap.
  std::vector<std::vector<NetId>> taps;
  taps.push_back(sample);
  for (int t = 1; t < params.taps; ++t) {
    taps.push_back(b.register_bus(taps.back(), cs));
  }

  // Products: DSP blocks when asked for, otherwise shift-add ladders whose
  // carry chains make the FIR a prime carry-stress workload.
  std::vector<std::vector<NetId>> products;
  for (int t = 0; t < params.taps; ++t) {
    if (params.use_dsp) {
      const std::span<const NetId> a(taps[static_cast<std::size_t>(t)].data(),
                                     std::min(params.width, 16));
      const NetId p = b.dsp48(a, a);
      products.push_back(std::vector<NetId>(
          static_cast<std::size_t>(params.width), p));
    } else {
      // Coefficient multiply approximated by two shifted adds.
      const auto& x = taps[static_cast<std::size_t>(t)];
      std::vector<NetId> shifted(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        shifted[i] = x[(i + 1 + rng.index(2)) % x.size()];
      }
      products.push_back(b.adder(x, shifted));
    }
  }

  // Accumulator tree.
  while (products.size() > 1) {
    std::vector<std::vector<NetId>> next;
    for (std::size_t i = 0; i + 1 < products.size(); i += 2) {
      next.push_back(b.adder(products[i], products[i + 1]));
    }
    if (products.size() % 2 == 1) next.push_back(products.back());
    products = std::move(next);
  }

  const std::vector<NetId> y = b.register_bus(products.front(), cs);
  for (NetId n : y) module.netlist.mark_output(n);
  return module;
}

}  // namespace mf
