#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_lfsr(const LfsrParams& params, Rng& rng) {
  MF_CHECK(params.count >= 1 && params.width >= 3);
  MF_CHECK(params.taps >= 2 && params.taps <= 6);
  MF_CHECK(params.control_sets >= 1 && params.srl_delay >= 0);

  Module module;
  module.name = "lfsr";
  module.params = "count=" + std::to_string(params.count) +
                  " width=" + std::to_string(params.width) +
                  " taps=" + std::to_string(params.taps) +
                  " srl=" + std::to_string(params.srl_delay);
  NetlistBuilder b(module.netlist);

  std::vector<ControlSetId> sets;
  for (int i = 0; i < params.control_sets; ++i) {
    sets.push_back(b.control_set(b.input("rst" + std::to_string(i)),
                                 b.input("en" + std::to_string(i))));
  }

  const NetId seed = b.input("seed");
  for (int i = 0; i < params.count; ++i) {
    const ControlSetId cs = sets[static_cast<std::size_t>(i) % sets.size()];

    // The register body: seed -> FF chain; feedback taps picked at random.
    const std::vector<NetId> taps_bus = b.ff_chain(seed, params.width, cs);
    std::vector<NetId> feedback_in(static_cast<std::size_t>(params.taps));
    feedback_in[0] = taps_bus.back();
    for (int t = 1; t < params.taps; ++t) {
      feedback_in[static_cast<std::size_t>(t)] =
          taps_bus[rng.index(taps_bus.size() - 1)];
    }
    const NetId feedback = b.lut(feedback_in);

    // Cycle counter per LFSR: a carry-chain incrementer with registered
    // state, so the generator exercises FF + LUT + carry together.
    const std::vector<NetId> count_q =
        b.register_bus(std::vector<NetId>(taps_bus.begin(), taps_bus.end()),
                       cs);
    const std::vector<NetId> incremented = b.adder(count_q, taps_bus);
    module.netlist.mark_output(incremented.back());

    // SRL delay line on the feedback bit.
    NetId delayed = feedback;
    for (int d = 0; d < params.srl_delay; ++d) {
      delayed = b.srl(delayed, cs);
    }
    module.netlist.mark_output(delayed);
  }
  return module;
}

}  // namespace mf
