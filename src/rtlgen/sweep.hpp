#pragma once
// Dataset sweep: enumerates ~2,000 generator configurations covering the
// design space of Figure 7 (12 .. ~5,000 LUTs, all resource mixes).
//
// Specs are lightweight descriptions; modules are realised on demand so a
// full sweep never holds 2,000 netlists in memory at once.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/thread_pool.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

enum class GenKind : std::uint8_t {
  ShiftReg,
  LutRam,
  Carry,
  Lfsr,
  Fir,
  Fsm,
  Mixed,
};

[[nodiscard]] const char* to_string(GenKind kind) noexcept;

struct GenSpec {
  std::string name;
  GenKind kind = GenKind::Mixed;
  std::variant<ShiftRegParams, LutRamParams, CarryParams, LfsrParams,
               FirParams, FsmParams, MixedParams>
      params;
  std::uint64_t seed = 0;
};

/// Instantiate the module described by `spec` (deterministic per spec).
Module realize(const GenSpec& spec);

/// Realize every spec, fanned out over `jobs` workers (1 = sequential,
/// 0 = hardware concurrency). Each spec seeds its own Rng, so the returned
/// modules are bit-identical to sequential realization in spec order. Note
/// this holds every netlist in memory at once -- the labelling flows prefer
/// realize-on-demand (flow/ground_truth.cpp); this is for callers that need
/// the whole sweep materialized (statistics, export).
std::vector<Module> realize_all(const std::vector<GenSpec>& specs,
                                int jobs = MF_JOBS_DEFAULT);

struct SweepOptions {
  int target_modules = 2000;  ///< total spec count (grid + random fill)
  std::uint64_t seed = 42;
};

/// Grid sweeps over the four corner-case generators plus random sampling of
/// the generic template until `target_modules` specs exist.
std::vector<GenSpec> dataset_sweep(const SweepOptions& opts = {});

}  // namespace mf
