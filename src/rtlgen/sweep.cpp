#include "rtlgen/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mf {

const char* to_string(GenKind kind) noexcept {
  switch (kind) {
    case GenKind::ShiftReg:
      return "shiftreg";
    case GenKind::LutRam:
      return "lutram";
    case GenKind::Carry:
      return "carry";
    case GenKind::Lfsr:
      return "lfsr";
    case GenKind::Fir:
      return "fir";
    case GenKind::Fsm:
      return "fsm";
    case GenKind::Mixed:
      return "mixed";
  }
  return "?";
}

namespace {

// Overload trampoline so std::visit can dispatch to the free generators.
Module gen_module(const ShiftRegParams& p, Rng& rng) {
  return gen_shiftreg(p, rng);
}
Module gen_module(const LutRamParams& p, Rng& rng) {
  return gen_lutram(p, rng);
}
Module gen_module(const CarryParams& p, Rng& rng) { return gen_carry(p, rng); }
Module gen_module(const LfsrParams& p, Rng& rng) { return gen_lfsr(p, rng); }
Module gen_module(const FirParams& p, Rng& rng) { return gen_fir(p, rng); }
Module gen_module(const FsmParams& p, Rng& rng) { return gen_fsm(p, rng); }
Module gen_module(const MixedParams& p, Rng& rng) { return gen_mixed(p, rng); }

}  // namespace

Module realize(const GenSpec& spec) {
  Rng rng(spec.seed);
  Module module = std::visit(
      [&](const auto& params) { return gen_module(params, rng); },
      spec.params);
  module.name = spec.name;
  return module;
}

std::vector<Module> realize_all(const std::vector<GenSpec>& specs, int jobs) {
  std::vector<Module> modules(specs.size());
  parallel_for_each(jobs, specs.size(),
                    [&](std::size_t i) { modules[i] = realize(specs[i]); });
  return modules;
}

std::vector<GenSpec> dataset_sweep(const SweepOptions& opts) {
  MF_CHECK(opts.target_modules > 0);
  std::vector<GenSpec> specs;
  specs.reserve(static_cast<std::size_t>(opts.target_modules));
  Rng rng(opts.seed);
  int counter = 0;

  auto push = [&](GenKind kind, auto params) {
    if (static_cast<int>(specs.size()) >= opts.target_modules) return;
    GenSpec spec;
    spec.kind = kind;
    spec.name = std::string(to_string(kind)) + "_" + std::to_string(counter);
    spec.params = params;
    spec.seed = opts.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(counter);
    ++counter;
    specs.push_back(std::move(spec));
  };

  // -- corner-case grids (Section VI-A) ------------------------------------
  for (int chains : {4, 8, 16, 32, 64, 96}) {
    for (int depth : {4, 8, 16, 32}) {
      for (int cs : {1, 2, 4, 8, 16}) {
        for (int fanin : {2, 4, 6}) {
          if (cs > chains) continue;
          push(GenKind::ShiftReg, ShiftRegParams{chains, depth, cs, fanin});
        }
      }
    }
  }
  for (int width : {1, 2, 4, 8, 16, 32}) {
    for (int depth : {32, 64, 128, 256, 512, 1024}) {
      push(GenKind::LutRam, LutRamParams{width, depth});
    }
  }
  for (int terms : {1, 2, 4}) {
    for (int width : {4, 8, 12, 16, 24}) {
      for (bool reg : {false, true}) {
        push(GenKind::Carry, CarryParams{terms, width, reg});
      }
    }
  }
  for (int count : {1, 2, 4, 8, 16}) {
    for (int width : {8, 16, 24, 32}) {
      for (int taps : {3, 5}) {
        for (int srl : {0, 2, 4}) {
          for (int cs : {1, 4}) {
            if (cs > count) continue;
            push(GenKind::Lfsr, LfsrParams{count, width, taps, srl, cs});
          }
        }
      }
    }
  }

  for (int taps : {4, 8, 16, 32}) {
    for (int width : {8, 16, 24}) {
      for (bool dsp : {false, true}) {
        push(GenKind::Fir, FirParams{taps, width, dsp});
      }
    }
  }
  for (int bits : {4, 6, 8, 10}) {
    for (int outputs : {8, 32, 96}) {
      for (int tps : {4, 8}) {
        push(GenKind::Fsm, FsmParams{bits, outputs, tps});
      }
    }
  }

  // -- generic template fill (Figure 6) -------------------------------------
  // Log-uniform LUT target in [12, 5000]; 85% of draws stay below 2,500 LUTs
  // by construction of the log range, matching Section VI-C's observation.
  while (static_cast<int>(specs.size()) < opts.target_modules) {
    MixedParams p;
    const double log_lut =
        rng.uniform(std::log(12.0), std::log(5000.0));
    p.luts = static_cast<int>(std::exp(log_lut));
    p.ffs = static_cast<int>(p.luts * rng.uniform(0.2, 2.4));
    p.carry_adders = static_cast<int>(rng.uniform_int(0, 6));
    p.carry_width = static_cast<int>(rng.uniform_int(4, 32));
    p.srls = rng.bernoulli(0.4)
                 ? static_cast<int>(rng.uniform_int(0, std::max(1, p.luts / 4)))
                 : 0;
    p.lutrams =
        rng.bernoulli(0.3)
            ? static_cast<int>(rng.uniform_int(0, std::max(1, p.luts / 6)))
            : 0;
    p.bram = rng.bernoulli(0.15) ? static_cast<int>(rng.uniform_int(1, 8)) : 0;
    p.dsp = rng.bernoulli(0.1) ? static_cast<int>(rng.uniform_int(1, 8)) : 0;
    p.control_sets = static_cast<int>(rng.uniform_int(1, 16));
    p.fanout_boost =
        rng.bernoulli(0.35) ? static_cast<int>(rng.uniform_int(8, 200)) : 0;
    push(GenKind::Mixed, p);
  }
  return specs;
}

}  // namespace mf
