#include <algorithm>
#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_mixed(const MixedParams& params, Rng& rng) {
  MF_CHECK(params.luts >= 4 && params.ffs >= 0);
  MF_CHECK(params.control_sets >= 1);
  MF_CHECK(params.carry_adders >= 0 && params.carry_width >= 0);

  Module module;
  module.name = "mixed";
  module.params = "luts=" + std::to_string(params.luts) +
                  " ffs=" + std::to_string(params.ffs) +
                  " carry=" + std::to_string(params.carry_adders) + "x" +
                  std::to_string(params.carry_width) +
                  " srls=" + std::to_string(params.srls) +
                  " lutrams=" + std::to_string(params.lutrams) +
                  " cs=" + std::to_string(params.control_sets) +
                  " fo=" + std::to_string(params.fanout_boost);
  NetlistBuilder b(module.netlist);

  std::vector<ControlSetId> sets;
  for (int i = 0; i < params.control_sets; ++i) {
    sets.push_back(b.control_set(b.input("rst" + std::to_string(i)),
                                 b.input("en" + std::to_string(i))));
  }
  auto next_cs = [&, i = std::size_t{0}]() mutable {
    return sets[i++ % sets.size()];
  };

  const std::vector<NetId> primary = b.input_bus(16, "din");
  const NetId broadcast = b.input("bcast");

  // LUT budget accounting: the adder propagate LUTs and the LUTRAM read
  // muxes also consume LUT cells, so the datapath layers take what remains.
  int lut_budget = params.luts;

  // 1) Carry section: parallel adders over registered operands.
  std::vector<NetId> carry_outs;
  for (int a = 0; a < params.carry_adders && params.carry_width >= 2; ++a) {
    std::vector<NetId> lhs(static_cast<std::size_t>(params.carry_width));
    std::vector<NetId> rhs(static_cast<std::size_t>(params.carry_width));
    for (int i = 0; i < params.carry_width; ++i) {
      lhs[static_cast<std::size_t>(i)] = primary[rng.index(primary.size())];
      rhs[static_cast<std::size_t>(i)] = primary[rng.index(primary.size())];
    }
    const std::vector<NetId> sum = b.adder(lhs, rhs);
    lut_budget -= params.carry_width;
    carry_outs.insert(carry_outs.end(), sum.begin(), sum.end());
  }

  // 2) SRL and LUTRAM side structures.
  std::vector<NetId> side_outs;
  for (int i = 0; i < params.srls; ++i) {
    side_outs.push_back(b.srl(primary[rng.index(primary.size())], next_cs()));
  }
  if (params.lutrams > 0) {
    const std::span<const NetId> addr(primary.data(), 5);
    for (int i = 0; i < params.lutrams; ++i) {
      side_outs.push_back(
          b.lutram(addr, primary[rng.index(primary.size())], next_cs()));
    }
  }

  // 3) Hard blocks.
  for (int i = 0; i < params.bram; ++i) {
    const std::span<const NetId> addr(primary.data(), 10);
    const std::span<const NetId> din(primary.data(), 8);
    side_outs.push_back(b.bram36(addr, din));
  }
  for (int i = 0; i < params.dsp; ++i) {
    const std::span<const NetId> a(primary.data(), 8);
    const std::span<const NetId> bb(primary.data() + 8, 8);
    side_outs.push_back(b.dsp48(a, bb));
  }

  // 4) Datapath: LUT layers interleaved with pipeline registers until both
  // budgets are spent. The broadcast net is mixed into `fanout_boost` LUTs.
  std::vector<NetId> wave = primary;
  wave.insert(wave.end(), carry_outs.begin(), carry_outs.end());
  wave.insert(wave.end(), side_outs.begin(), side_outs.end());

  int ff_budget = params.ffs;
  int boost_left = params.fanout_boost;
  while (lut_budget > 0) {
    const int layer = std::min(lut_budget, 32);
    std::vector<NetId> outs(static_cast<std::size_t>(layer));
    for (int i = 0; i < layer; ++i) {
      std::vector<NetId> ins;
      const int arity = static_cast<int>(rng.uniform_int(2, 5));
      for (int k = 0; k < arity; ++k) {
        ins.push_back(wave[rng.index(wave.size())]);
      }
      if (boost_left > 0) {
        ins.back() = broadcast;
        --boost_left;
      }
      outs[static_cast<std::size_t>(i)] = b.lut(ins);
    }
    lut_budget -= layer;

    if (ff_budget > 0) {
      const int regs = std::min<int>(ff_budget, layer);
      const std::span<const NetId> head(outs.data(),
                                        static_cast<std::size_t>(regs));
      const std::vector<NetId> q = b.register_bus(head, next_cs());
      std::copy(q.begin(), q.end(), outs.begin());
      ff_budget -= regs;
    }
    wave = std::move(outs);
  }
  // Spend any remaining FF budget on chains off the last wave.
  while (ff_budget > 0) {
    const int depth = std::min(ff_budget, 16);
    const std::vector<NetId> taps =
        b.ff_chain(wave[rng.index(wave.size())], depth, next_cs());
    module.netlist.mark_output(taps.back());
    ff_budget -= depth;
  }

  for (NetId n : wave) module.netlist.mark_output(n);
  return module;
}

}  // namespace mf
