#include <string>

#include "netlist/builder.hpp"
#include "rtlgen/generators.hpp"

namespace mf {

Module gen_shiftreg(const ShiftRegParams& params, Rng& rng) {
  MF_CHECK(params.chains > 0 && params.depth > 0);
  MF_CHECK(params.control_sets >= 1 && params.fanin >= 1 &&
           params.fanin <= 6);

  Module module;
  module.name = "shiftreg";
  module.params = "chains=" + std::to_string(params.chains) +
                  " depth=" + std::to_string(params.depth) +
                  " cs=" + std::to_string(params.control_sets) +
                  " fanin=" + std::to_string(params.fanin);
  NetlistBuilder b(module.netlist);

  // Distinct control sets: every group gets its own reset and enable nets.
  // These nets pick up one control load per FF, so a design with few groups
  // exhibits exactly the high-fanout resets Section V-D talks about.
  std::vector<ControlSetId> sets;
  sets.reserve(static_cast<std::size_t>(params.control_sets));
  for (int i = 0; i < params.control_sets; ++i) {
    const NetId sr = b.input("rst" + std::to_string(i));
    const NetId ce = b.input("en" + std::to_string(i));
    sets.push_back(b.control_set(sr, ce));
  }

  // Shared input pool the head LUTs draw from; pool smaller than total LUT
  // input demand => genuine multi-load fanin nets.
  const int pool_size = std::max(2, params.fanin * 2);
  const std::vector<NetId> pool = b.input_bus(pool_size, "din");

  for (int c = 0; c < params.chains; ++c) {
    std::vector<NetId> head_inputs(static_cast<std::size_t>(params.fanin));
    for (int k = 0; k < params.fanin; ++k) {
      head_inputs[static_cast<std::size_t>(k)] =
          pool[rng.index(pool.size())];
    }
    const NetId head = b.lut(head_inputs);
    const ControlSetId cs =
        sets[static_cast<std::size_t>(c) % sets.size()];
    const std::vector<NetId> taps = b.ff_chain(head, params.depth, cs);
    module.netlist.mark_output(taps.back());
  }
  return module;
}

}  // namespace mf
