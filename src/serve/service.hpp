#pragma once
// EstimatorService: load a model bundle once, answer estimate() calls from
// any number of threads (DESIGN.md section 8).
//
// Serving rules:
//   * Bundles are resolved through the ModelRegistry and cached in a small
//     LRU keyed by model name; a served bundle is immutable and shared, so
//     an eviction never invalidates an in-flight prediction (shared_ptr
//     keeps it alive until the last request drops it).
//   * Batched prediction is deterministic micro-batching over the PR-2
//     ThreadPool: rows are split into fixed-size grains, each grain writes
//     into a pre-sized slot range of the output vector, and prediction is
//     pure, so results are bit-identical at any `jobs` value and identical
//     to the sequential loop.
//   * Counters (requests, rows, loads, LRU hits/misses/evictions, latency)
//     are aggregated under the same mutex that guards the LRU, and are
//     monotonically increasing totals -- cheap enough at estimator-service
//     granularity (one lock per request, never per row).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/registry.hpp"

namespace mf {

struct ServiceOptions {
  /// LRU capacity in loaded bundles (>= 1).
  std::size_t max_loaded_bundles = 4;
  /// Worker threads for batched prediction: 1 = sequential, 0 = hardware
  /// concurrency. Bit-identical results at any value.
  int jobs = MF_JOBS_DEFAULT;
  /// Rows per micro-batch grain; small enough to load-balance, large
  /// enough to amortise task dispatch.
  std::size_t batch_grain = 256;
};

/// Monotonic service counters (totals since construction).
struct ServiceStats {
  std::uint64_t requests = 0;      ///< estimate() + predict_rows() calls
  std::uint64_t rows = 0;          ///< total rows predicted
  std::uint64_t bundle_loads = 0;  ///< registry resolutions (LRU misses)
  std::uint64_t lru_hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t latency_ns = 0;    ///< summed wall time inside predict calls
};

class EstimatorService {
 public:
  EstimatorService(std::string registry_dir, ServiceOptions options = {});

  /// Predict one module's CF with the named model. nullopt when no usable
  /// bundle resolves; last_error() then explains why.
  std::optional<double> estimate(const std::string& model,
                                 const ResourceReport& report,
                                 const ShapeReport& shape);

  /// Batched prediction over pre-extracted feature rows. Row i of the
  /// result corresponds to rows[i]; bit-identical at any jobs value.
  std::optional<std::vector<double>> predict_rows(
      const std::string& model,
      const std::vector<std::vector<double>>& rows);

  /// The bundle a name currently serves (loading it if needed) -- for
  /// provenance display; shares the LRU with the predict paths.
  std::shared_ptr<const ModelBundle> bundle(const std::string& model);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::string last_error() const;
  [[nodiscard]] const ModelRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  std::shared_ptr<const ModelBundle> acquire(const std::string& model);
  void record_latency(std::uint64_t ns, std::uint64_t rows);

  ModelRegistry registry_;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  /// LRU: most-recently-used at the front; list nodes own the cache keys.
  std::list<std::pair<std::string, std::shared_ptr<const ModelBundle>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  ServiceStats stats_;
  std::string last_error_;
};

}  // namespace mf
