#pragma once
// EstimatorService: load a model bundle once, answer estimate() calls from
// any number of threads (DESIGN.md section 8).
//
// Serving rules:
//   * Bundles are resolved through the ModelRegistry and cached in a small
//     LRU keyed by model name; a served bundle is immutable and shared, so
//     an eviction never invalidates an in-flight prediction (shared_ptr
//     keeps it alive until the last request drops it).
//   * Batched prediction is deterministic micro-batching over the PR-2
//     ThreadPool: rows are split into fixed-size grains, each grain writes
//     into a pre-sized slot range of the output vector, and prediction is
//     pure, so results are bit-identical at any `jobs` value and identical
//     to the sequential loop.
//   * Counters (requests, rows, loads, LRU hits/misses/evictions, latency)
//     are aggregated under the same mutex that guards the LRU, and are
//     monotonically increasing totals -- cheap enough at estimator-service
//     granularity (one lock per request, never per row).

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "common/thread_pool.hpp"
#include "serve/registry.hpp"

namespace mf {

struct ServiceOptions {
  /// LRU capacity in loaded bundles (>= 1).
  std::size_t max_loaded_bundles = 4;
  /// Worker threads for batched prediction: 1 = sequential, 0 = hardware
  /// concurrency. Bit-identical results at any value.
  int jobs = MF_JOBS_DEFAULT;
  /// Rows per micro-batch grain; small enough to load-balance, large
  /// enough to amortise task dispatch.
  std::size_t batch_grain = 256;
  /// Circuit breaker (self-healing serving). 0 disables it: a resolve
  /// failure then returns nullopt exactly as before. N >= 1 arms it: a
  /// model whose resolve fails is served `fallback_cf` instead (degraded,
  /// never erroring -- the paper's constant-CF baseline is always a valid
  /// answer), and after N *consecutive* failures the breaker opens:
  /// requests skip the registry entirely (no disk scan / parse per call)
  /// until `breaker_cooldown_seconds` passes, when one half-open probe is
  /// let through -- success closes the breaker, failure re-opens it for
  /// another cool-down. All transitions are counted in ServiceStats.
  int breaker_failure_threshold = 0;
  double breaker_cooldown_seconds = 30.0;
  /// CF served while degraded (RW's default constant).
  double fallback_cf = 1.5;
  /// Cooperative cancellation for batched prediction: a tripped token makes
  /// predict_rows() stop scheduling grains and return nullopt (partial
  /// batches are never returned); last_error() reports the cancellation.
  const CancelToken* cancel = nullptr;
};

/// Monotonic service counters (totals since construction).
struct ServiceStats {
  std::uint64_t requests = 0;      ///< estimate() + predict_rows() calls
  std::uint64_t rows = 0;          ///< total rows predicted
  std::uint64_t bundle_loads = 0;  ///< registry resolutions (LRU misses)
  std::uint64_t lru_hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t latency_ns = 0;    ///< summed wall time inside predict calls
  /// Per-request wall time (ns) in fixed log2 buckets; p50/p99 for the
  /// serving daemon come from here (latency.quantile_max(0.5) etc.), not
  /// from a recomputation outside the service.
  Log2Histogram latency;
  std::uint64_t resolve_failures = 0;  ///< acquire() found no usable bundle
  std::uint64_t breaker_trips = 0;     ///< closed/half-open -> open edges
  std::uint64_t fallback_requests = 0; ///< requests served the constant CF
};

class EstimatorService {
 public:
  EstimatorService(std::string registry_dir, ServiceOptions options = {});

  /// Predict one module's CF with the named model. nullopt when no usable
  /// bundle resolves; last_error() then explains why.
  std::optional<double> estimate(const std::string& model,
                                 const ResourceReport& report,
                                 const ShapeReport& shape);

  /// Batched prediction over pre-extracted feature rows. Row i of the
  /// result corresponds to rows[i]; bit-identical at any jobs value.
  ///
  /// `version` pins an exact bundle version (>= 1): the serving daemon's
  /// canary/stable routing needs two live versions of one name, so pinned
  /// entries get their own LRU slot (`name@vN`) and load via
  /// ModelRegistry::load instead of newest-clean resolve. A pinned version
  /// that is missing or damaged returns nullopt -- never the fallback CF
  /// and never a breaker trip; degraded serving stays a newest-resolve
  /// (version <= 0) policy, because "this exact version is bad" is the
  /// signal the canary controller consumes.
  std::optional<std::vector<double>> predict_rows(
      const std::string& model,
      const std::vector<std::vector<double>>& rows, int version = 0);

  /// The bundle a name currently serves (loading it if needed) -- for
  /// provenance display; shares the LRU with the predict paths. Same
  /// version-pinning contract as predict_rows.
  std::shared_ptr<const ModelBundle> bundle(const std::string& model,
                                            int version = 0);

  [[nodiscard]] ServiceStats stats() const;
  /// Race-free copy of the counters *and* histograms: one mutex acquisition,
  /// no torn histogram reads. (stats() is kept as the legacy alias.)
  [[nodiscard]] ServiceStats snapshot() const { return stats(); }
  [[nodiscard]] std::string last_error() const;
  [[nodiscard]] const ModelRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  /// Per-model circuit-breaker state (guarded by mutex_).
  struct BreakerState {
    int consecutive_failures = 0;
    bool open = false;
    std::chrono::steady_clock::time_point retry_at{};
  };

  std::shared_ptr<const ModelBundle> acquire(const std::string& model,
                                             int version = 0);
  void record_latency(std::uint64_t ns, std::uint64_t rows);
  /// Degraded-path bookkeeping for one request of `rows` rows served the
  /// constant fallback CF.
  void record_fallback(std::uint64_t ns, std::uint64_t rows);

  ModelRegistry registry_;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  /// LRU: most-recently-used at the front; list nodes own the cache keys.
  std::list<std::pair<std::string, std::shared_ptr<const ModelBundle>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  std::unordered_map<std::string, BreakerState> breakers_;
  ServiceStats stats_;
  std::string last_error_;
};

}  // namespace mf
