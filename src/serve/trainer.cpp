#include "serve/trainer.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "flow/ground_truth.hpp"
#include "ml/metrics.hpp"
#include "rtlgen/sweep.hpp"

namespace mf {

ModelBundle train_bundle(const TrainSpec& spec, const Device& device) {
  MF_CHECK(spec.dataset_count > 0);
  MF_CHECK(spec.train_fraction > 0.0 && spec.train_fraction <= 1.0);

  const GroundTruth truth = build_ground_truth(
      dataset_sweep({spec.dataset_count, spec.dataset_seed}), device, {},
      spec.jobs);
  MF_CHECK_MSG(!truth.samples.empty(), "no feasible training samples");

  Rng balance_rng(task_seed(spec.options.seed, "serve:balance"));
  const Dataset balanced =
      balance_by_target(make_dataset(spec.features, truth.samples),
                        spec.bin_width, spec.bin_cap, balance_rng);

  Dataset train = balanced;
  Dataset holdout;
  if (spec.train_fraction < 1.0) {
    Rng split_rng(task_seed(spec.options.seed, "serve:split"));
    std::tie(train, holdout) =
        train_test_split(balanced, spec.train_fraction, split_rng);
  }

  CfEstimator::Options options = spec.options;
  options.rforest.jobs = spec.jobs;
  ModelBundle bundle;
  bundle.name = spec.name;
  bundle.estimator = CfEstimator(spec.kind, spec.features, options);
  bundle.estimator.train(train);

  BundleProvenance& p = bundle.provenance;
  p.seed = spec.options.seed;
  p.dataset_seed = spec.dataset_seed;
  p.dataset_rows = static_cast<std::int64_t>(train.size());
  p.holdout_rows = static_cast<std::int64_t>(holdout.size());
  if (holdout.size() > 0) {
    const std::vector<double> pred =
        bundle.estimator.predict_rows(holdout.x);
    p.holdout_mean_rel_err = mean_relative_error(pred, holdout.y);
    p.holdout_median_rel_err = median_relative_error(pred, holdout.y);
  }
  return bundle;
}

}  // namespace mf
