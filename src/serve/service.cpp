#include "serve/service.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"

namespace mf {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EstimatorService::EstimatorService(std::string registry_dir,
                                   ServiceOptions options)
    : registry_(std::move(registry_dir)), options_(options) {
  MF_CHECK_MSG(options_.max_loaded_bundles >= 1,
               "the bundle LRU needs capacity >= 1");
  MF_CHECK_MSG(options_.batch_grain >= 1, "batch grain must be >= 1");
}

std::shared_ptr<const ModelBundle> EstimatorService::acquire(
    const std::string& model, int version) {
  // A pinned version gets its own LRU slot: the daemon's canary routing
  // keeps `name` (stable) and `name@vN` (candidate) live side by side, and
  // both stay immutable-shared so neither invalidates in-flight work.
  const bool pinned = version >= 1;
  const std::string key =
      pinned ? model + "@v" + std::to_string(version) : model;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // Refresh recency: splice the hit to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.lru_hits;
      return it->second->second;
    }
    // Open breaker: skip the registry entirely until the cool-down expires
    // (a broken registry must not cost a directory scan + parse attempt per
    // request). When it has expired, let exactly this call through as the
    // half-open probe and push retry_at forward so concurrent requests keep
    // serving the fallback while the probe is in flight.
    if (!pinned && options_.breaker_failure_threshold > 0) {
      BreakerState& breaker = breakers_[model];
      if (breaker.open) {
        const auto now = std::chrono::steady_clock::now();
        if (now < breaker.retry_at) {
          last_error_ = "circuit open for '" + model + "'";
          return nullptr;
        }
        breaker.retry_at =
            now + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          options_.breaker_cooldown_seconds));
      }
    }
  }
  // Resolve outside the lock: disk + parse is the slow path, and two
  // threads racing on the same cold name both load a valid bundle (the
  // second insert wins the cache slot; both predictions are correct).
  ResolveStats resolve_stats;
  std::string load_error;
  std::optional<ModelBundle> bundle =
      pinned ? registry_.load(model, version, &load_error)
             : registry_.resolve(model, std::nullopt, std::nullopt,
                                 &resolve_stats);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!bundle) {
    // A failed pinned load never feeds the breaker or the fallback path:
    // "this exact version is unusable" is an answer the canary controller
    // wants verbatim, while degraded serving remains a newest-resolve story.
    if (pinned) {
      last_error_ = "bundle '" + model + "' v" + std::to_string(version) +
                    " failed to load: " +
                    (load_error.empty() ? "missing" : load_error);
      ++stats_.resolve_failures;
      return nullptr;
    }
    last_error_ = resolve_stats.considered == 0
                      ? "no bundle named '" + model + "' in " +
                            registry_.dir()
                      : "all " + std::to_string(resolve_stats.considered) +
                            " bundle(s) named '" + model +
                            "' rejected: " + resolve_stats.last_error;
    ++stats_.resolve_failures;
    if (options_.breaker_failure_threshold > 0) {
      BreakerState& breaker = breakers_[model];
      ++breaker.consecutive_failures;
      const bool trip =
          !breaker.open && breaker.consecutive_failures >=
                               options_.breaker_failure_threshold;
      if (trip) ++stats_.breaker_trips;  // closed -> open edge
      if (trip || breaker.open) {        // failed half-open probe re-arms
        breaker.open = true;
        breaker.retry_at =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    options_.breaker_cooldown_seconds));
      }
    }
    return nullptr;
  }
  // A clean load heals the model: close the breaker and forget failures.
  if (!pinned) breakers_.erase(model);
  ++stats_.bundle_loads;
  auto shared = std::make_shared<const ModelBundle>(std::move(*bundle));
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing loader beat us; serve the freshly parsed copy but keep the
    // cache single-entry-per-name.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = shared;
    return shared;
  }
  lru_.emplace_front(key, shared);
  index_[key] = lru_.begin();
  while (lru_.size() > options_.max_loaded_bundles) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return shared;
}

std::optional<double> EstimatorService::estimate(const std::string& model,
                                                 const ResourceReport& report,
                                                 const ShapeReport& shape) {
  const std::uint64_t start = now_ns();
  const std::shared_ptr<const ModelBundle> bundle = acquire(model);
  if (bundle == nullptr) {
    // Degraded serving: with the breaker armed a missing/broken bundle is
    // answered with the constant-CF policy instead of an error (nullopt
    // stays reserved for the breaker-disabled legacy contract).
    if (options_.breaker_failure_threshold > 0) {
      record_fallback(now_ns() - start, 1);
      return options_.fallback_cf;
    }
    return std::nullopt;
  }
  const double value = bundle->estimator.estimate(report, shape);
  record_latency(now_ns() - start, 1);
  return value;
}

std::optional<std::vector<double>> EstimatorService::predict_rows(
    const std::string& model,
    const std::vector<std::vector<double>>& rows, int version) {
  const std::uint64_t start = now_ns();
  const std::shared_ptr<const ModelBundle> bundle = acquire(model, version);
  if (bundle == nullptr) {
    // Pinned versions never degrade to the fallback CF (see acquire()).
    if (version < 1 && options_.breaker_failure_threshold > 0) {
      record_fallback(now_ns() - start, rows.size());
      return std::vector<double>(rows.size(), options_.fallback_cf);
    }
    return std::nullopt;
  }

  // Deterministic micro-batching: grain g covers the half-open slot range
  // [g*grain, min((g+1)*grain, n)) of the pre-sized output. Prediction is
  // pure and every slot is written by exactly one grain, so the result is
  // bit-identical at any jobs value (and to the sequential loop).
  std::vector<double> out(rows.size());
  const std::size_t grain = options_.batch_grain;
  const std::size_t grains = (rows.size() + grain - 1) / grain;
  const CfEstimator& estimator = bundle->estimator;
  parallel_for_each(
      options_.jobs, grains,
      [&](std::size_t g) {
        const std::size_t lo = g * grain;
        const std::size_t hi = std::min(rows.size(), lo + grain);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = estimator.predict_row(rows[i]);
        }
      },
      options_.cancel);
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    // Never hand back a partially filled batch.
    std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = "predict_rows cancelled for '" + model + "'";
    return std::nullopt;
  }
  record_latency(now_ns() - start, rows.size());
  return out;
}

std::shared_ptr<const ModelBundle> EstimatorService::bundle(
    const std::string& model, int version) {
  return acquire(model, version);
}

void EstimatorService::record_latency(std::uint64_t ns, std::uint64_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  stats_.rows += rows;
  stats_.latency_ns += ns;
  stats_.latency.record(ns);
}

void EstimatorService::record_fallback(std::uint64_t ns, std::uint64_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  stats_.rows += rows;
  stats_.latency_ns += ns;
  stats_.latency.record(ns);
  ++stats_.fallback_requests;
}

ServiceStats EstimatorService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string EstimatorService::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace mf
