#include "serve/service.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"

namespace mf {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EstimatorService::EstimatorService(std::string registry_dir,
                                   ServiceOptions options)
    : registry_(std::move(registry_dir)), options_(options) {
  MF_CHECK_MSG(options_.max_loaded_bundles >= 1,
               "the bundle LRU needs capacity >= 1");
  MF_CHECK_MSG(options_.batch_grain >= 1, "batch grain must be >= 1");
}

std::shared_ptr<const ModelBundle> EstimatorService::acquire(
    const std::string& model) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(model);
    if (it != index_.end()) {
      // Refresh recency: splice the hit to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.lru_hits;
      return it->second->second;
    }
  }
  // Resolve outside the lock: disk + parse is the slow path, and two
  // threads racing on the same cold name both load a valid bundle (the
  // second insert wins the cache slot; both predictions are correct).
  ResolveStats resolve_stats;
  std::optional<ModelBundle> bundle =
      registry_.resolve(model, std::nullopt, std::nullopt, &resolve_stats);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!bundle) {
    last_error_ = resolve_stats.considered == 0
                      ? "no bundle named '" + model + "' in " +
                            registry_.dir()
                      : "all " + std::to_string(resolve_stats.considered) +
                            " bundle(s) named '" + model +
                            "' rejected: " + resolve_stats.last_error;
    return nullptr;
  }
  ++stats_.bundle_loads;
  auto shared = std::make_shared<const ModelBundle>(std::move(*bundle));
  const auto it = index_.find(model);
  if (it != index_.end()) {
    // A racing loader beat us; serve the freshly parsed copy but keep the
    // cache single-entry-per-name.
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = shared;
    return shared;
  }
  lru_.emplace_front(model, shared);
  index_[model] = lru_.begin();
  while (lru_.size() > options_.max_loaded_bundles) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return shared;
}

std::optional<double> EstimatorService::estimate(const std::string& model,
                                                 const ResourceReport& report,
                                                 const ShapeReport& shape) {
  const std::uint64_t start = now_ns();
  const std::shared_ptr<const ModelBundle> bundle = acquire(model);
  if (bundle == nullptr) return std::nullopt;
  const double value = bundle->estimator.estimate(report, shape);
  record_latency(now_ns() - start, 1);
  return value;
}

std::optional<std::vector<double>> EstimatorService::predict_rows(
    const std::string& model,
    const std::vector<std::vector<double>>& rows) {
  const std::uint64_t start = now_ns();
  const std::shared_ptr<const ModelBundle> bundle = acquire(model);
  if (bundle == nullptr) return std::nullopt;

  // Deterministic micro-batching: grain g covers the half-open slot range
  // [g*grain, min((g+1)*grain, n)) of the pre-sized output. Prediction is
  // pure and every slot is written by exactly one grain, so the result is
  // bit-identical at any jobs value (and to the sequential loop).
  std::vector<double> out(rows.size());
  const std::size_t grain = options_.batch_grain;
  const std::size_t grains = (rows.size() + grain - 1) / grain;
  const CfEstimator& estimator = bundle->estimator;
  parallel_for_each(options_.jobs, grains, [&](std::size_t g) {
    const std::size_t lo = g * grain;
    const std::size_t hi = std::min(rows.size(), lo + grain);
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = estimator.predict_row(rows[i]);
    }
  });
  record_latency(now_ns() - start, rows.size());
  return out;
}

std::shared_ptr<const ModelBundle> EstimatorService::bundle(
    const std::string& model) {
  return acquire(model);
}

void EstimatorService::record_latency(std::uint64_t ns, std::uint64_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  stats_.rows += rows;
  stats_.latency_ns += ns;
}

ServiceStats EstimatorService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string EstimatorService::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace mf
