#include "serve/registry.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <system_error>

#include "common/atomic_file.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

constexpr const char* kExtension = ".mfb";

/// Parse `<name>-v<version>.mfb` back into (name, version).
std::optional<RegistryEntry> parse_filename(const fs::path& path) {
  if (path.extension() != kExtension) return std::nullopt;
  const std::string stem = path.stem().string();
  const std::size_t cut = stem.rfind("-v");
  if (cut == std::string::npos || cut == 0) return std::nullopt;
  const char* begin = stem.data() + cut + 2;
  const char* end = stem.data() + stem.size();
  int version = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, version);
  if (ec != std::errc{} || ptr != end || version < 1) return std::nullopt;
  RegistryEntry entry;
  entry.name = stem.substr(0, cut);
  entry.version = version;
  entry.path = path.string();
  return entry;
}

/// Move a bundle that failed to load into `<dir>/quarantine/`, recording why
/// in a `.reason` sibling. Best effort -- a read-only registry directory
/// still resolves (the damaged file is merely skipped, not moved) -- and
/// returns whether the move actually happened.
bool quarantine_entry(const std::string& dir, const RegistryEntry& entry,
                      const std::string& reason) {
  std::error_code ec;
  const fs::path qdir = fs::path(dir) / "quarantine";
  fs::create_directories(qdir, ec);
  if (ec) return false;
  const fs::path target = qdir / fs::path(entry.path).filename();
  fs::rename(entry.path, target, ec);
  if (ec) return false;
  // The reason file is diagnostics, not control flow: ignore its outcome.
  atomic_write_file(target.string() + ".reason", reason + "\n");
  return true;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best effort; put() reports failures
}

std::string ModelRegistry::quarantine_dir() const {
  return (fs::path(dir_) / "quarantine").string();
}

std::vector<RegistryEntry> ModelRegistry::list() const {
  std::vector<RegistryEntry> entries;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir_, ec)) {
    if (!item.is_regular_file(ec)) continue;
    if (auto entry = parse_filename(item.path())) {
      entries.push_back(std::move(*entry));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const RegistryEntry& a, const RegistryEntry& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.version > b.version;
            });
  return entries;
}

std::optional<RegistryEntry> ModelRegistry::put(ModelBundle bundle) {
  int next_version = 1;
  for (const RegistryEntry& entry : list()) {
    if (entry.name == bundle.name) {
      next_version = std::max(next_version, entry.version + 1);
    }
  }
  // Versions stay monotonic across quarantines: a quarantined m-v2 keeps its
  // filename as forensic evidence, so v2 must never be reissued (the next
  // corrupt v2 would collide with -- and overwrite -- the preserved one).
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(quarantine_dir(), ec)) {
    if (!item.is_regular_file(ec)) continue;
    if (const auto entry = parse_filename(item.path())) {
      if (entry->name == bundle.name) {
        next_version = std::max(next_version, entry->version + 1);
      }
    }
  }
  bundle.version = next_version;
  RegistryEntry entry;
  entry.name = bundle.name;
  entry.version = next_version;
  entry.path = (fs::path(dir_) /
                (bundle.name + "-v" + std::to_string(next_version) +
                 kExtension))
                   .string();
  if (!save_bundle(entry.path, bundle)) return std::nullopt;
  return entry;
}

std::optional<ModelBundle> ModelRegistry::resolve(
    const std::string& name, std::optional<FeatureSet> features,
    std::optional<EstimatorKind> kind, ResolveStats* stats) const {
  ResolveStats local;
  ResolveStats& s = stats != nullptr ? *stats : local;
  s = ResolveStats{};
  for (const RegistryEntry& entry : list()) {
    if (entry.name != name) continue;
    ++s.considered;
    std::string error;
    std::optional<ModelBundle> bundle = load_bundle(entry.path, &error);
    if (!bundle) {
      ++s.corrupt;
      s.last_error = entry.path + ": " + error;
      // Self-healing: park the damaged file (plus a reason note) in
      // quarantine/ and fall through to the next-newest version.
      if (quarantine_entry(dir_, entry, s.last_error)) ++s.quarantined;
      continue;
    }
    if ((features && bundle->estimator.features() != *features) ||
        (kind && bundle->estimator.kind() != *kind)) {
      ++s.incompatible;
      continue;
    }
    return bundle;
  }
  return std::nullopt;
}

std::optional<ModelBundle> ModelRegistry::load(const std::string& name,
                                               int version,
                                               std::string* error) const {
  const std::string path =
      (fs::path(dir_) / (name + "-v" + std::to_string(version) + kExtension))
          .string();
  return load_bundle(path, error);
}

}  // namespace mf
