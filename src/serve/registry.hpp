#pragma once
// Directory-backed model registry (DESIGN.md section 8).
//
// One directory, one file per (name, version): `<name>-v<version>.mfb`.
// put() assigns the next free version for a name; resolve() serves the
// newest version that loads cleanly and matches the caller's compatibility
// constraints (feature set and, optionally, estimator kind). Damaged
// bundles are never served: a corrupt newest version is skipped -- and
// counted -- so a registry with one good older bundle still resolves.
//
// The registry itself is stateless between calls (every operation re-scans
// the directory), which makes concurrent writers from separate processes
// safe in the usual POSIX rename-free sense: a half-written bundle fails
// its checksum and is skipped by readers.

#include <optional>
#include <string>
#include <vector>

#include "serve/bundle.hpp"

namespace mf {

/// One bundle file the registry knows about (not yet validated).
struct RegistryEntry {
  std::string name;
  int version = 0;
  std::string path;
};

/// Outcome bookkeeping for resolve(): which versions were tried and why
/// they were passed over, for the CLI's "which path was taken" logging.
struct ResolveStats {
  int considered = 0;   ///< entries with the requested name
  int corrupt = 0;      ///< skipped: failed to load/validate
  int quarantined = 0;  ///< of the corrupt: moved into quarantine/
  int incompatible = 0; ///< skipped: loaded but wrong features/kind
  std::string last_error;
};

class ModelRegistry {
 public:
  /// Opens (and creates, if missing) the registry directory.
  explicit ModelRegistry(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Where resolve() moves bundles that fail to load: `<dir>/quarantine/`.
  /// Each quarantined `<file>.mfb` gets a sibling `<file>.mfb.reason` text
  /// file recording the load diagnostic. Quarantined files are invisible to
  /// list()/resolve() (the subdirectory is never scanned), so a poisoned
  /// newest version stops being re-parsed on every resolve and the registry
  /// self-heals onto the newest older clean version.
  [[nodiscard]] std::string quarantine_dir() const;

  /// Store a bundle under the next free version of its name (the bundle's
  /// own version field is overwritten). Returns the stored entry, or
  /// nullopt when the directory is not writable.
  std::optional<RegistryEntry> put(ModelBundle bundle);

  /// Every bundle file in the directory, sorted by name then by version
  /// descending (newest first).
  [[nodiscard]] std::vector<RegistryEntry> list() const;

  /// Newest bundle named `name` that loads cleanly and matches the
  /// constraints. `features`/`kind` nullopt = no constraint.
  std::optional<ModelBundle> resolve(
      const std::string& name,
      std::optional<FeatureSet> features = std::nullopt,
      std::optional<EstimatorKind> kind = std::nullopt,
      ResolveStats* stats = nullptr) const;

  /// Load one exact (name, version); nullopt when missing or damaged.
  std::optional<ModelBundle> load(const std::string& name, int version,
                                  std::string* error = nullptr) const;

 private:
  std::string dir_;
};

}  // namespace mf
