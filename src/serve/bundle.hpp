#pragma once
// Versioned on-disk model bundles (DESIGN.md section 8).
//
// A bundle is one self-contained text file holding a trained CfEstimator
// plus its training provenance -- everything the serving layer needs to
// answer "which model is this, what was it trained on, and how good was
// it?" without retraining. The file layout follows the checkpoint
// conventions of flow/serialize.*:
//
//   macroflow-model-bundle v1          <- magic + format version
//   # <human-readable column hints>
//   <name> <bundle-version>            <- registry identity
//   <provenance line>
//   <estimator payload lines...>       <- core/estimator save() token stream
//   # payload <N> checksum <16 hex>    <- footer over the payload lines
//
// The footer carries both the payload line count (truncation detection) and
// an FNV-1a checksum of the CR-normalised payload (bit-flip detection), so
// a damaged bundle is rejected wholesale -- never half-loaded -- with a
// diagnostic naming what failed. CRLF round-trips are tolerated the same
// way the PR-2 checkpoint readers tolerate them: every line is '\r'-stripped
// before compares, counts, and checksums.

#include <optional>
#include <string>
#include <string_view>

#include "common/binfile.hpp"
#include "core/estimator.hpp"

namespace mf {

/// Where a bundle's model came from: recorded at train time, surfaced by
/// the CLI and the registry so a served prediction is attributable.
struct BundleProvenance {
  std::uint64_t seed = 0;        ///< estimator seed used for training
  std::uint64_t dataset_seed = 0;///< sweep seed of the labelled dataset
  std::int64_t dataset_rows = 0; ///< training rows after balancing/split
  std::int64_t holdout_rows = 0; ///< evaluation rows (0: trained on all)
  double holdout_mean_rel_err = 0.0;
  double holdout_median_rel_err = 0.0;
};

struct ModelBundle {
  /// Registry identity: whitespace-free name plus a version that counts up
  /// per put(); resolve() serves the newest compatible version.
  std::string name = "default";
  int version = 1;
  BundleProvenance provenance;
  CfEstimator estimator{EstimatorKind::RandomForest, FeatureSet::All};
};

/// Current bundle format version (the `v1` of the magic line).
inline constexpr int kBundleFormatVersion = 1;

/// Serialise a bundle (estimator must be trained).
std::string bundle_to_text(const ModelBundle& bundle);

/// Parse a bundle; nullopt on any damage (bad magic, unknown version,
/// truncation, checksum mismatch, malformed payload). When `error` is
/// non-null it receives a one-line diagnostic naming the failure.
std::optional<ModelBundle> bundle_from_text(const std::string& text,
                                            std::string* error = nullptr);

/// Binary bundle (v1-bin): a common/binfile container whose `estimator`
/// section holds the bit-exact ModelWriter token stream as one raw blob
/// (identity and provenance live in typed sections of their own). Loads
/// skip the line-gathering/checksumming pass of the text path entirely --
/// the container's section checksums cover integrity.
std::string bundle_to_binary(const ModelBundle& bundle);
std::optional<ModelBundle> bundle_from_binary(std::string_view bytes,
                                              std::string* error = nullptr);

/// File helpers; load auto-detects text vs binary by magic and returns
/// nullopt when the file is missing or damaged.
/// save_bundle writes atomically (temp file + rename, common/atomic_file):
/// a crash or full disk mid-write leaves the previous version intact, and
/// failures are reported through the return value / `error`, never ignored.
bool save_bundle(const std::string& path, const ModelBundle& bundle,
                 std::string* error = nullptr,
                 PersistFormat format = PersistFormat::Text);
std::optional<ModelBundle> load_bundle(const std::string& path,
                                       std::string* error = nullptr);

}  // namespace mf
