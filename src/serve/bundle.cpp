#include "serve/bundle.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"
#include "ml/model_io.hpp"

namespace mf {
namespace {

constexpr const char* kMagic = "macroflow-model-bundle";
constexpr const char* kFooterPrefix = "# payload ";

// Binary container identity (`meta` section); the binary layout is version
// 1 of its own lineage, independent of the text kBundleFormatVersion.
constexpr const char* kBundleKind = "model-bundle";
constexpr std::uint32_t kBundleBinaryVersion = 1;

std::string checksum_of(const std::string& payload) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << fnv1a64(payload);
  return out.str();
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

void check_bundle(const ModelBundle& bundle) {
  MF_CHECK_MSG(bundle.estimator.trained(),
               "only trained estimators can be bundled");
  MF_CHECK_MSG(!bundle.name.empty() &&
                   bundle.name.find_first_of(" \t/\\\r\n") == std::string::npos,
               "bundle names must be non-empty, whitespace- and slash-free");
  MF_CHECK(bundle.version >= 1);
}

}  // namespace

std::string bundle_to_text(const ModelBundle& bundle) {
  check_bundle(bundle);

  // Payload: identity + provenance + estimator token stream, as lines.
  std::ostringstream payload_out;
  ModelWriter writer(payload_out);
  writer.str(bundle.name);
  writer.i64(bundle.version);
  writer.endl();
  const BundleProvenance& p = bundle.provenance;
  writer.u64(p.seed);
  writer.u64(p.dataset_seed);
  writer.i64(p.dataset_rows);
  writer.i64(p.holdout_rows);
  writer.f64(p.holdout_mean_rel_err);
  writer.f64(p.holdout_median_rel_err);
  writer.endl();
  bundle.estimator.save(writer);
  const std::string payload = payload_out.str();

  // Count payload lines for the footer (payload always ends in '\n').
  std::size_t lines = 0;
  for (char c : payload) {
    if (c == '\n') ++lines;
  }

  std::ostringstream out;
  out << kMagic << " v" << kBundleFormatVersion << '\n';
  out << "# name version | seed dataset_seed train_rows holdout_rows"
         " mean_rel_err median_rel_err | estimator...\n";
  out << payload;
  out << kFooterPrefix << lines << " checksum " << checksum_of(payload)
      << '\n';
  return out.str();
}

std::optional<ModelBundle> bundle_from_text(const std::string& text,
                                            std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    set_error(error, "empty file");
    return std::nullopt;
  }
  strip_cr(line);
  const std::string magic = std::string(kMagic) + " v";
  if (line.rfind(magic, 0) != 0) {
    set_error(error, "bad magic: not a model bundle");
    return std::nullopt;
  }
  const std::string version_text = line.substr(magic.size());
  if (version_text != std::to_string(kBundleFormatVersion)) {
    set_error(error, "unsupported bundle format version v" + version_text);
    return std::nullopt;
  }

  // Gather payload lines (everything except comments before the payload and
  // the footer), normalising CRLF, and find the footer.
  std::string payload;
  std::size_t payload_lines = 0;
  bool footer_seen = false;
  std::size_t footer_lines = 0;
  std::string footer_checksum;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.rfind(kFooterPrefix, 0) == 0) {
      std::istringstream footer(
          line.substr(std::string(kFooterPrefix).size()));
      std::string count_text;
      std::string keyword;
      if (!(footer >> count_text >> keyword >> footer_checksum) ||
          keyword != "checksum") {
        set_error(error, "malformed footer");
        return std::nullopt;
      }
      // Checked count parse: "-1" or an overflowing value is corruption,
      // never a wrapped size_t.
      const std::optional<std::size_t> count =
          parse_number<std::size_t>(count_text);
      if (!count) {
        set_error(error, "malformed footer line count");
        return std::nullopt;
      }
      footer_lines = *count;
      footer_seen = true;
      continue;
    }
    if (footer_seen) {
      set_error(error, "data after the footer");
      return std::nullopt;
    }
    if (!line.empty() && line.front() == '#') continue;
    payload += line;
    payload += '\n';
    ++payload_lines;
  }
  if (!footer_seen) {
    set_error(error, "missing footer (truncated bundle)");
    return std::nullopt;
  }
  if (footer_lines != payload_lines) {
    set_error(error, "payload line count mismatch (truncated bundle)");
    return std::nullopt;
  }
  if (checksum_of(payload) != footer_checksum) {
    set_error(error, "payload checksum mismatch (corrupt bundle)");
    return std::nullopt;
  }

  std::istringstream payload_in(payload);
  ModelReader reader(payload_in);
  ModelBundle bundle;
  bundle.name = reader.str();
  bundle.version = static_cast<int>(reader.i64_in(1, 1 << 20));
  BundleProvenance& p = bundle.provenance;
  p.seed = reader.u64();
  p.dataset_seed = reader.u64();
  p.dataset_rows = reader.i64_in(0, 1LL << 40);
  p.holdout_rows = reader.i64_in(0, 1LL << 40);
  p.holdout_mean_rel_err = reader.f64();
  p.holdout_median_rel_err = reader.f64();
  if (!reader.ok()) {
    set_error(error, "malformed bundle identity/provenance");
    return std::nullopt;
  }
  std::optional<CfEstimator> estimator = CfEstimator::load(reader);
  if (!estimator) {
    set_error(error, "malformed estimator payload");
    return std::nullopt;
  }
  bundle.estimator = std::move(*estimator);
  return bundle;
}

std::string bundle_to_binary(const ModelBundle& bundle) {
  check_bundle(bundle);
  BinWriter writer;
  writer.begin_section("meta");
  writer.str(kBundleKind);
  writer.u32(kBundleBinaryVersion);
  writer.begin_section("identity");
  writer.str(bundle.name);
  writer.i32(bundle.version);
  writer.begin_section("provenance");
  const BundleProvenance& p = bundle.provenance;
  writer.u64(p.seed);
  writer.u64(p.dataset_seed);
  writer.i64(p.dataset_rows);
  writer.i64(p.holdout_rows);
  writer.f64(p.holdout_mean_rel_err);
  writer.f64(p.holdout_median_rel_err);
  // The estimator rides as its PR-4 bit-exact token stream, raw: the binary
  // and text bundles share one model codec, so text<->binary conversion can
  // never change a model bit (the bench_persist byte-identity gate).
  std::ostringstream estimator_out;
  ModelWriter model_writer(estimator_out);
  bundle.estimator.save(model_writer);
  writer.begin_section("estimator");
  writer.raw(estimator_out.str());
  return writer.finish();
}

std::optional<ModelBundle> bundle_from_binary(std::string_view bytes,
                                              std::string* error) {
  const std::optional<BinFile> file = BinFile::open(bytes, error);
  if (!file) return std::nullopt;
  const std::optional<std::string_view> meta = file->section("meta");
  if (!meta) {
    set_error(error, "missing meta section");
    return std::nullopt;
  }
  BinCursor meta_cursor(*meta);
  const std::string kind = meta_cursor.str(256);
  const std::uint32_t version = meta_cursor.u32();
  if (!meta_cursor.at_end() || kind != kBundleKind) {
    set_error(error, "not a model-bundle container");
    return std::nullopt;
  }
  if (version != kBundleBinaryVersion) {
    set_error(error, "unsupported binary bundle version v" +
                         std::to_string(version));
    return std::nullopt;
  }
  const std::optional<std::string_view> identity = file->section("identity");
  const std::optional<std::string_view> provenance =
      file->section("provenance");
  const std::optional<std::string_view> estimator_bytes =
      file->section("estimator");
  if (!identity || !provenance || !estimator_bytes) {
    set_error(error, "missing bundle section");
    return std::nullopt;
  }
  ModelBundle bundle;
  BinCursor id_cursor(*identity);
  bundle.name = id_cursor.str(1u << 10);
  bundle.version = id_cursor.i32();
  if (!id_cursor.at_end() || bundle.name.empty() || bundle.version < 1 ||
      bundle.version > (1 << 20) ||
      bundle.name.find_first_of(" \t/\\\r\n") != std::string::npos) {
    set_error(error, "malformed bundle identity");
    return std::nullopt;
  }
  BinCursor prov_cursor(*provenance);
  BundleProvenance& p = bundle.provenance;
  p.seed = prov_cursor.u64();
  p.dataset_seed = prov_cursor.u64();
  p.dataset_rows = prov_cursor.i64();
  p.holdout_rows = prov_cursor.i64();
  p.holdout_mean_rel_err = prov_cursor.f64();
  p.holdout_median_rel_err = prov_cursor.f64();
  if (!prov_cursor.at_end() || p.dataset_rows < 0 ||
      p.dataset_rows > (1LL << 40) || p.holdout_rows < 0 ||
      p.holdout_rows > (1LL << 40)) {
    set_error(error, "malformed bundle provenance");
    return std::nullopt;
  }
  std::istringstream estimator_in{std::string(*estimator_bytes)};
  ModelReader reader(estimator_in);
  std::optional<CfEstimator> estimator = CfEstimator::load(reader);
  if (!estimator) {
    set_error(error, "malformed estimator payload");
    return std::nullopt;
  }
  bundle.estimator = std::move(*estimator);
  return bundle;
}

bool save_bundle(const std::string& path, const ModelBundle& bundle,
                 std::string* error, PersistFormat format) {
  // Atomic replace, with stream/short-write failures propagated: a bundle
  // that fails to persist (ENOSPC, unwritable dir) must report so, not
  // leave a truncated .mfb the registry would have to quarantine later.
  return atomic_write_file(path,
                           format == PersistFormat::Binary
                               ? bundle_to_binary(bundle)
                               : bundle_to_text(bundle),
                           error);
}

std::optional<ModelBundle> load_bundle(const std::string& path,
                                       std::string* error) {
  // Whole-file binary-safe read (an ifstream in text mode would translate
  // bytes on some platforms and cannot represent a binary bundle).
  const std::optional<std::string> bytes = read_file(path);
  if (!bytes) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  if (is_binfile(*bytes)) return bundle_from_binary(*bytes, error);
  return bundle_from_text(*bytes, error);
}

}  // namespace mf
