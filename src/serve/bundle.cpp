#include "serve/bundle.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/model_io.hpp"

namespace mf {
namespace {

constexpr const char* kMagic = "macroflow-model-bundle";
constexpr const char* kFooterPrefix = "# payload ";

std::string checksum_of(const std::string& payload) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << fnv1a64(payload);
  return out.str();
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::string bundle_to_text(const ModelBundle& bundle) {
  MF_CHECK_MSG(bundle.estimator.trained(),
               "only trained estimators can be bundled");
  MF_CHECK_MSG(!bundle.name.empty() &&
                   bundle.name.find_first_of(" \t/\\\r\n") == std::string::npos,
               "bundle names must be non-empty, whitespace- and slash-free");
  MF_CHECK(bundle.version >= 1);

  // Payload: identity + provenance + estimator token stream, as lines.
  std::ostringstream payload_out;
  ModelWriter writer(payload_out);
  writer.str(bundle.name);
  writer.i64(bundle.version);
  writer.endl();
  const BundleProvenance& p = bundle.provenance;
  writer.u64(p.seed);
  writer.u64(p.dataset_seed);
  writer.i64(p.dataset_rows);
  writer.i64(p.holdout_rows);
  writer.f64(p.holdout_mean_rel_err);
  writer.f64(p.holdout_median_rel_err);
  writer.endl();
  bundle.estimator.save(writer);
  const std::string payload = payload_out.str();

  // Count payload lines for the footer (payload always ends in '\n').
  std::size_t lines = 0;
  for (char c : payload) {
    if (c == '\n') ++lines;
  }

  std::ostringstream out;
  out << kMagic << " v" << kBundleFormatVersion << '\n';
  out << "# name version | seed dataset_seed train_rows holdout_rows"
         " mean_rel_err median_rel_err | estimator...\n";
  out << payload;
  out << kFooterPrefix << lines << " checksum " << checksum_of(payload)
      << '\n';
  return out.str();
}

std::optional<ModelBundle> bundle_from_text(const std::string& text,
                                            std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    set_error(error, "empty file");
    return std::nullopt;
  }
  strip_cr(line);
  const std::string magic = std::string(kMagic) + " v";
  if (line.rfind(magic, 0) != 0) {
    set_error(error, "bad magic: not a model bundle");
    return std::nullopt;
  }
  const std::string version_text = line.substr(magic.size());
  if (version_text != std::to_string(kBundleFormatVersion)) {
    set_error(error, "unsupported bundle format version v" + version_text);
    return std::nullopt;
  }

  // Gather payload lines (everything except comments before the payload and
  // the footer), normalising CRLF, and find the footer.
  std::string payload;
  std::size_t payload_lines = 0;
  bool footer_seen = false;
  std::size_t footer_lines = 0;
  std::string footer_checksum;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.rfind(kFooterPrefix, 0) == 0) {
      std::istringstream footer(
          line.substr(std::string(kFooterPrefix).size()));
      std::string keyword;
      if (!(footer >> footer_lines >> keyword >> footer_checksum) ||
          keyword != "checksum") {
        set_error(error, "malformed footer");
        return std::nullopt;
      }
      footer_seen = true;
      continue;
    }
    if (footer_seen) {
      set_error(error, "data after the footer");
      return std::nullopt;
    }
    if (!line.empty() && line.front() == '#') continue;
    payload += line;
    payload += '\n';
    ++payload_lines;
  }
  if (!footer_seen) {
    set_error(error, "missing footer (truncated bundle)");
    return std::nullopt;
  }
  if (footer_lines != payload_lines) {
    set_error(error, "payload line count mismatch (truncated bundle)");
    return std::nullopt;
  }
  if (checksum_of(payload) != footer_checksum) {
    set_error(error, "payload checksum mismatch (corrupt bundle)");
    return std::nullopt;
  }

  std::istringstream payload_in(payload);
  ModelReader reader(payload_in);
  ModelBundle bundle;
  bundle.name = reader.str();
  bundle.version = static_cast<int>(reader.i64_in(1, 1 << 20));
  BundleProvenance& p = bundle.provenance;
  p.seed = reader.u64();
  p.dataset_seed = reader.u64();
  p.dataset_rows = reader.i64_in(0, 1LL << 40);
  p.holdout_rows = reader.i64_in(0, 1LL << 40);
  p.holdout_mean_rel_err = reader.f64();
  p.holdout_median_rel_err = reader.f64();
  if (!reader.ok()) {
    set_error(error, "malformed bundle identity/provenance");
    return std::nullopt;
  }
  std::optional<CfEstimator> estimator = CfEstimator::load(reader);
  if (!estimator) {
    set_error(error, "malformed estimator payload");
    return std::nullopt;
  }
  bundle.estimator = std::move(*estimator);
  return bundle;
}

bool save_bundle(const std::string& path, const ModelBundle& bundle,
                 std::string* error) {
  // Atomic replace, with stream/short-write failures propagated: a bundle
  // that fails to persist (ENOSPC, unwritable dir) must report so, not
  // leave a truncated .mfb the registry would have to quarantine later.
  return atomic_write_file(path, bundle_to_text(bundle), error);
}

std::optional<ModelBundle> load_bundle(const std::string& path,
                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return bundle_from_text(buffer.str(), error);
}

}  // namespace mf
