#pragma once
// Train-to-bundle recipe shared by the CLI (`train`, the `estimate`
// fallback) and bench_serve: build the labelled ground truth, balance it
// (Section VII), hold out a split for honest metrics, train, and wrap the
// result in a provenance-carrying ModelBundle ready for the registry.

#include <string>

#include "fabric/device.hpp"
#include "serve/bundle.hpp"

namespace mf {

struct TrainSpec {
  std::string name = "default";
  EstimatorKind kind = EstimatorKind::RandomForest;
  FeatureSet features = FeatureSet::All;
  /// Synthetic-dataset sweep size + seed (dataset_sweep spec).
  int dataset_count = 2000;
  std::uint64_t dataset_seed = 42;
  /// Section VII balancing: cap per 0.02-wide CF bin.
  double bin_width = 0.02;
  int bin_cap = 75;
  /// Fraction trained on; the rest is the holdout used for the bundle's
  /// recorded metrics. 1.0 = train on everything, no holdout metrics.
  double train_fraction = 0.8;
  CfEstimator::Options options;
  /// Worker threads for labelling + forest training (0 = auto).
  int jobs = MF_JOBS_DEFAULT;
};

/// Run the full recipe. The spec's options.seed also reseeds the balancing
/// and split RNGs, so two trainings with the same spec are bit-identical.
ModelBundle train_bundle(const TrainSpec& spec, const Device& device);

}  // namespace mf
