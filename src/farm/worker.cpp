#include "farm/worker.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "fabric/catalog.hpp"
#include "farm/chaos.hpp"
#include "farm/manifest.hpp"
#include "flow/ground_truth.hpp"
#include "flow/serialize.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;

/// One worker's view of its shard: the resumable result vectors plus the
/// paths they persist to.
struct ShardRun {
  std::string gt_path;
  std::string infeasible_path;
  std::vector<LabeledModule> samples;
  std::vector<std::string> infeasible;

  /// Rewrite both shard artifacts atomically. A crash between the two
  /// writes leaves independently valid files; the next attempt merely
  /// relabels whichever tail the older file is missing. Shard checkpoints
  /// are the highest-frequency rewrite in the system, so they use the
  /// binary tier; resume auto-detects, so pre-binary text shards still
  /// load, and the supervisor's merged output stays text (its byte-identity
  /// contract is over the text serialisation).
  [[nodiscard]] bool checkpoint() const {
    return save_ground_truth(gt_path, samples, PersistFormat::Binary) &&
           atomic_write_file(infeasible_path, infeasible_to_text(infeasible));
  }
};

/// Heartbeat: tiny, frequently rewritten, never fsynced (losing one is
/// harmless -- staleness is judged by *content change*, not durability).
void beat(const std::string& path, int attempt, std::size_t chunk) {
  AtomicWriteOptions options;
  options.sync = false;
  atomic_write_file(path,
                    "attempt " + std::to_string(attempt) + " chunk " +
                        std::to_string(chunk) + "\n",
                    nullptr, options);
}

int parse_int_or(const char* text, int fallback) {
  int value = 0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  return ec == std::errc{} && ptr == end ? value : fallback;
}

}  // namespace

std::vector<std::string> farm_worker_argv(const FarmWorkerArgs& args) {
  return {"--farm-worker",
          "--farm-dir",
          args.dir,
          "--shard",
          std::to_string(args.shard),
          "--attempt",
          std::to_string(args.attempt)};
}

std::optional<FarmWorkerArgs> parse_farm_worker_argv(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--farm-worker") != 0) {
    return std::nullopt;
  }
  FarmWorkerArgs args;
  args.shard = -1;  // malformed until every required flag parses
  std::string dir;
  int shard = -1;
  int attempt = 0;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--farm-dir") == 0) {
      dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      shard = parse_int_or(argv[i + 1], -1);
    } else if (std::strcmp(argv[i], "--attempt") == 0) {
      attempt = parse_int_or(argv[i + 1], -1);
    } else {
      return args;  // unknown flag: reject via shard = -1
    }
  }
  if (dir.empty() || shard < 0 || attempt < 0) return args;
  args.dir = std::move(dir);
  args.shard = shard;
  args.attempt = attempt;
  return args;
}

int run_farm_worker(const FarmWorkerArgs& args) {
  const std::optional<FarmManifest> manifest =
      load_manifest(farm_manifest_path(args.dir));
  if (!manifest) {
    std::fprintf(stderr, "farm worker: cannot load manifest in %s\n",
                 args.dir.c_str());
    return 2;
  }
  if (args.shard < 0 || args.shard >= manifest->total_shards()) {
    std::fprintf(stderr, "farm worker: shard %d out of range (0..%d)\n",
                 args.shard, manifest->total_shards() - 1);
    return 2;
  }

  // Cooperative cancellation: the supervisor's SIGTERM (deadline, Ctrl-C,
  // or supervisor death via the spawn-time parent-death signal) trips the
  // token; the chunk loop checkpoints and exits 130. Detach on every path
  // so the token never dangles past this frame.
  CancelToken token;
  install_signal_cancel(&token);
  struct DetachSignals {
    ~DetachSignals() { install_signal_cancel(nullptr); }
  } detach;

  const FarmPlan& plan = manifest->plan();
  const std::vector<GenSpec> specs = manifest->specs();
  const std::vector<std::size_t> items =
      manifest->shard_items(args.shard, specs);
  CfSearchOptions search;
  search.start = plan.grid[static_cast<std::size_t>(
      manifest->grid_of_shard(args.shard))];

  ShardRun run;
  run.gt_path = farm_shard_gt_path(args.dir, args.shard);
  run.infeasible_path = farm_shard_infeasible_path(args.dir, args.shard);
  const std::string done_path = farm_shard_done_path(args.dir, args.shard);
  const std::string hb_path = farm_shard_heartbeat_path(args.dir, args.shard);

  // A completed shard from an earlier farm run (or a respawn that lost the
  // race with its own SIGKILL) is final: verify and return.
  if (fs::exists(done_path) && load_ground_truth(run.gt_path)) return 0;

  // Resume: everything the previous attempts recorded is reused verbatim.
  std::map<std::string, LabeledModule> have;
  if (std::optional<std::vector<LabeledModule>> previous =
          load_ground_truth(run.gt_path)) {
    for (LabeledModule& sample : *previous) {
      const std::string name = sample.name;
      have.emplace(name, std::move(sample));
    }
  }
  std::set<std::string> known_infeasible;
  if (const std::optional<std::string> text = read_file(run.infeasible_path)) {
    if (const auto names = infeasible_from_text(*text)) {
      known_infeasible.insert(names->begin(), names->end());
    }
  }

  const Device device = xc7z020_model();
  const FarmChaos chaos(plan.chaos);
  const std::size_t chunk_len =
      static_cast<std::size_t>(plan.checkpoint_every);
  std::size_t chunk = 0;
  for (std::size_t begin = 0; begin < items.size();
       begin += chunk_len, ++chunk) {
    beat(hb_path, args.attempt, chunk);
    // Chaos boundary: may SIGKILL this process, hang it forever, or just
    // slow it down. Boundary 0 never faults, so every attempt banks at
    // least one checkpointed chunk and kill-heavy campaigns terminate.
    chaos.act(args.shard, args.attempt, static_cast<int>(chunk));
    if (token.cancelled()) {
      return run.checkpoint() ? 130 : 2;
    }

    const std::size_t end = std::min(items.size(), begin + chunk_len);
    // Label the chunk's not-yet-known specs in one parallel region; the
    // results are bit-identical at any worker_jobs, so intra-process
    // threading composes with process sharding without affecting output.
    std::vector<GenSpec> todo;
    for (std::size_t j = begin; j < end; ++j) {
      const GenSpec& spec = specs[items[j]];
      if (have.count(spec.name) == 0 &&
          known_infeasible.count(spec.name) == 0) {
        todo.push_back(spec);
      }
    }
    if (!todo.empty()) {
      GroundTruth labelled =
          build_ground_truth(todo, device, search, plan.worker_jobs);
      std::set<std::string> feasible;
      for (LabeledModule& sample : labelled.samples) {
        const std::string name = sample.name;
        feasible.insert(name);
        have.emplace(name, std::move(sample));
      }
      for (const GenSpec& spec : todo) {
        if (feasible.count(spec.name) == 0) {
          known_infeasible.insert(spec.name);
        }
      }
    }
    // Re-emit the chunk in item order so the shard file is always a clean
    // prefix of the final result regardless of which attempt labelled what.
    for (std::size_t j = begin; j < end; ++j) {
      const std::string& name = specs[items[j]].name;
      if (const auto it = have.find(name); it != have.end()) {
        run.samples.push_back(it->second);
      } else {
        run.infeasible.push_back(name);
      }
    }
    if (!run.checkpoint()) {
      std::fprintf(stderr, "farm worker: cannot checkpoint shard %d in %s\n",
                   args.shard, args.dir.c_str());
      return 2;
    }
  }

  beat(hb_path, args.attempt, chunk);
  if (!atomic_write_file(done_path,
                         "samples " + std::to_string(run.samples.size()) +
                             " infeasible " +
                             std::to_string(run.infeasible.size()) + "\n")) {
    return 2;
  }
  return 0;
}

std::optional<int> maybe_run_farm_worker(int argc, char** argv) {
  const std::optional<FarmWorkerArgs> args =
      parse_farm_worker_argv(argc, argv);
  if (!args) return std::nullopt;
  if (args->shard < 0) {
    std::fprintf(stderr, "farm worker: malformed --farm-worker argv\n");
    return 2;
  }
  return run_farm_worker(*args);
}

}  // namespace mf
