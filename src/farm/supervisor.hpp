#pragma once
// Farm supervisor: spawn, watch, heal, merge (DESIGN.md section 10).
//
// run_farm() owns a fleet of worker *processes* (fork/exec of the same
// binary in --farm-worker mode) and a deterministic shard plan (the
// manifest). Workers are assigned shards dynamically -- an idle worker slot
// steals the next pending shard -- but shard *contents* are a pure function
// of the manifest, so the merged result is bit-identical to a
// single-process run regardless of scheduling, crashes, or respawns.
//
// Robustness model:
//   * crash death     -- nonzero exit or a fatal signal is detected by
//                        waitpid; the shard respawns after capped
//                        exponential backoff, resuming from its checkpoint;
//   * hang death      -- a worker whose heartbeat content stops changing
//                        for `hang_timeout_seconds` is SIGKILLed and
//                        treated as crashed;
//   * poison shards   -- a shard that burns `max_attempts` attempts is
//                        moved to quarantine/ with a .reason file and the
//                        farm *continues* (exit 2 at the end, merged output
//                        covers the surviving shards);
//   * cancellation    -- a tripped CancelToken (SIGINT via the CLI,
//                        --deadline-seconds) SIGTERMs every worker
//                        (cooperative checkpoint + exit 130), escalating to
//                        SIGKILL after a grace period; the whole tree obeys
//                        the 0/1/2/130 contract. Workers also carry a
//                        parent-death signal so a supervisor that dies
//                        uncleanly still tears the tree down;
//   * farm resume     -- re-running over the same directory (same plan)
//                        trusts completed shards' done markers and only
//                        works the remainder; a directory whose manifest
//                        differs from the requested plan is refused.

#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "farm/manifest.hpp"
#include "flow/ground_truth.hpp"

namespace mf {

struct FarmOptions {
  std::string dir;       ///< farm state directory (created if missing)
  FarmPlan plan;         ///< the work (persisted as the manifest)
  int workers = 2;       ///< concurrent worker processes
  int max_attempts = 3;  ///< per-shard crash budget before quarantine
  double hang_timeout_seconds = 60.0;  ///< heartbeat staleness threshold
  double backoff_base_ms = 50.0;       ///< respawn backoff: base * 2^(n-1)
  double backoff_cap_ms = 2000.0;
  double grace_seconds = 5.0;  ///< SIGTERM -> SIGKILL escalation window
  double poll_ms = 20.0;       ///< supervisor loop period
  /// Worker binary; empty = this executable (/proc/self/exe). The binary
  /// must call maybe_run_farm_worker() first in main().
  std::string worker_exe;
  const CancelToken* cancel = nullptr;
  bool quiet = false;  ///< suppress per-event progress lines on stdout
};

struct FarmResult {
  bool ok = false;         ///< every shard done and every merge written
  bool cancelled = false;  ///< torn down by the cancel token
  std::string error;       ///< fatal setup/merge failure (ok == false)

  int shards_total = 0;
  int shards_done = 0;
  int shards_quarantined = 0;
  int shards_resumed = 0;  ///< done markers trusted from a previous run
  long spawns = 0;         ///< worker processes launched (first runs + respawns)
  long respawns = 0;       ///< relaunches after a crash/hang
  long hung_killed = 0;    ///< workers SIGKILLed for heartbeat staleness

  long samples = 0;     ///< merged samples across all grid values
  long infeasible = 0;  ///< infeasible specs recorded by done shards
  ShardMergeStats merge;            ///< aggregated over grid values
  std::vector<std::string> merged_paths;
};

/// Run a farm to completion, cancellation, or fatal error.
FarmResult run_farm(const FarmOptions& options);

/// Path of the running executable (for FarmOptions::worker_exe defaulting);
/// empty when it cannot be resolved.
[[nodiscard]] std::string self_executable_path();

}  // namespace mf
