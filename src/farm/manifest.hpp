#pragma once
// Farm work manifest: the deterministic contract between the supervisor and
// its worker processes (DESIGN.md section 10).
//
// One farm labels `count` generator specs at every correction-factor search
// start in `grid` (the module list x CF grid of the dataset-generation
// sweeps). The item space is sharded *by pure function*, never by runtime
// assignment: item -> shard is task_seed(seed, item key) mod shards, so the
// supervisor, every worker attempt, and the final merge all agree on who
// owns what without any shared mutable state. Which worker *process* runs a
// shard is dynamic (work stealing over idle workers); what a shard
// *contains* is not -- that split is what makes the merged output
// bit-identical to a single-process run no matter how many workers died
// along the way.
//
// The manifest is persisted as a versioned text file in the farm directory
// so a respawned worker (or a whole restarted farm) re-derives the exact
// same plan; a farm directory whose manifest does not match the requested
// plan is refused rather than silently re-sharded over stale checkpoints.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "farm/chaos.hpp"
#include "rtlgen/sweep.hpp"

namespace mf {

/// Everything that defines the farm's work, persisted in the manifest.
struct FarmPlan {
  int count = 200;            ///< dataset_sweep spec count
  std::uint64_t seed = 42;    ///< sweep seed (also the sharding seed)
  std::vector<double> grid = {0.9};  ///< CF search-start grid
  int shards_per_grid = 8;    ///< shards each grid value is split into
  int checkpoint_every = 8;   ///< items per worker checkpoint chunk
  int worker_jobs = 1;        ///< threads inside one worker process
  FarmChaosOptions chaos;     ///< fault injection, seen by every worker
};

class FarmManifest {
 public:
  FarmManifest() = default;
  explicit FarmManifest(FarmPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FarmPlan& plan() const noexcept { return plan_; }

  /// Total shard count: one block of `shards_per_grid` per grid value.
  [[nodiscard]] int total_shards() const noexcept {
    return plan_.shards_per_grid * static_cast<int>(plan_.grid.size());
  }
  /// Grid index a global shard id belongs to.
  [[nodiscard]] int grid_of_shard(int shard) const noexcept {
    return shard / plan_.shards_per_grid;
  }
  /// Shard id within its grid block.
  [[nodiscard]] int local_shard(int shard) const noexcept {
    return shard % plan_.shards_per_grid;
  }

  /// The sweep spec list (deterministic; every process re-derives it).
  [[nodiscard]] std::vector<GenSpec> specs() const {
    return dataset_sweep({plan_.count, plan_.seed});
  }

  /// Owning local shard of one item: task_seed(seed, name) mod shards.
  [[nodiscard]] int shard_of_item(const std::string& name) const noexcept;

  /// Spec indices owned by global shard `shard`, in global spec order.
  [[nodiscard]] std::vector<std::size_t> shard_items(
      int shard, const std::vector<GenSpec>& specs) const;

 private:
  FarmPlan plan_;
};

/// Versioned text round-trip (footer-terminated; truncation is rejected).
[[nodiscard]] std::string manifest_to_text(const FarmManifest& manifest);
[[nodiscard]] std::optional<FarmManifest> manifest_from_text(
    const std::string& text);

/// File helpers (atomic write; load returns nullopt on damage).
bool save_manifest(const std::string& path, const FarmManifest& manifest);
[[nodiscard]] std::optional<FarmManifest> load_manifest(
    const std::string& path);

// -- farm directory layout ---------------------------------------------------
// <dir>/MANIFEST                   the plan (this file)
// <dir>/shards/shard_NNNN.gt       per-shard labelled samples (checkpoint
//                                  and final output; ground-truth format)
// <dir>/shards/shard_NNNN.infe     infeasible spec names (resume sidecar)
// <dir>/shards/shard_NNNN.hb       heartbeat (attempt + chunk counter)
// <dir>/shards/shard_NNNN.done     completion marker (written last)
// <dir>/quarantine/shard_NNNN.*    poison shards moved out of the way
// <dir>/quarantine/shard_NNNN.reason  why the shard was given up on
// <dir>/ground_truth.gt            merged output (grid of one)
// <dir>/ground_truth.gK.gt         merged output of grid index K (grid > 1)

[[nodiscard]] std::string farm_manifest_path(const std::string& dir);
[[nodiscard]] std::string farm_shards_dir(const std::string& dir);
[[nodiscard]] std::string farm_quarantine_dir(const std::string& dir);
[[nodiscard]] std::string farm_shard_stem(int shard);  ///< "shard_NNNN"
[[nodiscard]] std::string farm_shard_gt_path(const std::string& dir,
                                             int shard);
[[nodiscard]] std::string farm_shard_infeasible_path(const std::string& dir,
                                                     int shard);
[[nodiscard]] std::string farm_shard_heartbeat_path(const std::string& dir,
                                                    int shard);
[[nodiscard]] std::string farm_shard_done_path(const std::string& dir,
                                               int shard);
/// Merged output path for grid index `grid` of `grid_size` values; a
/// single-value grid keeps the bare name so the common case stays tidy.
[[nodiscard]] std::string farm_merged_path(const std::string& dir, int grid,
                                           int grid_size);

/// The infeasible-name sidecar (versioned, count-terminated like the other
/// text formats; a torn file is rejected and the worker relabels).
[[nodiscard]] std::string infeasible_to_text(
    const std::vector<std::string>& names);
[[nodiscard]] std::optional<std::vector<std::string>> infeasible_from_text(
    const std::string& text);

}  // namespace mf
