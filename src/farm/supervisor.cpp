#include "farm/supervisor.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>
#include <utility>

#include "common/atomic_file.hpp"
#include "farm/worker.hpp"
#include "flow/serialize.hpp"

namespace mf {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

enum class ShardState : std::uint8_t {
  Pending,
  Backoff,
  Running,
  Done,
  Quarantined,
};

struct Shard {
  ShardState state = ShardState::Pending;
  int attempt = 0;  ///< index of the next (or currently running) attempt
  pid_t pid = -1;
  std::string beat;             ///< last heartbeat content observed
  Clock::time_point last_beat;  ///< when `beat` last changed (or spawn time)
  Clock::time_point ready_at;   ///< backoff expiry
  std::string last_death;       ///< human-readable cause of the last crash
};

std::string describe_status(int status) {
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "status " + std::to_string(status);
}

/// Fork/exec one worker attempt. The child moves into its own process group
/// (so a terminal SIGINT reaches only the supervisor, which then delivers
/// exactly one cooperative SIGTERM per worker) and, on Linux, asks for
/// SIGTERM on parent death so an uncleanly killed supervisor cannot leak a
/// fleet. Returns -1 when fork fails.
pid_t spawn_worker(const std::string& exe, const FarmWorkerArgs& args) {
  const std::vector<std::string> tail = farm_worker_argv(args);
  std::vector<char*> argv;
  argv.reserve(tail.size() + 2);
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& arg : tail) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    (void)setpgid(0, 0);
#ifdef __linux__
    (void)prctl(PR_SET_PDEATHSIG, SIGTERM);
    if (getppid() == 1) _exit(127);  // supervisor died before prctl took
#endif
    execv(exe.c_str(), argv.data());
    _exit(127);
  }
  // Both sides set the process group so a kill(-pid) immediately after
  // spawn cannot race the child's own setpgid.
  (void)setpgid(pid, pid);
  return pid;
}

/// Signal a worker's whole process group, falling back to the pid alone if
/// the group is already gone.
void signal_worker(pid_t pid, int signo) {
  if (kill(-pid, signo) != 0) (void)kill(pid, signo);
}

double backoff_ms(const FarmOptions& options, int attempt) {
  const double exp =
      options.backoff_base_ms * std::ldexp(1.0, std::max(0, attempt - 1));
  return std::min(exp, options.backoff_cap_ms);
}

void say(const FarmOptions& options, const char* fmt, ...) {
  if (options.quiet) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fflush(stdout);
}

/// Move every artifact of a poison shard out of shards/ and record why it
/// was given up on. The merge treats the shard as an empty sample list, so
/// the farm's output covers everything the healthy shards produced.
bool quarantine_shard(const std::string& dir, int shard,
                      const std::string& reason) {
  const fs::path qdir = farm_quarantine_dir(dir);
  std::error_code ec;
  fs::create_directories(qdir, ec);
  if (ec) return false;
  const std::string paths[] = {
      farm_shard_gt_path(dir, shard),
      farm_shard_infeasible_path(dir, shard),
      farm_shard_heartbeat_path(dir, shard),
      farm_shard_done_path(dir, shard),
  };
  for (const std::string& from : paths) {
    std::error_code move_ec;
    if (fs::exists(from, move_ec)) {
      fs::rename(from, qdir / fs::path(from).filename(), move_ec);
    }
  }
  return atomic_write_file(
      (qdir / (farm_shard_stem(shard) + ".reason")).string(), reason + "\n");
}

std::string quarantine_reason_path(const std::string& dir, int shard) {
  return (fs::path(farm_quarantine_dir(dir)) /
          (farm_shard_stem(shard) + ".reason"))
      .string();
}

/// Mark a crash: either schedule a backoff respawn or quarantine the shard.
void handle_death(const FarmOptions& options, FarmResult& result, int index,
                  Shard& shard, const std::string& cause) {
  shard.pid = -1;
  shard.last_death = cause;
  shard.attempt += 1;
  if (shard.attempt >= options.max_attempts) {
    shard.state = ShardState::Quarantined;
    result.shards_quarantined += 1;
    const std::string reason =
        "gave up after " + std::to_string(shard.attempt) +
        " attempts; last death: " + cause;
    (void)quarantine_shard(options.dir, index, reason);
    say(options, "[farm] shard %d quarantined (%s)\n", index, cause.c_str());
    return;
  }
  const double delay = backoff_ms(options, shard.attempt);
  result.respawns += 1;
  shard.state = ShardState::Backoff;
  shard.ready_at =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(delay));
  say(options, "[farm] shard %d died (%s); respawning attempt %d in %.0fms\n",
      index, cause.c_str(), shard.attempt, delay);
}

/// Cancel teardown: one cooperative SIGTERM per worker (workers checkpoint
/// and exit 130), escalate to SIGKILL after the grace window, reap
/// everything so no zombie outlives the farm.
void tear_down(const FarmOptions& options, std::vector<Shard>& shards) {
  for (Shard& shard : shards) {
    if (shard.state == ShardState::Running && shard.pid > 0) {
      signal_worker(shard.pid, SIGTERM);
    }
  }
  const Clock::time_point kill_at =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.grace_seconds));
  bool escalated = false;
  for (;;) {
    bool any_alive = false;
    for (Shard& shard : shards) {
      if (shard.state != ShardState::Running || shard.pid <= 0) continue;
      int status = 0;
      const pid_t got = waitpid(shard.pid, &status, WNOHANG);
      if (got == shard.pid || (got < 0 && errno == ECHILD)) {
        shard.pid = -1;
        shard.state = ShardState::Pending;  // resumable next run
      } else {
        any_alive = true;
      }
    }
    if (!any_alive) return;
    if (!escalated && Clock::now() >= kill_at) {
      escalated = true;
      for (Shard& shard : shards) {
        if (shard.state == ShardState::Running && shard.pid > 0) {
          signal_worker(shard.pid, SIGKILL);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Merge every grid block's done shards into its dataset file and fold the
/// totals into `result`. Quarantined shards contribute empty lists, keeping
/// shard-index alignment (and the lowest-shard-wins dedup rule) intact.
bool merge_farm(const FarmOptions& options, const FarmManifest& manifest,
                const std::vector<Shard>& shards, FarmResult& result) {
  const std::vector<GenSpec> specs = manifest.specs();
  std::vector<std::string> order;
  order.reserve(specs.size());
  for (const GenSpec& spec : specs) order.push_back(spec.name);

  const int grid_size = static_cast<int>(manifest.plan().grid.size());
  for (int grid = 0; grid < grid_size; ++grid) {
    std::vector<std::vector<LabeledModule>> shard_samples;
    shard_samples.reserve(
        static_cast<std::size_t>(manifest.plan().shards_per_grid));
    for (int local = 0; local < manifest.plan().shards_per_grid; ++local) {
      const int shard = grid * manifest.plan().shards_per_grid + local;
      if (shards[static_cast<std::size_t>(shard)].state !=
          ShardState::Done) {
        shard_samples.emplace_back();
        continue;
      }
      std::optional<std::vector<LabeledModule>> samples =
          load_ground_truth(farm_shard_gt_path(options.dir, shard));
      if (!samples) {
        result.error = "shard " + std::to_string(shard) +
                       " is marked done but its ground-truth file is "
                       "missing or damaged";
        return false;
      }
      shard_samples.push_back(std::move(*samples));
      if (const std::optional<std::string> text =
              read_file(farm_shard_infeasible_path(options.dir, shard))) {
        if (const auto names = infeasible_from_text(*text)) {
          result.infeasible += static_cast<long>(names->size());
        }
      }
    }

    ShardMergeStats stats;
    std::vector<LabeledModule> merged =
        merge_ground_truth_shards(std::move(shard_samples), order, &stats);
    const std::string out =
        farm_merged_path(options.dir, grid, grid_size);
    if (!save_ground_truth(out, merged)) {
      result.error = "cannot write merged dataset " + out;
      return false;
    }
    result.samples += static_cast<long>(merged.size());
    result.merge.shards += stats.shards;
    result.merge.samples += stats.samples;
    result.merge.duplicates_dropped += stats.duplicates_dropped;
    result.merge.unknown_dropped += stats.unknown_dropped;
    for (std::string& warning : stats.warnings) {
      result.merge.warnings.push_back(std::move(warning));
    }
    result.merged_paths.push_back(out);
  }
  return true;
}

}  // namespace

std::string self_executable_path() {
#ifdef __linux__
  std::error_code ec;
  const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) return exe.string();
#endif
  return {};
}

FarmResult run_farm(const FarmOptions& options) {
  FarmResult result;
  const FarmManifest manifest(options.plan);
  result.shards_total = manifest.total_shards();

  if (options.dir.empty()) {
    result.error = "farm directory must not be empty";
    return result;
  }
  if (options.workers < 1 || options.max_attempts < 1) {
    result.error = "workers and max-attempts must be >= 1";
    return result;
  }
  const std::string exe =
      options.worker_exe.empty() ? self_executable_path() : options.worker_exe;
  if (exe.empty()) {
    result.error = "cannot resolve the worker executable path";
    return result;
  }

  std::error_code ec;
  fs::create_directories(farm_shards_dir(options.dir), ec);
  if (ec) {
    result.error = "cannot create farm directory " + options.dir;
    return result;
  }

  // Persist (or verify) the plan. A directory holding checkpoints for a
  // *different* plan must never be silently re-sharded over.
  const std::string manifest_path = farm_manifest_path(options.dir);
  if (fs::exists(manifest_path)) {
    const std::optional<FarmManifest> existing = load_manifest(manifest_path);
    if (!existing ||
        manifest_to_text(*existing) != manifest_to_text(manifest)) {
      result.error = "farm directory " + options.dir +
                     " holds a different (or damaged) manifest; refusing to "
                     "re-shard over its checkpoints";
      return result;
    }
  } else if (!save_manifest(manifest_path, manifest)) {
    result.error = "cannot write manifest " + manifest_path;
    return result;
  }

  // Adopt prior progress: completed shards are final, quarantined shards
  // stay quarantined (delete the quarantine entry to retry them).
  std::vector<Shard> shards(static_cast<std::size_t>(result.shards_total));
  int settled = 0;
  for (int i = 0; i < result.shards_total; ++i) {
    Shard& shard = shards[static_cast<std::size_t>(i)];
    if (fs::exists(quarantine_reason_path(options.dir, i))) {
      shard.state = ShardState::Quarantined;
      result.shards_quarantined += 1;
      ++settled;
    } else if (fs::exists(farm_shard_done_path(options.dir, i))) {
      shard.state = ShardState::Done;
      result.shards_done += 1;
      result.shards_resumed += 1;
      ++settled;
    }
  }

  const auto poll = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(std::max(1.0, options.poll_ms)));
  const double hang_timeout = std::max(0.01, options.hang_timeout_seconds);

  while (settled < result.shards_total) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      tear_down(options, shards);
      result.cancelled = true;
      say(options, "[farm] cancelled; %d/%d shards settled\n", settled,
          result.shards_total);
      return result;
    }

    // Reap: detect clean completion, crash, or signal death.
    for (int i = 0; i < result.shards_total; ++i) {
      Shard& shard = shards[static_cast<std::size_t>(i)];
      if (shard.state != ShardState::Running) continue;
      int status = 0;
      const pid_t got = waitpid(shard.pid, &status, WNOHANG);
      if (got == 0) continue;
      if (got == shard.pid && WIFEXITED(status) &&
          WEXITSTATUS(status) == 0 &&
          fs::exists(farm_shard_done_path(options.dir, i))) {
        shard.state = ShardState::Done;
        shard.pid = -1;
        result.shards_done += 1;
        ++settled;
        say(options, "[farm] shard %d done (%d/%d)\n", i, result.shards_done,
            result.shards_total);
        continue;
      }
      const std::string cause = got == shard.pid
                                    ? describe_status(status)
                                    : std::string("waitpid failure");
      handle_death(options, result, i, shard, cause);
      if (shard.state == ShardState::Quarantined) ++settled;
    }

    // Hang detection: heartbeat *content* unchanged for too long means the
    // worker is alive but stuck (chaos Hang, a wedged tool run); SIGKILL it
    // and let the reap path treat it as a crash.
    const Clock::time_point now = Clock::now();
    for (int i = 0; i < result.shards_total; ++i) {
      Shard& shard = shards[static_cast<std::size_t>(i)];
      if (shard.state != ShardState::Running) continue;
      const std::optional<std::string> beat =
          read_file(farm_shard_heartbeat_path(options.dir, i));
      if (beat && *beat != shard.beat) {
        shard.beat = *beat;
        shard.last_beat = now;
        continue;
      }
      const double stale =
          std::chrono::duration<double>(now - shard.last_beat).count();
      if (stale > hang_timeout) {
        say(options, "[farm] shard %d heartbeat stale for %.1fs; killing\n", i,
            stale);
        signal_worker(shard.pid, SIGKILL);
        result.hung_killed += 1;
        // Reset the clock so the kill is delivered once; the reap loop
        // notices the signal death on a later poll.
        shard.last_beat = now;
      }
    }

    // Spawn: fill idle worker slots with the lowest ready shard (work
    // stealing -- any slot takes any shard; outputs do not depend on it).
    int running = 0;
    for (const Shard& shard : shards) {
      running += shard.state == ShardState::Running ? 1 : 0;
    }
    for (int i = 0; i < result.shards_total && running < options.workers;
         ++i) {
      Shard& shard = shards[static_cast<std::size_t>(i)];
      const bool ready =
          shard.state == ShardState::Pending ||
          (shard.state == ShardState::Backoff && now >= shard.ready_at);
      if (!ready) continue;
      FarmWorkerArgs args;
      args.dir = options.dir;
      args.shard = i;
      args.attempt = shard.attempt;
      const pid_t pid = spawn_worker(exe, args);
      if (pid < 0) {
        handle_death(options, result, i, shard, "fork failure");
        if (shard.state == ShardState::Quarantined) ++settled;
        continue;
      }
      shard.state = ShardState::Running;
      shard.pid = pid;
      shard.beat.clear();
      shard.last_beat = Clock::now();
      result.spawns += 1;
      ++running;
    }

    if (settled < result.shards_total) std::this_thread::sleep_for(poll);
  }

  if (!merge_farm(options, manifest, shards, result)) return result;
  result.ok = result.shards_quarantined == 0;
  if (result.shards_quarantined > 0) {
    result.error = std::to_string(result.shards_quarantined) +
                   " shard(s) quarantined; merged output is partial";
  }
  return result;
}

}  // namespace mf
