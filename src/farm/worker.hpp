#pragma once
// Farm worker process entry point (DESIGN.md section 10).
//
// A worker is the *same binary* as its supervisor, re-executed with
// `--farm-worker --farm-dir D --shard S --attempt K`. It re-derives its
// item list from the persisted manifest (never from argv, so a respawn
// cannot drift from the plan), labels the shard in checkpoint-sized chunks,
// and leaves three artifacts behind: the shard ground-truth file and the
// infeasible-name sidecar (both rewritten atomically after every chunk --
// the crash-recovery state), and a completion marker written last. A
// heartbeat file is bumped before each chunk so the supervisor can tell a
// hung worker from a slow one.
//
// Resume is free: a respawned attempt reloads the shard checkpoint, reuses
// every recorded result, and relabels only what is missing. Because each
// label is a pure function of its spec, the shard file converges to the
// same bytes no matter how many times the worker died along the way.
//
// Exit codes follow the CLI contract: 0 done (marker written), 2 runtime
// failure (unreadable manifest/unwritable shard), 130 cancelled (SIGTERM
// from the supervisor or Ctrl-C; progress is checkpointed first).

#include <optional>
#include <string>
#include <vector>

namespace mf {

struct FarmWorkerArgs {
  std::string dir;  ///< farm directory (holds MANIFEST and shards/)
  int shard = 0;
  int attempt = 0;  ///< how many earlier attempts of this shard died
};

/// Build the exec argv tail for one worker invocation (everything after the
/// binary path). Kept next to the parser so the two cannot drift.
[[nodiscard]] std::vector<std::string> farm_worker_argv(
    const FarmWorkerArgs& args);

/// Parse a full process argv. Returns nullopt when argv is not a worker
/// invocation (argv[1] != "--farm-worker"); a malformed worker argv yields
/// args with `shard = -1`, which run_farm_worker rejects with exit 2.
[[nodiscard]] std::optional<FarmWorkerArgs> parse_farm_worker_argv(
    int argc, char** argv);

/// Run one worker to completion (or cancellation). Returns the process exit
/// code; the caller returns it from main() unchanged.
int run_farm_worker(const FarmWorkerArgs& args);

/// Host-binary hook: every binary that can supervise a farm calls this
/// first in main() and returns the contained code when set. This is what
/// makes "fork/exec of the same binary" work for the CLI, the test runner,
/// and the farm bench alike.
[[nodiscard]] std::optional<int> maybe_run_farm_worker(int argc, char** argv);

}  // namespace mf
