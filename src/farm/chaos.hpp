#pragma once
// Seeded process-level fault injection for the DSE farm (DESIGN.md
// section 10).
//
// The PR 1 FaultInjector perturbs *tool invocations inside* one process;
// FarmChaos extends that lineage to the process boundary: a worker asks it
// at every chunk boundary whether to die (SIGKILL -- the supervisor must
// detect the signal death and respawn), hang (stop heartbeating forever --
// the supervisor must detect staleness and SIGKILL it), or run slow (stress
// the work-stealing assignment without faulting).
//
// Decisions are a pure function of (seed, shard, attempt, boundary
// ordinal), so a chaos campaign replays bit-identically regardless of how
// workers interleave, and a respawned attempt draws a fresh stream --
// `faults_per_shard` bounds how many attempts of one shard are eligible for
// faults at all, which is how suites write "dies exactly twice, then
// completes" deterministically. Boundary 0 (before any work) never faults:
// every attempt makes at least one chunk of checkpointed progress, so
// kill-heavy campaigns still terminate.

#include <climits>
#include <cstdint>

namespace mf {

struct FarmChaosOptions {
  bool enabled = false;  ///< master switch; disabled == zero faults
  std::uint64_t seed = 0xfa53ULL;
  double p_kill = 0.0;  ///< SIGKILL self at the boundary
  double p_hang = 0.0;  ///< stop heartbeating forever (supervisor must kill)
  double p_slow = 0.0;  ///< sleep `slow_ms` (no fault, just latency)
  /// Attempts eligible for kill/hang faults: attempt < faults_per_shard.
  /// INT_MAX = every attempt (a poison shard that can never complete).
  int faults_per_shard = INT_MAX;
  double slow_ms = 2.0;
};

class FarmChaos {
 public:
  enum class Action : std::uint8_t { None, Kill, Hang, Slow };

  FarmChaos() = default;
  explicit FarmChaos(const FarmChaosOptions& opts) : opts_(opts) {}

  [[nodiscard]] bool enabled() const noexcept { return opts_.enabled; }
  [[nodiscard]] const FarmChaosOptions& options() const noexcept {
    return opts_;
  }

  /// Fault decision at chunk boundary `ordinal` (>= 1) of `attempt` of
  /// `shard`. Pure function of the options' seed and the three ordinals.
  [[nodiscard]] Action draw(int shard, int attempt, int ordinal) const;

  /// Carry out an action in the calling worker process: Kill raises
  /// SIGKILL (never returns), Hang sleeps forever without touching the
  /// heartbeat, Slow sleeps `slow_ms`. None returns immediately.
  static void execute(Action action, double slow_ms);

  /// draw + execute, the worker's one-line chaos hook.
  void act(int shard, int attempt, int ordinal) const {
    if (opts_.enabled) execute(draw(shard, attempt, ordinal), opts_.slow_ms);
  }

 private:
  FarmChaosOptions opts_;
};

[[nodiscard]] const char* to_string(FarmChaos::Action action) noexcept;

}  // namespace mf
