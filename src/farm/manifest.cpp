#include "farm/manifest.hpp"

#include <cstdio>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"

namespace mf {
namespace {

constexpr const char* kHeader = "macroflow-farm-manifest v1";
constexpr const char* kFooter = "# end";

constexpr const char* kInfeHeader = "macroflow-farm-infeasible v1";
constexpr const char* kInfeFooter = "# count ";

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

int FarmManifest::shard_of_item(const std::string& name) const noexcept {
  const auto shards = static_cast<std::uint64_t>(plan_.shards_per_grid);
  return static_cast<int>(task_seed(plan_.seed, "farm-shard:" + name) %
                          shards);
}

std::vector<std::size_t> FarmManifest::shard_items(
    int shard, const std::vector<GenSpec>& specs) const {
  const int local = local_shard(shard);
  std::vector<std::size_t> items;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (shard_of_item(specs[i].name) == local) items.push_back(i);
  }
  return items;
}

std::string manifest_to_text(const FarmManifest& manifest) {
  const FarmPlan& plan = manifest.plan();
  std::ostringstream out;
  out << kHeader << '\n';
  out << "count " << plan.count << '\n';
  out << "seed " << plan.seed << '\n';
  out << "grid";
  char buf[64];
  for (const double g : plan.grid) {
    // %.17g round-trips any double exactly; the manifest must reproduce the
    // same search starts in every process.
    std::snprintf(buf, sizeof buf, " %.17g", g);
    out << buf;
  }
  out << '\n';
  out << "shards-per-grid " << plan.shards_per_grid << '\n';
  out << "checkpoint-every " << plan.checkpoint_every << '\n';
  out << "worker-jobs " << plan.worker_jobs << '\n';
  const FarmChaosOptions& chaos = plan.chaos;
  std::snprintf(buf, sizeof buf, "%.17g %.17g %.17g", chaos.p_kill,
                chaos.p_hang, chaos.p_slow);
  out << "chaos " << (chaos.enabled ? 1 : 0) << ' ' << chaos.seed << ' '
      << buf << ' ' << chaos.faults_per_shard << ' ';
  std::snprintf(buf, sizeof buf, "%.17g", chaos.slow_ms);
  out << buf << '\n';
  out << kFooter << '\n';
  return out.str();
}

std::optional<FarmManifest> manifest_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  strip_cr(line);
  if (line != kHeader) return std::nullopt;

  FarmPlan plan;
  plan.grid.clear();
  bool footer_seen = false;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line == kFooter) {
      footer_seen = true;
      continue;
    }
    if (footer_seen) return std::nullopt;  // data after the footer: corrupt
    std::istringstream row(line);
    std::string key;
    if (!(row >> key)) return std::nullopt;
    if (key == "count") {
      if (!(row >> plan.count)) return std::nullopt;
    } else if (key == "seed") {
      if (!(row >> plan.seed)) return std::nullopt;
    } else if (key == "grid") {
      double g = 0.0;
      while (row >> g) plan.grid.push_back(g);
    } else if (key == "shards-per-grid") {
      if (!(row >> plan.shards_per_grid)) return std::nullopt;
    } else if (key == "checkpoint-every") {
      if (!(row >> plan.checkpoint_every)) return std::nullopt;
    } else if (key == "worker-jobs") {
      if (!(row >> plan.worker_jobs)) return std::nullopt;
    } else if (key == "chaos") {
      int enabled = 0;
      FarmChaosOptions& chaos = plan.chaos;
      if (!(row >> enabled >> chaos.seed >> chaos.p_kill >> chaos.p_hang >>
            chaos.p_slow >> chaos.faults_per_shard >> chaos.slow_ms)) {
        return std::nullopt;
      }
      chaos.enabled = enabled != 0;
    } else {
      return std::nullopt;  // unknown key: not our version after all
    }
  }
  if (!footer_seen || plan.count <= 0 || plan.grid.empty() ||
      plan.shards_per_grid <= 0 || plan.checkpoint_every <= 0) {
    return std::nullopt;
  }
  return FarmManifest(std::move(plan));
}

bool save_manifest(const std::string& path, const FarmManifest& manifest) {
  return atomic_write_file(path, manifest_to_text(manifest));
}

std::optional<FarmManifest> load_manifest(const std::string& path) {
  const std::optional<std::string> text = read_file(path);
  if (!text) return std::nullopt;
  return manifest_from_text(*text);
}

std::string farm_manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

std::string farm_shards_dir(const std::string& dir) { return dir + "/shards"; }

std::string farm_quarantine_dir(const std::string& dir) {
  return dir + "/quarantine";
}

std::string farm_shard_stem(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard_%04d", shard);
  return buf;
}

std::string farm_shard_gt_path(const std::string& dir, int shard) {
  return farm_shards_dir(dir) + "/" + farm_shard_stem(shard) + ".gt";
}

std::string farm_shard_infeasible_path(const std::string& dir, int shard) {
  return farm_shards_dir(dir) + "/" + farm_shard_stem(shard) + ".infe";
}

std::string farm_shard_heartbeat_path(const std::string& dir, int shard) {
  return farm_shards_dir(dir) + "/" + farm_shard_stem(shard) + ".hb";
}

std::string farm_shard_done_path(const std::string& dir, int shard) {
  return farm_shards_dir(dir) + "/" + farm_shard_stem(shard) + ".done";
}

std::string farm_merged_path(const std::string& dir, int grid,
                             int grid_size) {
  if (grid_size <= 1) return dir + "/ground_truth.gt";
  return dir + "/ground_truth.g" + std::to_string(grid) + ".gt";
}

std::string infeasible_to_text(const std::vector<std::string>& names) {
  std::ostringstream out;
  out << kInfeHeader << '\n';
  for (const std::string& name : names) out << name << '\n';
  out << kInfeFooter << names.size() << '\n';
  return out.str();
}

std::optional<std::vector<std::string>> infeasible_from_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  strip_cr(line);
  if (line != kInfeHeader) return std::nullopt;

  std::vector<std::string> names;
  bool footer_seen = false;
  std::size_t footer_count = 0;
  while (std::getline(in, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    if (line.rfind(kInfeFooter, 0) == 0) {
      std::istringstream footer(line.substr(std::string(kInfeFooter).size()));
      if (!(footer >> footer_count)) return std::nullopt;
      footer_seen = true;
      continue;
    }
    if (footer_seen) return std::nullopt;
    names.push_back(line);
  }
  if (!footer_seen || footer_count != names.size()) return std::nullopt;
  return names;
}

}  // namespace mf
