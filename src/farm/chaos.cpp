#include "farm/chaos.hpp"

#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include "common/rng.hpp"

namespace mf {

const char* to_string(FarmChaos::Action action) noexcept {
  switch (action) {
    case FarmChaos::Action::None:
      return "none";
    case FarmChaos::Action::Kill:
      return "kill";
    case FarmChaos::Action::Hang:
      return "hang";
    case FarmChaos::Action::Slow:
      return "slow";
  }
  return "?";
}

FarmChaos::Action FarmChaos::draw(int shard, int attempt, int ordinal) const {
  if (!opts_.enabled || ordinal < 1) return Action::None;
  const std::string key = "farm-chaos:s" + std::to_string(shard) + ":a" +
                          std::to_string(attempt) + ":b" +
                          std::to_string(ordinal);
  Rng rng(task_seed(opts_.seed, key));
  const double roll = rng.uniform();
  // Kill/hang are real faults and respect the per-shard eligibility budget;
  // slow is benign and always eligible.
  if (attempt < opts_.faults_per_shard) {
    if (roll < opts_.p_kill) return Action::Kill;
    if (roll < opts_.p_kill + opts_.p_hang) return Action::Hang;
  }
  if (roll < opts_.p_kill + opts_.p_hang + opts_.p_slow) return Action::Slow;
  return Action::None;
}

void FarmChaos::execute(Action action, double slow_ms) {
  switch (action) {
    case Action::None:
      return;
    case Action::Kill:
      std::raise(SIGKILL);  // uncatchable: simulated hard worker death
      return;               // unreachable
    case Action::Hang:
      // A true hang: no heartbeat, no cancellation polling, no exit. Only
      // the supervisor's staleness detector (SIGKILL) ends this process.
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    case Action::Slow:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          slow_ms));
      return;
  }
}

}  // namespace mf
