#include "place/detailed_placer.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <vector>

#include "fabric/pblock.hpp"

namespace mf {
namespace {

struct SliceState {
  std::int16_t col = -1;
  std::int16_t row = -1;
  bool is_m = false;
  bool has_carry = false;
  std::int8_t lut_used = 0;
  std::int8_t lut_cap = kLutsPerSlice;
  std::int8_t ff_used[2] = {0, 0};
  std::int8_t ff_cap[2] = {4, 4};
  ControlSetId half_cs[2] = {kInvalidId, kInvalidId};
  ControlSetId mem_cs = kInvalidId;  ///< control set of resident SRL/LUTRAMs

  [[nodiscard]] bool used() const noexcept {
    return has_carry || lut_used > 0 || ff_used[0] > 0 || ff_used[1] > 0;
  }

  /// Half index that can take an FF of control set `cs`, or -1.
  [[nodiscard]] int ff_half_for(ControlSetId cs) const noexcept {
    for (int h = 0; h < 2; ++h) {
      if (ff_used[h] >= ff_cap[h]) continue;
      if (half_cs[h] == cs || (ff_used[h] == 0 && half_cs[h] == kInvalidId)) {
        return h;
      }
    }
    return -1;
  }
};

/// Working state of one packing run.
class Packer {
 public:
  Packer(const Module& module, const ResourceReport& report,
         const Device& device, const PBlock& pblock,
         const DetailedPlaceOptions& opts)
      : nl_(module.netlist),
        report_(report),
        device_(device),
        pblock_(pblock),
        opts_(opts) {}

  PlaceResult run() {
    PlaceResult result;
    result.placement.assign(nl_.num_cells(), CellPlacement{});
    placement_ = &result.placement;

    if (!device_.in_bounds(pblock_)) {
      result.fail_reason = "pblock out of bounds";
      return result;
    }
    build_grid();

    if (!place_hard_blocks(result)) return result;
    if (!place_carry_chains(result)) return result;
    if (!place_memory_cells(result)) return result;
    if (!place_luts(result)) return result;
    if (!place_ffs(result)) return result;

    finish(result);
    return result;
  }

 private:
  // -- grid -----------------------------------------------------------------
  void build_grid() {
    const std::vector<int> cols = clb_columns_in(device_, pblock_);
    const int height = pblock_.height();

    // Congestion-driven spreading: when the PBlock offers more slices than
    // the estimate needs, reduce per-slice occupancy so the module spreads
    // over the available area -- what real placers do with slack, and the
    // mechanism through which a larger CF relieves routing congestion.
    const FabricResources avail = device_.resources_in(pblock_);
    // Spreading engages only once there is meaningful slack (the -0.12
    // offset): at a tight fit the packer stays dense like a real placer, so
    // the used-slice count at the minimal CF stays close to the estimate
    // (Table I's tight-CF column).
    const double slack =
        static_cast<double>(avail.slices) /
        (opts_.spread_margin * std::max(1, report_.est_slices));
    spread_ = std::clamp(slack - opts_.spread_offset, 1.0, 4.0);
    const double spread = spread_;
    // Fractional per-slice occupancy target: an accumulator doles out
    // integer capacities whose running average equals 4/spread, so the
    // congestion relief grows *smoothly* with the CF instead of stepping.
    const double target_cap = 4.0 / spread;
    // M slices must stay dense enough for the module's SRL/LUTRAM cells even
    // when the global spread is generous; a fractional accumulator per class
    // keeps the running average exact (no rounding cliffs).
    const int mem_cells = report_.stats.m_lut_cells();
    const double m_target_cap =
        avail.slices_m > 0
            ? std::max(target_cap, static_cast<double>(mem_cells) /
                                       avail.slices_m)
            : target_cap;
    double cap_acc = 0.0;
    double m_cap_acc = 0.0;
    auto next_cap = [](double& acc, double target) {
      acc += target;
      const int cap = std::clamp(static_cast<int>(acc), 1, 4);
      acc -= cap;
      return static_cast<std::int8_t>(cap);
    };

    slices_.reserve(cols.size() * static_cast<std::size_t>(height));
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const bool is_m = device_.column(cols[ci]) == ColumnKind::ClbM;
      for (int r = 0; r < height; ++r) {
        // Snake: even columns top-down, odd columns bottom-up, so that
        // consecutive slices in the sequence are physically adjacent.
        const int row = (ci % 2 == 0) ? pblock_.row_lo + r : pblock_.row_hi - r;
        SliceState s;
        s.col = static_cast<std::int16_t>(cols[ci]);
        s.row = static_cast<std::int16_t>(row);
        s.is_m = is_m;
        const std::int8_t cap = is_m ? next_cap(m_cap_acc, m_target_cap)
                                     : next_cap(cap_acc, target_cap);
        s.lut_cap = cap;
        s.ff_cap[0] = cap;
        s.ff_cap[1] = cap;
        slices_.push_back(s);
      }
    }
    column_count_ = static_cast<int>(cols.size());
    height_ = height;
    columns_ = cols;
    for (std::size_t idx = 0; idx < slices_.size(); ++idx) {
      by_pos_[{slices_[idx].col, slices_[idx].row}] = idx;
    }
  }

  /// Try to place `cell` close to one of its already-placed input drivers
  /// (LUT next to LUTRAM/mux source, FF next to its LUT). Scans a small
  /// window of the snake around the driver's slice.
  template <typename Fits>
  bool try_near_driver(CellId cell, const Fits& fits) {
    const Cell& c = nl_.cell(cell);
    for (std::size_t k = 0; k < c.inputs.size() && k < 2; ++k) {
      const CellId driver = nl_.net(c.inputs[k]).driver;
      if (driver == kInvalidId) continue;
      const CellPlacement& dp = (*placement_)[static_cast<std::size_t>(driver)];
      if (!dp.placed()) continue;
      // 2D proximity scan: the driver's slice, then rings of neighbouring
      // columns/rows (columns first -- the adjacent column is one routing
      // hop, while +4 rows in the same column is four).
      static constexpr int kColOffsets[] = {0, -1, 1, -2, 2, -3, 3, -4, 4};
      static constexpr int kRowOffsets[] = {0, -1, 1, -2, 2, -3, 3, -4, 4};
      for (int drow : kRowOffsets) {
        for (int dcol : kColOffsets) {
          const auto it = by_pos_.find({dp.col + dcol, dp.row + drow});
          if (it == by_pos_.end()) continue;
          if (fits(slice_at(it->second))) {
            commit(cell, it->second);
            return true;
          }
        }
      }
    }
    return false;
  }

  [[nodiscard]] SliceState& slice_at(std::size_t index) {
    return slices_[index];
  }

  void mark_cell(CellId cell, int col, int row) {
    (*placement_)[static_cast<std::size_t>(cell)] = {
        static_cast<std::int16_t>(col), static_cast<std::int16_t>(row)};
  }

  // -- hard blocks ----------------------------------------------------------
  bool place_hard_blocks(PlaceResult& result) {
    std::vector<CellId> bram36;
    std::vector<CellId> bram18;
    std::vector<CellId> dsp;
    for (std::size_t i = 0; i < nl_.num_cells(); ++i) {
      switch (nl_.cell(static_cast<CellId>(i)).kind) {
        case CellKind::Bram36:
          bram36.push_back(static_cast<CellId>(i));
          break;
        case CellKind::Bram18:
          bram18.push_back(static_cast<CellId>(i));
          break;
        case CellKind::Dsp48:
          dsp.push_back(static_cast<CellId>(i));
          break;
        default:
          break;
      }
    }
    if (bram36.empty() && bram18.empty() && dsp.empty()) return true;

    // Enumerate sites inside the PBlock, column-major.
    std::vector<std::pair<int, int>> bram_sites;
    std::vector<std::pair<int, int>> dsp_sites;
    for (int c = pblock_.col_lo; c <= pblock_.col_hi; ++c) {
      const ColumnKind kind = device_.column(c);
      if (kind != ColumnKind::Bram && kind != ColumnKind::Dsp) continue;
      for (int r = pblock_.row_lo; r + kBramRowPitch - 1 <= pblock_.row_hi;
           ++r) {
        if (r % kBramRowPitch != 0) continue;
        if (kind == ColumnKind::Bram) {
          bram_sites.emplace_back(c, r);
        } else {
          for (int k = 0; k < kDspPerPitch; ++k) dsp_sites.emplace_back(c, r);
        }
      }
    }

    const std::size_t bram_needed = bram36.size() + (bram18.size() + 1) / 2;
    if (bram_needed > bram_sites.size()) {
      result.fail_reason = "bram capacity";
      return false;
    }
    if (dsp.size() > dsp_sites.size()) {
      result.fail_reason = "dsp capacity";
      return false;
    }
    std::size_t site = 0;
    for (CellId cell : bram36) {
      mark_cell(cell, bram_sites[site].first, bram_sites[site].second);
      ++site;
    }
    for (std::size_t i = 0; i < bram18.size(); ++i) {
      // Two RAMB18 share one RAMB36 site.
      const auto& s = bram_sites[site + i / 2];
      mark_cell(bram18[i], s.first, s.second);
    }
    for (std::size_t i = 0; i < dsp.size(); ++i) {
      mark_cell(dsp[i], dsp_sites[i].first, dsp_sites[i].second);
    }
    return true;
  }

  // -- carry chains -----------------------------------------------------------
  bool place_carry_chains(PlaceResult& result) {
    std::map<std::int32_t, std::vector<CellId>> chains;
    for (std::size_t i = 0; i < nl_.num_cells(); ++i) {
      const Cell& cell = nl_.cell(static_cast<CellId>(i));
      if (cell.kind == CellKind::Carry4 && cell.chain != kInvalidId) {
        chains[cell.chain].push_back(static_cast<CellId>(i));
      }
    }
    if (chains.empty()) return true;

    std::vector<std::vector<CellId>> ordered;
    ordered.reserve(chains.size());
    for (auto& [id, cells] : chains) {
      std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
        return nl_.cell(a).chain_pos < nl_.cell(b).chain_pos;
      });
      ordered.push_back(std::move(cells));
    }
    // Longest chains first (hardest shapes).
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });

    // Balance chains over the CLB columns (least-loaded first) and pad the
    // claimed rows by the spread factor, so carry logic relaxes with the CF
    // like everything else instead of congealing in the top-left corner.
    std::vector<int> claimed(static_cast<std::size_t>(column_count_), 0);
    for (const auto& chain : ordered) {
      const int len = static_cast<int>(chain.size());
      int best = -1;
      for (int ci = 0; ci < column_count_; ++ci) {
        if (height_ - claimed[static_cast<std::size_t>(ci)] < len) continue;
        if (best < 0 || claimed[static_cast<std::size_t>(ci)] <
                            claimed[static_cast<std::size_t>(best)]) {
          best = ci;
        }
      }
      if (best < 0) {
        result.fail_reason = "carry chain does not fit";
        return false;
      }
      const int base = claimed[static_cast<std::size_t>(best)];
      for (int k = 0; k < len; ++k) {
        const std::size_t idx =
            static_cast<std::size_t>(best) * static_cast<std::size_t>(height_) +
            static_cast<std::size_t>(base + k);
        SliceState& s = slice_at(idx);
        s.has_carry = true;
        s.ff_cap[1] = 0;  // density rule: carry slices lose half their FFs
        mark_cell(chain[static_cast<std::size_t>(k)], s.col, s.row);
        attach_chain_luts(chain[static_cast<std::size_t>(k)], idx);
      }
      const int gap = static_cast<int>((spread_ - 1.0) * len);
      claimed[static_cast<std::size_t>(best)] =
          std::min(height_, base + len + gap);
    }
    return true;
  }

  /// The propagate LUTs feeding a CARRY4 live in its slice; their slots are
  /// reserved for the chain (leftover slots stay unusable, the conservative
  /// packing real tools approximate).
  void attach_chain_luts(CellId carry, std::size_t slice_index) {
    SliceState& s = slice_at(slice_index);
    const Cell& cell = nl_.cell(carry);
    for (NetId in : cell.inputs) {
      const CellId driver = nl_.net(in).driver;
      if (driver == kInvalidId) continue;
      const Cell& d = nl_.cell(driver);
      if (d.kind != CellKind::Lut) continue;
      if ((*placement_)[static_cast<std::size_t>(driver)].placed()) continue;
      if (s.lut_used >= s.lut_cap) break;
      ++s.lut_used;
      mark_cell(driver, s.col, s.row);
    }
    s.lut_used = s.lut_cap;  // reserve the remainder for the chain
  }

  // -- frontier machinery ----------------------------------------------------
  /// Generic frontier: a deque of open slice indices plus a cursor into the
  /// snake sequence. `skip` filters which slices may be opened.
  struct Frontier {
    std::deque<std::size_t> open;
    std::size_t cursor = 0;
  };

  template <typename Fits, typename Admit>
  bool place_with_frontier(Frontier& frontier, const Fits& fits,
                           const Admit& admit, CellId cell) {
    for (std::size_t k = 0; k < frontier.open.size(); ++k) {
      const std::size_t idx = frontier.open[k];
      if (fits(slice_at(idx))) {
        commit(cell, idx);
        return true;
      }
    }
    while (frontier.cursor < slices_.size()) {
      const std::size_t idx = frontier.cursor++;
      if (!admit(slice_at(idx))) continue;
      frontier.open.push_back(idx);
      if (static_cast<int>(frontier.open.size()) > opts_.frontier) {
        frontier.open.pop_front();
      }
      if (fits(slice_at(idx))) {
        commit(cell, idx);
        return true;
      }
    }
    // Out of slices at the spread density: densify (lift the reduced caps
    // back to silicon capacity) once and retry. The resulting higher pin
    // density is charged by the congestion model, so designs that *need*
    // densification (control-set fragmentation, density conflicts) pay for
    // it with a larger minimal CF -- they do not simply fail.
    if (!densified_) {
      densify();
      frontier.cursor = 0;
      frontier.open.clear();
      return place_with_frontier(frontier, fits, admit, cell);
    }
    return false;
  }

  void densify() {
    densified_ = true;
    for (SliceState& s : slices_) {
      if (!s.has_carry) {
        s.lut_cap = kLutsPerSlice;
        s.ff_cap[1] = 4;
      }
      s.ff_cap[0] = 4;
    }
    // Every frontier must rescan from the start to see the new capacity.
    mem_frontier_.cursor = 0;
    mem_frontier_.open.clear();
    lut_frontier_.cursor = 0;
    lut_frontier_.open.clear();
    ff_frontier_.cursor = 0;
    ff_frontier_.open.clear();
  }

  void commit(CellId cell, std::size_t slice_index) {
    SliceState& s = slice_at(slice_index);
    const Cell& c = nl_.cell(cell);
    switch (c.kind) {
      case CellKind::Lut:
        ++s.lut_used;
        break;
      case CellKind::Srl:
      case CellKind::LutRam:
        ++s.lut_used;
        s.mem_cs = c.control_set;
        break;
      case CellKind::Ff: {
        const int h = s.ff_half_for(c.control_set);
        MF_CHECK(h >= 0);
        s.half_cs[h] = c.control_set;
        ++s.ff_used[h];
        break;
      }
      default:
        MF_CHECK_MSG(false, "commit: unexpected cell kind");
    }
    mark_cell(cell, s.col, s.row);
  }

  // -- memory cells (SRL / LUTRAM) --------------------------------------------
  bool place_memory_cells(PlaceResult& result) {
    for (std::size_t i = 0; i < nl_.num_cells(); ++i) {
      const Cell& cell = nl_.cell(static_cast<CellId>(i));
      if (cell.kind != CellKind::Srl && cell.kind != CellKind::LutRam) {
        continue;
      }
      const ControlSetId cs = cell.control_set;
      const auto fits = [&](const SliceState& s) {
        return s.is_m && !s.has_carry && s.lut_used < s.lut_cap &&
               (s.mem_cs == kInvalidId || s.mem_cs == cs);
      };
      const auto admit = [](const SliceState& s) {
        return s.is_m && !s.has_carry;
      };
      if (!place_with_frontier(mem_frontier_, fits, admit,
                               static_cast<CellId>(i))) {
        result.fail_reason = "m-slice capacity";
        return false;
      }
    }
    return true;
  }

  // -- LUTs --------------------------------------------------------------------
  bool place_luts(PlaceResult& result) {
    for (std::size_t i = 0; i < nl_.num_cells(); ++i) {
      const Cell& cell = nl_.cell(static_cast<CellId>(i));
      if (cell.kind != CellKind::Lut) continue;
      if ((*placement_)[i].placed()) continue;  // chain-attached LUTs
      const auto fits = [](const SliceState& s) {
        return !s.has_carry && s.lut_used < s.lut_cap;
      };
      const auto admit = [](const SliceState& s) { return !s.has_carry; };
      if (try_near_driver(static_cast<CellId>(i), fits)) continue;
      if (!place_with_frontier(lut_frontier_, fits, admit,
                               static_cast<CellId>(i))) {
        result.fail_reason = "lut capacity";
        return false;
      }
    }
    return true;
  }

  // -- FFs ----------------------------------------------------------------------
  bool place_ffs(PlaceResult& result) {
    for (std::size_t i = 0; i < nl_.num_cells(); ++i) {
      const Cell& cell = nl_.cell(static_cast<CellId>(i));
      if (cell.kind != CellKind::Ff) continue;
      const ControlSetId cs = cell.control_set;
      const auto fits = [&](const SliceState& s) {
        return s.ff_half_for(cs) >= 0;
      };
      // LUT/FF pairing: prefer a slice near the driver.
      if (try_near_driver(static_cast<CellId>(i), fits)) continue;
      const auto admit = [](const SliceState&) { return true; };
      if (!place_with_frontier(ff_frontier_, fits, admit,
                               static_cast<CellId>(i))) {
        result.fail_reason = "ff packing";
        return false;
      }
    }
    return true;
  }

  // -- wrap-up --------------------------------------------------------------
  void finish(PlaceResult& result) {
    int used = 0;
    PBlock bbox;
    bool any = false;
    auto extend = [&](int col, int row) {
      if (!any) {
        bbox = PBlock{col, col, row, row};
        any = true;
      } else {
        bbox.col_lo = std::min(bbox.col_lo, col);
        bbox.col_hi = std::max(bbox.col_hi, col);
        bbox.row_lo = std::min(bbox.row_lo, row);
        bbox.row_hi = std::max(bbox.row_hi, row);
      }
    };
    for (const SliceState& s : slices_) {
      if (!s.used()) continue;
      ++used;
      extend(s.col, s.row);
    }
    for (std::size_t i = 0; i < placement_->size(); ++i) {
      const CellPlacement& p = (*placement_)[i];
      const CellKind kind = nl_.cell(static_cast<CellId>(i)).kind;
      if (p.placed() && !is_clb_cell(kind)) extend(p.col, p.row);
    }
    result.used_slices = used;
    result.used_bbox = any ? bbox : PBlock{};

    if (any) {
      const FabricResources in_bbox = device_.resources_in(bbox);
      result.fill_ratio =
          in_bbox.slices > 0
              ? static_cast<double>(used) / static_cast<double>(in_bbox.slices)
              : 0.0;
    }

    if (opts_.check_routability) {
      result.route = estimate_routability(nl_, *placement_, pblock_,
                                          opts_.route);
      if (!result.route.routable) {
        result.fail_reason = "congestion";
        return;
      }
    }
    result.feasible = true;
  }

  static bool is_clb_cell(CellKind kind) noexcept {
    switch (kind) {
      case CellKind::Lut:
      case CellKind::Ff:
      case CellKind::Carry4:
      case CellKind::Srl:
      case CellKind::LutRam:
        return true;
      default:
        return false;
    }
  }

  const Netlist& nl_;
  [[maybe_unused]] const ResourceReport& report_;
  const Device& device_;
  const PBlock& pblock_;
  const DetailedPlaceOptions& opts_;

  std::vector<SliceState> slices_;
  std::map<std::pair<int, int>, std::size_t> by_pos_;
  std::vector<int> columns_;
  int column_count_ = 0;
  int height_ = 0;
  double spread_ = 1.0;
  bool densified_ = false;
  Placement* placement_ = nullptr;

  Frontier mem_frontier_;
  Frontier lut_frontier_;
  Frontier ff_frontier_;
};

}  // namespace

PlaceResult place_in_pblock(const Module& module, const ResourceReport& report,
                            const Device& device, const PBlock& pblock,
                            const DetailedPlaceOptions& opts) {
  Packer packer(module, report, device, pblock, opts);
  return packer.run();
}

}  // namespace mf
