#pragma once
// Cell placement record shared by the placers, the routability model and
// static timing analysis.

#include <cstdint>
#include <vector>

namespace mf {

/// Grid location of one cell (absolute device coordinates). BRAM/DSP cells
/// carry their site's column/row; unplaced cells stay at (-1, -1).
struct CellPlacement {
  std::int16_t col = -1;
  std::int16_t row = -1;

  [[nodiscard]] bool placed() const noexcept { return col >= 0; }
};

/// One entry per CellId of the associated netlist.
using Placement = std::vector<CellPlacement>;

}  // namespace mf
