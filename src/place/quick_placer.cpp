#include "place/quick_placer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "fabric/device.hpp"

namespace mf {

ShapeReport quick_place(const ResourceReport& report) {
  ShapeReport shape;
  const int slices = std::max(report.est_slices, 1);
  const int longest = report.stats.longest_chain();
  shape.min_height = std::max(longest, 1);

  // Square-ish box, stretched vertically if a chain forces it.
  int height = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(slices))));
  height = std::max(height, shape.min_height);

  // First-fit-decreasing chain packing into columns of `height`.
  int carry_columns = 0;
  if (!report.stats.carry_chains.empty()) {
    std::vector<int> free_rows;  // per started column
    for (int len : report.stats.carry_chains) {  // already sorted desc
      MF_CHECK(len <= height);
      bool placed = false;
      for (int& rows : free_rows) {
        if (rows >= len) {
          rows -= len;
          placed = true;
          break;
        }
      }
      if (!placed) {
        free_rows.push_back(height - len);
        ++carry_columns;
      }
    }
  }
  shape.carry_columns = carry_columns;

  int width = (slices + height - 1) / height;
  width = std::max(width, carry_columns);
  // BRAM/DSP-dominated blocks stretch vertically: the hard-block column must
  // span enough site pitches regardless of slice demand.
  const int hard_rows =
      std::max(report.bram36,
               (report.dsp + kDspPerPitch - 1) / kDspPerPitch) *
      kBramRowPitch;
  if (hard_rows > height) {
    height = hard_rows;
    width = std::max((slices + height - 1) / height,
                     std::max(carry_columns, 1));
  }

  shape.bbox_w = std::max(width, 1);
  shape.bbox_h = height;
  return shape;
}

}  // namespace mf
