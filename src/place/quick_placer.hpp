#pragma once
// Quick placement -> shape report (stage two of Figure 1).
//
// RapidWright runs a fast placement of each module to learn the geometric
// shape a PBlock must have: the bounding-box aspect ratio and the vertical
// extent forced by carry chains. We reproduce that with a deterministic
// shape construction: carry chains are packed into columns first (they are
// rigid vertical runs), then the remaining slices fill a near-square box.

#include "synth/report.hpp"

namespace mf {

struct ShapeReport {
  int bbox_w = 1;       ///< quick-placement bounding box width (slices)
  int bbox_h = 1;       ///< bounding box height (slices)
  int min_height = 1;   ///< longest carry chain = minimum PBlock height
  int carry_columns = 0;  ///< columns consumed by chain packing

  [[nodiscard]] double aspect() const noexcept {
    return static_cast<double>(bbox_w) / static_cast<double>(bbox_h);
  }
  [[nodiscard]] long area() const noexcept {
    return static_cast<long>(bbox_w) * bbox_h;
  }
};

ShapeReport quick_place(const ResourceReport& report);

}  // namespace mf
