#pragma once
// Detailed placement of a module inside a PBlock.
//
// This is the feasibility oracle behind the minimal correction factor: a
// module/PBlock pair is *feasible* when every cell can legally be packed
// into the PBlock's slices and the resulting placement passes the
// routability proxy. The packer enforces precisely the factors Section V of
// the paper identifies as drivers of the PBlock size:
//
//   V-A  CLB type      -- SRL/LUTRAM cells only fit M-slice LUT sites;
//   V-B  control sets  -- a slice owns two 4-FF halves, each bound to one
//                         control set; mismatched FFs fragment slices;
//   V-C  carry chains  -- CARRY4 runs need vertically contiguous slices in a
//                         single column, fixing the PBlock's minimum height;
//   V-D  fanin/fanout  -- via the routability proxy's congestion check;
//   V-E  density       -- a slice hosting a CARRY4 loses half its FF
//                         capacity and its LUT slots are reserved for the
//                         chain's propagate LUTs, so designs dense in all
//                         three resources interfere.
//
// Placement strategy: cells are packed in netlist creation order (the
// generators emit dataflow order, so this is a topological order with good
// locality) into a snake of slices across the PBlock's CLB columns, keeping
// a small frontier of partially filled slices open. FFs first try the slice
// of their driver (LUT/FF pairing, as packers do for timing).

#include <string>

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/routability.hpp"
#include "synth/report.hpp"

namespace mf {

struct DetailedPlaceOptions {
  RoutabilityOptions route;
  int frontier = 12;  ///< partially filled slices kept open for packing
  bool check_routability = true;
  /// Safety margin on the estimate when computing the spread factor.
  double spread_margin = 1.05;
  /// Slack below which the packer stays fully dense (see build_grid).
  double spread_offset = 0.12;
};

struct PlaceResult {
  bool feasible = false;
  std::string fail_reason;  ///< empty when feasible
  int used_slices = 0;      ///< slices with at least one placed element
  Placement placement;      ///< per-cell locations (device coordinates)
  RouteEstimate route;      ///< congestion estimate (valid when placed)
  PBlock used_bbox;         ///< bounding box of the used slices/sites

  /// used_slices / CLB slice positions inside used_bbox: 1.0 = perfectly
  /// rectangular occupancy. The paper's Figure 3 irregularity argument is
  /// quantified with this plus the bbox dimensions.
  double fill_ratio = 0.0;
};

PlaceResult place_in_pblock(const Module& module, const ResourceReport& report,
                            const Device& device, const PBlock& pblock,
                            const DetailedPlaceOptions& opts = {});

}  // namespace mf
