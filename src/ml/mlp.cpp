#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ml/model_io.hpp"

namespace mf {
namespace {

/// Adam state for one parameter vector.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;

  explicit AdamState(std::size_t n) : m(n, 0.0), v(n, 0.0) {}

  void step(std::vector<double>& param, const std::vector<double>& grad,
            double lr, double beta1, double beta2, double eps, double bc1,
            double bc2) {
    for (std::size_t i = 0; i < param.size(); ++i) {
      m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
      v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      param[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
};

}  // namespace

void Mlp::fit(const std::vector<std::vector<double>>& x,
              const std::vector<double>& y, const MlpOptions& opts) {
  MF_CHECK(!x.empty() && x.size() == y.size());
  MF_CHECK(opts.hidden > 0 && opts.epochs > 0 && opts.batch_size > 0);

  scaler_.fit(x);
  const std::vector<std::vector<double>> xs = scaler_.transform(x);
  in_dim_ = static_cast<int>(xs.front().size());
  hidden_ = opts.hidden;

  Rng rng(opts.seed);
  const std::size_t h = static_cast<std::size_t>(hidden_);
  const std::size_t d = static_cast<std::size_t>(in_dim_);
  w1_.assign(h * d, 0.0);
  b1_.assign(h, 0.0);
  w2_.assign(h, 0.0);
  b2_ = 0.0;
  // He initialisation for the ReLU layer, Glorot-ish for the head.
  const double s1 = std::sqrt(2.0 / static_cast<double>(d));
  for (double& w : w1_) w = rng.normal(0.0, s1);
  const double s2 = std::sqrt(1.0 / static_cast<double>(h));
  for (double& w : w2_) w = rng.normal(0.0, s2);

  AdamState a_w1(w1_.size());
  AdamState a_b1(b1_.size());
  AdamState a_w2(w2_.size());
  AdamState a_b2(1);

  std::vector<double> g_w1(w1_.size());
  std::vector<double> g_b1(b1_.size());
  std::vector<double> g_w2(w2_.size());
  std::vector<double> g_b2(1);
  std::vector<double> hidden_act(h);

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  loss_history_.clear();
  loss_history_.reserve(static_cast<std::size_t>(opts.epochs));
  long adam_t = 0;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(opts.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(opts.batch_size));
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      std::fill(g_w1.begin(), g_w1.end(), 0.0);
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      std::fill(g_w2.begin(), g_w2.end(), 0.0);
      g_b2[0] = 0.0;

      for (std::size_t k = start; k < end; ++k) {
        const std::vector<double>& row = xs[order[k]];
        const double target = y[order[k]];
        const double pred = forward(row, &hidden_act);
        const double err = pred - target;
        epoch_loss += err * err;

        // Backprop: dL/dpred = 2*err (MSE), scaled into the batch mean.
        const double dp = 2.0 * err * inv_batch;
        g_b2[0] += dp;
        for (std::size_t j = 0; j < h; ++j) {
          g_w2[j] += dp * hidden_act[j];
          if (hidden_act[j] > 0.0) {
            const double dh = dp * w2_[j];
            g_b1[j] += dh;
            for (std::size_t i = 0; i < d; ++i) {
              g_w1[j * d + i] += dh * row[i];
            }
          }
        }
      }

      ++adam_t;
      const double bc1 = 1.0 - std::pow(opts.adam_beta1, adam_t);
      const double bc2 = 1.0 - std::pow(opts.adam_beta2, adam_t);
      a_w1.step(w1_, g_w1, opts.learning_rate, opts.adam_beta1,
                opts.adam_beta2, opts.adam_eps, bc1, bc2);
      a_b1.step(b1_, g_b1, opts.learning_rate, opts.adam_beta1,
                opts.adam_beta2, opts.adam_eps, bc1, bc2);
      a_w2.step(w2_, g_w2, opts.learning_rate, opts.adam_beta1,
                opts.adam_beta2, opts.adam_eps, bc1, bc2);
      std::vector<double> b2v{b2_};
      a_b2.step(b2v, g_b2, opts.learning_rate, opts.adam_beta1,
                opts.adam_beta2, opts.adam_eps, bc1, bc2);
      b2_ = b2v[0];
    }
    loss_history_.push_back(epoch_loss / static_cast<double>(xs.size()));
  }
}

void Mlp::save(ModelWriter& out) const {
  out.i64(in_dim_);
  out.i64(hidden_);
  out.endl();
  scaler_.save(out);
  out.vec(w1_);
  out.endl();
  out.vec(b1_);
  out.endl();
  out.vec(w2_);
  out.endl();
  out.f64(b2_);
  out.endl();
}

void Mlp::load(ModelReader& in) {
  in_dim_ = static_cast<int>(in.i64_in(1, 1 << 20));
  hidden_ = static_cast<int>(in.i64_in(1, 1 << 20));
  scaler_.load(in);
  w1_ = in.vec();
  b1_ = in.vec();
  w2_ = in.vec();
  b2_ = in.f64();
  loss_history_.clear();
  if (!in.ok()) return;
  const auto h = static_cast<std::size_t>(hidden_);
  const auto d = static_cast<std::size_t>(in_dim_);
  if (w1_.size() != h * d || b1_.size() != h || w2_.size() != h ||
      scaler_.mean().size() != d) {
    in.fail();
  }
}

double Mlp::forward(const std::vector<double>& scaled,
                    std::vector<double>* hidden_out) const {
  const std::size_t h = static_cast<std::size_t>(hidden_);
  const std::size_t d = static_cast<std::size_t>(in_dim_);
  double out = b2_;
  for (std::size_t j = 0; j < h; ++j) {
    double act = b1_[j];
    for (std::size_t i = 0; i < d; ++i) act += w1_[j * d + i] * scaled[i];
    act = std::max(act, 0.0);  // ReLU
    if (hidden_out != nullptr) (*hidden_out)[j] = act;
    out += w2_[j] * act;
  }
  return out;
}

double Mlp::predict(const std::vector<double>& row) const {
  MF_CHECK(in_dim_ > 0);
  return forward(scaler_.transform(row), nullptr);
}

std::vector<double> Mlp::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace mf
