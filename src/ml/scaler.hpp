#pragma once
// Per-feature standardisation (zero mean, unit variance) for the models that
// need it (linear regression conditioning, MLP training).

#include <vector>

namespace mf {

class ModelReader;
class ModelWriter;

class StandardScaler {
 public:
  void fit(const std::vector<std::vector<double>>& x);

  /// Bit-exact persistence (ml/model_io.hpp); load reports failure via the
  /// reader's sticky ok() flag.
  void save(ModelWriter& out) const;
  void load(ModelReader& in);

  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& row) const;
  [[nodiscard]] std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& x) const;

  [[nodiscard]] const std::vector<double>& mean() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<double>& stddev() const noexcept {
    return stddev_;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace mf
