#include "ml/dtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "ml/model_io.hpp"

namespace mf {
namespace {

struct SplitCandidate {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;  ///< SSE decrease
  std::size_t left_count = 0;
};

double sse_of(const std::vector<double>& y,
              const std::vector<std::size_t>& indices, std::size_t lo,
              std::size_t hi) {
  double sum = 0.0;
  double sq = 0.0;
  for (std::size_t k = lo; k < hi; ++k) {
    sum += y[indices[k]];
    sq += y[indices[k]] * y[indices[k]];
  }
  const double n = static_cast<double>(hi - lo);
  return sq - sum * sum / n;
}

}  // namespace

void DecisionTree::fit(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y, const DTreeOptions& opts,
                       Rng& rng, const std::vector<std::size_t>* samples) {
  MF_CHECK(!x.empty() && x.size() == y.size());
  nodes_.clear();
  depth_ = 0;
  importance_.assign(x.front().size(), 0.0);

  std::vector<std::size_t> indices;
  if (samples != nullptr) {
    indices = *samples;
  } else {
    indices.resize(x.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
  }
  MF_CHECK(!indices.empty());
  build(x, y, indices, 0, indices.size(), 0, opts, rng);

  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

int DecisionTree::build(const std::vector<std::vector<double>>& x,
                        const std::vector<double>& y,
                        std::vector<std::size_t>& indices, std::size_t lo,
                        std::size_t hi, int depth, const DTreeOptions& opts,
                        Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = hi - lo;
  double mean = 0.0;
  for (std::size_t k = lo; k < hi; ++k) mean += y[indices[k]];
  mean /= static_cast<double>(n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].value = mean;

  const std::size_t min_leaf = static_cast<std::size_t>(opts.min_samples_leaf);
  if (depth >= opts.max_depth || n < 2 * min_leaf) return node_id;

  const double parent_sse = sse_of(y, indices, lo, hi);
  if (parent_sse <= 1e-12) return node_id;

  // Feature subset for this split.
  const std::size_t dim = x.front().size();
  std::vector<int> features(dim);
  std::iota(features.begin(), features.end(), 0);
  if (opts.mtry > 0 && static_cast<std::size_t>(opts.mtry) < dim) {
    rng.shuffle(features);
    features.resize(static_cast<std::size_t>(opts.mtry));
  }

  SplitCandidate best;
  std::vector<std::size_t> scratch(indices.begin() + static_cast<long>(lo),
                                   indices.begin() + static_cast<long>(hi));
  for (int f : features) {
    std::sort(scratch.begin(), scratch.end(), [&](std::size_t a, std::size_t b) {
      return x[a][static_cast<std::size_t>(f)] < x[b][static_cast<std::size_t>(f)];
    });
    // Prefix scan of y over the sorted order.
    double left_sum = 0.0;
    double left_sq = 0.0;
    double total_sum = 0.0;
    double total_sq = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total_sum += y[scratch[k]];
      total_sq += y[scratch[k]] * y[scratch[k]];
    }
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const double yk = y[scratch[k]];
      left_sum += yk;
      left_sq += yk * yk;
      const std::size_t left_n = k + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < min_leaf || right_n < min_leaf) continue;
      const double xa = x[scratch[k]][static_cast<std::size_t>(f)];
      const double xb = x[scratch[k + 1]][static_cast<std::size_t>(f)];
      if (xb <= xa) continue;  // cannot split between equal values
      // Guard against adjacent doubles where the midpoint rounds onto xb
      // (which would send every sample left during partitioning).
      double threshold = 0.5 * (xa + xb);
      if (threshold >= xb || threshold < xa) threshold = xa;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double child_sse =
          (left_sq - left_sum * left_sum / static_cast<double>(left_n)) +
          (right_sq - right_sum * right_sum / static_cast<double>(right_n));
      const double gain = parent_sse - child_sse;
      if (gain > best.gain) {
        best.feature = f;
        best.threshold = threshold;
        best.gain = gain;
        best.left_count = left_n;
      }
    }
  }
  if (best.feature < 0) return node_id;

  importance_[static_cast<std::size_t>(best.feature)] += best.gain;

  // Partition `indices[lo, hi)` around the threshold (stable enough: order
  // within halves is irrelevant for tree building).
  const auto mid_it = std::partition(
      indices.begin() + static_cast<long>(lo),
      indices.begin() + static_cast<long>(hi), [&](std::size_t i) {
        return x[i][static_cast<std::size_t>(best.feature)] <= best.threshold;
      });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  MF_CHECK(mid > lo && mid < hi);

  const int left = build(x, y, indices, lo, mid, depth + 1, opts, rng);
  const int right = build(x, y, indices, mid, hi, depth + 1, opts, rng);
  nodes_[static_cast<std::size_t>(node_id)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void DecisionTree::save(ModelWriter& out) const {
  out.u64(nodes_.size());
  out.i64(depth_);
  out.endl();
  for (const Node& node : nodes_) {
    out.i64(node.feature);
    out.f64(node.threshold);
    out.i64(node.left);
    out.i64(node.right);
    out.f64(node.value);
    out.endl();
  }
  out.vec(importance_);
  out.endl();
}

void DecisionTree::load(ModelReader& in) {
  const std::uint64_t count = in.u64();
  depth_ = static_cast<int>(in.i64_in(0, 1 << 20));
  if (!in.ok() || count > (1u << 26)) {
    in.fail();
    return;
  }
  nodes_.clear();
  nodes_.reserve(static_cast<std::size_t>(count));
  const auto last = static_cast<std::int64_t>(count) - 1;
  for (std::uint64_t i = 0; i < count && in.ok(); ++i) {
    Node node;
    node.feature = static_cast<int>(in.i64_in(-1, 1 << 20));
    node.threshold = in.f64();
    // Children must point at later nodes (build() appends parents first),
    // which also rules out traversal cycles in a tampered file.
    const auto lo = static_cast<std::int64_t>(i) + 1;
    if (node.feature >= 0) {
      node.left = static_cast<int>(in.i64_in(lo, last));
      node.right = static_cast<int>(in.i64_in(lo, last));
    } else {
      node.left = static_cast<int>(in.i64_in(-1, -1));
      node.right = static_cast<int>(in.i64_in(-1, -1));
    }
    node.value = in.f64();
    nodes_.push_back(node);
  }
  importance_ = in.vec();
  if (!in.ok()) return;
  for (const Node& node : nodes_) {
    if (node.feature >= 0 &&
        static_cast<std::size_t>(node.feature) >= importance_.size()) {
      in.fail();
      return;
    }
  }
}

double DecisionTree::predict(const std::vector<double>& row) const {
  MF_CHECK(!nodes_.empty());
  int node = 0;
  for (;;) {
    const Node& nd = nodes_[static_cast<std::size_t>(node)];
    if (nd.feature < 0) return nd.value;
    node = row[static_cast<std::size_t>(nd.feature)] <= nd.threshold
               ? nd.left
               : nd.right;
  }
}

std::vector<double> DecisionTree::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace mf
