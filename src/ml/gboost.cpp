#include "ml/gboost.hpp"

#include <numeric>

#include "common/check.hpp"
#include "ml/model_io.hpp"

namespace mf {

void GradientBoosting::fit(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y,
                           const GBoostOptions& opts) {
  MF_CHECK(!x.empty() && x.size() == y.size());
  MF_CHECK(opts.rounds > 0 && opts.learning_rate > 0.0);
  MF_CHECK(opts.subsample > 0.0 && opts.subsample <= 1.0);

  learning_rate_ = opts.learning_rate;
  base_ = std::accumulate(y.begin(), y.end(), 0.0) /
          static_cast<double>(y.size());
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(opts.rounds));
  importance_.assign(x.front().size(), 0.0);
  loss_history_.clear();

  std::vector<double> residual(y.size());
  std::vector<double> prediction(y.size(), base_);
  DTreeOptions tree_opts;
  tree_opts.max_depth = opts.max_depth;
  tree_opts.min_samples_leaf = opts.min_samples_leaf;

  Rng rng(opts.seed);
  const std::size_t sample_size = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.subsample *
                                  static_cast<double>(y.size())));
  std::vector<std::size_t> all(y.size());
  std::iota(all.begin(), all.end(), std::size_t{0});

  for (int round = 0; round < opts.rounds; ++round) {
    double mse = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      residual[i] = y[i] - prediction[i];
      mse += residual[i] * residual[i];
    }
    loss_history_.push_back(mse / static_cast<double>(y.size()));

    rng.shuffle(all);
    std::vector<std::size_t> sample(all.begin(),
                                    all.begin() + static_cast<long>(sample_size));

    DecisionTree tree;
    tree.fit(x, residual, tree_opts, rng, &sample);
    const std::vector<double>& imp = tree.feature_importance();
    for (std::size_t j = 0; j < importance_.size(); ++j) {
      importance_[j] += imp[j];
    }
    for (std::size_t i = 0; i < y.size(); ++i) {
      prediction[i] += learning_rate_ * tree.predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }

  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

void GradientBoosting::save(ModelWriter& out) const {
  out.f64(base_);
  out.f64(learning_rate_);
  out.u64(trees_.size());
  out.endl();
  for (const DecisionTree& tree : trees_) tree.save(out);
  out.vec(importance_);
  out.endl();
}

void GradientBoosting::load(ModelReader& in) {
  base_ = in.f64();
  learning_rate_ = in.f64();
  const std::uint64_t count = in.u64();
  if (!in.ok() || count == 0 || count > (1u << 20)) {
    in.fail();
    return;
  }
  trees_.assign(static_cast<std::size_t>(count), DecisionTree{});
  for (DecisionTree& tree : trees_) {
    tree.load(in);
    if (!in.ok()) return;
  }
  importance_ = in.vec();
  loss_history_.clear();
  if (!in.ok()) return;
  for (const DecisionTree& tree : trees_) {
    if (tree.feature_importance().size() != importance_.size()) {
      in.fail();
      return;
    }
  }
}

double GradientBoosting::predict(const std::vector<double>& row) const {
  MF_CHECK(!trees_.empty());
  double value = base_;
  for (const DecisionTree& tree : trees_) {
    value += learning_rate_ * tree.predict(row);
  }
  return value;
}

std::vector<double> GradientBoosting::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace mf
