#include "ml/rforest.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "ml/model_io.hpp"

namespace mf {

void RandomForest::fit(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y,
                       const RForestOptions& opts) {
  MF_CHECK(!x.empty() && x.size() == y.size());
  MF_CHECK(opts.trees > 0);
  const std::size_t n = x.size();
  const std::size_t dim = x.front().size();

  DTreeOptions tree_opts;
  tree_opts.max_depth = opts.max_depth;
  tree_opts.min_samples_leaf = opts.min_samples_leaf;
  tree_opts.mtry = opts.mtry > 0
                       ? opts.mtry
                       : std::max(1, static_cast<int>(dim) / 3);

  trees_.assign(static_cast<std::size_t>(opts.trees), DecisionTree{});
  importance_.assign(dim, 0.0);

  // Each tree trains from its own Rng, seeded as a pure function of the
  // forest seed and the tree index -- not from a shared generator -- so the
  // loop parallelizes with bit-identical results at any jobs value.
  // Cancellation aborts by exception (see RForestOptions::cancel): the
  // per-tree throw below surfaces through parallel_for_each's
  // lowest-index-wins rethrow, and the token also stops new trees from
  // starting. The half-built trees_ vector is discarded by the caller.
  try {
    parallel_for_each(
        opts.jobs, trees_.size(),
        [&](std::size_t t) {
          throw_if_cancelled(opts.cancel);
          Rng rng(task_seed(opts.seed, "tree:" + std::to_string(t)));
          std::vector<std::size_t> bootstrap(n);
          for (std::size_t i = 0; i < n; ++i) bootstrap[i] = rng.index(n);
          trees_[t].fit(x, y, tree_opts, rng, &bootstrap);
        },
        opts.cancel);
    throw_if_cancelled(opts.cancel);
  } catch (...) {
    trees_.clear();     // leave the forest untrained, never half-trained
    importance_.clear();
    throw;
  }
  // Importance merge is sequential in tree order (deterministic FP sums).
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importance();
    for (std::size_t j = 0; j < dim; ++j) importance_[j] += imp[j];
  }
  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

void RandomForest::save(ModelWriter& out) const {
  out.u64(trees_.size());
  out.endl();
  for (const DecisionTree& tree : trees_) tree.save(out);
  out.vec(importance_);
  out.endl();
}

void RandomForest::load(ModelReader& in) {
  const std::uint64_t count = in.u64();
  if (!in.ok() || count == 0 || count > (1u << 20)) {
    in.fail();
    return;
  }
  trees_.assign(static_cast<std::size_t>(count), DecisionTree{});
  for (DecisionTree& tree : trees_) {
    tree.load(in);
    if (!in.ok()) return;
  }
  importance_ = in.vec();
  if (!in.ok()) return;
  // Every tree must have been fitted against the same feature width,
  // otherwise predict() would index rows out of bounds.
  for (const DecisionTree& tree : trees_) {
    if (tree.feature_importance().size() != importance_.size()) {
      in.fail();
      return;
    }
  }
}

double RandomForest::predict(const std::vector<double>& row) const {
  MF_CHECK(!trees_.empty());
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace mf
