#pragma once
// Ordinary least squares with a small ridge term for conditioning, solved by
// Cholesky factorisation of the normal equations. Inputs are standardised
// internally so raw count features (LUTs in the thousands) coexist with
// ratios in [0, 1].

#include <vector>

#include "ml/scaler.hpp"

namespace mf {

class LinearRegression {
 public:
  explicit LinearRegression(double ridge = 1e-6) : ridge_(ridge) {}

  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  [[nodiscard]] double predict(const std::vector<double>& row) const;
  [[nodiscard]] std::vector<double> predict(
      const std::vector<std::vector<double>>& x) const;

  /// Bit-exact persistence (ml/model_io.hpp).
  void save(ModelWriter& out) const;
  void load(ModelReader& in);

  /// Weights in standardised feature space (last entry is the intercept).
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  double ridge_;
  StandardScaler scaler_;
  std::vector<double> weights_;
};

}  // namespace mf
