#pragma once
// Regression dataset container plus the paper's preprocessing steps:
// CF-bin balancing (Section VII / Figure 8) and the 80/20 split.

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace mf {

struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> x;  ///< one row per sample
  std::vector<double> y;               ///< target (minimal CF)
  std::vector<std::string> labels;     ///< module names (provenance)

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return feature_names.size();
  }

  void add(std::vector<double> features, double target, std::string label);

  /// Keep only the samples at `indices`, in that order.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;
};

/// Shuffle, then cap the number of samples per CF bin (bin width matching
/// the search resolution). The paper caps at 75 samples per CF, shrinking
/// ~2,000 modules to ~1,500 and flattening the target distribution.
Dataset balance_by_target(const Dataset& data, double bin_width, int cap,
                          Rng& rng);

/// Random split: first element trains on `train_fraction` of the samples.
std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double train_fraction, Rng& rng);

}  // namespace mf
