#pragma once
// CART regression tree (variance reduction splits) with impurity-based
// feature importance -- the paper's single-DT estimator (depth 20) and the
// building block of the random forest.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace mf {

class ModelReader;
class ModelWriter;

struct DTreeOptions {
  int max_depth = 20;
  int min_samples_leaf = 2;
  /// Features considered per split; 0 = all (single tree), forests pass a
  /// random subset size.
  int mtry = 0;
};

class DecisionTree {
 public:
  /// Fit on rows `samples` of (x, y); pass nullptr to use every row.
  /// `rng` is only consulted when opts.mtry > 0.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const DTreeOptions& opts, Rng& rng,
           const std::vector<std::size_t>* samples = nullptr);

  [[nodiscard]] double predict(const std::vector<double>& row) const;
  [[nodiscard]] std::vector<double> predict(
      const std::vector<std::vector<double>>& x) const;

  /// Impurity-decrease importance, normalised to sum 1 (all-leaf trees
  /// return all-zero).
  [[nodiscard]] const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// Bit-exact persistence (ml/model_io.hpp); load validates node indices
  /// so a corrupt tree cannot send predict() out of bounds.
  void save(ModelWriter& out) const;
  void load(ModelReader& in);

 private:
  struct Node {
    int feature = -1;  ///< -1 => leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  int build(const std::vector<std::vector<double>>& x,
            const std::vector<double>& y, std::vector<std::size_t>& indices,
            std::size_t lo, std::size_t hi, int depth,
            const DTreeOptions& opts, Rng& rng);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int depth_ = 0;
};

}  // namespace mf
