#pragma once
// Gradient-boosted regression trees (least-squares boosting).
//
// An *extension* beyond the paper's four estimator families: shallow trees
// fitted sequentially to the residual, which often beats both the single
// deep tree and the bagged forest on tabular regression. Included to probe
// whether the paper's conclusion ("increasing the expressiveness of our
// estimator does not always lead to better results") also holds for
// boosting on this task -- see bench_ablation.

#include <vector>

#include "ml/dtree.hpp"

namespace mf {

struct GBoostOptions {
  int rounds = 300;
  int max_depth = 4;
  int min_samples_leaf = 4;
  double learning_rate = 0.1;
  /// Row subsampling per round (stochastic gradient boosting).
  double subsample = 0.8;
  std::uint64_t seed = 17;
};

class GradientBoosting {
 public:
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const GBoostOptions& opts = {});

  [[nodiscard]] double predict(const std::vector<double>& row) const;
  [[nodiscard]] std::vector<double> predict(
      const std::vector<std::vector<double>>& x) const;

  /// Accumulated impurity importance over all boosting rounds (sums to 1).
  [[nodiscard]] const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

  /// Bit-exact persistence of the fitted ensemble (ml/model_io.hpp). The
  /// per-round training loss is a fit-time diagnostic and is not persisted.
  void save(ModelWriter& out) const;
  void load(ModelReader& in);

  [[nodiscard]] std::size_t rounds() const noexcept { return trees_.size(); }
  /// Per-round training MSE (for overfitting diagnostics).
  [[nodiscard]] const std::vector<double>& training_loss() const noexcept {
    return loss_history_;
  }

 private:
  double base_ = 0.0;
  double learning_rate_ = 0.1;
  std::vector<DecisionTree> trees_;
  std::vector<double> importance_;
  std::vector<double> loss_history_;
};

}  // namespace mf
