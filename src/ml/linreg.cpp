#include "ml/linreg.hpp"

#include <cmath>

#include "common/check.hpp"
#include "ml/model_io.hpp"

namespace mf {
namespace {

/// Solve A w = b for symmetric positive definite A via in-place Cholesky.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n) {
  // Factor A = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    MF_CHECK_MSG(diag > 0.0, "matrix not positive definite");
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) v -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = v / ljj;
    }
  }
  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a[i * n + k] * b[k];
    b[i] = v / a[i * n + i];
  }
  // Back substitution: L^T w = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= a[k * n + ii] * b[k];
    b[ii] = v / a[ii * n + ii];
  }
  return b;
}

}  // namespace

void LinearRegression::fit(const std::vector<std::vector<double>>& x,
                           const std::vector<double>& y) {
  MF_CHECK(!x.empty() && x.size() == y.size());
  scaler_.fit(x);
  const std::vector<std::vector<double>> xs = scaler_.transform(x);
  const std::size_t dim = xs.front().size();
  const std::size_t n = dim + 1;  // + intercept

  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  std::vector<double> row(n, 1.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    for (std::size_t j = 0; j < dim; ++j) row[j] = xs[s][j];
    row[dim] = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) xtx[i * n + j] += row[i] * row[j];
      xty[i] += row[i] * y[s];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx[i * n + j] = xtx[j * n + i];
    xtx[i * n + i] += ridge_;
  }
  weights_ = solve_spd(std::move(xtx), std::move(xty), n);
}

void LinearRegression::save(ModelWriter& out) const {
  out.f64(ridge_);
  out.endl();
  scaler_.save(out);
  out.vec(weights_);
  out.endl();
}

void LinearRegression::load(ModelReader& in) {
  ridge_ = in.f64();
  scaler_.load(in);
  weights_ = in.vec();
  if (in.ok() && weights_.size() != scaler_.mean().size() + 1) in.fail();
}

double LinearRegression::predict(const std::vector<double>& row) const {
  MF_CHECK(!weights_.empty());
  const std::vector<double> xs = scaler_.transform(row);
  MF_CHECK(xs.size() + 1 == weights_.size());
  double v = weights_.back();
  for (std::size_t j = 0; j < xs.size(); ++j) v += weights_[j] * xs[j];
  return v;
}

std::vector<double> LinearRegression::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace mf
