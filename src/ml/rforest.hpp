#pragma once
// Random forest regressor: bagging over CART trees with per-split feature
// subsampling. Defaults follow the paper: 1,000 trees of depth 20, MSE
// objective, impurity feature importance averaged over trees.

#include <vector>

#include "common/thread_pool.hpp"
#include "ml/dtree.hpp"

namespace mf {

struct RForestOptions {
  int trees = 1000;
  int max_depth = 20;
  int min_samples_leaf = 2;
  /// Per-split feature subset size; 0 = max(1, dim / 3) (regression default).
  int mtry = 0;
  std::uint64_t seed = 7;
  /// Worker threads for tree training (1 = sequential, 0 = hardware
  /// concurrency). Every tree draws from its own Rng seeded by
  /// task_seed(seed, "tree:<index>"), so the fitted forest is bit-identical
  /// at any jobs value.
  int jobs = MF_JOBS_DEFAULT;
  /// Cooperative cancellation, polled once per tree. A partially trained
  /// forest is not a resumable artifact (unlike the flow's per-block cache),
  /// so fit() throws CancelledError and leaves the forest untrained.
  const CancelToken* cancel = nullptr;
};

class RandomForest {
 public:
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const RForestOptions& opts = {});

  [[nodiscard]] double predict(const std::vector<double>& row) const;
  [[nodiscard]] std::vector<double> predict(
      const std::vector<std::vector<double>>& x) const;

  /// Mean of per-tree normalised importances, re-normalised to sum 1.
  [[nodiscard]] const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }

  /// Bit-exact persistence (ml/model_io.hpp).
  void save(ModelWriter& out) const;
  void load(ModelReader& in);

 private:
  std::vector<DecisionTree> trees_;
  std::vector<double> importance_;
};

}  // namespace mf
