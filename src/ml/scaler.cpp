#include "ml/scaler.hpp"

#include <cmath>

#include "common/check.hpp"
#include "ml/model_io.hpp"

namespace mf {

void StandardScaler::fit(const std::vector<std::vector<double>>& x) {
  MF_CHECK(!x.empty());
  const std::size_t dim = x.front().size();
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  for (const auto& row : x) {
    MF_CHECK(row.size() == dim);
    for (std::size_t j = 0; j < dim; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(x.size());
  for (const auto& row : x) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean_[j];
      stddev_[j] += d * d;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(x.size()));
    if (s < 1e-12) s = 1.0;  // constant feature: pass through centred
  }
}

void StandardScaler::save(ModelWriter& out) const {
  out.vec(mean_);
  out.vec(stddev_);
  out.endl();
}

void StandardScaler::load(ModelReader& in) {
  mean_ = in.vec();
  stddev_ = in.vec();
  if (mean_.size() != stddev_.size()) in.fail();
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& row) const {
  MF_CHECK(row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& x) const {
  std::vector<std::vector<double>> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(transform(row));
  return out;
}

}  // namespace mf
