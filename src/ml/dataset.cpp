#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/check.hpp"

namespace mf {

void Dataset::add(std::vector<double> features, double target,
                  std::string label) {
  MF_CHECK(features.size() == dim());
  x.push_back(std::move(features));
  y.push_back(target);
  labels.push_back(std::move(label));
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.feature_names = feature_names;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    MF_CHECK(i < size());
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
    out.labels.push_back(labels[i]);
  }
  return out;
}

Dataset balance_by_target(const Dataset& data, double bin_width, int cap,
                          Rng& rng) {
  MF_CHECK(bin_width > 0.0 && cap > 0);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::map<long, int> per_bin;
  std::vector<std::size_t> keep;
  keep.reserve(data.size());
  for (std::size_t i : order) {
    const long bin = std::lround(data.y[i] / bin_width);
    if (per_bin[bin] >= cap) continue;
    ++per_bin[bin];
    keep.push_back(i);
  }
  std::sort(keep.begin(), keep.end());
  return data.subset(keep);
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double train_fraction, Rng& rng) {
  MF_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const std::size_t cut = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(data.size())));
  const std::vector<std::size_t> train_idx(order.begin(),
                                           order.begin() + static_cast<long>(cut));
  const std::vector<std::size_t> test_idx(order.begin() + static_cast<long>(cut),
                                          order.end());
  return {data.subset(train_idx), data.subset(test_idx)};
}

}  // namespace mf
