#pragma once
// Token-stream serialisation for trained models (ml/*, core/estimator).
//
// Every fitted parameter is a double, and the serving contract (DESIGN.md
// section 8) is that a loaded model reproduces the in-memory model's
// predictions *bitwise*. Decimal round-tripping is precision-fragile across
// locales and libc implementations, so doubles are written as the hex of
// their IEEE-754 bit pattern (a `x<16 hex digits>` token) -- exact by
// construction, CRLF-proof, and cheap to parse. Integers and identifier-like
// strings are plain whitespace-separated tokens.
//
// ModelReader never throws on malformed input: the first bad token latches
// a fail flag and every subsequent read returns a zero value, so bundle
// loaders can parse optimistically and reject once at the end (the same
// "fail loudly, never half-load" stance as flow/serialize).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mf {

class ModelWriter {
 public:
  explicit ModelWriter(std::ostream& out) : out_(out) {}

  void f64(double value);
  void i64(std::int64_t value);
  void u64(std::uint64_t value);
  /// Identifier-like token: must be non-empty and whitespace-free.
  void str(const std::string& token);
  /// Length-prefixed vector of doubles.
  void vec(const std::vector<double>& values);
  /// End the current line (purely cosmetic: keeps bundles diffable).
  void endl();

 private:
  std::ostream& out_;
  bool line_open_ = false;
};

class ModelReader {
 public:
  explicit ModelReader(std::istream& in) : in_(in) {}

  [[nodiscard]] double f64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> vec();
  /// i64 constrained to [lo, hi]; out-of-range latches the fail flag.
  [[nodiscard]] std::int64_t i64_in(std::int64_t lo, std::int64_t hi);

  /// False once any token failed to parse; sticky.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  void fail() noexcept { ok_ = false; }

 private:
  bool next_token(std::string& token);

  std::istream& in_;
  bool ok_ = true;
};

}  // namespace mf
