#include "ml/model_io.hpp"

#include <charconv>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/check.hpp"

namespace mf {
namespace {

constexpr std::size_t kMaxVec = 1u << 28;  // 256M doubles: corruption guard

}  // namespace

void ModelWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  char buf[18];
  buf[0] = 'x';
  for (int i = 0; i < 16; ++i) {
    buf[1 + i] = "0123456789abcdef"[(bits >> (60 - 4 * i)) & 0xF];
  }
  buf[17] = '\0';
  if (line_open_) out_ << ' ';
  out_ << buf;
  line_open_ = true;
}

void ModelWriter::i64(std::int64_t value) {
  if (line_open_) out_ << ' ';
  out_ << value;
  line_open_ = true;
}

void ModelWriter::u64(std::uint64_t value) {
  if (line_open_) out_ << ' ';
  out_ << value;
  line_open_ = true;
}

void ModelWriter::str(const std::string& token) {
  MF_CHECK_MSG(!token.empty() &&
                   token.find_first_of(" \t\r\n") == std::string::npos,
               "serialised string tokens must be whitespace-free");
  if (line_open_) out_ << ' ';
  out_ << token;
  line_open_ = true;
}

void ModelWriter::vec(const std::vector<double>& values) {
  u64(values.size());
  for (double v : values) f64(v);
}

void ModelWriter::endl() {
  out_ << '\n';
  line_open_ = false;
}

bool ModelReader::next_token(std::string& token) {
  if (!ok_) return false;
  if (!(in_ >> token)) {
    ok_ = false;
    return false;
  }
  // std::getline-free input skips '\r' as whitespace already, but a token
  // at end of a CRLF line picks the '\r' up via some stream buffers; strip.
  while (!token.empty() && token.back() == '\r') token.pop_back();
  if (token.empty()) {
    ok_ = false;
    return false;
  }
  return true;
}

double ModelReader::f64() {
  std::string token;
  if (!next_token(token)) return 0.0;
  if (token.size() != 17 || token[0] != 'x') {
    ok_ = false;
    return 0.0;
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    const char c = token[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      ok_ = false;
      return 0.0;
    }
    bits = (bits << 4) | digit;
  }
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::int64_t ModelReader::i64() {
  std::string token;
  if (!next_token(token)) return 0;
  std::int64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    ok_ = false;
    return 0;
  }
  return value;
}

std::uint64_t ModelReader::u64() {
  std::string token;
  if (!next_token(token)) return 0;
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    ok_ = false;
    return 0;
  }
  return value;
}

std::string ModelReader::str() {
  std::string token;
  if (!next_token(token)) return {};
  return token;
}

std::vector<double> ModelReader::vec() {
  const std::uint64_t n = u64();
  if (!ok_ || n > kMaxVec) {
    ok_ = false;
    return {};
  }
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && ok_; ++i) values.push_back(f64());
  if (!ok_) return {};
  return values;
}

std::int64_t ModelReader::i64_in(std::int64_t lo, std::int64_t hi) {
  const std::int64_t value = i64();
  if (!ok_) return lo;
  if (value < lo || value > hi) {
    ok_ = false;
    return lo;
  }
  return value;
}

}  // namespace mf
