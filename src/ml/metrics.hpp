#pragma once
// Regression metrics used in the paper's evaluation: mean relative error
// (Table II), median absolute relative error (Section VIII), MSE (training
// objective).

#include <vector>

namespace mf {

// Contract (uniform across all metrics): `pred` and `truth` must be the
// same non-zero length or CheckError is thrown; the relative metrics also
// require every truth value to be strictly positive (CFs are). An
// even-sized median averages the two middle order statistics.

/// mean(|pred - truth| / truth); truth must be positive (CFs are).
double mean_relative_error(const std::vector<double>& pred,
                           const std::vector<double>& truth);

/// median(|pred - truth| / truth).
double median_relative_error(const std::vector<double>& pred,
                             const std::vector<double>& truth);

double mean_squared_error(const std::vector<double>& pred,
                          const std::vector<double>& truth);

}  // namespace mf
