#pragma once
// Regression metrics used in the paper's evaluation: mean relative error
// (Table II), median absolute relative error (Section VIII), MSE (training
// objective).

#include <vector>

namespace mf {

/// mean(|pred - truth| / truth); truth must be positive (CFs are).
double mean_relative_error(const std::vector<double>& pred,
                           const std::vector<double>& truth);

/// median(|pred - truth| / truth).
double median_relative_error(const std::vector<double>& pred,
                             const std::vector<double>& truth);

double mean_squared_error(const std::vector<double>& pred,
                          const std::vector<double>& truth);

}  // namespace mf
