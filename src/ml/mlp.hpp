#pragma once
// Shallow feed-forward regressor matching Section VI-B: one fully connected
// hidden layer (25 neurons, ReLU), trained with Adam on the MSE between
// predicted and actual minimal CF. Inputs are standardised internally;
// dropout was evaluated by the paper and dropped, so it is not implemented.

#include <cstdint>
#include <vector>

#include "ml/scaler.hpp"

namespace mf {

struct MlpOptions {
  int hidden = 25;
  int epochs = 400;
  int batch_size = 32;
  double learning_rate = 1e-3;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_eps = 1e-8;
  std::uint64_t seed = 11;
};

class Mlp {
 public:
  /// Trains and records the per-epoch training MSE (retrievable afterwards).
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const MlpOptions& opts = {});

  [[nodiscard]] double predict(const std::vector<double>& row) const;
  [[nodiscard]] std::vector<double> predict(
      const std::vector<std::vector<double>>& x) const;

  [[nodiscard]] const std::vector<double>& training_loss() const noexcept {
    return loss_history_;
  }

  /// Bit-exact persistence of the fitted network (ml/model_io.hpp). The
  /// training-loss history is a fit-time diagnostic and is not persisted.
  void save(ModelWriter& out) const;
  void load(ModelReader& in);

  [[nodiscard]] int in_dim() const noexcept { return in_dim_; }

 private:
  [[nodiscard]] double forward(const std::vector<double>& scaled,
                               std::vector<double>* hidden_out) const;

  int in_dim_ = 0;
  int hidden_ = 0;
  StandardScaler scaler_;
  std::vector<double> w1_;  ///< [hidden x in]
  std::vector<double> b1_;  ///< [hidden]
  std::vector<double> w2_;  ///< [hidden]
  double b2_ = 0.0;
  std::vector<double> loss_history_;
};

}  // namespace mf
