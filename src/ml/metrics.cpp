#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mf {
namespace {

std::vector<double> relative_errors(const std::vector<double>& pred,
                                    const std::vector<double>& truth) {
  MF_CHECK(pred.size() == truth.size() && !pred.empty());
  std::vector<double> err(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    MF_CHECK(truth[i] > 0.0);
    err[i] = std::abs(pred[i] - truth[i]) / truth[i];
  }
  return err;
}

}  // namespace

double mean_relative_error(const std::vector<double>& pred,
                           const std::vector<double>& truth) {
  const std::vector<double> err = relative_errors(pred, truth);
  double sum = 0.0;
  for (double e : err) sum += e;
  return sum / static_cast<double>(err.size());
}

double median_relative_error(const std::vector<double>& pred,
                             const std::vector<double>& truth) {
  std::vector<double> err = relative_errors(pred, truth);
  const std::size_t mid = err.size() / 2;
  std::nth_element(err.begin(), err.begin() + static_cast<long>(mid),
                   err.end());
  if (err.size() % 2 == 1) return err[mid];
  const double hi = err[mid];
  std::nth_element(err.begin(), err.begin() + static_cast<long>(mid) - 1,
                   err.end());
  return 0.5 * (hi + err[mid - 1]);
}

double mean_squared_error(const std::vector<double>& pred,
                          const std::vector<double>& truth) {
  MF_CHECK(pred.size() == truth.size() && !pred.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pred.size());
}

}  // namespace mf
