#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mf {
namespace {

// Uniform contract for every metric (audited after the even-median /
// empty-input edge cases were only guarded in some paths): prediction and
// truth vectors must be the same non-zero length, and relative metrics
// additionally require strictly positive truth values. Violations throw
// CheckError with a message naming the metric -- no divide-by-zero path is
// reachable past these guards.
void check_paired(const char* metric, const std::vector<double>& pred,
                  const std::vector<double>& truth) {
  MF_CHECK_MSG(pred.size() == truth.size(),
               std::string(metric) + ": pred/truth size mismatch");
  MF_CHECK_MSG(!pred.empty(),
               std::string(metric) + ": empty input (metric undefined)");
}

std::vector<double> relative_errors(const char* metric,
                                    const std::vector<double>& pred,
                                    const std::vector<double>& truth) {
  check_paired(metric, pred, truth);
  std::vector<double> err(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    MF_CHECK_MSG(truth[i] > 0.0,
                 std::string(metric) + ": truth values must be positive");
    err[i] = std::abs(pred[i] - truth[i]) / truth[i];
  }
  return err;
}

}  // namespace

double mean_relative_error(const std::vector<double>& pred,
                           const std::vector<double>& truth) {
  const std::vector<double> err =
      relative_errors("mean_relative_error", pred, truth);
  double sum = 0.0;
  for (double e : err) sum += e;
  return sum / static_cast<double>(err.size());
}

double median_relative_error(const std::vector<double>& pred,
                             const std::vector<double>& truth) {
  std::vector<double> err =
      relative_errors("median_relative_error", pred, truth);
  // Even-sized inputs average the two middle order statistics (size 2 ->
  // mean of both; size 1 -> the single element).
  const std::size_t mid = err.size() / 2;
  std::nth_element(err.begin(), err.begin() + static_cast<long>(mid),
                   err.end());
  if (err.size() % 2 == 1) return err[mid];
  const double hi = err[mid];
  std::nth_element(err.begin(), err.begin() + static_cast<long>(mid) - 1,
                   err.end());
  return 0.5 * (hi + err[mid - 1]);
}

double mean_squared_error(const std::vector<double>& pred,
                          const std::vector<double>& truth) {
  check_paired("mean_squared_error", pred, truth);
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pred.size());
}

}  // namespace mf
