#include "common/atomic_file.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mf {
namespace {

namespace fs = std::filesystem;

std::atomic<long> g_crash_after_bytes{-1};

/// Monotonic counter so concurrent writers (and crash-test retries that
/// leave temp files behind) never collide on a temp name.
std::atomic<unsigned long> g_temp_counter{0};

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
    if (errno != 0) {
      *error += ": ";
      *error += std::strerror(errno);
    }
  }
  return false;
}

#if !defined(_WIN32)
/// Durability barrier on the parent directory: makes the rename itself
/// survive a power cut. Best effort -- some filesystems reject O_RDONLY
/// directory fsync, and the old-or-new guarantee does not depend on it.
void sync_directory(const fs::path& dir) {
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}
#endif

}  // namespace

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return std::nullopt;
  std::string content;
  char buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof buf, in);
    content.append(buf, got);
    if (got < sizeof buf) break;
  }
  const bool ok = std::ferror(in) == 0;
  std::fclose(in);
  if (!ok) return std::nullopt;
  return content;
}

void set_atomic_write_crash_after(long bytes) noexcept {
  g_crash_after_bytes.store(bytes, std::memory_order_relaxed);
}

bool atomic_write_file(const std::string& path, const std::string& content,
                       std::string* error, const AtomicWriteOptions& options) {
  const fs::path target(path);
  const unsigned long serial =
      g_temp_counter.fetch_add(1, std::memory_order_relaxed);
  const fs::path temp =
      target.parent_path() /
      (target.filename().string() + ".tmp." + std::to_string(serial));

  const long crash_after = g_crash_after_bytes.load(std::memory_order_relaxed);
  const std::size_t to_write =
      crash_after >= 0 && static_cast<std::size_t>(crash_after) < content.size()
          ? static_cast<std::size_t>(crash_after)
          : content.size();

  errno = 0;
  std::FILE* out = std::fopen(temp.string().c_str(), "wb");
  if (out == nullptr) {
    return fail(error, "cannot create temp file " + temp.string());
  }
  const std::size_t written =
      to_write == 0 ? 0 : std::fwrite(content.data(), 1, to_write, out);
  const bool short_write = written != to_write;
  const bool flush_failed = std::fflush(out) != 0;

  if (crash_after >= 0) {
    // Simulated process death mid-write: the temp file stays on disk (as it
    // would after a real crash), the target is never touched.
    std::fclose(out);
    return fail(error, "simulated crash after " +
                           std::to_string(to_write) + " bytes");
  }
  if (short_write || flush_failed) {
    std::fclose(out);
    std::error_code ec;
    fs::remove(temp, ec);
    return fail(error, "short write to " + temp.string());
  }
#if !defined(_WIN32)
  if (options.sync && ::fsync(::fileno(out)) != 0) {
    std::fclose(out);
    std::error_code ec;
    fs::remove(temp, ec);
    return fail(error, "fsync failed for " + temp.string());
  }
#endif
  if (std::fclose(out) != 0) {
    std::error_code ec;
    fs::remove(temp, ec);
    return fail(error, "close failed for " + temp.string());
  }

  // The atomic commit point: readers see the complete old or the complete
  // new file, never a prefix.
  std::error_code ec;
  fs::rename(temp, target, ec);
  if (ec) {
    errno = 0;
    std::error_code rm;
    fs::remove(temp, rm);
    return fail(error, "rename " + temp.string() + " -> " + path + " failed: " +
                           ec.message());
  }
#if !defined(_WIN32)
  if (options.sync) sync_directory(target.parent_path());
#endif
  return true;
}

}  // namespace mf
