#pragma once
// EINTR-safe file-descriptor I/O (DESIGN.md section 13).
//
// The serving daemon (src/srv) and the farm heartbeat pipes move bytes over
// raw POSIX descriptors, where three classic traps live:
//
//   * short reads/writes -- read()/write() may transfer fewer bytes than
//     asked, so every caller needs a loop;
//   * EINTR -- a signal delivered mid-call (SIGCHLD from the farm reaper,
//     the profiling timer) aborts the syscall; the loop must retry, not
//     fail. Note that the daemon's SIGINT handler is installed via
//     std::signal (SA_RESTART on glibc), so blocking calls are *restarted*
//     and never see the signal -- which is why the server always waits in
//     poll() (never restarted, see signal(7)) and re-checks its CancelToken
//     before touching a descriptor;
//   * SIGPIPE -- writing to a socket whose peer vanished kills the whole
//     process by default. A daemon must ignore it once, process-wide, and
//     turn the write error (EPIPE) into a closed connection instead.
//
// These wrappers centralise all three so callers stay single-line.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace mf {

/// Write all of `data` to `fd`, retrying short writes and EINTR. Returns
/// false on any other error (EPIPE after the peer hung up, ENOSPC, a closed
/// descriptor); errno is left describing the failure.
bool write_all(int fd, std::string_view data) noexcept;

/// Read up to `max_bytes` from `fd` into `out` (appended), retrying EINTR.
/// Returns the byte count on success (0 = end of stream) and nullopt on
/// error. A single successful read() is reported as-is -- this is a chunk
/// read for request loops, not a read-until-EOF.
std::optional<std::size_t> read_some(int fd, std::string& out,
                                     std::size_t max_bytes = 65536);

/// Read from `fd` until end-of-stream, retrying EINTR; nullopt on error.
std::optional<std::string> read_all(int fd);

/// Ignore SIGPIPE process-wide so peer-gone writes fail with EPIPE instead
/// of killing the daemon. Idempotent (repeat calls are no-ops) and
/// conservative: a SIGPIPE handler installed by the embedding application
/// is left alone. Returns true when SIGPIPE is now ignored or handled.
bool ignore_sigpipe() noexcept;

/// Wait until `fd` is readable or `timeout_ms` elapses. Returns true when
/// readable (or the descriptor errored/hung up -- the following read will
/// report it), false on timeout. Uses poll(), which -- unlike read() under
/// an SA_RESTART handler -- always returns on signal delivery, making this
/// the daemon's only blocking primitive (cancel tokens get polled between
/// waits).
bool wait_readable(int fd, int timeout_ms) noexcept;

/// Convert a seconds budget to a wait_readable()/poll() timeout, rounding
/// *up* to the next millisecond: a positive sub-millisecond budget must wait
/// 1ms, because truncating to 0 turns the deadline loop into a busy poll.
/// Non-positive (and NaN) budgets return 0; huge budgets clamp to INT_MAX.
int timeout_ms_from_seconds(double seconds) noexcept;

}  // namespace mf
