#pragma once
// ASCII table and histogram rendering used by the bench harnesses to print
// the paper's tables and figures in a terminal-friendly form.

#include <cstddef>
#include <string>
#include <vector>

namespace mf {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendered with a header rule, matching the look of
/// the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(int value);
  Table& cell(std::size_t value);

  /// Render the table; every column is padded to its widest cell.
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal ASCII bar chart: one labelled bar per entry, scaled so
/// the longest bar is `width` characters. Used for the figure benches
/// (CF histograms, feature importances).
std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      int width = 50);

/// Bucket `values` into bins of `bin_width` starting at `lo` and render a
/// histogram (one bar per non-empty bin).
std::string histogram(const std::vector<double>& values, double lo, double hi,
                      double bin_width, int width = 50);

/// Format a double with fixed precision (no trailing-zero trimming).
std::string fmt(double value, int precision = 3);

}  // namespace mf
