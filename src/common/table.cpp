#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace mf {

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MF_CHECK(!header_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  MF_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  MF_CHECK_MSG(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(fmt(value, precision));
}

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& value = c < cells.size() ? cells[c] : std::string();
      out << ' ' << value;
      out << std::string(width[c] - value.size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      int width) {
  double peak = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    peak = std::max(peak, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, value] : bars) {
    const int len =
        peak > 0.0 ? static_cast<int>(std::lround(value / peak * width)) : 0;
    out << label << std::string(label_width - label.size(), ' ') << " |"
        << std::string(static_cast<std::size_t>(len), '#') << ' '
        << fmt(value, 3) << '\n';
  }
  return out.str();
}

std::string histogram(const std::vector<double>& values, double lo, double hi,
                      double bin_width, int width) {
  MF_CHECK(bin_width > 0.0 && hi > lo);
  const int bins = static_cast<int>(std::ceil((hi - lo) / bin_width));
  std::vector<int> count(static_cast<std::size_t>(bins), 0);
  for (double v : values) {
    int b = static_cast<int>(std::floor((v - lo) / bin_width));
    b = std::clamp(b, 0, bins - 1);
    ++count[static_cast<std::size_t>(b)];
  }
  std::vector<std::pair<std::string, double>> bars;
  for (int b = 0; b < bins; ++b) {
    if (count[static_cast<std::size_t>(b)] == 0) continue;
    bars.emplace_back(fmt(lo + b * bin_width, 2),
                      static_cast<double>(count[static_cast<std::size_t>(b)]));
  }
  return bar_chart(bars, width);
}

}  // namespace mf
