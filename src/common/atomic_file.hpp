#pragma once
// Crash-safe file persistence (DESIGN.md section 9).
//
// Every persisted artifact in the library -- flow checkpoints, ground-truth
// footers, model bundles -- is load-bearing state: a torn file poisons the
// next resume. A bare `std::ofstream out(path)` truncates the old version
// the moment it opens, so a crash (or ENOSPC) mid-write destroys the only
// good copy. atomic_write_file() instead follows the classic protocol:
//
//   1. write the new content to a unique temp file *in the same directory*
//      (rename is only atomic within one filesystem);
//   2. flush and check the stream state -- a short write (full disk, I/O
//      error) is reported, never silently swallowed;
//   3. fsync the temp file so the bytes are durable before they become
//      visible under the real name;
//   4. rename(temp, path) -- POSIX guarantees readers see either the old
//      or the new complete file, never a mix;
//   5. fsync the directory so the rename itself survives a power cut.
//
// A crash at any point before step 4 leaves the target file untouched (a
// stray *.tmp.* file may remain; writers overwrite-by-rename, readers never
// match temp names). The crash-injection hook simulates exactly that: abort
// after N payload bytes, leaving the temp file behind and the target alone.
// tests/test_robustness.cpp walks N over every byte boundary and asserts
// the old-or-new invariant for all three persisted formats.

#include <optional>
#include <string>

namespace mf {

/// Slurp a file into a string (binary, no newline translation); nullopt when
/// the file is missing or unreadable. The read-side companion of
/// atomic_write_file -- every loader in the library reads whole files and
/// parses from memory, so torn reads of a concurrently renamed file are
/// impossible (the open() either sees the old inode or the new one).
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

struct AtomicWriteOptions {
  /// fsync file + directory (step 3/5). Tests may disable for speed; the
  /// rename-based old-or-new guarantee holds either way against process
  /// crashes (fsync only adds power-loss durability).
  bool sync = true;
};

/// Write `content` to `path` via the temp-file + rename protocol above.
/// Returns false (with `*error` filled when non-null) on any failure --
/// unwritable directory, short write, failed flush/rename; the previous
/// file content is preserved in every failure case.
bool atomic_write_file(const std::string& path, const std::string& content,
                       std::string* error = nullptr,
                       const AtomicWriteOptions& options = {});

/// Crash-injection hook for the robustness suite: the next calls to
/// atomic_write_file abort (simulated process death) after writing `bytes`
/// payload bytes into the temp file -- the temp file is left behind, the
/// rename never happens, and the call returns false. -1 disables. Global
/// and sticky (applies to every subsequent call until reset) so tests can
/// reach the writes buried inside save_bundle / save_module_cache /
/// save_ground_truth / ModelRegistry::put without widening their APIs.
void set_atomic_write_crash_after(long bytes) noexcept;

/// RAII guard for the hook above.
class ScopedWriteCrash {
 public:
  explicit ScopedWriteCrash(long bytes) noexcept {
    set_atomic_write_crash_after(bytes);
  }
  ~ScopedWriteCrash() { set_atomic_write_crash_after(-1); }
  ScopedWriteCrash(const ScopedWriteCrash&) = delete;
  ScopedWriteCrash& operator=(const ScopedWriteCrash&) = delete;
};

}  // namespace mf
