#pragma once
// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component (placers, annealers, ML initialisation, dataset
// sweeps) draws from an mf::Rng that is explicitly seeded by the caller, so
// all benches and tests are reproducible bit-for-bit across runs.
//
// The generator is xoshiro256++ seeded through splitmix64, which is fast,
// has a 2^256-1 period, and passes BigCrush -- more than adequate for
// simulation workloads, and far cheaper than std::mt19937_64.

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

namespace mf {

/// FNV-1a over a byte string. Used wherever a stable, seed-independent
/// digest of text is needed (fault-injection stream selection, checkpoint
/// entry checksums) -- not a cryptographic hash.
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// splitmix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for one task of a parallel region: splitmix64(base ^ fnv1a64(key)).
/// A pure function of the base seed and the task's stable key (block name,
/// "tree:17", spec name, ...), so every task gets an independent stream that
/// does not depend on sibling scheduling -- the keystone of the guarantee
/// that parallel regions are bit-identical at any thread count.
constexpr std::uint64_t task_seed(std::uint64_t base_seed,
                                  std::string_view task_key) noexcept {
  std::uint64_t state = base_seed ^ fnv1a64(task_key);
  return splitmix64(state);
}

/// Deterministic counter-free PRNG (xoshiro256++).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d61637266ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  std::uint64_t u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(range));
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept { return bounded(n); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    shuffle(std::span<T>(values));
  }

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  T& pick(std::span<T> values) noexcept {
    return values[index(values.size())];
  }

  /// Derive an independent child stream. Used so that, e.g., every generated
  /// module in a sweep gets its own reproducible stream regardless of how
  /// much randomness its siblings consumed.
  Rng fork(std::uint64_t stream) noexcept {
    std::uint64_t mix = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded draw (Lemire's method with rejection).
  std::uint64_t bounded(std::uint64_t range) noexcept {
    if (range <= 1) return 0;
    // Rejection sampling on the top bits keeps the draw unbiased.
    const std::uint64_t threshold = (0 - range) % range;
    for (;;) {
      const std::uint64_t r = u64();
      if (r >= threshold) return r % range;
    }
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mf
