#pragma once
// Lightweight precondition / invariant checking.
//
// MF_CHECK is always on (these guard logic errors in a simulator whose whole
// point is trustworthy numbers); failures throw mf::CheckError so tests can
// assert on violations instead of aborting the process.

#include <stdexcept>
#include <string>

namespace mf {

/// Thrown when an MF_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string what = std::string("check failed: ") + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) what += " -- " + msg;
  throw CheckError(what);
}

}  // namespace mf

#define MF_CHECK(cond)                                             \
  do {                                                             \
    if (!(cond)) ::mf::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define MF_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) ::mf::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
