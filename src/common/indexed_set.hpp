#pragma once
// Order-statistics set over a fixed id universe [0, n).
//
// The SA stitcher picks "a uniformly random placed block" (and, for unpark
// moves, a uniformly random *parked* block) millions of times per anneal.
// The historical code rebuilt an ascending vector of candidate ids and
// indexed into it -- O(n) per move. This set keeps the same selection
// semantics (the k-th smallest member id) at O(log n) per insert / erase /
// k-th query via a Fenwick tree of membership bits, so swapping it in
// changes nothing about which id a given random k maps to.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace mf {

class IndexedIdSet {
 public:
  IndexedIdSet() = default;

  explicit IndexedIdSet(std::size_t universe)
      : present_(universe, 0), tree_(universe + 1, 0) {
    top_bit_ = 1;
    while (static_cast<std::size_t>(top_bit_) * 2 <= universe) top_bit_ *= 2;
  }

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(int id) const {
    return present_[static_cast<std::size_t>(id)] != 0;
  }

  /// No-op when already present.
  void insert(int id) {
    auto& bit = present_[static_cast<std::size_t>(id)];
    if (bit != 0) return;
    bit = 1;
    ++size_;
    update(id + 1, +1);
  }

  /// No-op when absent.
  void erase(int id) {
    auto& bit = present_[static_cast<std::size_t>(id)];
    if (bit == 0) return;
    bit = 0;
    --size_;
    update(id + 1, -1);
  }

  void clear() {
    std::fill(present_.begin(), present_.end(), std::uint8_t{0});
    std::fill(tree_.begin(), tree_.end(), 0);
    size_ = 0;
  }

  /// k-th smallest member id, 0-based. Requires 0 <= k < size().
  [[nodiscard]] int kth(int k) const {
    MF_CHECK(k >= 0 && k < size_);
    int idx = 0;       // largest tree index with prefix-sum < k + 1
    int remain = k + 1;
    const int n = static_cast<int>(tree_.size()) - 1;
    for (int bit = top_bit_; bit > 0; bit >>= 1) {
      const int next = idx + bit;
      if (next <= n && tree_[static_cast<std::size_t>(next)] < remain) {
        idx = next;
        remain -= tree_[static_cast<std::size_t>(idx)];
      }
    }
    return idx;  // tree position idx+1 holds the k-th member: id == idx
  }

 private:
  void update(int pos, int delta) {
    const int n = static_cast<int>(tree_.size()) - 1;
    for (; pos <= n; pos += pos & -pos) {
      tree_[static_cast<std::size_t>(pos)] += delta;
    }
  }

  std::vector<std::uint8_t> present_;
  std::vector<int> tree_;  ///< Fenwick tree over membership bits, 1-based
  int top_bit_ = 0;
  int size_ = 0;
};

}  // namespace mf
