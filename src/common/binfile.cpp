#include "common/binfile.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

namespace mf {
namespace {

constexpr char kMagic[6] = {'M', 'F', 'B', 'I', 'N', '\n'};
constexpr char kEndMagic[8] = {'M', 'F', 'B', 'E', 'N', 'D', '0', '1'};
constexpr std::size_t kHeaderSize = sizeof kMagic + 2;  // magic + u16 version
constexpr std::size_t kFooterSize = 8 + 8 + 8 + sizeof kEndMagic;
constexpr std::size_t kMaxSectionName = 1u << 16;
/// Table entry floor: name_len (2) + empty name + offset/length/checksum.
constexpr std::size_t kMinTableEntry = 2 + 8 + 8 + 8;

void put_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

std::uint16_t get_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

bool reject(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool is_binfile(std::string_view bytes) noexcept {
  return bytes.size() >= sizeof kMagic &&
         std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0;
}

namespace {

/// One little-endian 64-bit load; a single mov on little-endian hosts, the
/// explicit shuffle elsewhere -- the checksum value never depends on the
/// host's byte order.
std::uint64_t load_le64(const unsigned char* p) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof word);
    return word;
  } else {
    std::uint64_t word = 0;
    for (int i = 7; i >= 0; --i) word = (word << 8) | p[i];
    return word;
  }
}

}  // namespace

std::uint64_t binfile_checksum(std::string_view bytes) noexcept {
  // FNV-1a64 constants over four independent word lanes. A single FNV chain
  // is latency-bound (the next multiply waits on the last), so four lanes
  // of 8-byte words run the multiplies in parallel and are folded together
  // at the end; trailing full words and tail bytes continue the combined
  // state. The lane split is part of the checksum's definition -- the same
  // bytes hash to the same value everywhere, it is just not plain FNV.
  constexpr std::uint64_t kBasis = 14695981039346656037ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t n = bytes.size();
  std::uint64_t lane[4] = {kBasis, kBasis ^ kPrime, ~kBasis, ~kBasis ^ kPrime};
  for (; n >= 32; p += 32, n -= 32) {
    lane[0] = (lane[0] ^ load_le64(p)) * kPrime;
    lane[1] = (lane[1] ^ load_le64(p + 8)) * kPrime;
    lane[2] = (lane[2] ^ load_le64(p + 16)) * kPrime;
    lane[3] = (lane[3] ^ load_le64(p + 24)) * kPrime;
  }
  std::uint64_t hash = lane[0];
  hash = (hash ^ lane[1]) * kPrime;
  hash = (hash ^ lane[2]) * kPrime;
  hash = (hash ^ lane[3]) * kPrime;
  for (; n >= 8; p += 8, n -= 8) {
    hash = (hash ^ load_le64(p)) * kPrime;
  }
  for (; n > 0; ++p, --n) {
    hash = (hash ^ *p) * kPrime;
  }
  return hash;
}

// -- BinWriter ---------------------------------------------------------------

BinWriter::BinWriter() {
  buf_.append(kMagic, sizeof kMagic);
  put_u16(buf_, kBinContainerVersion);
}

void BinWriter::begin_section(std::string_view name) {
  MF_CHECK_MSG(!finished_, "BinWriter reused after finish()");
  MF_CHECK_MSG(!name.empty() && name.size() < kMaxSectionName,
               "section names must be non-empty and < 64 KiB");
  for (const Entry& entry : table_) {
    MF_CHECK_MSG(entry.name != name, "duplicate section name");
  }
  end_section();
  Entry entry;
  entry.name = std::string(name);
  entry.offset = buf_.size();
  table_.push_back(std::move(entry));
  in_section_ = true;
}

void BinWriter::end_section() {
  if (!in_section_) return;
  table_.back().length = buf_.size() - table_.back().offset;
  in_section_ = false;
}

void BinWriter::u8(std::uint8_t value) {
  MF_CHECK_MSG(in_section_, "writes must happen inside a section");
  buf_.push_back(static_cast<char>(value));
}

void BinWriter::u32(std::uint32_t value) {
  MF_CHECK_MSG(in_section_, "writes must happen inside a section");
  put_u32(buf_, value);
}

void BinWriter::u64(std::uint64_t value) {
  MF_CHECK_MSG(in_section_, "writes must happen inside a section");
  put_u64(buf_, value);
}

void BinWriter::i32(std::int32_t value) {
  u32(static_cast<std::uint32_t>(value));
}

void BinWriter::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void BinWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  u64(bits);
}

void BinWriter::str(std::string_view bytes) {
  MF_CHECK_MSG(bytes.size() < (1u << 31), "string too large to serialise");
  u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.append(bytes);
}

void BinWriter::raw(std::string_view bytes) {
  MF_CHECK_MSG(in_section_, "writes must happen inside a section");
  buf_.append(bytes);
}

std::string BinWriter::finish() {
  MF_CHECK_MSG(!finished_, "BinWriter reused after finish()");
  end_section();
  finished_ = true;

  const std::uint64_t table_offset = buf_.size();
  std::string table;
  put_u32(table, static_cast<std::uint32_t>(table_.size()));
  for (const Entry& entry : table_) {
    put_u16(table, static_cast<std::uint16_t>(entry.name.size()));
    table += entry.name;
    put_u64(table, entry.offset);
    put_u64(table, entry.length);
    put_u64(table, binfile_checksum(std::string_view(buf_).substr(
                       static_cast<std::size_t>(entry.offset),
                       static_cast<std::size_t>(entry.length))));
  }
  const std::uint64_t payload_checksum = binfile_checksum(buf_);
  buf_ += table;
  put_u64(buf_, table_offset);
  put_u64(buf_, binfile_checksum(table));
  put_u64(buf_, payload_checksum);
  buf_.append(kEndMagic, sizeof kEndMagic);
  return std::move(buf_);
}

// -- BinFile -----------------------------------------------------------------

std::optional<BinFile> BinFile::open(std::string_view bytes,
                                     std::string* error) {
  const auto fail = [error](const char* message) -> std::optional<BinFile> {
    reject(error, message);
    return std::nullopt;
  };
  if (bytes.size() < kHeaderSize + kFooterSize) {
    return fail("too short to be a binary container (truncated)");
  }
  if (!is_binfile(bytes)) return fail("bad magic: not a binary container");
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint16_t version = get_u16(data + sizeof kMagic);
  if (version != kBinContainerVersion) {
    return fail("unsupported binary container version");
  }
  const std::size_t footer = bytes.size() - kFooterSize;
  if (std::memcmp(bytes.data() + footer + 24, kEndMagic, sizeof kEndMagic) !=
      0) {
    return fail("missing end magic (truncated container)");
  }
  const std::uint64_t table_offset = get_u64(data + footer);
  const std::uint64_t table_checksum = get_u64(data + footer + 8);
  const std::uint64_t payload_checksum = get_u64(data + footer + 16);
  // Bounds before trust: every later index is derived from table_offset.
  if (table_offset < kHeaderSize || table_offset > footer) {
    return fail("section table offset out of bounds (corrupt footer)");
  }
  const std::string_view table =
      bytes.substr(static_cast<std::size_t>(table_offset),
                   footer - static_cast<std::size_t>(table_offset));
  if (binfile_checksum(table) != table_checksum) {
    return fail("section table checksum mismatch (corrupt container)");
  }
  // One hash pass over the payload, not two: the whole-payload checksum
  // already covers every section byte (sections are subranges of
  // [0, table_offset)), so the per-section checksums add no integrity --
  // they exist to *name* the damaged section. They are therefore only
  // walked on mismatch, below; re-verifying them here would double the
  // dominant cost of opening a large container.
  const bool payload_ok =
      binfile_checksum(
          bytes.substr(0, static_cast<std::size_t>(table_offset))) ==
      payload_checksum;

  // The table checksum already matched, but the counts inside it are still
  // validated against the table's physical size before sizing anything: a
  // checksum collision (or a hand-tampered file with a recomputed checksum)
  // must not drive a wild allocation.
  if (table.size() < 4) return fail("section table truncated");
  const auto* tp = reinterpret_cast<const unsigned char*>(table.data());
  const std::uint32_t count = get_u32(tp);
  if (count > (table.size() - 4) / kMinTableEntry) {
    return fail("section count exceeds table size (corrupt count)");
  }
  BinFile file;
  file.sections_.reserve(count);
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (table.size() - pos < 2) return fail("section table entry truncated");
    const std::uint16_t name_len = get_u16(tp + pos);
    pos += 2;
    if (table.size() - pos < name_len + 24u) {
      return fail("section table entry truncated");
    }
    BinSection section;
    section.name = std::string(table.substr(pos, name_len));
    pos += name_len;
    const std::uint64_t offset = get_u64(tp + pos);
    const std::uint64_t length = get_u64(tp + pos + 8);
    const std::uint64_t checksum = get_u64(tp + pos + 16);
    pos += 24;
    if (offset < kHeaderSize || offset > table_offset ||
        length > table_offset - offset) {
      return fail("section bounds outside the payload area (corrupt table)");
    }
    section.bytes = bytes.substr(static_cast<std::size_t>(offset),
                                 static_cast<std::size_t>(length));
    if (!payload_ok && binfile_checksum(section.bytes) != checksum) {
      return fail("section checksum mismatch (corrupt section)");
    }
    for (const BinSection& seen : file.sections_) {
      if (seen.name == section.name) return fail("duplicate section name");
    }
    file.sections_.push_back(std::move(section));
  }
  if (pos != table.size()) return fail("trailing bytes in section table");
  if (!payload_ok) {
    // Damage outside every section (header bytes, inter-section gap a
    // foreign writer might leave) -- or a checksum field itself tampered.
    return fail("payload checksum mismatch (corrupt container)");
  }
  return file;
}

std::optional<std::string_view> BinFile::section(
    std::string_view name) const noexcept {
  for (const BinSection& section : sections_) {
    if (section.name == name) return section.bytes;
  }
  return std::nullopt;
}

}  // namespace mf
