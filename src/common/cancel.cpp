#include "common/cancel.hpp"

#include <csignal>
#include <cstdlib>

namespace mf {
namespace {

/// Handler state. Plain atomics only: everything the handler touches must
/// be async-signal-safe.
std::atomic<CancelToken*> g_signal_token{nullptr};
std::atomic<int> g_signal_count{0};

void on_signal(int) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    // Second Ctrl-C: the user wants out *now*; skip atexit/destructors.
    std::_Exit(130);
  }
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) token->cancel();
}

}  // namespace

bool install_signal_cancel(CancelToken* token) noexcept {
  g_signal_token.store(token, std::memory_order_relaxed);
  g_signal_count.store(0, std::memory_order_relaxed);
  if (token == nullptr) {
    return std::signal(SIGINT, SIG_DFL) != SIG_ERR &&
           std::signal(SIGTERM, SIG_DFL) != SIG_ERR;
  }
  return std::signal(SIGINT, &on_signal) != SIG_ERR &&
         std::signal(SIGTERM, &on_signal) != SIG_ERR;
}

}  // namespace mf
