#include "common/cancel.hpp"

#include <csignal>
#include <cstdlib>

namespace mf {
namespace {

/// Handler state. Plain atomics only: everything the handler touches must
/// be async-signal-safe.
std::atomic<CancelToken*> g_signal_token{nullptr};
std::atomic<int> g_signal_count{0};

/// Dispositions that were live before our handler went in, restored on
/// detach so nesting callers (a farm supervisor embedding a worker-style
/// run, tests that install around a region) leave the process as they found
/// it. Written only from install_signal_cancel (single-threaded install
/// contract); the handler itself never reads them.
using SignalHandler = void (*)(int);
bool g_installed = false;
SignalHandler g_previous_sigint = SIG_DFL;
SignalHandler g_previous_sigterm = SIG_DFL;

void on_signal(int) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    // Second Ctrl-C: the user wants out *now*; skip atexit/destructors.
    std::_Exit(130);
  }
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) token->cancel();
}

}  // namespace

bool install_signal_cancel(CancelToken* token) noexcept {
  if (token == nullptr) {
    g_signal_token.store(nullptr, std::memory_order_relaxed);
    if (!g_installed) return true;  // nothing of ours to take down
    g_installed = false;
    const bool int_ok =
        std::signal(SIGINT, g_previous_sigint) != SIG_ERR;
    const bool term_ok =
        std::signal(SIGTERM, g_previous_sigterm) != SIG_ERR;
    return int_ok && term_ok;
  }

  g_signal_token.store(token, std::memory_order_relaxed);
  g_signal_count.store(0, std::memory_order_relaxed);
  if (g_installed) return true;  // idempotent: our handler is already live

  const SignalHandler previous_int = std::signal(SIGINT, &on_signal);
  if (previous_int == SIG_ERR) {
    g_signal_token.store(nullptr, std::memory_order_relaxed);
    return false;
  }
  const SignalHandler previous_term = std::signal(SIGTERM, &on_signal);
  if (previous_term == SIG_ERR) {
    std::signal(SIGINT, previous_int);  // undo the half-install
    g_signal_token.store(nullptr, std::memory_order_relaxed);
    return false;
  }
  g_previous_sigint = previous_int;
  g_previous_sigterm = previous_term;
  g_installed = true;
  return true;
}

}  // namespace mf
