#pragma once
// Cooperative cancellation and deadlines (DESIGN.md section 9).
//
// Long-running work -- the per-block implement fan-out, multi-start SA,
// forest training, batched prediction -- polls a shared CancelToken at its
// natural checkpoints instead of being killed mid-write. A token trips for
// one of three reasons:
//
//   * cancel()        -- explicit, e.g. the CLI's SIGINT handler;
//   * a deadline      -- set_deadline_seconds(s) arms a steady_clock budget
//                        (the CLI's --deadline-seconds);
//   * cancel_after(n) -- test hook: trip on the n-th cancelled() poll, so
//                        suites can stop a flow at a deterministic point.
//
// cancelled() is an atomic flag read on the fast path (safe to poll from
// any thread, ThreadSanitizer-clean); the deadline clock is consulted only
// until it trips, after which the sticky flag answers alone. Work that can
// park partial results (the flow's per-block loop) drains in-flight tasks,
// checkpoints, and returns a distinct status; work with no resumable state
// (forest training) throws CancelledError instead.

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace mf {

/// Thrown at cancellation points that cannot return a partial result.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cancelled") {}
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token. Async-signal-safe (a single atomic store), so the
  /// SIGINT handler may call it directly.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm a wall-clock deadline `seconds` from now (<= 0 trips immediately).
  /// The token reports cancelled once the deadline passes.
  void set_deadline_seconds(double seconds) noexcept {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Test hook: trip on the n-th cancelled() poll (n >= 1). Deterministic
  /// with a sequential poller; used to stop flows at exact points.
  void cancel_after(long polls) noexcept {
    polls_left_.store(polls, std::memory_order_relaxed);
  }

  /// True once tripped (sticky). Cheap: one relaxed load on the fast path.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (polls_left_.load(std::memory_order_relaxed) >= 0 &&
        polls_left_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
  /// -1 = hook disarmed; otherwise the number of polls left before tripping.
  mutable std::atomic<long> polls_left_{-1};
};

/// Poll helper for cancellation points that abort by exception.
inline void throw_if_cancelled(const CancelToken* token) {
  if (token != nullptr && token->cancelled()) throw CancelledError();
}

/// Install a SIGINT/SIGTERM handler that trips `token` (pass nullptr to
/// detach). The first signal cancels cooperatively -- running work drains
/// and checkpoints; a second signal hard-exits with status 130. Returns
/// false when handler installation failed.
///
/// Installation is idempotent: re-installing (with the same or a different
/// token) swaps which token the live handler trips and resets the
/// second-signal counter, without stacking handlers or forgetting the
/// dispositions that were in place before the *first* install. Detaching
/// restores exactly those saved dispositions, so a farm supervisor and the
/// workers it spawns (or nested test fixtures) can each bracket their run
/// with install/detach without clobbering each other. Not thread-safe:
/// install/detach from one thread (signal *delivery* stays safe from any).
bool install_signal_cancel(CancelToken* token) noexcept;

}  // namespace mf
