#pragma once
// Wall-clock stopwatch. SA convergence results are reported primarily in
// deterministic move counts; wall time is additional colour only.

#include <chrono>

namespace mf {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mf
