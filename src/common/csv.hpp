#pragma once
// Minimal CSV writer. Benches optionally dump the raw series behind each
// figure so that downstream users can re-plot them with their own tooling.

#include <string>
#include <vector>

namespace mf {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  CsvWriter& row();
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(double value, int precision = 6);
  CsvWriter& cell(int value);

  /// Serialise (header + rows) with RFC-4180 quoting where needed.
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false (and leaves no partial file contents
  /// guarantees) on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mf
