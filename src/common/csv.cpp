#include "common/csv.hpp"

#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/table.hpp"

namespace mf {
namespace {

std::string escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (char ch : value) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  MF_CHECK(!header_.empty());
}

CsvWriter& CsvWriter::row() {
  rows_.emplace_back();
  return *this;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  MF_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value, int precision) {
  return cell(fmt(value, precision));
}

CsvWriter& CsvWriter::cell(int value) { return cell(std::to_string(value)); }

std::string CsvWriter::str() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << escape(cells[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

bool CsvWriter::write(const std::string& path) const {
  // Atomic replace like every other persisted artifact: a bench result file
  // is either the complete old run or the complete new one, never torn.
  return atomic_write_file(path, str());
}

}  // namespace mf
