#pragma once
// Versioned binary container for persisted artifacts (DESIGN.md section 11).
//
// The text formats (flow/serialize, serve/bundle) are the interchange and
// debugging path: diffable, greppable, editor-safe. At scale they are the
// bottleneck -- loading a 100k-row ground-truth set spends its time in
// per-line istringstream parsing, not I/O. This container is the fast path:
// a little-endian, section-table binary file that loaders can bulk-read
// without tokenising, while keeping every robustness property the text
// formats earned (versioned magic, per-section checksums, whole-file
// truncation detection, atomic writes via common/atomic_file).
//
// Layout (all integers little-endian, independent of the host):
//
//   "MFBIN\n" u16 version          <- 8-byte header: magic + container version
//   <section payloads...>          <- raw bytes, back to back
//   section table:                 <- at table_offset
//     u32 count
//     per section: u16 name_len, name bytes,
//                  u64 offset, u64 length, u64 checksum(payload)
//   footer (last 32 bytes):
//     u64 table_offset
//     u64 checksum(table bytes)
//     u64 checksum(bytes [0, table_offset))  <- whole-file payload checksum
//     "MFBEND01"                   <- 8-byte end magic
//
// checksum() is binfile_checksum below -- a word-wise FNV-1a64 fold, not the
// byte-wise fnv1a64 the text formats use (see its comment for why).
//
// open() verifies everything up front -- magic, version, end magic, all
// three checksum tiers, and that every offset/length/count is in bounds
// *before* any allocation sized by it (a tampered count must be rejected as
// corruption, never wrap or drive a giant reserve). A damaged file is
// rejected wholesale with a diagnostic naming what failed; there is no
// partial load at this layer.
//
// BinWriter produces the byte string; callers persist it through
// atomic_write_file, which supplies the temp+fsync+rename crash safety and
// the crash-injection hook the every-byte robustness suites drive.

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mf {

/// Container format version (the u16 after the magic). Readers reject
/// anything newer: a file written by a future build is not half-understood.
inline constexpr std::uint16_t kBinContainerVersion = 1;

/// True when `bytes` starts with the container magic -- the format
/// auto-detection hook every loader uses to route text vs binary.
[[nodiscard]] bool is_binfile(std::string_view bytes) noexcept;

/// The container's checksum function: FNV-1a64 constants folded over four
/// independent lanes of 8-byte little-endian words, lanes combined at the
/// end (trailing words and tail bytes continue the combined state). The
/// byte-serial fnv1a64 used by the text formats is latency-bound at one
/// multiply *per byte* (~1 GB/s), and a single word-wide chain still stalls
/// on multiply latency; open() hashes every payload byte twice (per-section
/// + whole-file), which at those rates would eat the binary tier's >= 10x
/// load budget on a 100k-row file by itself. Four lanes keep the multiplies
/// pipelined, and the little-endian word assembly keeps the value identical
/// on any host.
[[nodiscard]] std::uint64_t binfile_checksum(std::string_view bytes) noexcept;

/// Which on-disk representation a save_* helper should emit. Loaders always
/// auto-detect by magic, so the two formats interconvert freely (see the
/// `macroflow convert` CLI verb).
enum class PersistFormat {
  Text,    ///< line-oriented, diffable interchange/debugging format
  Binary,  ///< this container: bulk-loadable, ~10x faster at scale
};

/// Typed append-only writer. Build sections in order; finish() seals the
/// table + footer and returns the complete file image.
class BinWriter {
 public:
  BinWriter();

  /// Start a new section (ends the previous one). Names must be non-empty,
  /// unique within the file, and at most 64 KiB.
  void begin_section(std::string_view name);

  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  void i64(std::int64_t value);
  /// IEEE-754 bit pattern, little-endian: bit-exact by construction.
  void f64(double value);
  /// Length-prefixed (u32) byte string.
  void str(std::string_view bytes);
  /// Bare bytes, no length prefix (for sections that are one raw blob).
  void raw(std::string_view bytes);

  /// Seal the file: close the open section, append table + footer. The
  /// writer must not be reused afterwards.
  [[nodiscard]] std::string finish();

 private:
  struct Entry {
    std::string name;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  void end_section();

  std::string buf_;
  std::vector<Entry> table_;
  bool in_section_ = false;
  bool finished_ = false;
};

/// One parsed section: a view into the file image passed to BinFile::open
/// (the caller keeps that buffer alive for as long as the views are used).
struct BinSection {
  std::string name;
  std::string_view bytes;
};

/// Parsed, fully verified container.
class BinFile {
 public:
  /// Parse + verify `bytes`; nullopt on any damage, with `*error` naming the
  /// failure when non-null. Integrity is established by the table checksum
  /// plus ONE pass over the payload (which covers every section byte); the
  /// per-section checksums are consulted only to name the damaged section
  /// when that pass fails.
  static std::optional<BinFile> open(std::string_view bytes,
                                     std::string* error = nullptr);

  [[nodiscard]] const std::vector<BinSection>& sections() const noexcept {
    return sections_;
  }
  /// Bytes of the named section; nullopt when absent.
  [[nodiscard]] std::optional<std::string_view> section(
      std::string_view name) const noexcept;

 private:
  std::vector<BinSection> sections_;
};

/// Bounds-checked typed reader over one section's bytes. Mirrors the
/// ModelReader contract: the first out-of-bounds or invalid read latches a
/// sticky fail flag and every subsequent read returns a zero value, so
/// loaders parse optimistically and reject once at the end.
///
/// Fully inline: a 100k-sample load issues millions of cursor reads, and
/// out-of-line calls (with their per-call bounds branch kept opaque to the
/// optimiser) are what separated the binary tier from its 10x load target.
class BinCursor {
 public:
  explicit BinCursor(std::string_view bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    const unsigned char* p = take(1);
    return p != nullptr ? *p : 0;
  }
  [[nodiscard]] std::uint32_t u32() noexcept {
    const unsigned char* p = take(4);
    if (p == nullptr) return 0;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }
  [[nodiscard]] std::uint64_t u64() noexcept {
    const unsigned char* p = take(8);
    if (p == nullptr) return 0;
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
    return value;
  }
  [[nodiscard]] std::int32_t i32() noexcept {
    return static_cast<std::int32_t>(u32());
  }
  [[nodiscard]] std::int64_t i64() noexcept {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64() noexcept {
    const std::uint64_t bits = u64();
    double value = 0.0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&value, &bits, sizeof value);
    return ok_ ? value : 0.0;
  }
  /// Length-prefixed string; lengths above `max_len` (or past the end of the
  /// section) latch the fail flag instead of allocating.
  [[nodiscard]] std::string str(std::size_t max_len = 1u << 20) {
    const std::uint32_t len = u32();
    if (!ok_ || len > max_len || bytes_.size() - pos_ < len) {
      ok_ = false;
      return {};
    }
    std::string out(bytes_.substr(pos_, len));
    pos_ += len;
    return out;
  }
  /// Bare view of the next n bytes.
  [[nodiscard]] std::string_view raw(std::size_t n) noexcept {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    const std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  void fail() noexcept { ok_ = false; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  /// True when every byte was consumed -- loaders check this so trailing
  /// garbage in a section is rejected, mirroring the text parsers.
  [[nodiscard]] bool at_end() const noexcept { return ok_ && pos_ == bytes_.size(); }

 private:
  [[nodiscard]] const unsigned char* take(std::size_t n) noexcept {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return nullptr;
    }
    const auto* p =
        reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
    pos_ += n;
    return p;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mf
