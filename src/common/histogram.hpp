#pragma once
// Fixed-bucket log2 histogram for service metrics (DESIGN.md section 13).
//
// Latency, batch-fill, and queue-depth distributions are recorded into
// power-of-two buckets: bucket i counts values v with bit_width(v) == i,
// i.e. v == 0 lands in bucket 0 and [2^(i-1), 2^i) lands in bucket i.
// Recording is one increment (no allocation, O(1), cheap enough under the
// per-request stats mutex), quantile queries walk the 48 fixed buckets, and
// two histograms merge by addition -- which is what makes a race-free
// snapshot trivial: copy under the lock, query the copy.
//
// The price is resolution: a quantile is reported as the *upper bound* of
// its bucket (within 2x of the true value). For latency SLO checks against
// budgets that are themselves order-of-magnitude knobs, that is exactly
// enough, and the fixed memory footprint (one cache line and a half) beats
// a reservoir sample under a hot mutex.

#include <array>
#include <bit>
#include <cstdint>

namespace mf {

struct Log2Histogram {
  /// 2^47 ns is ~39 hours; anything larger saturates into the last bucket.
  static constexpr int kBuckets = 48;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;

  void record(std::uint64_t value) noexcept {
    int bucket = std::bit_width(value);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    ++counts[static_cast<std::size_t>(bucket)];
    ++total;
  }

  /// Largest value bucket i counts (inclusive): 0 for bucket 0, 2^i - 1
  /// otherwise; the last bucket is open-ended and reports its lower edge
  /// so a saturated histogram never fabricates a ~39-hour quantile.
  [[nodiscard]] static std::uint64_t bucket_max(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= kBuckets - 1) return std::uint64_t{1} << (kBuckets - 2);
    return (std::uint64_t{1} << i) - 1;
  }

  /// Upper bound of the bucket holding the q-quantile observation
  /// (0 < q <= 1, by cumulative count); 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t quantile_max(double q) const noexcept {
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation, 1-based; ceil without float drift.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[static_cast<std::size_t>(i)];
      if (seen >= rank) return bucket_max(i);
    }
    return bucket_max(kBuckets - 1);
  }

  Log2Histogram& operator+=(const Log2Histogram& other) noexcept {
    for (int i = 0; i < kBuckets; ++i) {
      counts[static_cast<std::size_t>(i)] +=
          other.counts[static_cast<std::size_t>(i)];
    }
    total += other.total;
    return *this;
  }
};

}  // namespace mf
