#pragma once
// Checked numeric parsing and round-trip-exact decimal formatting.
//
// Parsing: std::atoi/istringstream>> silently turn malformed text into 0 --
// and `stream >> size_t` *wraps* a negative count instead of rejecting it,
// so a tampered "# samples -1" footer became 18446744073709551615. Every
// count or numeric field read from untrusted text (checkpoint footers,
// bundle footers, CLI flags) goes through these std::from_chars wrappers:
// full consumption required, range checked, nullopt on anything else.
//
// Formatting: the default ostream precision (6 significant digits) silently
// rounds doubles, so a text checkpoint written with `out << 1.0000000000000002`
// reloads as 1.0 -- labels drift every save/load cycle. format_double uses
// std::to_chars, which emits the *shortest* decimal string that parses back
// to the exact same double: round-trip lossless, locale-independent, and
// byte-stable across save/load/save cycles (the property the text<->binary
// conversion gates in bench_persist rely on). Every text format in the
// library formats doubles through this one helper.

#include <charconv>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace mf {

/// Parse a whole string_view as an integer of type T in [lo, hi]; nullopt on
/// empty input, trailing garbage, sign mismatch, or overflow. Negative text
/// given an unsigned T is rejected by from_chars itself (no wrapping).
template <typename T>
[[nodiscard]] std::optional<T> parse_number(
    std::string_view text, T lo = std::numeric_limits<T>::min(),
    T hi = std::numeric_limits<T>::max()) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

/// Parse a whole string_view as a double; nullopt on malformed input.
[[nodiscard]] inline std::optional<double> parse_double_text(
    std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// Shortest decimal representation that round-trips to the exact bits.
[[nodiscard]] inline std::string format_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, ptr);
}

/// Module/entry names are embedded in whitespace-delimited text formats and
/// reused as map keys on load; whitespace inside one would shift every
/// following field, and a leading '#' would be skipped as a comment line.
/// Writers reject such names up front (MF_CHECK), loaders treat them as
/// corruption.
[[nodiscard]] inline bool serializable_name(std::string_view name) {
  if (name.empty() || name.front() == '#') return false;
  return name.find_first_of(" \t\r\n\v\f") == std::string_view::npos;
}

}  // namespace mf
