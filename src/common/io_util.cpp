#include "common/io_util.hpp"

#include <cerrno>
#include <csignal>
#include <poll.h>
#include <unistd.h>

namespace mf {

bool write_all(int fd, std::string_view data) noexcept {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // n == 0 from write() on a regular descriptor should not happen, but
    // looping on it would spin forever; report it as a failure.
    return false;
  }
  return true;
}

std::optional<std::size_t> read_some(int fd, std::string& out,
                                     std::size_t max_bytes) {
  if (max_bytes == 0) return std::size_t{0};
  const std::size_t old_size = out.size();
  out.resize(old_size + max_bytes);
  for (;;) {
    const ssize_t n = ::read(fd, out.data() + old_size, max_bytes);
    if (n >= 0) {
      out.resize(old_size + static_cast<std::size_t>(n));
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) continue;
    out.resize(old_size);
    return std::nullopt;
  }
}

std::optional<std::string> read_all(int fd) {
  std::string out;
  for (;;) {
    const std::optional<std::size_t> n = read_some(fd, out);
    if (!n) return std::nullopt;
    if (*n == 0) return out;
  }
}

bool ignore_sigpipe() noexcept {
  struct sigaction current {};
  if (::sigaction(SIGPIPE, nullptr, &current) != 0) return false;
  if (current.sa_handler != SIG_DFL) {
    // Already ignored, or the application installed its own handler --
    // either way SIGPIPE no longer kills the process.
    return true;
  }
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  ::sigemptyset(&ignore.sa_mask);
  return ::sigaction(SIGPIPE, &ignore, nullptr) == 0;
}

int timeout_ms_from_seconds(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  const double ms = seconds * 1000.0;
  if (ms >= 2147483647.0) return 2147483647;
  const int whole = static_cast<int>(ms);
  return (static_cast<double>(whole) < ms) ? whole + 1 : whole;
}

bool wait_readable(int fd, int timeout_ms) noexcept {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  // EINTR and timeout both mean "nothing readable yet"; the caller's loop
  // re-checks its cancel token and waits again. Error revents count as
  // readable so the subsequent read() surfaces the failure.
  return rc > 0;
}

}  // namespace mf
