#pragma once
// Fixed-size worker pool with a bounded task queue, plus the
// parallel_for_each helper every parallel region in the library is built on.
//
// Design rules (DESIGN.md section "Parallel execution model"):
//
//   * Determinism is non-negotiable. A parallel region must produce
//     bit-identical results at any thread count, so tasks never share a
//     mutable RNG or append to shared containers -- each task writes its
//     result into a pre-sized slot indexed by task id, and any per-task
//     randomness is seeded via task_seed() (common/rng.hpp), a pure function
//     of (base seed, task key).
//   * Exceptions propagate. A worker exception is captured and rethrown
//     from wait() / for_each() on the calling thread. for_each() rethrows
//     the exception of the *lowest-indexed* failing task, which is exactly
//     the exception a sequential loop would have thrown (task indices are
//     claimed in order, so every index below a recorded failure has run).
//   * The queue is bounded. submit() blocks when `queue_capacity` tasks are
//     already waiting, so a fast producer cannot accumulate unbounded
//     std::function state.
//   * Pools are reusable: after wait() (even a throwing one) the pool
//     accepts new work; multiple for_each regions may run back to back.
//
// `jobs` convention used across the library (RwFlowOptions, RForestOptions,
// build_ground_truth, the CLI's --jobs):  1 = sequential in the calling
// thread (no pool, no threads -- the historical behaviour), N > 1 = pool of
// N workers, 0 = auto (hardware concurrency). The compile-time default is
// the MF_JOBS_DEFAULT CMake cache option (1 unless overridden).

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/check.hpp"

#ifndef MF_JOBS_DEFAULT
#define MF_JOBS_DEFAULT 1
#endif

namespace mf {

/// Resolve a `jobs` knob to a concrete worker count: values >= 1 pass
/// through, 0 (and negatives) mean "auto" = hardware concurrency.
[[nodiscard]] inline int resolve_jobs(int jobs) noexcept {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

class ThreadPool {
 public:
  explicit ThreadPool(int threads, std::size_t queue_capacity = 256)
      : capacity_(std::max<std::size_t>(1, queue_capacity)) {
    MF_CHECK_MSG(threads >= 1, "a thread pool needs at least one worker");
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    not_empty_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Enqueue one task. Blocks while the queue is at capacity.
  void submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [this] { return queue_.size() < capacity_; });
      queue_.push_back(std::move(task));
      ++pending_;
    }
    not_empty_.notify_one();
  }

  /// Block until every submitted task has finished. Rethrows the first
  /// exception a worker captured since the last wait(); the pool stays
  /// usable afterwards.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
    if (exception_) {
      std::exception_ptr error = std::exchange(exception_, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  /// Run fn(i) for every i in [0, count) across the pool's workers.
  /// Indices are claimed in order from a shared counter (dynamic load
  /// balancing -- per-block search times vary by >10x), results must be
  /// written to slots indexed by i. Blocks until the region completes;
  /// rethrows the lowest-indexed task exception. After an exception is
  /// recorded no *new* indices are claimed, but indices already claimed run
  /// to completion.
  ///
  /// `cancel` adds a cooperative cancellation point per index: once the
  /// token trips, no new index runs fn (in-flight calls drain normally) and
  /// for_each returns early. Callers that need to know *which* indices ran
  /// keep their own per-slot done flags -- the set of completed indices
  /// under cancellation is schedule-dependent by nature; determinism is
  /// recovered at the resume level (every completed slot is a pure function
  /// of its index alone).
  template <typename Fn>
  void for_each(std::size_t count, Fn&& fn,
                const CancelToken* cancel = nullptr) {
    if (count == 0) return;
    struct Region {
      std::atomic<std::size_t> next{0};
      std::mutex mutex;
      std::exception_ptr exception;
      std::size_t exception_index = std::numeric_limits<std::size_t>::max();
    };
    auto region = std::make_shared<Region>();
    Fn& task = fn;  // for_each blocks until done; by-ref capture is safe
    const std::size_t drains =
        std::min<std::size_t>(workers_.size(), count);
    for (std::size_t t = 0; t < drains; ++t) {
      submit([region, &task, count, cancel] {
        for (;;) {
          if (cancel != nullptr && cancel->cancelled()) return;
          const std::size_t i =
              region->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          {
            std::lock_guard<std::mutex> lock(region->mutex);
            if (region->exception != nullptr) return;
          }
          try {
            task(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(region->mutex);
            if (i < region->exception_index) {
              region->exception = std::current_exception();
              region->exception_index = i;
            }
          }
        }
      });
    }
    wait();
    if (region->exception != nullptr) {
      std::rethrow_exception(region->exception);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop requested and queue drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      not_full_.notify_one();
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (exception_ == nullptr) exception_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  const std::size_t capacity_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  long pending_ = 0;
  bool stop_ = false;
  std::exception_ptr exception_;
};

/// One-shot parallel region: run fn(i) for i in [0, count). jobs <= 1 runs
/// the plain sequential loop in the calling thread (bit-identical to the
/// historical code and the baseline every parallel run must reproduce);
/// jobs == 0 resolves to hardware concurrency. A tripped `cancel` token
/// stops new iterations (the sequential path polls it before every i, so a
/// jobs=1 region with cancel_after(n) cancels after a deterministic count).
template <typename Fn>
void parallel_for_each(int jobs, std::size_t count, Fn&& fn,
                       const CancelToken* cancel = nullptr) {
  const int workers = resolve_jobs(jobs);
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }
  ThreadPool pool(
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(workers), count)));
  pool.for_each(count, std::forward<Fn>(fn), cancel);
}

}  // namespace mf
