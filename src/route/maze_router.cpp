#include "route/maze_router.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "common/check.hpp"

namespace mf {
namespace {

/// Channel graph over the region grid: a node per cell, an edge to each of
/// the 4 neighbours. Edges are stored per direction-pair once (right/down
/// from each cell).
class ChannelGraph {
 public:
  ChannelGraph(const PBlock& region, const MazeRouteOptions& opts)
      : width_(region.width()),
        height_(region.height()),
        col0_(region.col_lo),
        row0_(region.row_lo),
        opts_(opts) {
    // Edge layout: [node * 2 + 0] = edge to the right, [+1] = edge down.
    usage_.assign(static_cast<std::size_t>(width_) * height_ * 2, 0);
    history_.assign(usage_.size(), 0.0);
  }

  [[nodiscard]] int nodes() const noexcept { return width_ * height_; }
  [[nodiscard]] int node_of(int col, int row) const noexcept {
    return (row - row0_) * width_ + (col - col0_);
  }

  /// Edge id between adjacent nodes a, b; -1 when not adjacent.
  [[nodiscard]] int edge_between(int a, int b) const noexcept {
    const int ax = a % width_;
    const int ay = a / width_;
    const int bx = b % width_;
    const int by = b / width_;
    if (ay == by && bx == ax + 1) return a * 2;
    if (ay == by && ax == bx + 1) return b * 2;
    if (ax == bx && by == ay + 1) return a * 2 + 1;
    if (ax == bx && ay == by + 1) return b * 2 + 1;
    return -1;
  }

  /// Neighbours of node `n` (up to 4), written into `out`; returns count.
  int neighbours(int n, int out[4]) const noexcept {
    const int x = n % width_;
    const int y = n / width_;
    int count = 0;
    if (x + 1 < width_) out[count++] = n + 1;
    if (x > 0) out[count++] = n - 1;
    if (y + 1 < height_) out[count++] = n + width_;
    if (y > 0) out[count++] = n - width_;
    return count;
  }

  [[nodiscard]] double edge_cost(int edge) const noexcept {
    const int over =
        std::max(0, usage_[static_cast<std::size_t>(edge)] + 1 -
                        opts_.channel_capacity);
    return 1.0 + opts_.present_factor * over +
           history_[static_cast<std::size_t>(edge)];
  }

  void add_usage(int edge, int delta) noexcept {
    usage_[static_cast<std::size_t>(edge)] += delta;
  }

  /// Accumulate history cost on every currently over-used edge.
  void accumulate_history() noexcept {
    for (std::size_t e = 0; e < usage_.size(); ++e) {
      if (usage_[e] > opts_.channel_capacity) {
        history_[e] += opts_.history_factor *
                       (usage_[e] - opts_.channel_capacity);
      }
    }
  }

  [[nodiscard]] std::pair<int, int> overflow() const noexcept {
    int edges = 0;
    int worst = 0;
    for (int u : usage_) {
      if (u > opts_.channel_capacity) {
        ++edges;
        worst = std::max(worst, u - opts_.channel_capacity);
      }
    }
    return {edges, worst};
  }

 private:
  int width_;
  int height_;
  int col0_;
  int row0_;
  MazeRouteOptions opts_;
  std::vector<int> usage_;
  std::vector<double> history_;
};

struct RoutableNet {
  int driver_node = -1;
  std::vector<int> sink_nodes;
  std::vector<int> edges;  ///< current route (edge ids, deduplicated)
};

}  // namespace

MazeRouteResult maze_route(const Netlist& netlist, const Placement& placement,
                           const PBlock& region,
                           const MazeRouteOptions& opts) {
  MF_CHECK(placement.size() == netlist.num_cells());
  MF_CHECK(!region.empty());
  ChannelGraph graph(region, opts);
  MazeRouteResult result;

  // Collect routable nets.
  std::vector<RoutableNet> nets;
  for (const Net& net : netlist.nets()) {
    if (net.is_clock || net.driver == kInvalidId) continue;
    const CellPlacement& dp =
        placement[static_cast<std::size_t>(net.driver)];
    if (!dp.placed() || !region.contains(dp.col, dp.row)) continue;
    RoutableNet rn;
    rn.driver_node = graph.node_of(dp.col, dp.row);
    std::set<int> sinks;
    for (CellId sink : net.sinks) {
      const CellPlacement& sp = placement[static_cast<std::size_t>(sink)];
      if (!sp.placed() || !region.contains(sp.col, sp.row)) continue;
      const int node = graph.node_of(sp.col, sp.row);
      if (node != rn.driver_node) sinks.insert(node);
    }
    if (sinks.empty()) continue;
    rn.sink_nodes.assign(sinks.begin(), sinks.end());
    nets.push_back(std::move(rn));
  }
  result.nets_routed = static_cast<int>(nets.size());

  // Dijkstra scratch buffers, reused across nets.
  const int node_count = graph.nodes();
  std::vector<double> dist(static_cast<std::size_t>(node_count));
  std::vector<int> previous(static_cast<std::size_t>(node_count));
  using QEntry = std::pair<double, int>;

  /// Route one net as a union of shortest driver->sink paths over the
  /// current cost field; fills rn.edges (deduplicated) and adds usage.
  auto route_net = [&](RoutableNet& rn) {
    std::set<int> net_edges;
    // Grow a routing tree: sources = driver node plus everything already
    // routed for this net, so later sinks can tap earlier branches.
    std::set<int> tree_nodes{rn.driver_node};
    for (int target : rn.sink_nodes) {
      std::fill(dist.begin(), dist.end(), 1e300);
      std::fill(previous.begin(), previous.end(), -1);
      std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue;
      for (int s : tree_nodes) {
        dist[static_cast<std::size_t>(s)] = 0.0;
        queue.emplace(0.0, s);
      }
      while (!queue.empty()) {
        const auto [d, node] = queue.top();
        queue.pop();
        if (d > dist[static_cast<std::size_t>(node)]) continue;
        if (node == target) break;
        int nbr[4];
        const int count = graph.neighbours(node, nbr);
        for (int k = 0; k < count; ++k) {
          const int edge = graph.edge_between(node, nbr[k]);
          const double nd = d + graph.edge_cost(edge);
          if (nd < dist[static_cast<std::size_t>(nbr[k])]) {
            dist[static_cast<std::size_t>(nbr[k])] = nd;
            previous[static_cast<std::size_t>(nbr[k])] = node;
            queue.emplace(nd, nbr[k]);
          }
        }
      }
      // Trace back to whatever tree node the path grew from.
      for (int node = target;
           previous[static_cast<std::size_t>(node)] != -1;) {
        const int prev = previous[static_cast<std::size_t>(node)];
        net_edges.insert(graph.edge_between(prev, node));
        tree_nodes.insert(node);
        node = prev;
      }
      tree_nodes.insert(target);
    }
    rn.edges.assign(net_edges.begin(), net_edges.end());
    for (int e : rn.edges) graph.add_usage(e, +1);
  };

  // Initial route, then negotiation rounds.
  for (RoutableNet& rn : nets) route_net(rn);
  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    result.iterations = iter;
    const auto [edges, worst] = graph.overflow();
    if (edges == 0) break;
    graph.accumulate_history();
    // Rip up and re-route every net against the updated cost field.
    for (RoutableNet& rn : nets) {
      for (int e : rn.edges) graph.add_usage(e, -1);
      rn.edges.clear();
      route_net(rn);
    }
  }

  const auto [edges, worst] = graph.overflow();
  result.overflow_edges = edges;
  result.max_overuse = worst;
  result.routed = edges == 0;
  for (const RoutableNet& rn : nets) {
    result.total_wirelength += static_cast<long>(rn.edges.size());
  }
  return result;
}

}  // namespace mf
