#pragma once
// Routability proxy.
//
// Stands in for the router's verdict when deciding whether a module fits a
// PBlock (Figure 1: "place & route within the PBlock ... otherwise the flow
// will stop"). Demand is accumulated on a congestion grid: every net smears
// a wirelength-and-fanout weighted demand over its bounding box, and every
// control set contributes a virtual broadcast net over its member cells
// (Section V-D: high-fanout resets/enables need routing channels too).
// A region is routable when the near-peak grid congestion stays under the
// per-cell channel capacity.
//
// The same congestion grid feeds the timing model: congested regions give
// detoured, slower wires -- which reproduces the paper's Table I inversion
// (tighter PBlock -> fewer slices but longer critical path).

#include <vector>

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"

namespace mf {

struct RoutabilityOptions {
  /// Routing units available per grid cell (the main calibration knob).
  double cell_capacity = 17.5;
  /// Demand contributed by each placed pin to its own cell (control-set
  /// pins included). Pin density thins out linearly as the placer spreads,
  /// so this term makes congestion relief proportional to the CF.
  double pin_demand = 0.25;
  /// Scale on bounding-box wire demand (global, shape-dependent term).
  double wire_scale = 0.06;
  /// Escape-channel demand per extra sink, concentrated in the 3x3
  /// neighbourhood of the driver: high-fanout nets hotspot their source.
  double fanout_escape = 0.60;
  /// Extra wire demand per unit of sqrt(fanout - 1).
  double fanout_weight = 0.12;
  /// Demand added at each CARRY4 cell: rigid chains monopolise the vertical
  /// routing in their column and cannot detour, so carry-dense regions leave
  /// less flexibility for everything else (Section V-C / V-E).
  double carry_demand = 3.0;
  /// Control-set broadcast nets are partially served by semi-dedicated
  /// routing; scale their demand down by this factor.
  double control_scale = 0.5;
  /// Quantile of grid congestion that must stay below capacity.
  double peak_quantile = 0.99;
};

struct RouteEstimate {
  bool routable = false;
  double peak = 0.0;  ///< peak_quantile congestion / capacity
  double mean = 0.0;  ///< average congestion / capacity
  int grid_w = 0;
  int grid_h = 0;
  int col0 = 0;  ///< grid origin in device coordinates
  int row0 = 0;
  std::vector<double> demand;  ///< row-major [grid_w * grid_h]

  /// Congestion ratio (demand / capacity) at a device coordinate; clamped to
  /// the grid, 0 outside.
  [[nodiscard]] double congestion_at(int col, int row,
                                     double capacity) const noexcept;
};

/// Estimate congestion for `netlist` placed per `placement` inside `region`.
RouteEstimate estimate_routability(const Netlist& netlist,
                                   const Placement& placement,
                                   const PBlock& region,
                                   const RoutabilityOptions& opts = {});

}  // namespace mf
