#pragma once
// Negotiated-congestion maze router (PathFinder-style).
//
// The CF search uses the fast congestion *proxy* in routability.hpp -- a
// feasibility check must run in ~1 ms to make exhaustive sweeps practical.
// This router is the slow, higher-fidelity cross-check: it actually routes
// every net over a channel graph with per-edge capacities, rip-up and
// re-route, and history costs, and reports the remaining overflow. The
// proxy is validated against it in bench_ablation / tests: placements the
// proxy accepts should route with (near-)zero overflow, and the proxy's
// peak congestion should rank placements the same way router overflow does.

#include <vector>

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"

namespace mf {

struct MazeRouteOptions {
  /// Wires per routing channel segment (edge between adjacent grid cells).
  int channel_capacity = 26;
  /// Negotiation iterations (rip-up & re-route rounds).
  int max_iterations = 10;
  /// Cost added per unit of present over-use of an edge.
  double present_factor = 1.2;
  /// Cost accumulated per iteration an edge stayed over capacity.
  double history_factor = 0.6;
};

struct MazeRouteResult {
  bool routed = false;       ///< zero overflow within the iteration budget
  int overflow_edges = 0;    ///< edges still over capacity at the end
  int max_overuse = 0;       ///< worst per-edge over-use
  long total_wirelength = 0; ///< routed edge count over all nets
  int iterations = 0;        ///< negotiation rounds actually run
  int nets_routed = 0;
};

/// Route all placed nets of `netlist` inside `region`. Nets with fewer than
/// two placed endpoints and clock nets are skipped (clocks use dedicated
/// trees on real parts).
MazeRouteResult maze_route(const Netlist& netlist, const Placement& placement,
                           const PBlock& region,
                           const MazeRouteOptions& opts = {});

}  // namespace mf
