#include "route/routability.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mf {
namespace {

struct Bbox {
  int c0 = 0;
  int c1 = -1;
  int r0 = 0;
  int r1 = -1;
  int pins = 0;

  void add(const CellPlacement& p) {
    if (!p.placed()) return;
    if (pins == 0) {
      c0 = c1 = p.col;
      r0 = r1 = p.row;
    } else {
      c0 = std::min<int>(c0, p.col);
      c1 = std::max<int>(c1, p.col);
      r0 = std::min<int>(r0, p.row);
      r1 = std::max<int>(r1, p.row);
    }
    ++pins;
  }

  [[nodiscard]] int hpwl() const noexcept {
    return pins < 2 ? 0 : (c1 - c0) + (r1 - r0);
  }
};

}  // namespace

double RouteEstimate::congestion_at(int col, int row,
                                    double capacity) const noexcept {
  if (capacity <= 0.0 || demand.empty()) return 0.0;
  const int c = std::clamp(col - col0, 0, grid_w - 1);
  const int r = std::clamp(row - row0, 0, grid_h - 1);
  return demand[static_cast<std::size_t>(r) * static_cast<std::size_t>(grid_w) +
                static_cast<std::size_t>(c)] /
         capacity;
}

RouteEstimate estimate_routability(const Netlist& netlist,
                                   const Placement& placement,
                                   const PBlock& region,
                                   const RoutabilityOptions& opts) {
  MF_CHECK(placement.size() == netlist.num_cells());
  RouteEstimate est;
  est.col0 = region.col_lo;
  est.row0 = region.row_lo;
  est.grid_w = region.width();
  est.grid_h = region.height();
  est.demand.assign(
      static_cast<std::size_t>(est.grid_w) * static_cast<std::size_t>(est.grid_h),
      0.0);

  auto at = [&](int col, int row) -> double& {
    const int c = std::clamp(col - est.col0, 0, est.grid_w - 1);
    const int r = std::clamp(row - est.row0, 0, est.grid_h - 1);
    return est.demand[static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(est.grid_w) +
                      static_cast<std::size_t>(c)];
  };

  auto smear = [&](const Bbox& box, double total) {
    if (total <= 0.0 || box.pins == 0) return;
    const long cells = static_cast<long>(box.c1 - box.c0 + 1) *
                       (box.r1 - box.r0 + 1);
    const double per_cell = total / static_cast<double>(cells);
    for (int r = box.r0; r <= box.r1; ++r) {
      for (int c = box.c0; c <= box.c1; ++c) at(c, r) += per_cell;
    }
  };

  auto wire_demand = [&](const Bbox& box, int fanout) {
    const double weight =
        1.0 + opts.fanout_weight *
                  std::sqrt(static_cast<double>(std::max(fanout - 1, 0)));
    return (static_cast<double>(box.hpwl()) + 1.0) * weight *
           opts.wire_scale;
  };

  // Escape demand around a driver: high-fanout nets need many channels out
  // of their source neighbourhood regardless of where the sinks sit. The
  // neighbourhood radius grows with sqrt(fanout) -- a 300-load net congests
  // a whole region, not just the adjacent channels -- which keeps the
  // effect's *relative* strength independent of module size.
  auto escape = [&](const CellPlacement& p, int fanout) {
    const double total =
        opts.fanout_escape * static_cast<double>(std::max(fanout - 1, 0));
    if (total <= 0.0 || !p.placed()) return;
    const int radius =
        1 + static_cast<int>(std::sqrt(static_cast<double>(fanout)) / 8.0);
    Bbox box;
    box.add(p);
    box.c0 = std::max(box.c0 - radius, est.col0);
    box.r0 = std::max(box.r0 - radius, est.row0);
    box.c1 = std::min(box.c1 + radius, est.col0 + est.grid_w - 1);
    box.r1 = std::min(box.r1 + radius, est.row0 + est.grid_h - 1);
    smear(box, total);
  };

  // Signal nets.
  for (const Net& net : netlist.nets()) {
    if (net.is_clock) continue;
    Bbox box;
    if (net.driver != kInvalidId) {
      box.add(placement[static_cast<std::size_t>(net.driver)]);
    }
    for (CellId sink : net.sinks) {
      box.add(placement[static_cast<std::size_t>(sink)]);
    }
    if (box.pins < 2) continue;
    smear(box, wire_demand(box, net.fanout()));
    if (net.driver != kInvalidId) {
      escape(placement[static_cast<std::size_t>(net.driver)], net.fanout());
    }
  }

  // Control-set broadcast nets (reset / enable distribution).
  std::vector<Bbox> control_boxes(netlist.num_control_sets());
  for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
    const Cell& cell = netlist.cell(static_cast<CellId>(i));
    if (cell.control_set == kInvalidId) continue;
    control_boxes[static_cast<std::size_t>(cell.control_set)].add(
        placement[i]);
  }
  for (const Bbox& box : control_boxes) {
    if (box.pins < 2) continue;
    smear(box, wire_demand(box, box.pins) * opts.control_scale);
  }

  // Per-pin local demand (control pins count: resets/enables land on real
  // slice pins too).
  for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
    const CellPlacement& p = placement[i];
    if (!p.placed()) continue;
    const Cell& cell = netlist.cell(static_cast<CellId>(i));
    double pins = static_cast<double>(
        cell.inputs.size() + (cell.out != kInvalidId) +
        (cell.control_set != kInvalidId ? 3 : 0));
    // SRL/LUTRAM cells share the slice-wide write address and clock-enable
    // lines, so their effective per-cell pin load is roughly halved.
    if (cell.kind == CellKind::Srl || cell.kind == CellKind::LutRam) {
      pins *= 0.5;
    }
    at(p.col, p.row) += opts.pin_demand * pins;
    if (cell.kind == CellKind::Carry4) {
      at(p.col, p.row) += opts.carry_demand;
    }
  }

  // 3x3 box blur: routing overflow spills into neighbouring channels, and
  // the blur keeps single-cell spikes (tiny PBlocks, escape hotspots) from
  // dominating the quantile.
  {
    std::vector<double> blurred(est.demand.size(), 0.0);
    for (int r = 0; r < est.grid_h; ++r) {
      for (int c = 0; c < est.grid_w; ++c) {
        double sum = 0.0;
        int count = 0;
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            const int rr = r + dr;
            const int cc = c + dc;
            if (rr < 0 || rr >= est.grid_h || cc < 0 || cc >= est.grid_w) {
              continue;
            }
            sum += est.demand[static_cast<std::size_t>(rr) *
                                  static_cast<std::size_t>(est.grid_w) +
                              static_cast<std::size_t>(cc)];
            ++count;
          }
        }
        blurred[static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(est.grid_w) +
                static_cast<std::size_t>(c)] = sum / count;
      }
    }
    est.demand = std::move(blurred);
  }

  // Verdict: near-peak congestion under capacity.
  std::vector<double> sorted = est.demand;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(opts.peak_quantile *
                               static_cast<double>(sorted.size())));
  est.peak = sorted[idx] / opts.cell_capacity;
  double sum = 0.0;
  for (double d : sorted) sum += d;
  est.mean = sum / (static_cast<double>(sorted.size()) * opts.cell_capacity);
  est.routable = est.peak <= 1.0;
  return est;
}

}  // namespace mf
