#pragma once
// Structural netlist construction helpers.
//
// The RTL generators (src/rtlgen) describe hardware in terms of buses,
// adders, shift registers and memories; this builder lowers those idioms to
// mapped cells with real connectivity so that fanout, control sets and carry
// chains -- the features the paper's estimator learns from -- are genuine
// properties of the produced netlist, not synthetic annotations.

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace mf {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(Netlist& netlist) : nl_(netlist) {}

  /// The module clock (one per module; created on first use).
  NetId clock();

  /// Fresh primary-input net.
  NetId input(std::string label = {});

  /// Fresh primary-input bus of `width` nets.
  std::vector<NetId> input_bus(int width, const std::string& label = {});

  /// Control set over the module clock. Pass kInvalidId for "no reset" /
  /// "always enabled".
  ControlSetId control_set(NetId sr = kInvalidId, NetId ce = kInvalidId);

  // -- primitives -----------------------------------------------------------

  /// k-input LUT (1 <= k <= 6); returns its output net.
  NetId lut(std::span<const NetId> inputs);
  NetId lut(std::initializer_list<NetId> inputs);

  /// D flip-flop; returns Q.
  NetId ff(NetId d, ControlSetId cs);

  /// SRL shift register cell (one M-slice LUT site regardless of depth up to
  /// 32, as on silicon); returns the serial output.
  NetId srl(NetId d, ControlSetId cs);

  /// Distributed-RAM cell: one M-slice LUT site, `addr` address lines and a
  /// write data line; returns the read port net.
  NetId lutram(std::span<const NetId> addr, NetId din, ControlSetId cs);

  /// RAMB18 / RAMB36 with an address bus; returns the read-data bus of
  /// `data_width` nets (all driven by the single BRAM cell's output net --
  /// we model one output net with external fanout instead).
  NetId bram18(std::span<const NetId> addr, std::span<const NetId> din);
  NetId bram36(std::span<const NetId> addr, std::span<const NetId> din);

  /// DSP48 multiply-accumulate; returns the product net.
  NetId dsp48(std::span<const NetId> a, std::span<const NetId> b);

  // -- composites -----------------------------------------------------------

  /// Ripple-carry adder over two `width`-bit buses: `width` propagate LUTs
  /// feeding ceil(width/4) chained CARRY4 cells. Returns the sum bus.
  std::vector<NetId> adder(std::span<const NetId> a, std::span<const NetId> b);

  /// Register every net of `bus`; returns the Q bus.
  std::vector<NetId> register_bus(std::span<const NetId> bus, ControlSetId cs);

  /// LUT reduction tree (arity <= 6) down to a single net.
  NetId reduce(std::span<const NetId> inputs, int arity = 6);

  /// One layer of `count` LUTs, each sampling `arity` nets round-robin from
  /// `inputs`; returns the layer's output bus.
  std::vector<NetId> lut_layer(std::span<const NetId> inputs, int count,
                               int arity = 4);

  /// Serial shift register of `depth` FFs; returns all taps (Q nets).
  std::vector<NetId> ff_chain(NetId d, int depth, ControlSetId cs);

  [[nodiscard]] Netlist& netlist() noexcept { return nl_; }
  [[nodiscard]] int next_chain_id() noexcept { return chain_counter_++; }

 private:
  Netlist& nl_;
  NetId clock_ = kInvalidId;
  int chain_counter_ = 0;
};

}  // namespace mf
