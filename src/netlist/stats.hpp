#pragma once
// Netlist statistics: the raw measurements the resource report and the
// estimator features are derived from.

#include <vector>

#include "netlist/netlist.hpp"

namespace mf {

struct NetlistStats {
  int luts = 0;
  int ffs = 0;
  int carry4 = 0;
  int srls = 0;
  int lutrams = 0;
  int bram18 = 0;
  int bram36 = 0;
  int dsp = 0;
  int cells = 0;
  int control_sets = 0;  ///< distinct control sets bound to >=1 cell
  int max_fanout = 0;    ///< over non-clock nets; control loads included
  std::vector<int> carry_chains;  ///< per-chain length in CARRY4 cells

  /// Cells occupying M-slice LUT sites.
  [[nodiscard]] int m_lut_cells() const noexcept { return srls + lutrams; }

  /// Longest carry chain in CARRY4 cells == minimum PBlock height in slices.
  [[nodiscard]] int longest_chain() const noexcept {
    int longest = 0;
    for (int len : carry_chains) longest = std::max(longest, len);
    return longest;
  }

  /// Total BRAM36-equivalents (two RAMB18 fit one RAMB36 site).
  [[nodiscard]] int bram36_equiv() const noexcept {
    return bram36 + (bram18 + 1) / 2;
  }
};

NetlistStats compute_stats(const Netlist& netlist);

}  // namespace mf
