#include "netlist/netlist.hpp"

#include <algorithm>

namespace mf {

const char* to_string(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::Lut:
      return "LUT";
    case CellKind::Ff:
      return "FF";
    case CellKind::Carry4:
      return "CARRY4";
    case CellKind::Srl:
      return "SRL";
    case CellKind::LutRam:
      return "LUTRAM";
    case CellKind::Bram18:
      return "RAMB18";
    case CellKind::Bram36:
      return "RAMB36";
    case CellKind::Dsp48:
      return "DSP48";
  }
  return "?";
}

NetId Netlist::add_net(std::string label, bool is_clock) {
  Net net;
  net.label = std::move(label);
  net.is_clock = is_clock;
  nets_.push_back(std::move(net));
  return static_cast<NetId>(nets_.size() - 1);
}

CellId Netlist::add_cell(CellKind kind) {
  Cell cell;
  cell.kind = kind;
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

void Netlist::connect_input(CellId cell, NetId net) {
  MF_CHECK(cell >= 0 && static_cast<std::size_t>(cell) < cells_.size());
  MF_CHECK(net >= 0 && static_cast<std::size_t>(net) < nets_.size());
  cells_[static_cast<std::size_t>(cell)].inputs.push_back(net);
  nets_[static_cast<std::size_t>(net)].sinks.push_back(cell);
}

void Netlist::set_output(CellId cell, NetId net) {
  MF_CHECK(cell >= 0 && static_cast<std::size_t>(cell) < cells_.size());
  MF_CHECK(net >= 0 && static_cast<std::size_t>(net) < nets_.size());
  MF_CHECK_MSG(nets_[static_cast<std::size_t>(net)].driver == kInvalidId,
               "net already driven");
  cells_[static_cast<std::size_t>(cell)].out = net;
  nets_[static_cast<std::size_t>(net)].driver = cell;
}

void Netlist::rewire_input(CellId cell, std::size_t index, NetId net) {
  MF_CHECK(cell >= 0 && static_cast<std::size_t>(cell) < cells_.size());
  MF_CHECK(net >= 0 && static_cast<std::size_t>(net) < nets_.size());
  Cell& c = cells_[static_cast<std::size_t>(cell)];
  MF_CHECK(index < c.inputs.size());
  const NetId old = c.inputs[index];
  if (old == net) return;
  auto& old_sinks = nets_[static_cast<std::size_t>(old)].sinks;
  const auto it = std::find(old_sinks.begin(), old_sinks.end(), cell);
  MF_CHECK(it != old_sinks.end());
  old_sinks.erase(it);
  c.inputs[index] = net;
  nets_[static_cast<std::size_t>(net)].sinks.push_back(cell);
}

ControlSetId Netlist::make_control_set(NetId clk, NetId sr, NetId ce) {
  const ControlSet cs{clk, sr, ce};
  const auto it = std::find(control_sets_.begin(), control_sets_.end(), cs);
  if (it != control_sets_.end()) {
    return static_cast<ControlSetId>(it - control_sets_.begin());
  }
  control_sets_.push_back(cs);
  return static_cast<ControlSetId>(control_sets_.size() - 1);
}

void Netlist::bind_control_set(CellId cell, ControlSetId cs) {
  MF_CHECK(cell >= 0 && static_cast<std::size_t>(cell) < cells_.size());
  MF_CHECK(cs >= 0 && static_cast<std::size_t>(cs) < control_sets_.size());
  Cell& c = cells_[static_cast<std::size_t>(cell)];
  MF_CHECK_MSG(c.kind == CellKind::Ff || c.kind == CellKind::Srl ||
                   c.kind == CellKind::LutRam,
               "only sequential cells take control sets");
  c.control_set = cs;
  const ControlSet& set = control_sets_[static_cast<std::size_t>(cs)];
  for (NetId n : {set.clk, set.sr, set.ce}) {
    if (n != kInvalidId) ++nets_[static_cast<std::size_t>(n)].control_loads;
  }
}

void Netlist::set_chain(CellId cell, std::int32_t chain, std::int32_t pos) {
  MF_CHECK(cell >= 0 && static_cast<std::size_t>(cell) < cells_.size());
  Cell& c = cells_[static_cast<std::size_t>(cell)];
  MF_CHECK_MSG(c.kind == CellKind::Carry4, "only CARRY4 cells chain");
  c.chain = chain;
  c.chain_pos = pos;
}

void Netlist::mark_output(NetId net) {
  MF_CHECK(net >= 0 && static_cast<std::size_t>(net) < nets_.size());
  if (!is_output(net)) outputs_.push_back(net);
}

bool Netlist::is_output(NetId net) const {
  return std::find(outputs_.begin(), outputs_.end(), net) != outputs_.end();
}

std::size_t Netlist::remove_cells(const std::vector<bool>& dead) {
  MF_CHECK(dead.size() == cells_.size());
  std::vector<CellId> remap(cells_.size(), kInvalidId);
  std::vector<Cell> kept;
  kept.reserve(cells_.size());
  std::size_t removed = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (dead[i]) {
      ++removed;
      continue;
    }
    remap[i] = static_cast<CellId>(kept.size());
    kept.push_back(std::move(cells_[i]));
  }
  cells_ = std::move(kept);

  for (Net& net : nets_) {
    if (net.driver != kInvalidId) {
      net.driver = remap[static_cast<std::size_t>(net.driver)];
    }
    std::vector<CellId> sinks;
    sinks.reserve(net.sinks.size());
    for (CellId s : net.sinks) {
      const CellId m = remap[static_cast<std::size_t>(s)];
      if (m != kInvalidId) sinks.push_back(m);
    }
    net.sinks = std::move(sinks);
  }
  return removed;
}

}  // namespace mf
