#pragma once
// Netlist and design exporters.
//
// A downstream user of a pre-implemented-block flow needs to move artefacts
// into vendor tooling and documentation:
//   * write_verilog  -- structural Verilog of a mapped module (generic
//     primitive library: LUTk, FDRE, CARRY4, SRL, RAM64X1S, RAMB18/36,
//     DSP48), round-trippable into synthesis for cross-checking;
//   * write_dot      -- GraphViz view of a block design's instance graph
//     (the Figure 2 diagram);
//   * write_xdc      -- the PBlock floorplan as Vivado-style XDC commands
//     (create_pblock / resize_pblock / add_cells_to_pblock), the exact
//     artefact RapidWright-like flows feed the vendor tool.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "stitch/macro.hpp"
#include "stitch/sa_stitcher.hpp"

namespace mf {

/// Structural Verilog for one module. Net names are synthesised from labels
/// where present (`n<id>` otherwise); cells become instantiations of a small
/// generic primitive library.
std::string write_verilog(const Module& module);

/// GraphViz digraph of a block design: one node per instance (labelled with
/// its unique block), one edge set per block net.
std::string write_dot(const BlockDesign& design);

/// Vivado-style XDC floorplan constraints for a set of placed macros.
/// `positions` maps each StitchProblem instance to its anchor; unplaced
/// instances are emitted as comments.
std::string write_xdc(const StitchProblem& problem,
                      const std::vector<BlockPlacement>& positions);

}  // namespace mf
