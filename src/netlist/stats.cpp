#include "netlist/stats.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mf {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats s;
  s.cells = static_cast<int>(netlist.num_cells());

  std::unordered_set<ControlSetId> used_sets;
  std::unordered_map<std::int32_t, int> chain_len;

  for (const Cell& cell : netlist.cells()) {
    switch (cell.kind) {
      case CellKind::Lut:
        ++s.luts;
        break;
      case CellKind::Ff:
        ++s.ffs;
        break;
      case CellKind::Carry4:
        ++s.carry4;
        if (cell.chain != kInvalidId) ++chain_len[cell.chain];
        break;
      case CellKind::Srl:
        ++s.srls;
        break;
      case CellKind::LutRam:
        ++s.lutrams;
        break;
      case CellKind::Bram18:
        ++s.bram18;
        break;
      case CellKind::Bram36:
        ++s.bram36;
        break;
      case CellKind::Dsp48:
        ++s.dsp;
        break;
    }
    if (cell.control_set != kInvalidId) used_sets.insert(cell.control_set);
  }
  s.control_sets = static_cast<int>(used_sets.size());

  for (const Net& net : netlist.nets()) {
    if (net.is_clock) continue;  // clocks ride dedicated global routing
    s.max_fanout = std::max(s.max_fanout, net.fanout());
  }

  s.carry_chains.reserve(chain_len.size());
  for (const auto& [chain, len] : chain_len) s.carry_chains.push_back(len);
  std::sort(s.carry_chains.begin(), s.carry_chains.end(),
            std::greater<int>());
  return s;
}

}  // namespace mf
