#pragma once
// Technology-mapped netlist representation.
//
// The paper's estimator consumes *post-synthesis* artefacts: LUT/FF/carry/
// SRL/LUTRAM/BRAM/DSP counts, control sets, and net fanout. We therefore
// model netlists directly at the mapped-cell level -- the RTL generators in
// src/rtlgen emit these cells, standing in for Vivado synthesis output.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace mf {

using CellId = std::int32_t;
using NetId = std::int32_t;
using ControlSetId = std::int32_t;
inline constexpr std::int32_t kInvalidId = -1;

/// Mapped primitive kinds (7-series library subset).
enum class CellKind : std::uint8_t {
  Lut,     ///< LUT1..LUT6 (distinguished by input count)
  Ff,      ///< FDRE/FDSE/FDCE/FDPE -- control-set bound
  Carry4,  ///< one CARRY4 segment; chains occupy vertical slice runs
  Srl,     ///< SRL16/SRL32 shift register (M-slice LUT site)
  LutRam,  ///< distributed RAM (M-slice LUT site)
  Bram18,  ///< RAMB18 half-site
  Bram36,  ///< RAMB36 full site
  Dsp48,   ///< DSP48 slice
};

[[nodiscard]] const char* to_string(CellKind kind) noexcept;

/// Control set: the (clock, set/reset, clock-enable) net triple that gates a
/// sequential element. Two FFs with different control sets cannot share a
/// slice FF half (Section V-B of the paper).
struct ControlSet {
  NetId clk = kInvalidId;
  NetId sr = kInvalidId;
  NetId ce = kInvalidId;
  friend bool operator==(const ControlSet&, const ControlSet&) = default;
};

struct Cell {
  CellKind kind = CellKind::Lut;
  ControlSetId control_set = kInvalidId;  ///< Ff / Srl / LutRam only
  std::int32_t chain = kInvalidId;        ///< carry-chain id (Carry4 only)
  std::int32_t chain_pos = 0;             ///< position within the chain
  NetId out = kInvalidId;                 ///< driven net (may be invalid)
  std::vector<NetId> inputs;              ///< data inputs (not control nets)
};

struct Net {
  std::string label;            ///< optional; empty for anonymous nets
  CellId driver = kInvalidId;   ///< kInvalidId => primary input / constant
  std::vector<CellId> sinks;    ///< cells reading this net (data pins)
  std::int32_t control_loads = 0;  ///< extra loads via control-set pins
  bool is_clock = false;

  /// Total electrical fanout, control pins included. The paper explicitly
  /// calls out FF resets and other high-fanout control signals (Section II).
  [[nodiscard]] int fanout() const noexcept {
    return static_cast<int>(sinks.size()) + control_loads;
  }
};

/// Growable netlist container with interned control sets.
class Netlist {
 public:
  // -- construction --------------------------------------------------------
  NetId add_net(std::string label = {}, bool is_clock = false);
  CellId add_cell(CellKind kind);

  /// Connect `net` to a data input of `cell`.
  void connect_input(CellId cell, NetId net);
  /// Make `cell` the driver of `net`.
  void set_output(CellId cell, NetId net);

  /// Re-point data input `index` of `cell` to `net`, fixing up sink lists.
  void rewire_input(CellId cell, std::size_t index, NetId net);

  /// Intern a control set and bind it to a sequential cell. Control nets
  /// accrue `control_loads` so their fanout is observable.
  ControlSetId make_control_set(NetId clk, NetId sr, NetId ce);
  void bind_control_set(CellId cell, ControlSetId cs);

  /// Assign a Carry4 cell to chain `chain` at position `pos`.
  void set_chain(CellId cell, std::int32_t chain, std::int32_t pos);

  /// Mark `net` as a module output port. The optimiser keeps logic reachable
  /// from output ports and sweeps the rest.
  void mark_output(NetId net);
  [[nodiscard]] bool is_output(NetId net) const;
  [[nodiscard]] const std::vector<NetId>& outputs() const noexcept {
    return outputs_;
  }

  // -- access ---------------------------------------------------------------
  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t num_control_sets() const noexcept {
    return control_sets_.size();
  }
  [[nodiscard]] const Cell& cell(CellId id) const {
    MF_CHECK(id >= 0 && static_cast<std::size_t>(id) < cells_.size());
    return cells_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const Net& net(NetId id) const {
    MF_CHECK(id >= 0 && static_cast<std::size_t>(id) < nets_.size());
    return nets_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const ControlSet& control_set(ControlSetId id) const {
    MF_CHECK(id >= 0 && static_cast<std::size_t>(id) < control_sets_.size());
    return control_sets_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept {
    return cells_;
  }
  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }

  /// Remove cells flagged dead by the optimiser; compacts ids. Returns the
  /// number of removed cells. `dead` must have one flag per cell.
  std::size_t remove_cells(const std::vector<bool>& dead);

 private:
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<ControlSet> control_sets_;
  std::vector<NetId> outputs_;
};

/// A named netlist plus provenance metadata -- the unit the flow implements.
struct Module {
  std::string name;
  std::string params;  ///< generator parameter string (provenance)
  Netlist netlist;
};

}  // namespace mf
