#include "netlist/builder.hpp"

#include <algorithm>

namespace mf {

NetId NetlistBuilder::clock() {
  if (clock_ == kInvalidId) clock_ = nl_.add_net("clk", /*is_clock=*/true);
  return clock_;
}

NetId NetlistBuilder::input(std::string label) {
  return nl_.add_net(std::move(label));
}

std::vector<NetId> NetlistBuilder::input_bus(int width,
                                             const std::string& label) {
  MF_CHECK(width > 0);
  std::vector<NetId> bus(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus[static_cast<std::size_t>(i)] =
        input(label.empty() ? std::string()
                            : label + "[" + std::to_string(i) + "]");
  }
  return bus;
}

ControlSetId NetlistBuilder::control_set(NetId sr, NetId ce) {
  return nl_.make_control_set(clock(), sr, ce);
}

NetId NetlistBuilder::lut(std::span<const NetId> inputs) {
  MF_CHECK(!inputs.empty() && inputs.size() <= 6);
  const CellId cell = nl_.add_cell(CellKind::Lut);
  for (NetId n : inputs) nl_.connect_input(cell, n);
  const NetId out = nl_.add_net();
  nl_.set_output(cell, out);
  return out;
}

NetId NetlistBuilder::lut(std::initializer_list<NetId> inputs) {
  return lut(std::span<const NetId>(inputs.begin(), inputs.size()));
}

NetId NetlistBuilder::ff(NetId d, ControlSetId cs) {
  const CellId cell = nl_.add_cell(CellKind::Ff);
  nl_.connect_input(cell, d);
  nl_.bind_control_set(cell, cs);
  const NetId q = nl_.add_net();
  nl_.set_output(cell, q);
  return q;
}

NetId NetlistBuilder::srl(NetId d, ControlSetId cs) {
  const CellId cell = nl_.add_cell(CellKind::Srl);
  nl_.connect_input(cell, d);
  nl_.bind_control_set(cell, cs);
  const NetId q = nl_.add_net();
  nl_.set_output(cell, q);
  return q;
}

NetId NetlistBuilder::lutram(std::span<const NetId> addr, NetId din,
                             ControlSetId cs) {
  const CellId cell = nl_.add_cell(CellKind::LutRam);
  for (NetId n : addr) nl_.connect_input(cell, n);
  nl_.connect_input(cell, din);
  nl_.bind_control_set(cell, cs);
  const NetId q = nl_.add_net();
  nl_.set_output(cell, q);
  return q;
}

NetId NetlistBuilder::bram18(std::span<const NetId> addr,
                             std::span<const NetId> din) {
  const CellId cell = nl_.add_cell(CellKind::Bram18);
  for (NetId n : addr) nl_.connect_input(cell, n);
  for (NetId n : din) nl_.connect_input(cell, n);
  const NetId q = nl_.add_net();
  nl_.set_output(cell, q);
  return q;
}

NetId NetlistBuilder::bram36(std::span<const NetId> addr,
                             std::span<const NetId> din) {
  const CellId cell = nl_.add_cell(CellKind::Bram36);
  for (NetId n : addr) nl_.connect_input(cell, n);
  for (NetId n : din) nl_.connect_input(cell, n);
  const NetId q = nl_.add_net();
  nl_.set_output(cell, q);
  return q;
}

NetId NetlistBuilder::dsp48(std::span<const NetId> a,
                            std::span<const NetId> b) {
  const CellId cell = nl_.add_cell(CellKind::Dsp48);
  for (NetId n : a) nl_.connect_input(cell, n);
  for (NetId n : b) nl_.connect_input(cell, n);
  const NetId p = nl_.add_net();
  nl_.set_output(cell, p);
  return p;
}

std::vector<NetId> NetlistBuilder::adder(std::span<const NetId> a,
                                         std::span<const NetId> b) {
  MF_CHECK(!a.empty() && a.size() == b.size());
  const int width = static_cast<int>(a.size());

  // One propagate/generate LUT per bit.
  std::vector<NetId> prop(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    prop[static_cast<std::size_t>(i)] =
        lut({a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)]});
  }

  // Chained CARRY4 segments, 4 bits each. The segment's output net stands in
  // for the carry-out; the sum bits are read from the propagate LUTs.
  const int chain = next_chain_id();
  NetId carry_in = kInvalidId;
  const int segments = (width + 3) / 4;
  for (int s = 0; s < segments; ++s) {
    const CellId cell = nl_.add_cell(CellKind::Carry4);
    nl_.set_chain(cell, chain, s);
    if (carry_in != kInvalidId) nl_.connect_input(cell, carry_in);
    for (int bit = 4 * s; bit < std::min(width, 4 * s + 4); ++bit) {
      nl_.connect_input(cell, prop[static_cast<std::size_t>(bit)]);
    }
    const NetId carry_out = nl_.add_net();
    nl_.set_output(cell, carry_out);
    carry_in = carry_out;
  }
  return prop;
}

std::vector<NetId> NetlistBuilder::register_bus(std::span<const NetId> bus,
                                                ControlSetId cs) {
  std::vector<NetId> q;
  q.reserve(bus.size());
  for (NetId n : bus) q.push_back(ff(n, cs));
  return q;
}

NetId NetlistBuilder::reduce(std::span<const NetId> inputs, int arity) {
  MF_CHECK(!inputs.empty());
  MF_CHECK(arity >= 2 && arity <= 6);
  std::vector<NetId> level(inputs.begin(), inputs.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    next.reserve(level.size() / static_cast<std::size_t>(arity) + 1);
    for (std::size_t i = 0; i < level.size();
         i += static_cast<std::size_t>(arity)) {
      const std::size_t n =
          std::min(level.size() - i, static_cast<std::size_t>(arity));
      if (n == 1) {
        next.push_back(level[i]);
      } else {
        next.push_back(lut(std::span<const NetId>(level.data() + i, n)));
      }
    }
    level = std::move(next);
  }
  return level.front();
}

std::vector<NetId> NetlistBuilder::lut_layer(std::span<const NetId> inputs,
                                             int count, int arity) {
  MF_CHECK(!inputs.empty() && count > 0);
  MF_CHECK(arity >= 1 && arity <= 6);
  std::vector<NetId> outs(static_cast<std::size_t>(count));
  // Each LUT samples the input bus with its own (offset, stride) pair so
  // the input combinations are combinatorially distinct -- otherwise the
  // optimiser's duplicate merge (correctly) collapses the layer.
  const std::size_t n = inputs.size();
  for (int i = 0; i < count; ++i) {
    const std::size_t offset = (static_cast<std::size_t>(i) * 7) % n;
    const std::size_t stride =
        n > 1 ? 1 + (static_cast<std::size_t>(i) / n) % (n - 1) : 1;
    std::vector<NetId> picks(static_cast<std::size_t>(arity));
    for (int k = 0; k < arity; ++k) {
      picks[static_cast<std::size_t>(k)] =
          inputs[(offset + static_cast<std::size_t>(k) * stride) % n];
    }
    outs[static_cast<std::size_t>(i)] = lut(picks);
  }
  return outs;
}

std::vector<NetId> NetlistBuilder::ff_chain(NetId d, int depth,
                                            ControlSetId cs) {
  MF_CHECK(depth > 0);
  std::vector<NetId> taps(static_cast<std::size_t>(depth));
  NetId cur = d;
  for (int i = 0; i < depth; ++i) {
    cur = ff(cur, cs);
    taps[static_cast<std::size_t>(i)] = cur;
  }
  return taps;
}

}  // namespace mf
