#pragma once
// Per-client admission control for `macroflow serve` (DESIGN.md section 13).
//
// Classic token bucket per client: a bucket refills at `rate_per_second`
// tokens up to a `burst` cap; one admitted ESTIMATE costs one token. A
// client with an empty bucket is *shed* -- the server answers `ERR 429`
// immediately and the request never reaches the coalescer queue, so one
// greedy tenant cannot add latency to anybody else's batch.
//
// Time is injected (nanosecond timestamps from the caller's monotonic
// clock) rather than read here: unit tests drive the refill math with exact
// synthetic clocks, and the server passes steady_clock once per request.
// Refill is computed lazily on access, so an idle client costs nothing.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mf {

struct QuotaOptions {
  /// Sustained tokens per second per client; <= 0 disables admission
  /// control entirely (every request admitted, nothing tracked).
  double rate_per_second = 0.0;
  /// Bucket capacity: the burst a freshly seen (or long-idle) client may
  /// spend at once. Must be >= 1 when quotas are enabled.
  double burst = 16.0;
  /// Distinct client buckets tracked at once. At the cap, a *new* client
  /// recycles the stalest bucket (oldest refill timestamp) -- bounded
  /// memory beats perfect fairness against an adversary minting fresh
  /// client names per request.
  std::size_t max_clients = 4096;
};

class ClientQuota {
 public:
  explicit ClientQuota(QuotaOptions options);

  /// Spend one token of `client`'s bucket at monotonic time `now_ns`.
  /// True = admitted, false = shed (the 429 path). Thread-safe.
  bool try_acquire(const std::string& client, std::uint64_t now_ns);

  [[nodiscard]] bool enabled() const noexcept {
    return options_.rate_per_second > 0.0;
  }
  [[nodiscard]] std::uint64_t admitted_total() const;
  [[nodiscard]] std::uint64_t shed_total() const;
  [[nodiscard]] std::size_t tracked_clients() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t refill_ns = 0;  ///< when `tokens` was last brought current
  };

  QuotaOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace mf
