#include "srv/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/check.hpp"
#include "common/io_util.hpp"
#include "common/parse_num.hpp"
#include "srv/protocol.hpp"

namespace mf {
namespace {

std::string errno_text() { return std::strerror(errno); }

std::chrono::steady_clock::duration seconds_duration(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

std::optional<std::string> client_options_error(const ClientOptions& o) {
  if (o.socket_path.empty()) return "client socket path must not be empty";
  if (o.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return "socket path too long for sockaddr_un";
  }
  if (o.client_name.empty()) return "client name must not be empty";
  if (o.client_name.size() + 24 > kMaxTraceBytes) {
    return "client name too long for a trace id";
  }
  if (!(o.connect_deadline_s > 0.0)) return "connect deadline must be > 0";
  if (!(o.request_deadline_s > 0.0)) return "request deadline must be > 0";
  if (o.max_retries < 0) return "max retries must be >= 0";
  if (!(o.backoff_base_ms > 0.0)) return "backoff base must be > 0 ms";
  if (o.backoff_cap_ms < o.backoff_base_ms) {
    return "backoff cap must be >= backoff base";
  }
  if (o.breaker_threshold < 0) return "breaker threshold must be >= 0";
  if (o.breaker_threshold > 0 && !(o.breaker_cooldown_s > 0.0)) {
    return "breaker cooldown must be > 0 when the breaker is enabled";
  }
  const NetChaosOptions& c = o.chaos;
  const double p_sum =
      c.p_sever + c.p_stall + c.p_truncate + c.p_duplicate + c.p_garbage;
  if (c.p_sever < 0.0 || c.p_stall < 0.0 || c.p_truncate < 0.0 ||
      c.p_duplicate < 0.0 || c.p_garbage < 0.0 || p_sum > 1.0) {
    return "chaos probabilities must be >= 0 and sum to <= 1";
  }
  if (c.stall_ms < 0.0) return "chaos stall must be >= 0 ms";
  if (c.enabled && !o.trace && (c.p_duplicate > 0.0 || c.p_garbage > 0.0)) {
    // Without id= filtering a duplicated or injected line would be
    // delivered as some later request's answer -- exactly the corruption
    // the tracing mode exists to rule out.
    return "duplicate/garbage chaos requires tracing";
  }
  return std::nullopt;
}

ServeClient::ServeClient(ClientOptions options)
    : options_(std::move(options)),
      chaos_(options_.chaos),
      jitter_(task_seed(options_.jitter_seed, options_.client_name)) {
  const std::optional<std::string> error = client_options_error(options_);
  MF_CHECK_MSG(!error, error ? *error : "");
  ignore_sigpipe();
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

void ServeClient::drop_connection() {
  close();
  ++stats_.transport_faults;
}

void ServeClient::backoff_sleep(int attempt, Clock::time_point deadline) {
  const int exp = std::min(attempt - 1, 20);
  double ms = options_.backoff_base_ms * std::ldexp(1.0, exp);
  if (ms > options_.backoff_cap_ms) ms = options_.backoff_cap_ms;
  // Deterministic jitter in [0.5, 1.0)x: decorrelates a fleet of clients
  // hammering a respawning daemon while staying replayable per seed.
  ms *= 0.5 + 0.5 * jitter_.uniform();
  auto wake = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(ms));
  if (wake > deadline) wake = deadline;
  std::this_thread::sleep_until(wake);
}

bool ServeClient::ensure_connected(Clock::time_point deadline,
                                   std::string* error) {
  if (fd_ >= 0) return true;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  std::string last = "connect(" + options_.socket_path + "): never attempted";
  for (int attempt = 1;; ++attempt) {
    if (cancelled()) {
      *error = "cancelled";
      return false;
    }
    if (Clock::now() >= deadline) {
      *error = "connect deadline exceeded; last: " + last;
      return false;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      last = "socket(): " + errno_text();
    } else {
      int rc;
      do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
      } while (rc != 0 && errno == EINTR);
      if (rc == 0) {
        fd_ = fd;
        rx_.clear();
        ++stats_.connects;
        if (stats_.connects > 1) ++stats_.reconnects;
        ++conn_ordinal_;
        return true;
      }
      last = "connect(" + options_.socket_path + "): " + errno_text();
      ::close(fd);
    }
    backoff_sleep(attempt, deadline);
  }
}

bool ServeClient::exchange(const std::string& wire, const std::string& want_id,
                           Clock::time_point deadline, std::string* line,
                           std::string* error) {
  const auto chaos_stall = [&] {
    auto wake = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        chaos_.stall_ms()));
    if (wake > deadline) wake = deadline;
    std::this_thread::sleep_until(wake);
  };
  // Scan the receive buffer for our response. Returns true once matched;
  // everything else complete on the stream is a stray (duplicate echo,
  // injected garbage) and is discarded -- in untraced mode the first
  // complete line wins, which is the classic match-by-order protocol.
  const auto try_deliver = [&]() -> bool {
    while (std::optional<std::string> popped = pop_line(rx_)) {
      if (want_id.empty()) {
        *line = std::move(*popped);
        return true;
      }
      if (std::string_view(response_trace(*popped)) != want_id) {
        ++stats_.stray_lines;
        continue;
      }
      *line = std::move(*popped);
      return true;
    }
    return false;
  };

  // Send, through the chaos shim's tx boundary.
  const int tx_op = ++op_ordinal_;
  const NetChaos::Action tx_act = chaos_.next(conn_ordinal_, tx_op, true);
  switch (tx_act) {
    case NetChaos::Action::Sever:
      drop_connection();
      *error = "chaos: severed before send";
      return false;
    case NetChaos::Action::Truncate: {
      // The server drains the torn, unterminated line and answers nothing.
      const std::size_t cut = std::max<std::size_t>(1, wire.size() / 2);
      (void)write_all(fd_, std::string_view(wire).substr(0, cut));
      drop_connection();
      *error = "chaos: truncated request";
      return false;
    }
    case NetChaos::Action::Stall:
      chaos_stall();
      break;
    default:
      break;
  }
  std::string payload = wire;
  if (tx_act == NetChaos::Action::Duplicate) {
    payload = wire + wire;
  } else if (tx_act == NetChaos::Action::Garbage) {
    payload = chaos_.garbage_line(conn_ordinal_, tx_op) + wire;
  }
  if (!write_all(fd_, payload)) {
    drop_connection();
    *error = "write: " + errno_text();
    return false;
  }

  // Receive until our line, the deadline, or a fault.
  for (;;) {
    if (try_deliver()) return true;
    if (cancelled()) {
      drop_connection();
      *error = "cancelled";
      return false;
    }
    const auto now = Clock::now();
    if (now >= deadline) {
      drop_connection();
      *error = "request deadline exceeded";
      return false;
    }
    // Short poll slices keep cancellation responsive regardless of budget.
    const double remaining =
        std::chrono::duration<double>(deadline - now).count();
    if (!wait_readable(fd_,
                       timeout_ms_from_seconds(std::min(remaining, 0.05)))) {
      continue;
    }
    const int rx_op = ++op_ordinal_;
    const NetChaos::Action act = chaos_.next(conn_ordinal_, rx_op, false);
    if (act == NetChaos::Action::Sever) {
      drop_connection();
      *error = "chaos: severed before read";
      return false;
    }
    if (act == NetChaos::Action::Stall) chaos_stall();
    std::string chunk;
    const std::optional<std::size_t> n = read_some(fd_, chunk);
    if (!n) {
      drop_connection();
      *error = "read: " + errno_text();
      return false;
    }
    if (*n == 0) {
      drop_connection();
      *error = "connection closed by server";
      return false;
    }
    switch (act) {
      case NetChaos::Action::Truncate: {
        // Deliver a strict prefix, then sever. Anything already complete
        // in the prefix is still honestly the server's bytes, so one last
        // delivery scan runs before the fault is reported.
        chunk.resize(chunk.size() / 2);
        rx_ += chunk;
        const bool matched = try_deliver();
        drop_connection();
        if (matched) return true;
        *error = "chaos: truncated response";
        return false;
      }
      case NetChaos::Action::Duplicate:
        rx_ += chunk;
        rx_ += chunk;
        break;
      case NetChaos::Action::Garbage:
        rx_ += chaos_.garbage_line(conn_ordinal_, rx_op);
        rx_ += chunk;
        break;
      default:
        rx_ += chunk;
        break;
    }
  }
}

ServeClient::Result ServeClient::request(const std::string& line) {
  const auto start = Clock::now();
  ++stats_.requests;
  Result result;
  const auto finish = [&]() -> Result& {
    stats_.request_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
    stats_.chaos_faults =
        static_cast<std::uint64_t>(chaos_.faults_injected());
    return result;
  };

  // Sticky breaker: while open, fail fast until the cooldown passes; then
  // exactly this request becomes the half-open probe.
  if (breaker_open_ && start < breaker_until_) {
    ++stats_.breaker_fastfails;
    ++stats_.failures;
    result.error = "circuit breaker open";
    return finish();
  }

  const auto deadline = start + seconds_duration(options_.request_deadline_s);
  std::string want_id;
  std::string wire;
  if (options_.trace) {
    want_id = options_.client_name + ":" + std::to_string(++seq_);
    wire = "id=" + want_id + " " + line + "\n";
  } else {
    wire = line + "\n";
  }
  last_trace_id_ = want_id;

  std::string response;
  std::string error;
  bool delivered = false;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Idempotent retry: same bytes, same id, on a fresh connection (the
      // old one is already closed, so a late answer to the earlier send
      // can never surface here).
      ++stats_.retries;
      backoff_sleep(attempt, deadline);
    }
    if (cancelled()) {
      error = "cancelled";
      break;
    }
    if (Clock::now() >= deadline) {
      error = "request deadline exceeded";
      break;
    }
    const auto connect_deadline =
        std::min(deadline, Clock::now() + seconds_duration(
                               options_.connect_deadline_s));
    if (!ensure_connected(connect_deadline, &error)) {
      if (cancelled() || Clock::now() >= deadline) break;
      continue;
    }
    if (exchange(wire, want_id, deadline, &response, &error)) {
      delivered = true;
      break;
    }
  }

  if (delivered) {
    result.delivered = true;
    result.line = std::move(response);
    result.code = response_code(result.line);
    if (result.code == 0) {
      ++stats_.ok;
    } else {
      ++stats_.protocol_errors;
    }
    consecutive_failures_ = 0;
    breaker_open_ = false;
    return finish();
  }
  ++stats_.failures;
  result.error = error.empty() ? "retries exhausted" : error;
  if (options_.breaker_threshold > 0) {
    ++consecutive_failures_;
    if (consecutive_failures_ >= options_.breaker_threshold) {
      // Open (or re-arm after a failed half-open probe). The consecutive
      // count only ever resets on a delivered response -- the stickiness.
      breaker_open_ = true;
      breaker_until_ =
          Clock::now() + seconds_duration(options_.breaker_cooldown_s);
      ++stats_.breaker_opens;
    }
  }
  return finish();
}

namespace {

/// Strip the OK framing and trace echo off a delivered response line.
std::string ok_payload(const std::string& line, const std::string& trace_id) {
  std::string_view v = line;
  if (v.rfind("OK ", 0) == 0) {
    v.remove_prefix(3);
  } else if (v == "OK") {
    v = {};
  }
  if (!trace_id.empty()) {
    const std::string echo = " id=" + trace_id;
    if (v.size() >= echo.size() &&
        v.substr(v.size() - echo.size()) == echo) {
      v.remove_suffix(echo.size());
    }
  }
  return std::string(v);
}

void set_error(std::string* error, std::string text) {
  if (error != nullptr) *error = std::move(text);
}

}  // namespace

std::optional<double> ServeClient::estimate(const std::string& tenant,
                                            const std::string& model,
                                            const std::vector<double>& row,
                                            std::string* error) {
  std::string line = "ESTIMATE " + tenant + " " + model;
  for (const double v : row) {
    line += ' ';
    line += format_double(v);
  }
  const Result result = request(line);
  if (!result.delivered) {
    set_error(error, result.error);
    return std::nullopt;
  }
  if (result.code != 0) {
    set_error(error, result.line);
    return std::nullopt;
  }
  const std::optional<double> cf = parse_ok_cf(result.line);
  if (!cf) set_error(error, "unparseable OK payload: " + result.line);
  return cf;
}

bool ServeClient::ping(std::string* error) {
  const Result result = request("PING");
  if (result.delivered && result.code == 0) return true;
  set_error(error, result.delivered ? result.line : result.error);
  return false;
}

std::optional<std::string> ServeClient::info(const std::string& model,
                                             std::string* error) {
  const Result result = request("INFO " + model);
  if (!result.delivered || result.code != 0) {
    set_error(error, result.delivered ? result.line : result.error);
    return std::nullopt;
  }
  return ok_payload(result.line, last_trace_id_);
}

std::optional<std::string> ServeClient::trace(const std::string& id,
                                              std::string* error) {
  const Result result = request("TRACE " + id);
  if (!result.delivered || result.code != 0) {
    set_error(error, result.delivered ? result.line : result.error);
    return std::nullopt;
  }
  return ok_payload(result.line, last_trace_id_);
}

}  // namespace mf
