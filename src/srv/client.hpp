#pragma once
// Resilient client for the `macroflow serve` daemon (DESIGN.md section 14).
//
// Every consumer of the serving protocol (the CLI's predict/estimate/ping
// verbs, bench_serving_load, the chaos campaign) talks through ServeClient
// instead of hand-rolling socket I/O. One request() walks a small state
// machine:
//
//   closed --connect--> connected --send--> awaiting --match--> delivered
//      ^                                       |
//      +--- backoff (capped exponential x seeded jitter) on any transport
//           fault: connect refusal, severed connection, EOF/EPIPE mid-
//           exchange, a torn or mismatched response line, a read deadline
//
// Retry safety: every protocol verb is a pure read (prediction is
// deterministic per row and bundle version), so a request that died on the
// wire is simply resent -- same bytes, same `id=` stamp -- on a *fresh*
// connection. Closing the old connection before the retry is what makes
// this airtight: a late answer to the first send dies with its socket and
// can never be matched to a later request.
//
// Tracing (`trace`, on by default): each request line is stamped
// `id=<client>:<seq>` and only a response echoing that exact id is
// delivered; anything else on the stream (a duplicated answer, injected
// garbage) is counted in `stray_lines` and discarded. Untraced mode keeps
// the classic match-by-order protocol and therefore must not be combined
// with duplicate/garbage chaos.
//
// The circuit breaker mirrors the serve-side canary breaker's stickiness:
// `breaker_threshold` *consecutive* failed requests open it; while open,
// requests fail fast (no connect storm against a dead daemon) until
// `breaker_cooldown_s` passes, then a single half-open probe either closes
// it or re-opens it on the spot. The consecutive-failure count resets only
// on a delivered response, never by time alone.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "srv/net_chaos.hpp"

namespace mf {

struct ClientOptions {
  /// Unix-domain socket the daemon (or its supervisor) listens on.
  std::string socket_path;
  /// Trace-id prefix: requests are stamped `id=<client_name>:<seq>`.
  std::string client_name = "client";
  /// Budget for one connect attempt sequence (refused/missing sockets are
  /// retried with backoff inside it -- covers a daemon still starting up).
  double connect_deadline_s = 5.0;
  /// End-to-end budget for one request(), retries included.
  double request_deadline_s = 10.0;
  /// Transport retries per request before giving up.
  int max_retries = 16;
  double backoff_base_ms = 2.0;
  double backoff_cap_ms = 250.0;
  /// Seeds the jitter stream (forked per client_name), so a fleet of
  /// clients backs off deterministically yet decorrelated.
  std::uint64_t jitter_seed = 0x6a17ULL;
  /// Stamp id= tokens and filter responses by them (see header comment).
  bool trace = true;
  /// Consecutive failed requests that open the breaker; 0 disables it.
  int breaker_threshold = 0;
  double breaker_cooldown_s = 1.0;
  /// Fault-injection shim for chaos campaigns; disabled by default.
  NetChaosOptions chaos;
  const CancelToken* cancel = nullptr;
};

/// nullopt = valid, otherwise the reason (the CLI's exit-2 contract).
std::optional<std::string> client_options_error(const ClientOptions& options);

struct ClientStats {
  std::uint64_t requests = 0;         ///< request() calls
  std::uint64_t ok = 0;               ///< delivered OK responses
  std::uint64_t protocol_errors = 0;  ///< delivered ERR responses
  std::uint64_t failures = 0;         ///< gave up (deadline/retries/breaker)
  std::uint64_t retries = 0;          ///< request resent after a fault
  std::uint64_t connects = 0;         ///< successful connect()s
  std::uint64_t reconnects = 0;       ///< connects after the first
  std::uint64_t transport_faults = 0; ///< severs, EOFs, torn/late responses
  std::uint64_t stray_lines = 0;      ///< discarded duplicate/garbage lines
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_fastfails = 0;
  std::uint64_t chaos_faults = 0;     ///< injected by the NetChaos shim
  Log2Histogram request_ns;           ///< end-to-end incl. retries
};

/// NOT thread-safe: one ServeClient per thread (each keeps its own
/// connection, sequence counter, and jitter stream).
class ServeClient {
 public:
  struct Result {
    bool delivered = false;  ///< a response line reached the caller
    int code = 0;            ///< 0 = OK, else the protocol ERR code
    std::string line;        ///< the response line (terminator stripped)
    std::string error;       ///< transport diagnosis when !delivered
  };

  explicit ServeClient(ClientOptions options);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request line (no terminator) and deliver its response.
  Result request(const std::string& line);

  /// ESTIMATE sugar: nullopt with `*error` set on transport failure or a
  /// protocol ERR; otherwise the exact served CF (bit-identity contract).
  std::optional<double> estimate(const std::string& tenant,
                                 const std::string& model,
                                 const std::vector<double>& row,
                                 std::string* error = nullptr);
  /// PING sugar: true on `OK pong`.
  bool ping(std::string* error = nullptr);
  /// INFO sugar: the payload (`model=... width=N`) without the OK framing.
  std::optional<std::string> info(const std::string& model,
                                  std::string* error = nullptr);
  /// TRACE sugar: the payload for a previously traced request id.
  std::optional<std::string> trace(const std::string& id,
                                   std::string* error = nullptr);

  /// Drop the connection (next request reconnects). Idempotent.
  void close();

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int chaos_faults() const noexcept {
    return chaos_.faults_injected();
  }
  /// The id= stamp the most recent request() used ("" = untraced).
  [[nodiscard]] const std::string& last_trace_id() const noexcept {
    return last_trace_id_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] bool cancelled() const noexcept {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  }
  /// Connect (with in-budget backoff) unless already connected. False once
  /// `deadline` passes or on cancellation.
  bool ensure_connected(Clock::time_point deadline, std::string* error);
  /// Capped exponential backoff with deterministic jitter, clipped to the
  /// deadline. `attempt` is 1-based.
  void backoff_sleep(int attempt, Clock::time_point deadline);
  /// Sever the transport and account one fault.
  void drop_connection();
  /// One send+receive exchange on the current connection. True with the
  /// matched response in `*line`; false = transport fault (connection
  /// already dropped, caller retries).
  bool exchange(const std::string& wire, const std::string& want_id,
                Clock::time_point deadline, std::string* line,
                std::string* error);

  ClientOptions options_;
  ClientStats stats_;
  NetChaos chaos_;
  Rng jitter_;
  int fd_ = -1;
  std::string rx_;             ///< receive buffer (cleared on reconnect)
  std::uint64_t seq_ = 0;      ///< trace-id sequence
  int conn_ordinal_ = -1;      ///< chaos connection index
  int op_ordinal_ = 0;         ///< chaos operation index (monotonic)
  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  Clock::time_point breaker_until_{};
  std::string last_trace_id_;
};

}  // namespace mf
