#include "srv/canary.hpp"

#include "common/check.hpp"

namespace mf {

CanaryController::CanaryController(CanaryOptions options) : options_(options) {
  MF_CHECK_MSG(options_.percent >= 0 && options_.percent <= 100,
               "canary percent must be 0..100");
  MF_CHECK_MSG(options_.fail_threshold >= 1,
               "canary fail threshold must be >= 1");
  MF_CHECK_MSG(options_.promote_after >= 1,
               "canary promote-after must be >= 1");
}

std::uint32_t CanaryController::client_hash(std::string_view client) noexcept {
  // FNV-1a: tiny, seedless, and byte-order independent -- the point is a
  // stable, well-mixed client -> percentile mapping, not security.
  std::uint32_t hash = 2166136261u;
  for (const char c : client) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 16777619u;
  }
  return hash;
}

bool CanaryController::use_canary(std::string_view client) const noexcept {
  if (status_.canary_version == 0) return false;
  return client_hash(client) % 100u <
         static_cast<std::uint32_t>(options_.percent);
}

int CanaryController::version_to_load(int on_disk_version) const noexcept {
  if (on_disk_version <= 0) return 0;
  if (bad_versions_.count(on_disk_version) != 0) return 0;
  if (on_disk_version == status_.stable_version ||
      on_disk_version == status_.canary_version) {
    return 0;
  }
  // Nothing stable yet: any clean version is worth having. Otherwise only
  // strictly newer versions are candidates (an older file appearing late is
  // history, not an upgrade).
  if (status_.stable_version == 0) return on_disk_version;
  return on_disk_version > status_.stable_version ? on_disk_version : 0;
}

void CanaryController::on_load_ok(int version) {
  if (version <= 0 || bad_versions_.count(version) != 0) return;
  if (load_fail_version_ == version) load_fail_count_ = 0;
  if (status_.stable_version == 0) {
    status_.stable_version = version;
    return;
  }
  if (version <= status_.stable_version ||
      version == status_.canary_version) {
    return;
  }
  if (options_.percent <= 0) {
    // Plain hot reload: no canary phase configured, swap stable directly.
    status_.stable_version = version;
    return;
  }
  // A newer clean version supersedes any live canary as *the* candidate.
  status_.canary_version = version;
  status_.consecutive_failures = 0;
  status_.consecutive_successes = 0;
  ++status_.canaries_started;
}

void CanaryController::on_load_failed(int version) {
  if (version <= 0 || bad_versions_.count(version) != 0) return;
  if (version <= status_.stable_version) return;
  if (load_fail_version_ != version) {
    load_fail_version_ = version;
    load_fail_count_ = 0;
  }
  if (++load_fail_count_ >= options_.fail_threshold) rollback(version);
}

void CanaryController::on_canary_result(bool ok) {
  if (status_.canary_version == 0) return;
  if (ok) {
    status_.consecutive_failures = 0;
    if (++status_.consecutive_successes >= options_.promote_after) {
      status_.stable_version = status_.canary_version;
      status_.canary_version = 0;
      status_.consecutive_successes = 0;
      ++status_.promotions;
    }
    return;
  }
  status_.consecutive_successes = 0;
  if (++status_.consecutive_failures >= options_.fail_threshold) {
    rollback(status_.canary_version);
  }
}

void CanaryController::rollback(int version) {
  bad_versions_.insert(version);
  if (status_.canary_version == version) status_.canary_version = 0;
  if (load_fail_version_ == version) {
    load_fail_version_ = 0;
    load_fail_count_ = 0;
  }
  status_.consecutive_failures = 0;
  status_.consecutive_successes = 0;
  ++status_.rollbacks;
}

}  // namespace mf
