#include "srv/supervised.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/parse_num.hpp"
#include "farm/supervisor.hpp"
#include "srv/server.hpp"

namespace mf {
namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

void say(const SupervisedOptions& options, const char* fmt, ...) {
  if (options.quiet) return;
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
}

/// Whole heartbeat file as a string; "" when unreadable (treated as "no
/// beat yet", not as a failure -- the file appears after the child's first
/// snapshot interval).
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Signal the child's whole process group, falling back to the pid alone
/// (same helper as the farm supervisor's signal topology).
void signal_child(pid_t pid, int signo) {
  if (::kill(-pid, signo) != 0) (void)::kill(pid, signo);
}

pid_t spawn_child(const SupervisedOptions& options, int listen_fd,
                  std::string* error) {
  const std::string exe =
      options.child_exe.empty() ? self_executable_path() : options.child_exe;
  if (exe.empty()) {
    *error = "cannot resolve child executable";
    return -1;
  }
  std::vector<std::string> args;
  args.reserve(options.child_args.size() + 1);
  args.push_back(exe);
  for (const std::string& arg : options.child_args) {
    args.push_back(arg == "{LISTEN_FD}" ? std::to_string(listen_fd) : arg);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork(): ") + std::strerror(errno);
    return -1;
  }
  if (pid == 0) {
    // Child: own process group (so teardown kills the whole subtree),
    // SIGTERM on supervisor death, orphan guard, then exec. Only
    // async-signal-safe calls between fork and exec.
    (void)::setpgid(0, 0);
    (void)::prctl(PR_SET_PDEATHSIG, SIGTERM);
    if (::getppid() == 1) ::_exit(127);  // supervisor died before prctl took
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }
  // Both sides set the group so a kill(-pid) right after spawn cannot race
  // the child's own setpgid.
  (void)::setpgid(pid, pid);
  return pid;
}

/// SIGTERM, wait out the grace window, SIGKILL, reap. Returns the child's
/// wait status (0 when it was already gone).
int tear_down(const SupervisedOptions& options, pid_t pid) {
  signal_child(pid, SIGTERM);
  const Clock::time_point kill_at =
      Clock::now() + seconds_duration(options.grace_seconds);
  bool escalated = false;
  for (;;) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    if (got < 0 && errno != EINTR) return 0;
    if (!escalated && Clock::now() >= kill_at) {
      signal_child(pid, SIGKILL);
      escalated = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

std::optional<std::string> supervised_options_error(
    const SupervisedOptions& o) {
  if (o.socket_path.empty()) return "supervised mode needs a socket path";
  if (o.child_args.empty()) return "supervised child args must not be empty";
  bool has_fd_slot = false;
  for (const std::string& arg : o.child_args) {
    if (arg == "{LISTEN_FD}") has_fd_slot = true;
  }
  if (!has_fd_slot) return "child args must carry a {LISTEN_FD} placeholder";
  if (!(o.heartbeat_timeout_s > 0.0)) return "heartbeat timeout must be > 0";
  if (!(o.backoff_base_ms > 0.0)) return "backoff base must be > 0 ms";
  if (o.backoff_cap_ms < o.backoff_base_ms) {
    return "backoff cap must be >= backoff base";
  }
  if (o.max_respawns < 0) return "max respawns must be >= 0";
  if (!(o.grace_seconds >= 0.0)) return "grace must be >= 0 seconds";
  if (!(o.poll_ms > 0.0)) return "poll must be > 0 ms";
  return std::nullopt;
}

SupervisedResult run_supervised(const SupervisedOptions& options) {
  SupervisedResult result;
  if (const std::optional<std::string> bad =
          supervised_options_error(options)) {
    result.error = *bad;
    return result;
  }
  std::string error;
  const int listen_fd = bind_unix_listener(options.socket_path, &error);
  if (listen_fd < 0) {
    result.error = error;
    return result;
  }

  const auto cancelled = [&] {
    return options.cancel != nullptr && options.cancel->cancelled();
  };
  const auto backoff = [&](int attempt) {
    const double ms = std::min(
        options.backoff_cap_ms,
        options.backoff_base_ms * std::ldexp(1.0, std::min(attempt, 20)));
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
  };

  pid_t child = -1;
  int crash_count = 0;
  Clock::time_point respawn_at = Clock::now();
  std::string last_beat;
  Clock::time_point beat_seen = Clock::now();
  const Clock::duration beat_budget =
      seconds_duration(options.heartbeat_timeout_s);

  for (;;) {
    if (cancelled()) {
      if (child > 0) (void)tear_down(options, child);
      ::close(listen_fd);
      ::unlink(options.socket_path.c_str());
      result.exit_code = 130;
      return result;
    }

    if (child <= 0 && Clock::now() >= respawn_at) {
      child = spawn_child(options, listen_fd, &error);
      if (child < 0) {
        // fork/exe failure counts against the same budget as a crash.
        ++crash_count;
        if (crash_count > options.max_respawns) {
          ::close(listen_fd);
          ::unlink(options.socket_path.c_str());
          result.error = "spawn failed: " + error;
          result.exit_code = 2;
          return result;
        }
        respawn_at = Clock::now() + backoff(crash_count);
      } else {
        ++result.spawns;
        if (result.spawns > 1) ++result.respawns;
        last_beat = slurp(options.heartbeat_path);
        beat_seen = Clock::now();
        if (options.on_spawn) options.on_spawn(child);
        say(options, "[serve] daemon generation %ld up (pid %d)\n",
            result.spawns, static_cast<int>(child));
      }
    }

    if (child > 0) {
      int status = 0;
      const pid_t got = ::waitpid(child, &status, WNOHANG);
      if (got == child) {
        const bool clean = WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                                                 WEXITSTATUS(status) == 130);
        if (clean) {
          // The daemon shut itself down on purpose (EOF / direct signal);
          // mirror its code rather than second-guessing it.
          ::close(listen_fd);
          ::unlink(options.socket_path.c_str());
          result.exit_code = WEXITSTATUS(status);
          return result;
        }
        child = -1;
        ++crash_count;
        say(options, "[serve] daemon died (%s %d); respawn %d/%d\n",
            WIFSIGNALED(status) ? "signal" : "exit",
            WIFSIGNALED(status) ? WTERMSIG(status)
                                : (WIFEXITED(status) ? WEXITSTATUS(status)
                                                     : status),
            crash_count,
            options.max_respawns == INT_MAX ? -1 : options.max_respawns);
        if (crash_count > options.max_respawns) {
          ::close(listen_fd);
          ::unlink(options.socket_path.c_str());
          result.error = "daemon keeps dying; respawn budget exhausted";
          result.exit_code = 2;
          return result;
        }
        respawn_at = Clock::now() + backoff(crash_count);
        continue;
      }
      if (!options.heartbeat_path.empty()) {
        std::string beat = slurp(options.heartbeat_path);
        if (!beat.empty() && beat != last_beat) {
          last_beat = std::move(beat);
          beat_seen = Clock::now();
        } else if (Clock::now() - beat_seen > beat_budget) {
          // Alive but wedged: content stopped changing. Kill hard; the
          // reap branch above turns it into a respawn next poll.
          say(options, "[serve] heartbeat stale for %.1fs; killing pid %d\n",
              options.heartbeat_timeout_s, static_cast<int>(child));
          signal_child(child, SIGKILL);
          ++result.hung_kills;
          beat_seen = Clock::now();  // deliver the kill once
        }
      }
    }

    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(options.poll_ms));
  }
}

std::optional<int> maybe_run_serve_child(int argc, char** argv) {
  if (argc < 2 || std::string_view(argv[1]) != "--serve-child") {
    return std::nullopt;
  }
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: %s --serve-child <registry> <listen_fd> "
                 "<stats_json>\n",
                 argv[0]);
    return 2;
  }
  const std::optional<int> listen_fd = parse_number<int>(argv[3]);
  if (!listen_fd || *listen_fd < 0) {
    std::fprintf(stderr, "--serve-child: bad listen fd '%s'\n", argv[3]);
    return 2;
  }
  static CancelToken cancel;
  install_signal_cancel(&cancel);
  ServerOptions options;
  options.registry_dir = argv[2];
  options.listen_fd = *listen_fd;
  options.stats_json_path = argv[4];
  // Test/bench child: tight knobs so hot reload and the heartbeat snapshot
  // tick fast enough for campaigns to observe within seconds.
  options.coalesce.coalesce_us = 200.0;
  options.coalesce.max_batch = 32;
  options.coalesce.queue_capacity = 128;
  options.reload_poll_seconds = 0.05;
  options.stats_interval_seconds = 0.05;
  options.cancel = &cancel;
  EstimatorServer server(std::move(options));
  return server.run();
}

}  // namespace mf
