#pragma once
// `macroflow serve`: the long-running estimator serving daemon
// (DESIGN.md section 13).
//
// One EstimatorServer owns the whole serving stack for a registry
// directory:
//
//   connections (socket or stdio) -> protocol parse -> admission control
//     -> Coalescer (cross-request batching under a latency budget)
//       -> per-model canary routing -> EstimatorService::predict_rows
//
// plus a maintenance thread that rescans the ModelRegistry for new bundle
// versions (hot reload / canary rollout) and writes periodic atomic-rename
// JSON metric snapshots.
//
// Threading model: one detached-equivalent thread per accepted connection
// (counted, bounded by max_connections, joined-by-count at shutdown), the
// coalescer's flush thread, and the maintenance thread. All blocking waits
// are poll()-based with short timeouts (common/io_util.hpp explains why the
// SA_RESTART signal handler makes that mandatory), so a tripped CancelToken
// is noticed within ~50 ms everywhere.
//
// Shutdown contract (the CLI's exit-code contract): a SIGINT trips the
// shared CancelToken; every connection loop finishes answering the requests
// it has already read (drain -- nothing accepted after the trip), the
// listener closes, the maintenance thread writes a final snapshot, and
// run() returns 130. A stdio session that hits EOF returns 0. Listener
// setup failures (unwritable socket path, address in use by a *live*
// daemon) fail fast with 2 before a single request is read; a stale socket
// file from a dead daemon is detected by a probe connect and silently
// replaced.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <condition_variable>

#include "common/cancel.hpp"
#include "common/histogram.hpp"
#include "serve/service.hpp"
#include "srv/canary.hpp"
#include "srv/coalescer.hpp"
#include "srv/protocol.hpp"
#include "srv/quota.hpp"

namespace mf {

struct ServerOptions {
  /// ModelRegistry directory the daemon serves from.
  std::string registry_dir = "macroflow-models";
  /// Unix-domain socket path (socket mode). Mutually exclusive with stdio.
  std::string socket_path;
  /// Already-listening descriptor inherited from a supervisor (socket
  /// handoff, DESIGN.md section 14). >= 0 selects socket mode, skips
  /// bind/listen, and leaves the socket file alone at shutdown -- the
  /// supervisor owns it, which is what lets clients park in the listen
  /// backlog while a crashed daemon respawns.
  int listen_fd = -1;
  /// Serve stdin/stdout as one connection, exit 0 on EOF (test/pipe mode).
  bool stdio = false;
  /// Prediction threads inside the service (same 0/1 semantics as --jobs).
  int jobs = 1;
  /// Bundle LRU capacity; must hold stable + canary per hot model.
  std::size_t max_loaded_bundles = 8;
  CoalescerOptions coalesce;
  QuotaOptions quota;
  CanaryOptions canary;
  /// Registry rescan cadence for hot reload / canary rollout.
  double reload_poll_seconds = 0.25;
  /// Periodic JSON metrics snapshot ("" = disabled), written atomically.
  std::string stats_json_path;
  double stats_interval_seconds = 1.0;
  /// Concurrent connections; over the cap new ones are answered ERR 503.
  int max_connections = 64;
  const CancelToken* cancel = nullptr;
};

/// Fail-fast validation (the CLI's exit-2 contract, mirroring
/// stitch_options_error): nullopt = valid, otherwise the reason. The
/// constructor MF_CHECKs the same predicate.
std::optional<std::string> server_options_error(const ServerOptions& options);

/// Create, bind, and listen a Unix-domain stream socket at `path`. A stale
/// socket file from a dead daemon (probe connect refused) is silently
/// replaced; a *live* listener is a hard conflict. Returns the listening
/// descriptor, or -1 with `*error` describing the failure. Shared by the
/// daemon's own listener setup and the supervisor's socket handoff.
int bind_unix_listener(const std::string& path, std::string* error);

/// Daemon-level counters (service/coalescer/quota keep their own).
struct ServerStats {
  std::uint64_t connections = 0;      ///< accepted (socket) / streams served
  std::uint64_t requests = 0;         ///< protocol lines answered
  std::uint64_t ok = 0;
  std::uint64_t err_bad_request = 0;  ///< 400
  std::uint64_t err_no_model = 0;     ///< 404
  std::uint64_t err_over_quota = 0;   ///< 429
  std::uint64_t err_internal = 0;     ///< 500
  std::uint64_t err_shutdown = 0;     ///< 503
  std::uint64_t reload_scans = 0;
  std::uint64_t traced = 0;         ///< ESTIMATEs that carried an id= stamp
  std::uint64_t trace_evicted = 0;  ///< records dropped by the FIFO cap
  /// End-to-end ESTIMATE latency (parse -> response ready), ns.
  Log2Histogram request_ns;
  /// Per-traced-request breakdown (what TRACE <id> reports, aggregated).
  Log2Histogram trace_queue_ns;    ///< coalescer queue wait
  Log2Histogram trace_batch;       ///< flush fill the request rode in
  Log2Histogram trace_predict_ns;  ///< its flush group's predict latency
};

class EstimatorServer {
 public:
  explicit EstimatorServer(ServerOptions options);
  ~EstimatorServer();

  EstimatorServer(const EstimatorServer&) = delete;
  EstimatorServer& operator=(const EstimatorServer&) = delete;

  /// Serve until EOF (stdio), a fatal listener error, or cancellation.
  /// Returns the CLI exit code: 0 (stdio EOF), 2 (runtime failure,
  /// last_error() explains), 130 (cancelled).
  int run();

  /// Serve one already-open byte stream until its EOF or cancellation --
  /// run()'s building block, public so tests can drive the full protocol
  /// over a socketpair/pipe without signals or a listener.
  void serve_stream(int in_fd, int out_fd);

  /// Force one registry rescan now (what the maintenance thread does every
  /// reload_poll_seconds) -- lets tests step hot reload deterministically.
  void reload_now();

  [[nodiscard]] ServerStats stats() const;
  /// The STATS verb's payload (also the JSON snapshot's data source).
  std::string stats_payload();
  std::string stats_json();
  /// Canary state for one model (unknown name = all-zero status).
  CanaryStatus canary_status(const std::string& model) const;
  [[nodiscard]] std::string last_error() const;
  [[nodiscard]] EstimatorService& service() noexcept { return service_; }

 private:
  /// One request line's answer slot: either ready immediately or waiting
  /// on a coalescer ticket. Slots are settled in arrival order, which is
  /// what keeps responses matched to requests on a pipelined connection.
  struct Slot {
    std::string ready;
    std::shared_ptr<Coalescer::Ticket> ticket;
    std::chrono::steady_clock::time_point start;
    bool is_estimate = false;
    /// STATS is rendered at settle time, after every earlier request on
    /// the connection has resolved, so a pipelined STATS sees its own
    /// prologue reflected in the counters.
    bool is_stats = false;
    /// TRACE is likewise rendered at settle time, so `ESTIMATE ... id=x`
    /// followed by `TRACE x` on the same pipelined connection finds the
    /// record its predecessor just wrote.
    bool is_trace = false;
    std::string query;  ///< TRACE operand
    std::string trace;  ///< this request's id= stamp, echoed on the answer
  };

  /// What TRACE <id> reports for one completed traced ESTIMATE.
  struct TraceRecord {
    std::uint64_t queue_us = 0;
    std::uint32_t batch = 0;
    std::uint64_t predict_us = 0;
    int code = 0;  ///< 0 = served OK, otherwise the protocol ERR code
  };

  /// Everything the STATS verb / JSON snapshot reports, gathered under one
  /// set of locks so the view is consistent.
  struct StatsView {
    double uptime_s = 0.0;
    ServerStats server;
    ServiceStats service;
    CoalescerStats coalescer;
    std::uint64_t quota_admitted = 0;
    std::uint64_t quota_shed = 0;
    std::uint64_t canaries_started = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rollbacks = 0;
    std::size_t models = 0;
  };

  int run_socket();
  int run_stdio();
  void maintenance_loop();
  void handle_line(const std::string& line, std::vector<Slot>& slots);
  std::string handle_info(const Request& request);
  /// Render TRACE <query>'s response (settle-time, see Slot::is_trace).
  std::string handle_trace(const std::string& query, const std::string& trace);
  /// Store one traced request's outcome in the bounded FIFO trace store.
  void record_trace(const BatchItem& item, std::uint64_t predict_ns, int code);
  /// Settle slots in order: wait for tickets, append response bytes to
  /// `out`, count outcomes.
  void settle(std::vector<Slot>& slots, std::string& out);
  /// The coalescer's batch function: canary routing, grouped pinned
  /// predict_rows, canary-failure fallback to stable.
  std::vector<BatchResult> flush_batch(const std::vector<BatchItem>& items);
  /// (version, canary-arm) the item should be served by; version 0 = no
  /// usable bundle. Performs the model's initial registry load on first
  /// sight.
  std::pair<int, bool> route(const std::string& model,
                             const std::string& client);
  /// Rescan the registry for `name` and feed the canary controller
  /// (requires mutex_ NOT held).
  void reload_model(const std::string& name);
  /// Record `count` canary serve outcomes for `model`.
  void note_canary(const std::string& model, std::size_t count, bool ok);
  StatsView collect_stats();
  void write_stats_snapshot();
  [[nodiscard]] bool cancelled() const noexcept {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  }

  ServerOptions options_;
  EstimatorService service_;
  ClientQuota quota_;
  std::unique_ptr<Coalescer> coalescer_;

  mutable std::mutex mutex_;  ///< stats_, models_, last_error_, traces_
  std::map<std::string, CanaryController> models_;
  ServerStats stats_;
  /// Bounded FIFO of completed traced requests: oldest records are evicted
  /// at kTraceCapacity so an id-stamping client can never grow the daemon
  /// without bound.
  static constexpr std::size_t kTraceCapacity = 4096;
  std::map<std::string, TraceRecord> traces_;
  std::deque<std::string> trace_order_;
  std::string last_error_;
  std::chrono::steady_clock::time_point start_;

  /// Connection accounting: run_socket waits for the count to reach zero
  /// before returning, so no connection thread outlives the server.
  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  int active_connections_ = 0;

  std::mutex maint_mutex_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::thread maintenance_;
};

}  // namespace mf
