#pragma once
// `macroflow serve` wire protocol (DESIGN.md section 13).
//
// Line-delimited text over a byte stream (Unix-domain socket or a stdio
// pipe); one request line, one response line, answered in request order per
// connection. Grammar (fields separated by runs of spaces/tabs, lines
// terminated by '\n', '\r\n', or a bare '\r'):
//
//   [id=<trace>] ESTIMATE <client> <model> <f1> ... <fN>
//                                             predict one CF for a feature
//                                             row of the model's width
//   [id=<trace>] INFO <model>                 what the name currently serves
//   [id=<trace>] STATS                        one-line metrics dump
//   [id=<trace>] PING                         liveness probe
//   [id=<trace>] TRACE <id>                   per-request metrics for a
//                                             previously traced ESTIMATE
//
// The optional leading `id=<trace>` token is the request-tracing hook
// (DESIGN.md section 14): clients stamp a monotonic `<client>:<seq>` token,
// the server echoes it as a trailing ` id=<trace>` on the matching response
// line, and the coalescer threads it through batches so `TRACE <id>`
// reports queue-wait / batch-size / predict-latency for that request.
// Requests without an id produce responses byte-identical to the untraced
// protocol -- the quiet path never pays for tracing.
//
// Responses:
//
//   OK <payload>[ id=<trace>]                 e.g. `OK 1.375` for ESTIMATE,
//                                             `k=v ...` pairs for STATS/INFO
//   ERR <code> <reason...>[ id=<trace>]       HTTP-flavoured codes:
//     400  malformed request (unknown verb, bad float, wrong feature width)
//     404  no usable bundle for the model / no record for a TRACE id
//     429  over quota -- shed by admission control, never queued
//     500  internal failure (prediction error)
//     503  shutting down / over capacity
//
// Numbers travel through common/parse_num.hpp: features are parsed with the
// same from_chars contract as every persisted format (full consumption,
// finite), and CF payloads are formatted with format_double (shortest
// round-trip string), so a client parsing `OK <cf>` recovers the exact
// double the estimator produced -- the property the load bench's
// bit-identity gate checks end to end.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mf {

enum class ReqVerb { Estimate, Info, Stats, Ping, Trace };

struct Request {
  ReqVerb verb = ReqVerb::Ping;
  std::string client;            ///< ESTIMATE only: quota + canary identity
  std::string model;             ///< ESTIMATE / INFO
  std::vector<double> features;  ///< ESTIMATE only
  std::string trace;             ///< optional `id=` stamp on this request
  std::string query;             ///< TRACE only: the id being looked up
};

inline constexpr int kErrBadRequest = 400;
inline constexpr int kErrNoModel = 404;
inline constexpr int kErrOverQuota = 429;
inline constexpr int kErrInternal = 500;
inline constexpr int kErrShutdown = 503;

/// Hard cap on one request line; longer input is a protocol error and the
/// connection is dropped (a missing '\n' must not buffer unbounded bytes).
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;
/// Hard cap on ESTIMATE feature counts (every real feature set is < 32).
inline constexpr std::size_t kMaxFeatures = 256;
/// Hard cap on one trace id (it ends up as a map key and in echo suffixes).
inline constexpr std::size_t kMaxTraceBytes = 128;

/// Parse one request line (without its terminator). nullopt on malformed
/// input with `error` set to the reason clients see in `ERR 400 <reason>`.
/// When `trace` is non-null it receives the line's `id=` token even on a
/// parse failure, so the error response can still be correlated.
std::optional<Request> parse_request(std::string_view line,
                                     std::string* error,
                                     std::string* trace = nullptr);

/// Pop the next complete line off the front of `buffer`. '\n', '\r\n', and
/// a bare '\r' all terminate a line (the terminator is consumed, never
/// returned). A '\r' that is the final buffered byte is NOT popped yet: the
/// '\n' half of a CRLF may still be in flight, and popping early would turn
/// one line into a line plus a spurious empty line -- this is what keeps
/// byte-at-a-time delivery lossless. nullopt when no full line is buffered.
std::optional<std::string> pop_line(std::string& buffer);

/// Format a response line. A non-empty `trace` appends the ` id=<trace>`
/// echo; the empty default emits bytes identical to the untraced protocol.
std::string format_ok(std::string_view payload, std::string_view trace = {});
std::string format_ok_cf(double cf, std::string_view trace = {});
std::string format_err(int code, std::string_view reason,
                       std::string_view trace = {});

/// Parse `OK <cf>[ id=<trace>]` back into the exact double (client side of
/// the bit-identity contract); nullopt for ERR lines or malformed payloads.
std::optional<double> parse_ok_cf(std::string_view line);

/// The `id=` token echoed at the end of a response line; empty for an
/// untraced response.
std::string_view response_trace(std::string_view line);

/// Protocol code of a response line: 0 for OK, the ERR code otherwise
/// (a malformed ERR line reads as 500).
int response_code(std::string_view response);

}  // namespace mf
