#pragma once
// `macroflow serve` wire protocol (DESIGN.md section 13).
//
// Line-delimited text over a byte stream (Unix-domain socket or a stdio
// pipe); one request line, one response line, answered in request order per
// connection. Grammar (fields separated by runs of spaces/tabs, lines
// terminated by '\n', a trailing '\r' is tolerated):
//
//   ESTIMATE <client> <model> <f1> ... <fN>   predict one CF for a feature
//                                             row of the model's width
//   INFO <model>                              what the name currently serves
//   STATS                                     one-line metrics dump
//   PING                                      liveness probe
//
// Responses:
//
//   OK <payload>                              e.g. `OK 1.375` for ESTIMATE,
//                                             `k=v ...` pairs for STATS/INFO
//   ERR <code> <reason...>                    HTTP-flavoured codes:
//     400  malformed request (unknown verb, bad float, wrong feature width)
//     404  no usable bundle for the model
//     429  over quota -- shed by admission control, never queued
//     500  internal failure (prediction error)
//     503  shutting down / over capacity
//
// Numbers travel through common/parse_num.hpp: features are parsed with the
// same from_chars contract as every persisted format (full consumption,
// finite), and CF payloads are formatted with format_double (shortest
// round-trip string), so a client parsing `OK <cf>` recovers the exact
// double the estimator produced -- the property the load bench's
// bit-identity gate checks end to end.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mf {

enum class ReqVerb { Estimate, Info, Stats, Ping };

struct Request {
  ReqVerb verb = ReqVerb::Ping;
  std::string client;            ///< ESTIMATE only: quota + canary identity
  std::string model;             ///< ESTIMATE / INFO
  std::vector<double> features;  ///< ESTIMATE only
};

inline constexpr int kErrBadRequest = 400;
inline constexpr int kErrNoModel = 404;
inline constexpr int kErrOverQuota = 429;
inline constexpr int kErrInternal = 500;
inline constexpr int kErrShutdown = 503;

/// Hard cap on one request line; longer input is a protocol error and the
/// connection is dropped (a missing '\n' must not buffer unbounded bytes).
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;
/// Hard cap on ESTIMATE feature counts (every real feature set is < 32).
inline constexpr std::size_t kMaxFeatures = 256;

/// Parse one request line (without its '\n'). nullopt on malformed input
/// with `error` set to the reason clients see in `ERR 400 <reason>`.
std::optional<Request> parse_request(std::string_view line,
                                     std::string* error);

/// Pop the next complete '\n'-terminated line off the front of `buffer`
/// (stripping the terminator and an optional preceding '\r'); nullopt when
/// no full line is buffered yet.
std::optional<std::string> pop_line(std::string& buffer);

std::string format_ok(std::string_view payload);
std::string format_ok_cf(double cf);
std::string format_err(int code, std::string_view reason);

/// Parse `OK <cf>` back into the exact double (client side of the
/// bit-identity contract); nullopt for ERR lines or malformed payloads.
std::optional<double> parse_ok_cf(std::string_view line);

}  // namespace mf
