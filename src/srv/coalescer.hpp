#pragma once
// Cross-request batch coalescing for `macroflow serve`
// (DESIGN.md section 13).
//
// Single rows arriving from many connections are worth far more as one
// EstimatorService::predict_rows batch than as N separate calls: the
// per-call costs (LRU lock, bundle pointer chase, dispatch) amortise over
// the batch, which is where the daemon's throughput comes from on any core
// count. The coalescer is the meeting point:
//
//   * submit() parks a row in a FIFO and wakes the flush thread;
//   * the flush thread waits until either `max_batch` rows are pending or
//     the *oldest* pending row has waited `coalesce_us` microseconds (the
//     latency budget -- no row ever waits longer than one budget for
//     batch-mates), then hands up to max_batch rows to the batch function
//     in arrival order;
//   * wait() blocks the submitting connection thread until its row's
//     result lands.
//
// Determinism: batch composition is timing-dependent (which rows share a
// flush depends on arrival), but results are not -- the batch function must
// be pure per row (EstimatorService::predict_rows is: each row's prediction
// reads only that row and an immutable bundle), so any grouping yields
// bit-identical answers to the sequential loop. The load bench checks
// exactly this property end to end.
//
// Backpressure: at `queue_capacity` pending rows, submit() blocks the
// connection thread (which stops reading that socket -- TCP-style push-back
// to the client) instead of growing the queue without bound; queue wait is
// thereby capped at ~(capacity / max_batch) flush cycles, which is what
// keeps tail latency honest under overload.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hpp"

namespace mf {

struct CoalescerOptions {
  /// Latency budget: max microseconds the oldest pending row waits for
  /// batch-mates before the batch is flushed regardless of fill.
  double coalesce_us = 1000.0;
  /// Flush immediately once this many rows are pending.
  std::size_t max_batch = 256;
  /// Pending-row cap; submit() blocks (backpressure) beyond it.
  std::size_t queue_capacity = 1024;
};

/// One request's slice of a flush. `trace` rides along from the request
/// line; `queue_ns` and `batch_size` are stamped by the flush thread as the
/// batch is assembled, so the batch function can record per-request metrics
/// (the TRACE verb) without ever re-entering the coalescer.
struct BatchItem {
  std::string client;
  std::string model;
  std::vector<double> row;
  std::string trace;             ///< request's `id=` stamp; "" = untraced
  std::uint64_t queue_ns = 0;    ///< time parked in the FIFO before flush
  std::uint32_t batch_size = 0;  ///< rows in the flush this item rode in
};

struct BatchResult {
  bool ok = false;
  double value = 0.0;
  int code = 0;         ///< protocol ERR code when !ok
  std::string reason;   ///< protocol ERR reason when !ok
};

struct CoalescerStats {
  std::uint64_t submitted = 0;
  std::uint64_t flushes = 0;
  std::uint64_t full_flushes = 0;    ///< hit max_batch
  std::uint64_t budget_flushes = 0;  ///< oldest row's budget expired
  Log2Histogram batch_fill;          ///< rows per flush
  Log2Histogram queue_depth;         ///< pending rows after each submit
};

class Coalescer {
 public:
  /// Maps a flush's items (arrival order) to one result per item. Runs on
  /// the flush thread with no coalescer lock held; must be pure per row.
  using BatchFn = std::function<std::vector<BatchResult>(
      const std::vector<BatchItem>& items)>;

  Coalescer(CoalescerOptions options, BatchFn fn);
  /// Flushes everything still pending, then stops the flush thread.
  ~Coalescer();

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  class Ticket;
  /// Queue one row; blocks while the queue is at capacity. The returned
  /// ticket is claimed by exactly one wait() call.
  std::shared_ptr<Ticket> submit(BatchItem item);
  /// Block until the ticket's flush completes; returns its result.
  BatchResult wait(const std::shared_ptr<Ticket>& ticket);
  /// submit + wait in one call (the single-request closed-loop path).
  BatchResult submit_wait(BatchItem item);

  [[nodiscard]] CoalescerStats stats() const;

 private:
  void flush_loop();

  CoalescerOptions options_;
  BatchFn fn_;

  mutable std::mutex mutex_;
  std::condition_variable cv_flush_;   ///< wakes the flush thread
  std::condition_variable cv_space_;   ///< wakes submitters at capacity
  std::condition_variable cv_done_;    ///< broadcast per completed flush
  std::deque<std::shared_ptr<Ticket>> queue_;
  CoalescerStats stats_;
  bool stop_ = false;

  std::thread flusher_;
};

/// Pending-row slot: owned jointly by the submitter and the flush thread.
class Coalescer::Ticket {
 public:
  friend class Coalescer;

 private:
  BatchItem item;
  BatchResult result;
  std::chrono::steady_clock::time_point enqueued;
  bool done = false;
};

}  // namespace mf
