#include "srv/quota.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mf {

ClientQuota::ClientQuota(QuotaOptions options) : options_(options) {
  if (options_.rate_per_second > 0.0) {
    MF_CHECK_MSG(options_.burst >= 1.0,
                 "quota burst must admit at least one request");
    MF_CHECK_MSG(options_.max_clients >= 1,
                 "quota needs capacity for at least one client");
  }
}

bool ClientQuota::try_acquire(const std::string& client,
                              std::uint64_t now_ns) {
  if (options_.rate_per_second <= 0.0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    if (buckets_.size() >= options_.max_clients) {
      // Recycle the stalest bucket. Linear scan, but only on the
      // new-client-at-capacity path -- steady-state traffic from known
      // clients never pays it.
      auto stalest = buckets_.begin();
      for (auto scan = buckets_.begin(); scan != buckets_.end(); ++scan) {
        if (scan->second.refill_ns < stalest->second.refill_ns) {
          stalest = scan;
        }
      }
      buckets_.erase(stalest);
    }
    // A fresh client starts with a full burst allowance.
    it = buckets_.emplace(client, Bucket{options_.burst, now_ns}).first;
  } else {
    Bucket& bucket = it->second;
    if (now_ns > bucket.refill_ns) {
      const double elapsed_s =
          static_cast<double>(now_ns - bucket.refill_ns) * 1e-9;
      bucket.tokens = std::min(
          options_.burst, bucket.tokens + elapsed_s * options_.rate_per_second);
    }
    // A clock that stands still (or a reordered timestamp from another
    // thread) just refills nothing; never move refill_ns backwards.
    bucket.refill_ns = std::max(bucket.refill_ns, now_ns);
  }
  if (it->second.tokens >= 1.0) {
    it->second.tokens -= 1.0;
    ++admitted_;
    return true;
  }
  ++shed_;
  return false;
}

std::uint64_t ClientQuota::admitted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t ClientQuota::shed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::size_t ClientQuota::tracked_clients() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

}  // namespace mf
