#pragma once
// Seeded connection-level fault injection for the serving tier
// (DESIGN.md section 14).
//
// The resilient client's correctness claim -- "under any wire failure the
// caller sees either the exact answer or a clean error, never a corrupt
// CF" -- is only worth something if the failures are actually dealt. This
// shim lives *inside* ServeClient (the same FaultInjector idiom as
// farm/chaos: pure draws from task_seed streams, no globals, no real
// randomness) and can disrupt either direction of a connection:
//
//   Sever      close the descriptor at an operation boundary;
//   Stall      sleep `stall_ms` before the operation (exercises deadlines);
//   Truncate   deliver only a strict prefix of the bytes, then sever --
//              the reader is left with a torn, unterminated line;
//   Duplicate  deliver the bytes twice (the id= filter must discard one);
//   Garbage    inject a junk line ahead of the real bytes.
//
// Determinism: the decision for operation `op` of connection `conn` in
// direction tx/rx is a pure function of (seed, conn, op, direction) -- one
// uniform draw against cumulative probabilities, exactly like farm/chaos --
// so a chaos campaign replays fault-for-fault from its seed. Operation 0 of
// every connection never faults (each reconnect gets one clean boundary),
// and `max_faults` bounds the total disruption so campaigns provably
// terminate: once the budget is spent every draw degrades to None (Stall is
// benign and stays).

#include <cstdint>
#include <string>

namespace mf {

struct NetChaosOptions {
  bool enabled = false;
  std::uint64_t seed = 0;
  double p_sever = 0.0;
  double p_stall = 0.0;
  double p_truncate = 0.0;
  double p_duplicate = 0.0;
  double p_garbage = 0.0;
  double stall_ms = 2.0;
  /// Total disruptive actions (everything but None/Stall) this instance
  /// may take; <= 0 means unlimited.
  int max_faults = -1;
};

class NetChaos {
 public:
  enum class Action : std::uint8_t {
    None,
    Sever,
    Stall,
    Truncate,
    Duplicate,
    Garbage,
  };

  NetChaos() = default;
  explicit NetChaos(const NetChaosOptions& options) : options_(options) {}

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }

  /// Pure decision for operation `op` of connection `conn`, direction
  /// `send` (true = bytes towards the server). No budget accounting.
  [[nodiscard]] Action draw(int conn, int op, bool send) const;

  /// draw() plus budget accounting: a disruptive decision consumes one
  /// unit of max_faults and degrades to None once the budget is spent.
  Action next(int conn, int op, bool send);

  [[nodiscard]] int faults_injected() const noexcept { return faults_; }
  [[nodiscard]] double stall_ms() const noexcept { return options_.stall_ms; }

  /// Deterministic junk line for Garbage (terminator included). Parses as
  /// no known verb and carries no id= echo, so a correct client/server
  /// discards it.
  [[nodiscard]] std::string garbage_line(int conn, int op) const;

 private:
  NetChaosOptions options_;
  int faults_ = 0;
};

const char* to_string(NetChaos::Action action) noexcept;

}  // namespace mf
