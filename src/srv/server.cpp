#include "srv/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/io_util.hpp"
#include "common/parse_num.hpp"
#include "core/features.hpp"

namespace mf {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

std::string errno_text() { return std::strerror(errno); }

}  // namespace

std::optional<std::string> server_options_error(const ServerOptions& o) {
  if (o.registry_dir.empty()) return "registry directory must not be empty";
  const bool socket_mode = !o.socket_path.empty() || o.listen_fd >= 0;
  if (socket_mode == o.stdio) {
    return "choose exactly one of --socket PATH and --stdio";
  }
  if (!o.socket_path.empty() &&
      o.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return "socket path too long for sockaddr_un";
  }
  if (o.jobs < 0) return "jobs must be >= 0";
  if (o.max_loaded_bundles < 1) return "bundle LRU capacity must be >= 1";
  if (!(o.coalesce.coalesce_us >= 0.0 && o.coalesce.coalesce_us <= 1e7)) {
    return "coalesce budget must be 0..1e7 microseconds";
  }
  if (o.coalesce.max_batch < 1) return "max batch must be >= 1";
  if (o.coalesce.queue_capacity < o.coalesce.max_batch) {
    return "queue capacity must hold at least one full batch";
  }
  if (o.quota.rate_per_second < 0.0) return "quota rate must be >= 0";
  if (o.quota.rate_per_second > 0.0 && o.quota.burst < 1.0) {
    return "quota burst must be >= 1 when quotas are enabled";
  }
  if (o.canary.percent < 0 || o.canary.percent > 100) {
    return "canary percent must be 0..100";
  }
  if (o.canary.fail_threshold < 1) return "canary fail threshold must be >= 1";
  if (o.canary.promote_after < 1) return "canary promote-after must be >= 1";
  if (!(o.reload_poll_seconds > 0.0)) return "reload poll must be > 0 seconds";
  if (!(o.stats_interval_seconds > 0.0)) {
    return "stats interval must be > 0 seconds";
  }
  if (o.max_connections < 1) return "max connections must be >= 1";
  return std::nullopt;
}

namespace {

ServiceOptions make_service_options(const ServerOptions& o) {
  ServiceOptions service;
  service.max_loaded_bundles = o.max_loaded_bundles;
  service.jobs = o.jobs;
  // The daemon routes every request to an explicit pinned version, so the
  // service breaker / fallback-CF machinery (a newest-resolve policy) stays
  // disabled; degraded-mode decisions belong to the canary controller here.
  service.breaker_failure_threshold = 0;
  return service;
}

}  // namespace

EstimatorServer::EstimatorServer(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.registry_dir, make_service_options(options_)),
      quota_(options_.quota) {
  const std::optional<std::string> error = server_options_error(options_);
  MF_CHECK_MSG(!error, error ? *error : "");
  coalescer_ = std::make_unique<Coalescer>(
      options_.coalesce, [this](const std::vector<BatchItem>& items) {
        return flush_batch(items);
      });
  start_ = std::chrono::steady_clock::now();
}

EstimatorServer::~EstimatorServer() {
  if (maintenance_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(maint_mutex_);
      maint_stop_ = true;
    }
    maint_cv_.notify_all();
    maintenance_.join();
  }
  // coalescer_'s destructor drains pending rows and joins the flusher.
}

int EstimatorServer::run() {
  start_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(maint_mutex_);
    maint_stop_ = false;
  }
  maintenance_ = std::thread([this] { maintenance_loop(); });
  const int code = options_.stdio ? run_stdio() : run_socket();
  {
    std::lock_guard<std::mutex> lock(maint_mutex_);
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
  maintenance_.join();
  // One final snapshot after the drain so the metrics file agrees with the
  // daemon's last answered request.
  write_stats_snapshot();
  return code;
}

int EstimatorServer::run_stdio() {
  ignore_sigpipe();
  serve_stream(STDIN_FILENO, STDOUT_FILENO);
  return cancelled() ? 130 : 0;
}

int bind_unix_listener(const std::string& path, std::string* error) {
  const auto fail = [&](std::string reason) {
    if (error != nullptr) *error = std::move(reason);
    return -1;
  };
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return fail("socket path empty or too long for sockaddr_un");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return fail("socket(): " + errno_text());
  int rc = ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr);
  if (rc != 0 && errno == EADDRINUSE) {
    // A socket file already exists. A *live* daemon answers a probe
    // connect -- that is a hard conflict (fail fast, never a partial
    // listen). A stale file from a dead daemon refuses the probe and is
    // silently replaced.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool live =
        probe >= 0 && ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                                sizeof addr) == 0;
    if (probe >= 0) ::close(probe);
    if (live) {
      ::close(listen_fd);
      return fail("address already in use: " + path);
    }
    ::unlink(path.c_str());
    rc = ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr);
  }
  if (rc != 0) {
    ::close(listen_fd);
    return fail("bind(" + path + "): " + errno_text());
  }
  if (::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    ::unlink(path.c_str());
    return fail("listen(" + path + "): " + errno_text());
  }
  return listen_fd;
}

int EstimatorServer::run_socket() {
  ignore_sigpipe();
  // Either this daemon owns the listener lifecycle (bind here, unlink at
  // exit) or a supervisor handed one down and keeps the socket file alive
  // across respawns.
  const bool owns_listener = options_.listen_fd < 0;
  int listen_fd = options_.listen_fd;
  if (owns_listener) {
    std::string error;
    listen_fd = bind_unix_listener(options_.socket_path, &error);
    if (listen_fd < 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = std::move(error);
      return 2;
    }
  }

  int exit_code = 0;
  while (!cancelled()) {
    if (!wait_readable(listen_fd, 100)) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      last_error_ = "accept(): " + errno_text();
      exit_code = 2;
      break;
    }
    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (active_connections_ < options_.max_connections) {
        admit = true;
        ++active_connections_;
      }
    }
    if (!admit) {
      (void)write_all(conn, format_err(kErrShutdown, "too many connections"));
      ::close(conn);
      continue;
    }
    // Detached but counted: the thread's last act is decrementing the
    // active count under conn_mutex_, and run_socket below waits for zero,
    // so no connection thread ever outlives the server object.
    std::thread([this, conn] {
      serve_stream(conn, conn);
      ::close(conn);
      std::lock_guard<std::mutex> lock(conn_mutex_);
      --active_connections_;
      conn_cv_.notify_all();
    }).detach();
  }
  ::close(listen_fd);
  if (owns_listener) ::unlink(options_.socket_path.c_str());
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  if (exit_code != 0) return exit_code;
  return cancelled() ? 130 : 0;
}

void EstimatorServer::serve_stream(int in_fd, int out_fd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections;
  }
  std::string buffer;
  std::string out;
  std::vector<Slot> slots;
  for (;;) {
    if (cancelled()) break;
    if (!wait_readable(in_fd, 50)) continue;
    const std::optional<std::size_t> n = read_some(in_fd, buffer);
    if (!n || *n == 0) break;  // read error or EOF
    if (buffer.size() > kMaxLineBytes &&
        buffer.find('\n') == std::string::npos) {
      (void)write_all(out_fd, format_err(kErrBadRequest, "line too long"));
      return;
    }
    out.clear();
    while (std::optional<std::string> line = pop_line(buffer)) {
      handle_line(*line, slots);
    }
    settle(slots, out);
    // Peer hung up mid-write (EPIPE): the work is done, drop the rest.
    if (!out.empty() && !write_all(out_fd, out)) return;
  }
  // Drain: requests whose full line was already read are still answered,
  // so cancellation never drops accepted work on the floor.
  out.clear();
  while (std::optional<std::string> line = pop_line(buffer)) {
    handle_line(*line, slots);
  }
  settle(slots, out);
  if (!out.empty()) (void)write_all(out_fd, out);
}

void EstimatorServer::handle_line(const std::string& line,
                                  std::vector<Slot>& slots) {
  if (line.find_first_not_of(" \t") == std::string::npos) return;
  Slot slot;
  slot.start = std::chrono::steady_clock::now();
  std::string error;
  std::optional<Request> request = parse_request(line, &error, &slot.trace);
  if (!request) {
    slot.ready = format_err(kErrBadRequest, error, slot.trace);
    slots.push_back(std::move(slot));
    return;
  }
  switch (request->verb) {
    case ReqVerb::Ping:
      slot.ready = format_ok("pong", slot.trace);
      break;
    case ReqVerb::Stats:
      slot.is_stats = true;
      break;
    case ReqVerb::Info:
      slot.ready = handle_info(*request);
      break;
    case ReqVerb::Trace:
      slot.is_trace = true;
      slot.query = std::move(request->query);
      break;
    case ReqVerb::Estimate: {
      slot.is_estimate = true;
      if (cancelled()) {
        slot.ready = format_err(kErrShutdown, "shutting down", slot.trace);
        break;
      }
      // Admission control before the queue: an over-quota request is shed
      // here and never costs anybody else's batch a slot.
      if (!quota_.try_acquire(request->client, steady_now_ns())) {
        slot.ready = format_err(
            kErrOverQuota, "client '" + request->client + "' over quota",
            slot.trace);
        break;
      }
      if (!slot.trace.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.traced;
      }
      slot.ticket = coalescer_->submit({std::move(request->client),
                                        std::move(request->model),
                                        std::move(request->features),
                                        slot.trace});
      break;
    }
  }
  slots.push_back(std::move(slot));
}

void EstimatorServer::settle(std::vector<Slot>& slots, std::string& out) {
  for (Slot& slot : slots) {
    std::string response;
    if (slot.ticket != nullptr) {
      const BatchResult result = coalescer_->wait(slot.ticket);
      response = result.ok ? format_ok_cf(result.value, slot.trace)
                           : format_err(result.code, result.reason, slot.trace);
    } else if (slot.is_stats) {
      response = format_ok(stats_payload(), slot.trace);
    } else if (slot.is_trace) {
      response = handle_trace(slot.query, slot.trace);
    } else {
      response = std::move(slot.ready);
    }
    const int code = response_code(response);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.requests;
      switch (code) {
        case 0: ++stats_.ok; break;
        case kErrBadRequest: ++stats_.err_bad_request; break;
        case kErrNoModel: ++stats_.err_no_model; break;
        case kErrOverQuota: ++stats_.err_over_quota; break;
        case kErrShutdown: ++stats_.err_shutdown; break;
        default: ++stats_.err_internal; break;
      }
      if (slot.is_estimate) stats_.request_ns.record(elapsed_ns(slot.start));
    }
    out += response;
  }
  slots.clear();
}

std::pair<int, bool> EstimatorServer::route(const std::string& model,
                                            const std::string& client) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = models_.find(model);
      if (it != models_.end()) {
        const CanaryController& ctl = it->second;
        const CanaryStatus& status = ctl.status();
        if (status.stable_version != 0 || attempt == 1) {
          if (ctl.use_canary(client)) return {status.canary_version, true};
          return {status.stable_version, false};
        }
      }
    }
    // First sight of the model (or still nothing loaded): do its initial
    // registry scan synchronously so the first request can be served.
    reload_model(model);
  }
  return {0, false};
}

std::vector<BatchResult> EstimatorServer::flush_batch(
    const std::vector<BatchItem>& items) {
  std::vector<BatchResult> results(items.size());
  // Group by (model, routed version): one pinned predict_rows per group,
  // arrival order preserved within each. Prediction is pure per row, so
  // this grouping is invisible in the results (the bench's bit-identity
  // gate) -- only in the throughput.
  struct Group {
    std::string model;
    int version = 0;
    bool canary = false;
    std::vector<std::size_t> idx;
  };
  std::vector<Group> groups;
  std::map<std::pair<std::string, int>, std::size_t> group_of;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    const auto [version, canary_arm] = route(item.model, item.client);
    if (version == 0) {
      results[i] = {false, 0.0, kErrNoModel,
                    "no usable bundle for '" + item.model + "'"};
      record_trace(item, 0, kErrNoModel);
      continue;
    }
    const auto key = std::make_pair(item.model, version);
    const auto found = group_of.find(key);
    std::size_t g;
    if (found == group_of.end()) {
      g = groups.size();
      group_of.emplace(key, g);
      groups.push_back({item.model, version, canary_arm, {}});
    } else {
      g = found->second;
    }
    groups[g].idx.push_back(i);
  }

  for (const Group& group : groups) {
    const std::shared_ptr<const ModelBundle> bundle =
        service_.bundle(group.model, group.version);
    const std::size_t width =
        bundle != nullptr
            ? feature_names(bundle->estimator.features()).size()
            : 0;
    std::vector<std::size_t> keep;
    std::vector<std::vector<double>> rows;
    for (const std::size_t i : group.idx) {
      if (bundle != nullptr && items[i].row.size() != width) {
        results[i] = {false, 0.0, kErrBadRequest,
                      "expected " + std::to_string(width) + " features for '" +
                          group.model + "'"};
        record_trace(items[i], 0, kErrBadRequest);
        continue;
      }
      keep.push_back(i);
      rows.push_back(items[i].row);
    }
    if (keep.empty()) continue;
    const auto predict_start = std::chrono::steady_clock::now();
    std::optional<std::vector<double>> out;
    if (bundle != nullptr) {
      out = service_.predict_rows(group.model, rows, group.version);
    }
    if (out) {
      const std::uint64_t predict_ns = elapsed_ns(predict_start);
      for (std::size_t j = 0; j < keep.size(); ++j) {
        results[keep[j]] = {true, (*out)[j], 0, {}};
        record_trace(items[keep[j]], predict_ns, 0);
      }
      if (group.canary) note_canary(group.model, keep.size(), true);
      continue;
    }
    if (!group.canary) {
      for (const std::size_t i : keep) {
        results[i] = {false, 0.0, kErrNoModel,
                      "no usable bundle for '" + group.model + "'"};
        record_trace(items[i], 0, kErrNoModel);
      }
      continue;
    }
    // The canary failed at serve time. Clients never see a canary error:
    // record the failures (rollback bookkeeping) and re-serve every row
    // from the stable version.
    note_canary(group.model, keep.size(), false);
    int stable = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = models_.find(group.model);
      if (it != models_.end()) stable = it->second.status().stable_version;
    }
    std::optional<std::vector<double>> fallback;
    if (stable != 0) {
      fallback = service_.predict_rows(group.model, rows, stable);
    }
    const std::uint64_t predict_ns = elapsed_ns(predict_start);
    for (std::size_t j = 0; j < keep.size(); ++j) {
      if (fallback) {
        results[keep[j]] = {true, (*fallback)[j], 0, {}};
        record_trace(items[keep[j]], predict_ns, 0);
      } else {
        results[keep[j]] = {false, 0.0, kErrNoModel,
                            "no usable bundle for '" + group.model + "'"};
        record_trace(items[keep[j]], predict_ns, kErrNoModel);
      }
    }
  }
  return results;
}

void EstimatorServer::note_canary(const std::string& model, std::size_t count,
                                  bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(model);
  if (it == models_.end()) return;
  for (std::size_t i = 0; i < count; ++i) it->second.on_canary_result(ok);
}

void EstimatorServer::reload_model(const std::string& name) {
  // Directory scan before taking the lock; the per-version loads below go
  // through the service's pinned LRU (its own mutex, never nested the
  // other way around).
  const std::vector<RegistryEntry> entries = service_.registry().list();
  std::lock_guard<std::mutex> lock(mutex_);
  CanaryController& ctl =
      models_.try_emplace(name, options_.canary).first->second;
  // Entries arrive newest-version-first per name: try the newest candidate
  // the controller still wants, fall back version by version on load
  // failures (each one feeds the canary breaker), stop at the stable line.
  for (const RegistryEntry& entry : entries) {
    if (entry.name != name) continue;
    const int want = ctl.version_to_load(entry.version);
    if (want == 0) {
      if (entry.version <= ctl.status().stable_version) break;
      continue;  // bad or already-live version; consider older ones
    }
    if (service_.bundle(name, want) != nullptr) {
      ctl.on_load_ok(want);
      break;
    }
    ctl.on_load_failed(want);
  }
}

void EstimatorServer::reload_now() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.reload_scans;
    names.reserve(models_.size());
    for (const auto& [name, ctl] : models_) names.push_back(name);
  }
  for (const std::string& name : names) reload_model(name);
}

void EstimatorServer::maintenance_loop() {
  const auto poll = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.reload_poll_seconds));
  const auto snapshot_every = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.stats_interval_seconds));
  auto next_snapshot = std::chrono::steady_clock::now() + snapshot_every;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maint_mutex_);
      maint_cv_.wait_for(lock, poll, [this] { return maint_stop_; });
      if (maint_stop_) return;
    }
    reload_now();
    if (!options_.stats_json_path.empty() &&
        std::chrono::steady_clock::now() >= next_snapshot) {
      write_stats_snapshot();
      next_snapshot = std::chrono::steady_clock::now() + snapshot_every;
    }
  }
}

std::string EstimatorServer::handle_info(const Request& request) {
  int stable = 0;
  int canary = 0;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(request.model);
    if (it != models_.end()) {
      known = true;
      stable = it->second.status().stable_version;
      canary = it->second.status().canary_version;
    }
  }
  if (!known || stable == 0) {
    reload_model(request.model);
    std::lock_guard<std::mutex> lock(mutex_);
    const CanaryStatus& status = models_.at(request.model).status();
    stable = status.stable_version;
    canary = status.canary_version;
  }
  const std::shared_ptr<const ModelBundle> bundle =
      stable != 0 ? service_.bundle(request.model, stable) : nullptr;
  if (bundle == nullptr) {
    return format_err(kErrNoModel,
                      "no usable bundle for '" + request.model + "'",
                      request.trace);
  }
  std::string payload = "model=" + request.model;
  payload += " stable=v" + std::to_string(stable);
  payload += canary != 0 ? " canary=v" + std::to_string(canary)
                         : std::string(" canary=none");
  payload += " kind=" + std::string(to_string(bundle->estimator.kind()));
  payload +=
      " features=" + std::string(to_string(bundle->estimator.features()));
  payload += " width=" +
             std::to_string(feature_names(bundle->estimator.features()).size());
  return format_ok(payload, request.trace);
}

std::string EstimatorServer::handle_trace(const std::string& query,
                                          const std::string& trace) {
  std::optional<TraceRecord> record;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = traces_.find(query);
    if (it != traces_.end()) record = it->second;
  }
  if (!record) {
    return format_err(kErrNoModel, "no trace for '" + query + "'", trace);
  }
  std::string payload = "id=" + query;
  payload += " queue_us=" + std::to_string(record->queue_us);
  payload += " batch=" + std::to_string(record->batch);
  payload += " predict_us=" + std::to_string(record->predict_us);
  payload += record->code == 0
                 ? std::string(" verdict=ok")
                 : " verdict=err" + std::to_string(record->code);
  return format_ok(payload, trace);
}

void EstimatorServer::record_trace(const BatchItem& item,
                                   std::uint64_t predict_ns, int code) {
  if (item.trace.empty()) return;
  TraceRecord record;
  record.queue_us = item.queue_ns / 1000;
  record.batch = item.batch_size;
  record.predict_us = predict_ns / 1000;
  record.code = code;
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.trace_queue_ns.record(item.queue_ns);
  stats_.trace_batch.record(item.batch_size);
  stats_.trace_predict_ns.record(predict_ns);
  // A retried request re-uses its id (idempotent retry); latest wins and
  // the FIFO keeps the original eviction slot.
  const auto [it, inserted] = traces_.insert_or_assign(item.trace, record);
  (void)it;
  if (inserted) {
    trace_order_.push_back(item.trace);
    if (trace_order_.size() > kTraceCapacity) {
      traces_.erase(trace_order_.front());
      trace_order_.pop_front();
      ++stats_.trace_evicted;
    }
  }
}

EstimatorServer::StatsView EstimatorServer::collect_stats() {
  StatsView view;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    view.server = stats_;
    view.models = models_.size();
    for (const auto& [name, ctl] : models_) {
      const CanaryStatus& status = ctl.status();
      view.canaries_started += status.canaries_started;
      view.promotions += status.promotions;
      view.rollbacks += status.rollbacks;
    }
  }
  view.service = service_.snapshot();
  view.coalescer = coalescer_->stats();
  view.quota_admitted = quota_.admitted_total();
  view.quota_shed = quota_.shed_total();
  view.uptime_s =
      static_cast<double>(elapsed_ns(start_)) * 1e-9;
  return view;
}

std::string EstimatorServer::stats_payload() {
  const StatsView v = collect_stats();
  const double qps = v.uptime_s > 0.0
                         ? static_cast<double>(v.server.requests) / v.uptime_s
                         : 0.0;
  char head[96];
  std::snprintf(head, sizeof head, "uptime_s=%.3f qps=%.1f", v.uptime_s, qps);
  std::string out = head;
  const auto add = [&out](const char* key, std::uint64_t value) {
    out += ' ';
    out += key;
    out += '=';
    out += std::to_string(value);
  };
  add("requests", v.server.requests);
  add("ok", v.server.ok);
  add("err400", v.server.err_bad_request);
  add("err404", v.server.err_no_model);
  add("err429", v.server.err_over_quota);
  add("err500", v.server.err_internal);
  add("err503", v.server.err_shutdown);
  add("p50_us", v.server.request_ns.quantile_max(0.5) / 1000);
  add("p99_us", v.server.request_ns.quantile_max(0.99) / 1000);
  add("predict_p50_us", v.service.latency.quantile_max(0.5) / 1000);
  add("predict_p99_us", v.service.latency.quantile_max(0.99) / 1000);
  add("rows", v.service.rows);
  add("bundle_loads", v.service.bundle_loads);
  add("lru_hits", v.service.lru_hits);
  add("flushes", v.coalescer.flushes);
  add("full_flushes", v.coalescer.full_flushes);
  add("budget_flushes", v.coalescer.budget_flushes);
  add("batch_p50", v.coalescer.batch_fill.quantile_max(0.5));
  add("batch_p99", v.coalescer.batch_fill.quantile_max(0.99));
  add("queue_p50", v.coalescer.queue_depth.quantile_max(0.5));
  add("queue_p99", v.coalescer.queue_depth.quantile_max(0.99));
  add("admitted", v.quota_admitted);
  add("shed", v.quota_shed);
  add("connections", v.server.connections);
  add("reload_scans", v.server.reload_scans);
  add("models", v.models);
  add("canaries", v.canaries_started);
  add("promotions", v.promotions);
  add("rollbacks", v.rollbacks);
  add("traced", v.server.traced);
  add("trace_evicted", v.server.trace_evicted);
  add("trace_queue_p50_us", v.server.trace_queue_ns.quantile_max(0.5) / 1000);
  add("trace_queue_p99_us", v.server.trace_queue_ns.quantile_max(0.99) / 1000);
  add("trace_batch_p50", v.server.trace_batch.quantile_max(0.5));
  add("trace_batch_p99", v.server.trace_batch.quantile_max(0.99));
  add("trace_predict_p50_us",
      v.server.trace_predict_ns.quantile_max(0.5) / 1000);
  add("trace_predict_p99_us",
      v.server.trace_predict_ns.quantile_max(0.99) / 1000);
  return out;
}

std::string EstimatorServer::stats_json() {
  const StatsView v = collect_stats();
  const double qps = v.uptime_s > 0.0
                         ? static_cast<double>(v.server.requests) / v.uptime_s
                         : 0.0;
  std::string json = "{\n \"schema_version\": 1,\n";
  const auto add_u64 = [&json](const char* key, std::uint64_t value,
                               bool last = false) {
    json += " \"";
    json += key;
    json += "\": ";
    json += std::to_string(value);
    json += last ? "\n" : ",\n";
  };
  json += " \"uptime_s\": " + format_double(v.uptime_s) + ",\n";
  json += " \"qps\": " + format_double(qps) + ",\n";
  add_u64("requests", v.server.requests);
  add_u64("ok", v.server.ok);
  add_u64("err400", v.server.err_bad_request);
  add_u64("err404", v.server.err_no_model);
  add_u64("err429", v.server.err_over_quota);
  add_u64("err500", v.server.err_internal);
  add_u64("err503", v.server.err_shutdown);
  add_u64("p50_us", v.server.request_ns.quantile_max(0.5) / 1000);
  add_u64("p99_us", v.server.request_ns.quantile_max(0.99) / 1000);
  add_u64("predict_p50_us", v.service.latency.quantile_max(0.5) / 1000);
  add_u64("predict_p99_us", v.service.latency.quantile_max(0.99) / 1000);
  add_u64("rows", v.service.rows);
  add_u64("bundle_loads", v.service.bundle_loads);
  add_u64("lru_hits", v.service.lru_hits);
  add_u64("flushes", v.coalescer.flushes);
  add_u64("full_flushes", v.coalescer.full_flushes);
  add_u64("budget_flushes", v.coalescer.budget_flushes);
  add_u64("batch_p50", v.coalescer.batch_fill.quantile_max(0.5));
  add_u64("batch_p99", v.coalescer.batch_fill.quantile_max(0.99));
  add_u64("queue_p50", v.coalescer.queue_depth.quantile_max(0.5));
  add_u64("queue_p99", v.coalescer.queue_depth.quantile_max(0.99));
  add_u64("admitted", v.quota_admitted);
  add_u64("shed", v.quota_shed);
  add_u64("connections", v.server.connections);
  add_u64("reload_scans", v.server.reload_scans);
  add_u64("models", v.models);
  add_u64("canaries", v.canaries_started);
  add_u64("promotions", v.promotions);
  add_u64("rollbacks", v.rollbacks);
  add_u64("traced", v.server.traced);
  add_u64("trace_evicted", v.server.trace_evicted);
  add_u64("trace_queue_p50_us",
          v.server.trace_queue_ns.quantile_max(0.5) / 1000);
  add_u64("trace_queue_p99_us",
          v.server.trace_queue_ns.quantile_max(0.99) / 1000);
  add_u64("trace_batch_p50", v.server.trace_batch.quantile_max(0.5));
  add_u64("trace_batch_p99", v.server.trace_batch.quantile_max(0.99));
  add_u64("trace_predict_p50_us",
          v.server.trace_predict_ns.quantile_max(0.5) / 1000);
  add_u64("trace_predict_p99_us",
          v.server.trace_predict_ns.quantile_max(0.99) / 1000, /*last=*/true);
  json += "}\n";
  return json;
}

void EstimatorServer::write_stats_snapshot() {
  if (options_.stats_json_path.empty()) return;
  // Observability, not durability: skip the fsync (the heartbeat policy) --
  // a reader still sees old-or-new, never a torn file.
  (void)atomic_write_file(options_.stats_json_path, stats_json(), nullptr,
                          AtomicWriteOptions{.sync = false});
}

ServerStats EstimatorServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

CanaryStatus EstimatorServer::canary_status(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(model);
  return it == models_.end() ? CanaryStatus{} : it->second.status();
}

std::string EstimatorServer::last_error() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace mf
