#pragma once
// Canary rollout / rollback state machine for one served model
// (DESIGN.md section 13).
//
// The registry directory may gain bundle versions at any time (a trainer
// `put`s v2 while v1 serves). Swapping all traffic instantly onto v2 risks
// a bad model taking the whole tenant population down, so the controller
// stages it:
//
//   stable only ──(newer version loads)──> stable + canary
//   stable + canary ──(promote_after consecutive successes)──> new stable
//   stable + canary ──(fail_threshold consecutive failures)──> rollback:
//        the version is marked bad (never retried until something newer
//        appears) and all traffic returns to the stable version
//
// While a canary is live, a deterministic hash of the *client* name routes
// `percent`% of tenants to it -- deterministic so a given tenant sees a
// consistent model (no flapping between versions request to request) and so
// tests can enumerate exactly which clients are canaried. A canary that
// fails at prediction time is invisible to clients: the server re-serves
// the row from stable and only the controller hears about the failure.
//
// Failures *loading* a candidate version count toward the same breaker:
// a corrupt v2 file trips rollback after fail_threshold scan attempts
// without a single canaried client ever existing.
//
// This class is pure bookkeeping -- no I/O, no clock, no locking (the
// server serialises access) -- which is what makes the rollback path unit-
// testable as a deterministic state machine.

#include <cstdint>
#include <set>
#include <string_view>

namespace mf {

struct CanaryOptions {
  /// Percent of clients (by hash) routed to a live canary, 0..100.
  /// 0 = no canary phase: a newer clean version hot-swaps to stable
  /// directly (plain hot reload).
  int percent = 0;
  /// Consecutive canary failures (load or predict) that trigger rollback.
  int fail_threshold = 3;
  /// Consecutive canary prediction successes that promote it to stable.
  int promote_after = 200;
};

/// Observable controller state (all versions 0 = none).
struct CanaryStatus {
  int stable_version = 0;
  int canary_version = 0;
  std::uint64_t canaries_started = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
  /// Consecutive-outcome counters for the live canary (reset on start).
  int consecutive_failures = 0;
  int consecutive_successes = 0;
};

class CanaryController {
 public:
  explicit CanaryController(CanaryOptions options);

  /// FNV-1a over the client name -- stable across runs and platforms, so
  /// canary membership is reproducible in tests and consistent per tenant.
  [[nodiscard]] static std::uint32_t client_hash(
      std::string_view client) noexcept;

  /// Should this client's request be served by the live canary?
  [[nodiscard]] bool use_canary(std::string_view client) const noexcept;

  /// Given the newest version present on disk, which version (if any) is
  /// worth loading right now? 0 = nothing to do. Skips the stable and
  /// live-canary versions and everything marked bad by a rollback.
  [[nodiscard]] int version_to_load(int on_disk_version) const noexcept;

  /// `version` loaded cleanly: adopt it -- as the initial stable, as a hot
  /// swap (percent == 0), or as the new canary.
  void on_load_ok(int version);

  /// `version` failed to load (corrupt/missing file). Counts toward the
  /// canary breaker so a poisoned candidate rolls back without traffic.
  void on_load_failed(int version);

  /// One canaried request finished: ok=false counts toward rollback,
  /// ok=true toward promotion.
  void on_canary_result(bool ok);

  [[nodiscard]] const CanaryStatus& status() const noexcept {
    return status_;
  }
  [[nodiscard]] bool is_bad(int version) const {
    return bad_versions_.count(version) != 0;
  }

 private:
  void rollback(int version);

  CanaryOptions options_;
  CanaryStatus status_;
  /// Versions a rollback condemned; never loaded again (a fixed corrupt
  /// file on disk must not flap the canary open/closed forever).
  std::set<int> bad_versions_;
  /// Consecutive load failures per candidate version (pre-traffic breaker).
  int load_fail_version_ = 0;
  int load_fail_count_ = 0;
};

}  // namespace mf
