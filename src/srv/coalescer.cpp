#include "srv/coalescer.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "srv/protocol.hpp"

namespace mf {

Coalescer::Coalescer(CoalescerOptions options, BatchFn fn)
    : options_(options), fn_(std::move(fn)) {
  MF_CHECK_MSG(options_.coalesce_us >= 0.0,
               "coalesce budget must be >= 0 microseconds");
  MF_CHECK_MSG(options_.max_batch >= 1, "max batch must be >= 1");
  MF_CHECK_MSG(options_.queue_capacity >= options_.max_batch,
               "queue capacity must hold at least one full batch");
  MF_CHECK(fn_ != nullptr);
  flusher_ = std::thread([this] { flush_loop(); });
}

Coalescer::~Coalescer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_flush_.notify_all();
  cv_space_.notify_all();
  flusher_.join();
}

std::shared_ptr<Coalescer::Ticket> Coalescer::submit(BatchItem item) {
  auto ticket = std::make_shared<Ticket>();
  ticket->item = std::move(item);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_space_.wait(lock, [this] {
    return stop_ || queue_.size() < options_.queue_capacity;
  });
  if (stop_) {
    // Shutdown raced a late submitter (the server joins its connection
    // threads first, so this is belt-and-braces): answer 503, never hang.
    ticket->result = {false, 0.0, kErrShutdown, "shutting down"};
    ticket->done = true;
    return ticket;
  }
  ticket->enqueued = std::chrono::steady_clock::now();
  queue_.push_back(ticket);
  ++stats_.submitted;
  stats_.queue_depth.record(queue_.size());
  lock.unlock();
  cv_flush_.notify_one();
  return ticket;
}

BatchResult Coalescer::wait(const std::shared_ptr<Ticket>& ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return ticket->done; });
  return ticket->result;
}

BatchResult Coalescer::submit_wait(BatchItem item) {
  return wait(submit(std::move(item)));
}

CoalescerStats Coalescer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Coalescer::flush_loop() {
  const auto budget = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::micro>(options_.coalesce_us));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_flush_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Batch window: hold until max_batch rows are pending or the *oldest*
    // row's budget expires -- so no row waits more than one budget for
    // batch-mates. Shutdown drains immediately (no window).
    const auto deadline = queue_.front()->enqueued + budget;
    while (!stop_ && queue_.size() < options_.max_batch &&
           cv_flush_.wait_until(lock, deadline) !=
               std::cv_status::timeout) {
    }
    const std::size_t take = std::min(queue_.size(), options_.max_batch);
    std::vector<std::shared_ptr<Ticket>> batch(queue_.begin(),
                                               queue_.begin() + take);
    queue_.erase(queue_.begin(), queue_.begin() + take);
    ++stats_.flushes;
    if (take >= options_.max_batch) {
      ++stats_.full_flushes;
    } else {
      ++stats_.budget_flushes;
    }
    stats_.batch_fill.record(take);
    const auto flushed_at = std::chrono::steady_clock::now();
    lock.unlock();
    cv_space_.notify_all();

    std::vector<BatchItem> items;
    items.reserve(batch.size());
    for (const std::shared_ptr<Ticket>& ticket : batch) {
      items.push_back(std::move(ticket->item));
      // Stamp the queue-wait and fill so traced requests can be reported
      // per item without another trip through the coalescer lock.
      items.back().queue_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              flushed_at - ticket->enqueued)
              .count());
      items.back().batch_size = static_cast<std::uint32_t>(take);
    }
    std::vector<BatchResult> results = fn_(items);
    MF_CHECK_MSG(results.size() == items.size(),
                 "batch function must answer every item");

    lock.lock();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i]->result = std::move(results[i]);
      batch[i]->done = true;
    }
    cv_done_.notify_all();
  }
}

}  // namespace mf
