#pragma once
// Supervised self-healing mode for `macroflow serve`
// (DESIGN.md section 14).
//
// run_supervised() turns the daemon into a two-process tree with the same
// signal topology as the farm supervisor (src/farm/supervisor.hpp):
//
//   supervisor: binds + owns the Unix-domain listening socket, fork/execs
//               one daemon child per generation, watches a heartbeat file,
//               respawns with capped exponential backoff, and tears the
//               child down (SIGTERM -> grace -> SIGKILL) on cancellation;
//   child:      own process group, PR_SET_PDEATHSIG + getppid() guard
//               against orphaning, inherits the *listening* descriptor
//               (the `{LISTEN_FD}` placeholder in child_args is replaced
//               with its number) and serves on it via
//               ServerOptions::listen_fd.
//
// The socket handoff is the availability trick: the listener -- and the
// socket file -- survive a daemon crash, so clients connecting during a
// respawn window just park in the listen backlog instead of getting
// ECONNREFUSED, and a ServeClient retry turns a kill -9 under load into
// nothing worse than a latency blip.
//
// Liveness is heartbeat-*content* staleness, exactly like the farm: the
// child refreshes its stats-JSON snapshot every stats interval (uptime_s
// alone guarantees the bytes change), so a child that is alive-but-wedged
// stops changing the file and is SIGKILLed after heartbeat_timeout_s, then
// respawned. A child that exits 0 (or 130 after the supervisor's own
// teardown) ends the supervision loop with that code; any other death is a
// crash and respawns until max_respawns.

#include <climits>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "common/cancel.hpp"

namespace mf {

struct SupervisedOptions {
  /// Socket the supervisor binds and keeps bound across child generations.
  std::string socket_path;
  /// Child executable; "" = this executable (/proc/self/exe).
  std::string child_exe;
  /// Child argv tail (argv[0] is the executable). Every element equal to
  /// "{LISTEN_FD}" is replaced by the inherited listening descriptor's
  /// number at spawn time.
  std::vector<std::string> child_args;
  /// File whose *content* the child must keep changing ("" disables the
  /// hang detector; exits are still handled).
  std::string heartbeat_path;
  double heartbeat_timeout_s = 10.0;
  double backoff_base_ms = 50.0;
  double backoff_cap_ms = 2000.0;
  /// Crash-respawn budget; exceeding it gives up with exit code 2.
  int max_respawns = INT_MAX;
  /// SIGTERM -> SIGKILL escalation window at teardown.
  double grace_seconds = 5.0;
  double poll_ms = 20.0;
  bool quiet = false;
  const CancelToken* cancel = nullptr;
  /// Test/bench hook: observes every spawned child pid (chaos campaigns
  /// SIGKILL the daemon through this).
  std::function<void(pid_t)> on_spawn;
};

struct SupervisedResult {
  /// CLI contract: the child's clean exit code (0), 130 when cancelled,
  /// 2 on supervisor failure or an exhausted respawn budget.
  int exit_code = 2;
  long spawns = 0;
  long respawns = 0;
  long hung_kills = 0;
  std::string error;
};

/// nullopt = valid, otherwise the reason (exit-2 contract).
std::optional<std::string> supervised_options_error(
    const SupervisedOptions& options);

SupervisedResult run_supervised(const SupervisedOptions& options);

/// Child-process entry for test and bench binaries: when argv is
///   <exe> --serve-child <registry_dir> <listen_fd> <stats_json_path>
/// runs a daemon on the inherited descriptor (fast coalesce/reload knobs,
/// SIGTERM-cancellable) and returns its exit code; nullopt otherwise, and
/// normal startup continues. Mirrors maybe_run_farm_worker()'s shape --
/// call it first in main(). The CLI does not use this hook: its supervised
/// child re-execs the full `serve ... --listen-fd N` command line.
[[nodiscard]] std::optional<int> maybe_run_serve_child(int argc, char** argv);

}  // namespace mf
