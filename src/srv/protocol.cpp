#include "srv/protocol.hpp"

#include <cmath>

#include "common/parse_num.hpp"

namespace mf {
namespace {

constexpr std::string_view kBlanks = " \t";

/// Split `line` into blank-separated tokens (runs of blanks collapse).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t begin = line.find_first_not_of(kBlanks, pos);
    if (begin == std::string_view::npos) break;
    std::size_t end = line.find_first_of(kBlanks, begin);
    if (end == std::string_view::npos) end = line.size();
    tokens.push_back(line.substr(begin, end - begin));
    pos = end;
  }
  return tokens;
}

/// Client and model identifiers reuse the persisted-name contract (no
/// whitespace, no leading '#') plus a length cap: they end up as map keys
/// and in `name@vN` LRU keys, so an adversarial identifier must not be able
/// to smuggle separators or unbounded bytes.
bool valid_identifier(std::string_view name) {
  return name.size() <= 128 && serializable_name(name);
}

/// Trace ids are freer than identifiers (the `<client>:<seq>` convention
/// needs ':') but still bounded: non-empty, capped, and -- by construction
/// of the tokenizer -- free of blanks and line terminators.
bool valid_trace(std::string_view trace) {
  return !trace.empty() && trace.size() <= kMaxTraceBytes;
}

std::optional<Request> fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return std::nullopt;
}

}  // namespace

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error,
                                     std::string* trace) {
  if (trace != nullptr) trace->clear();
  if (line.size() > kMaxLineBytes) return fail(error, "line too long");
  std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) return fail(error, "empty request");

  Request request;
  // Optional leading `id=<trace>` stamp. It is peeled off before verb
  // dispatch (so every verb accepts it) and surfaced via `trace` even when
  // the rest of the line is malformed, so the ERR echo still correlates.
  if (tokens.front().rfind("id=", 0) == 0) {
    const std::string_view stamp = tokens.front().substr(3);
    if (!valid_trace(stamp)) return fail(error, "bad trace id");
    request.trace = std::string(stamp);
    if (trace != nullptr) *trace = request.trace;
    tokens.erase(tokens.begin());
    if (tokens.empty()) return fail(error, "empty request");
  }

  const std::string_view verb = tokens.front();
  if (verb == "PING") {
    if (tokens.size() != 1) return fail(error, "PING takes no arguments");
    request.verb = ReqVerb::Ping;
    return request;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) return fail(error, "STATS takes no arguments");
    request.verb = ReqVerb::Stats;
    return request;
  }
  if (verb == "INFO") {
    if (tokens.size() != 2) return fail(error, "usage: INFO <model>");
    if (!valid_identifier(tokens[1])) return fail(error, "bad model name");
    request.verb = ReqVerb::Info;
    request.model = std::string(tokens[1]);
    return request;
  }
  if (verb == "TRACE") {
    if (tokens.size() != 2) return fail(error, "usage: TRACE <id>");
    if (!valid_trace(tokens[1])) return fail(error, "bad trace id");
    request.verb = ReqVerb::Trace;
    request.query = std::string(tokens[1]);
    return request;
  }
  if (verb == "ESTIMATE") {
    if (tokens.size() < 4) {
      return fail(error, "usage: ESTIMATE <client> <model> <features...>");
    }
    if (!valid_identifier(tokens[1])) return fail(error, "bad client name");
    if (!valid_identifier(tokens[2])) return fail(error, "bad model name");
    const std::size_t n_features = tokens.size() - 3;
    if (n_features > kMaxFeatures) return fail(error, "too many features");
    request.verb = ReqVerb::Estimate;
    request.client = std::string(tokens[1]);
    request.model = std::string(tokens[2]);
    request.features.reserve(n_features);
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const std::optional<double> value = parse_double_text(tokens[i]);
      // Reject non-finite features up front: NaN would poison a batch and
      // break the "same row, same bits" determinism contract.
      if (!value || !std::isfinite(*value)) {
        return fail(error,
                    "bad feature value '" + std::string(tokens[i]) + "'");
      }
      request.features.push_back(*value);
    }
    return request;
  }
  return fail(error, "unknown verb '" + std::string(verb) + "'");
}

std::optional<std::string> pop_line(std::string& buffer) {
  const std::size_t term = buffer.find_first_of("\r\n");
  if (term == std::string::npos) return std::nullopt;
  std::size_t skip = 1;
  if (buffer[term] == '\r') {
    // A '\r' as the final buffered byte is ambiguous: the '\n' half of a
    // CRLF may still be in flight. Wait for the next byte -- consuming the
    // '\r' now would emit a spurious empty line when the '\n' arrives.
    if (term + 1 == buffer.size()) return std::nullopt;
    if (buffer[term + 1] == '\n') skip = 2;
  }
  std::string line = buffer.substr(0, term);
  buffer.erase(0, term + skip);
  return line;
}

namespace {

/// Shared tail for the format functions: trace echo, then terminator.
void finish_response(std::string& out, std::string_view trace) {
  if (!trace.empty()) {
    out += " id=";
    out += trace;
  }
  out += '\n';
}

}  // namespace

std::string format_ok(std::string_view payload, std::string_view trace) {
  std::string out = "OK";
  if (!payload.empty()) {
    out += ' ';
    out += payload;
  }
  finish_response(out, trace);
  return out;
}

std::string format_ok_cf(double cf, std::string_view trace) {
  return format_ok(format_double(cf), trace);
}

std::string format_err(int code, std::string_view reason,
                       std::string_view trace) {
  std::string out = "ERR " + std::to_string(code);
  if (!reason.empty()) {
    out += ' ';
    out += reason;
  }
  finish_response(out, trace);
  return out;
}

std::optional<double> parse_ok_cf(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.rfind("OK ", 0) != 0) return std::nullopt;
  std::string_view payload = line.substr(3);
  const std::size_t space = payload.find(' ');
  if (space != std::string_view::npos) {
    // The only thing allowed after the CF payload is the trace echo.
    if (payload.substr(space + 1).rfind("id=", 0) != 0) return std::nullopt;
    payload = payload.substr(0, space);
  }
  return parse_double_text(payload);
}

std::string_view response_trace(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const std::size_t space = line.rfind(' ');
  if (space == std::string_view::npos) return {};
  const std::string_view tail = line.substr(space + 1);
  if (tail.rfind("id=", 0) != 0) return {};
  return tail.substr(3);
}

int response_code(std::string_view response) {
  while (!response.empty() &&
         (response.back() == '\n' || response.back() == '\r')) {
    response.remove_suffix(1);
  }
  if (response.rfind("OK", 0) == 0) return 0;
  if (response.rfind("ERR ", 0) != 0) return kErrInternal;
  std::string_view tail = response.substr(4);
  const std::size_t space = tail.find(' ');
  if (space != std::string_view::npos) tail = tail.substr(0, space);
  const std::optional<double> code = parse_double_text(tail);
  if (!code) return kErrInternal;
  return static_cast<int>(*code);
}

}  // namespace mf
