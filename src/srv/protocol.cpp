#include "srv/protocol.hpp"

#include <cmath>

#include "common/parse_num.hpp"

namespace mf {
namespace {

constexpr std::string_view kBlanks = " \t";

/// Split `line` into blank-separated tokens (runs of blanks collapse).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t begin = line.find_first_not_of(kBlanks, pos);
    if (begin == std::string_view::npos) break;
    std::size_t end = line.find_first_of(kBlanks, begin);
    if (end == std::string_view::npos) end = line.size();
    tokens.push_back(line.substr(begin, end - begin));
    pos = end;
  }
  return tokens;
}

/// Client and model identifiers reuse the persisted-name contract (no
/// whitespace, no leading '#') plus a length cap: they end up as map keys
/// and in `name@vN` LRU keys, so an adversarial identifier must not be able
/// to smuggle separators or unbounded bytes.
bool valid_identifier(std::string_view name) {
  return name.size() <= 128 && serializable_name(name);
}

std::optional<Request> fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return std::nullopt;
}

}  // namespace

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error) {
  if (line.size() > kMaxLineBytes) return fail(error, "line too long");
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) return fail(error, "empty request");

  Request request;
  const std::string_view verb = tokens.front();
  if (verb == "PING") {
    if (tokens.size() != 1) return fail(error, "PING takes no arguments");
    request.verb = ReqVerb::Ping;
    return request;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) return fail(error, "STATS takes no arguments");
    request.verb = ReqVerb::Stats;
    return request;
  }
  if (verb == "INFO") {
    if (tokens.size() != 2) return fail(error, "usage: INFO <model>");
    if (!valid_identifier(tokens[1])) return fail(error, "bad model name");
    request.verb = ReqVerb::Info;
    request.model = std::string(tokens[1]);
    return request;
  }
  if (verb == "ESTIMATE") {
    if (tokens.size() < 4) {
      return fail(error, "usage: ESTIMATE <client> <model> <features...>");
    }
    if (!valid_identifier(tokens[1])) return fail(error, "bad client name");
    if (!valid_identifier(tokens[2])) return fail(error, "bad model name");
    const std::size_t n_features = tokens.size() - 3;
    if (n_features > kMaxFeatures) return fail(error, "too many features");
    request.verb = ReqVerb::Estimate;
    request.client = std::string(tokens[1]);
    request.model = std::string(tokens[2]);
    request.features.reserve(n_features);
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const std::optional<double> value = parse_double_text(tokens[i]);
      // Reject non-finite features up front: NaN would poison a batch and
      // break the "same row, same bits" determinism contract.
      if (!value || !std::isfinite(*value)) {
        return fail(error,
                    "bad feature value '" + std::string(tokens[i]) + "'");
      }
      request.features.push_back(*value);
    }
    return request;
  }
  return fail(error, "unknown verb '" + std::string(verb) + "'");
}

std::optional<std::string> pop_line(std::string& buffer) {
  const std::size_t nl = buffer.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  std::size_t end = nl;
  if (end > 0 && buffer[end - 1] == '\r') --end;
  std::string line = buffer.substr(0, end);
  buffer.erase(0, nl + 1);
  return line;
}

std::string format_ok(std::string_view payload) {
  std::string out = "OK";
  if (!payload.empty()) {
    out += ' ';
    out += payload;
  }
  out += '\n';
  return out;
}

std::string format_ok_cf(double cf) { return format_ok(format_double(cf)); }

std::string format_err(int code, std::string_view reason) {
  std::string out = "ERR " + std::to_string(code);
  if (!reason.empty()) {
    out += ' ';
    out += reason;
  }
  out += '\n';
  return out;
}

std::optional<double> parse_ok_cf(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.rfind("OK ", 0) != 0) return std::nullopt;
  return parse_double_text(line.substr(3));
}

}  // namespace mf
