#include "srv/net_chaos.hpp"

#include "common/rng.hpp"

namespace mf {

NetChaos::Action NetChaos::draw(int conn, int op, bool send) const {
  if (!options_.enabled || op <= 0) return Action::None;
  const std::string key = "net-chaos:c" + std::to_string(conn) + ":o" +
                          std::to_string(op) + (send ? ":tx" : ":rx");
  Rng rng(task_seed(options_.seed, key));
  const double roll = rng.uniform();
  double edge = options_.p_sever;
  if (roll < edge) return Action::Sever;
  edge += options_.p_stall;
  if (roll < edge) return Action::Stall;
  edge += options_.p_truncate;
  if (roll < edge) return Action::Truncate;
  edge += options_.p_duplicate;
  if (roll < edge) return Action::Duplicate;
  edge += options_.p_garbage;
  if (roll < edge) return Action::Garbage;
  return Action::None;
}

NetChaos::Action NetChaos::next(int conn, int op, bool send) {
  Action action = draw(conn, op, send);
  if (action == Action::None || action == Action::Stall) return action;
  if (options_.max_faults > 0 && faults_ >= options_.max_faults) {
    return Action::None;
  }
  ++faults_;
  return action;
}

std::string NetChaos::garbage_line(int conn, int op) const {
  // Deterministic junk that tokenizes as an unknown verb: the server
  // answers `ERR 400 unknown verb ...` with no id= echo, which a tracing
  // client must count as a stray line and discard.
  Rng rng(task_seed(options_.seed, "net-chaos:garbage:c" +
                                       std::to_string(conn) + ":o" +
                                       std::to_string(op)));
  return "XCHAOS " + std::to_string(rng.u64()) + "\n";
}

const char* to_string(NetChaos::Action action) noexcept {
  switch (action) {
    case NetChaos::Action::None: return "none";
    case NetChaos::Action::Sever: return "sever";
    case NetChaos::Action::Stall: return "stall";
    case NetChaos::Action::Truncate: return "truncate";
    case NetChaos::Action::Duplicate: return "duplicate";
    case NetChaos::Action::Garbage: return "garbage";
  }
  return "unknown";
}

}  // namespace mf
