#include "fabric/device.hpp"

#include <algorithm>

namespace mf {

const char* to_string(ColumnKind kind) noexcept {
  switch (kind) {
    case ColumnKind::ClbL:
      return "CLBL";
    case ColumnKind::ClbM:
      return "CLBM";
    case ColumnKind::Bram:
      return "BRAM";
    case ColumnKind::Dsp:
      return "DSP";
    case ColumnKind::Clock:
      return "CLK";
  }
  return "?";
}

Device::Device(std::string name, std::vector<ColumnKind> columns, int rows,
               int clock_region_rows)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      rows_(rows),
      clock_region_rows_(clock_region_rows) {
  MF_CHECK(rows_ > 0);
  MF_CHECK(!columns_.empty());
  MF_CHECK_MSG(clock_region_rows_ > 0 && rows_ % clock_region_rows_ == 0,
               "rows must divide evenly into clock regions");
  const PBlock whole{0, num_columns() - 1, 0, rows_ - 1};
  totals_ = resources_in(whole);
}

bool Device::in_bounds(const PBlock& pb) const noexcept {
  return !pb.empty() && pb.col_lo >= 0 && pb.col_hi < num_columns() &&
         pb.row_lo >= 0 && pb.row_hi < rows_;
}

int Device::bram_sites_in_rows(int row_lo, int row_hi) noexcept {
  if (row_hi < row_lo) return 0;
  // First site whose base row >= row_lo.
  const int first = (row_lo + kBramRowPitch - 1) / kBramRowPitch;
  // Last site whose span [base, base + pitch - 1] ends <= row_hi.
  const int last = (row_hi + 1) / kBramRowPitch - 1;
  return std::max(0, last - first + 1);
}

int Device::dsp_sites_in_rows(int row_lo, int row_hi) noexcept {
  return bram_sites_in_rows(row_lo, row_hi) * kDspPerPitch;
}

FabricResources Device::resources_in(const PBlock& pb) const {
  FabricResources res;
  if (pb.empty()) return res;
  const int col_lo = std::max(pb.col_lo, 0);
  const int col_hi = std::min(pb.col_hi, num_columns() - 1);
  const int row_lo = std::max(pb.row_lo, 0);
  const int row_hi = std::min(pb.row_hi, rows_ - 1);
  const int height = row_hi - row_lo + 1;
  if (height <= 0) return res;
  for (int c = col_lo; c <= col_hi; ++c) {
    switch (columns_[static_cast<std::size_t>(c)]) {
      case ColumnKind::ClbL:
        res.slices += height;
        break;
      case ColumnKind::ClbM:
        res.slices += height;
        res.slices_m += height;
        break;
      case ColumnKind::Bram:
        res.bram36 += bram_sites_in_rows(row_lo, row_hi);
        break;
      case ColumnKind::Dsp:
        res.dsp += dsp_sites_in_rows(row_lo, row_hi);
        break;
      case ColumnKind::Clock:
        break;
    }
  }
  return res;
}

std::vector<ColumnKind> Device::kinds_in(const PBlock& pb) const {
  MF_CHECK(in_bounds(pb));
  std::vector<ColumnKind> kinds;
  kinds.reserve(static_cast<std::size_t>(pb.width()));
  for (int c = pb.col_lo; c <= pb.col_hi; ++c) {
    kinds.push_back(columns_[static_cast<std::size_t>(c)]);
  }
  return kinds;
}

Device make_device(std::string name, int clb_columns, int m_period,
                   int bram_columns, int dsp_columns, int rows,
                   int clock_region_rows) {
  MF_CHECK(clb_columns > 0 && m_period > 0);
  MF_CHECK(bram_columns >= 0 && dsp_columns >= 0);

  // Distribute special columns evenly: insert a BRAM (or DSP) column after
  // every `clb_columns / (bram_columns + 1)` CLB columns, alternating kinds
  // so that BRAM and DSP columns do not clump together.
  std::vector<ColumnKind> columns;
  columns.reserve(
      static_cast<std::size_t>(clb_columns + bram_columns + dsp_columns + 1));

  const int specials = bram_columns + dsp_columns;
  int emitted_clb = 0;
  int emitted_bram = 0;
  int emitted_dsp = 0;
  int emitted_special = 0;
  const int clock_at = clb_columns / 2;  // clock spine mid-fabric

  for (int i = 0; i < clb_columns; ++i) {
    if (i == clock_at) columns.push_back(ColumnKind::Clock);
    columns.push_back(emitted_clb % m_period == m_period - 1 ? ColumnKind::ClbM
                                                             : ColumnKind::ClbL);
    ++emitted_clb;
    // After this CLB column, decide whether a special column is due.
    if (specials > 0) {
      const int due = (emitted_clb * specials) / clb_columns;
      while (emitted_special < due) {
        // Alternate proportionally between BRAM and DSP.
        const bool pick_bram =
            emitted_bram * (dsp_columns + 1) <= emitted_dsp * (bram_columns + 1)
                ? bram_columns > emitted_bram
                : dsp_columns <= emitted_dsp;
        if (pick_bram && emitted_bram < bram_columns) {
          columns.push_back(ColumnKind::Bram);
          ++emitted_bram;
        } else if (emitted_dsp < dsp_columns) {
          columns.push_back(ColumnKind::Dsp);
          ++emitted_dsp;
        } else if (emitted_bram < bram_columns) {
          columns.push_back(ColumnKind::Bram);
          ++emitted_bram;
        }
        ++emitted_special;
      }
    }
  }
  // Any stragglers (rounding) go at the right edge.
  while (emitted_bram < bram_columns) {
    columns.push_back(ColumnKind::Bram);
    ++emitted_bram;
  }
  while (emitted_dsp < dsp_columns) {
    columns.push_back(ColumnKind::Dsp);
    ++emitted_dsp;
  }

  return Device(std::move(name), std::move(columns), rows, clock_region_rows);
}

}  // namespace mf
