#pragma once
// PBlock helpers shared by the generator (src/core), the detailed placer
// (src/place) and the stitcher (src/stitch).

#include <string>
#include <vector>

#include "fabric/device.hpp"

namespace mf {

/// "PBlock[c0..c1 x r0..r1] (WxH)" -- for logs and bench output.
std::string to_string(const PBlock& pb);

/// Indices (absolute device columns) of the CLB columns inside `pb`,
/// left to right. The detailed placer packs into these.
std::vector<int> clb_columns_in(const Device& device, const PBlock& pb);

/// Indices of the M-type CLB columns inside `pb`.
std::vector<int> m_columns_in(const Device& device, const PBlock& pb);

/// Relocation footprint of a PBlock: the column-kind sequence plus height.
/// Two placements of the same macro are interchangeable iff the footprint
/// kind sequences match column-for-column, the height fits, and (for macros
/// using BRAM/DSP) the row anchor is congruent modulo the site pitch.
struct Footprint {
  std::vector<ColumnKind> kinds;
  int height = 0;
  bool uses_bram_or_dsp = false;

  [[nodiscard]] int width() const noexcept {
    return static_cast<int>(kinds.size());
  }
};

/// Build the footprint of `pb` on `device`; `uses_bram_or_dsp` must be
/// supplied by the caller (it depends on the module, not the rectangle).
Footprint footprint_of(const Device& device, const PBlock& pb,
                       bool uses_bram_or_dsp);

/// True if the footprint can be anchored with its top-left at
/// (col, row) on `device`: in bounds, kind sequence matches, and BRAM/DSP row
/// alignment preserved relative to `anchor_row_origin` (the row the macro was
/// originally implemented at).
bool footprint_fits(const Device& device, const Footprint& fp, int col,
                    int row, int anchor_row_origin);

/// All (col, row) anchors where the footprint fits. `row_stride` thins the
/// candidate rows (the stitcher uses the BRAM pitch for BRAM users).
std::vector<std::pair<int, int>> compatible_anchors(const Device& device,
                                                    const Footprint& fp,
                                                    int anchor_row_origin);

}  // namespace mf
