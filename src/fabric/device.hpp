#pragma once
// Column-based model of a Xilinx 7-series style FPGA fabric.
//
// Real 7-series parts are built from vertical columns of same-typed tiles:
// CLB columns (SLICEL or SLICEM flavoured), block-RAM columns, DSP columns,
// and the clock spine. This model keeps exactly that structure because it is
// what the paper's mechanisms depend on:
//   * PBlocks are rectangles over the column grid, so their resource content
//     is a function of which column kinds they straddle;
//   * pre-implemented macros can only be *relocated* to positions whose
//     column-kind sequence matches the original (Section IV: "PBlocks can be
//     relocated only on columns having the same resource type");
//   * carry chains need vertically contiguous slices in one column;
//   * block RAM sites repeat on a fixed row pitch, which constrains the row
//     alignment of relocations for BRAM-using macros.
//
// Simplifications versus silicon (documented in DESIGN.md): one slice per
// (column, row) grid cell (a real CLB tile holds two slices side by side --
// we model the two as adjacent slice columns), no IO/PS columns, and uniform
// clock regions.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace mf {

/// Kind of one vertical column of the fabric grid.
enum class ColumnKind : std::uint8_t {
  ClbL,   ///< column of SLICEL (LUT6x4, FFx8, CARRY4)
  ClbM,   ///< column of SLICEM (SLICEL capabilities + LUTRAM/SRL)
  Bram,   ///< column of RAMB36 sites (each splits into two RAMB18)
  Dsp,    ///< column of DSP48 sites
  Clock,  ///< clock spine; holds no user logic
};

[[nodiscard]] constexpr bool is_clb(ColumnKind kind) noexcept {
  return kind == ColumnKind::ClbL || kind == ColumnKind::ClbM;
}

[[nodiscard]] const char* to_string(ColumnKind kind) noexcept;

/// Per-slice capacities of the 7-series CLB (Section V-E of the paper).
inline constexpr int kLutsPerSlice = 4;
inline constexpr int kFfsPerSlice = 8;
inline constexpr int kCarryPerSlice = 1;  // one CARRY4 segment per slice

/// A RAMB36 site spans this many slice rows; DSP sites use the same pitch.
inline constexpr int kBramRowPitch = 5;
inline constexpr int kDspPerPitch = 2;  // DSP48s per kBramRowPitch rows

/// Aggregate resources available inside some region of the fabric.
struct FabricResources {
  int slices = 0;    ///< total slices (L + M)
  int slices_m = 0;  ///< M-type slices only
  int bram36 = 0;    ///< whole RAMB36 sites fully contained in the region
  int dsp = 0;       ///< DSP48 sites fully contained in the region

  [[nodiscard]] int luts() const noexcept { return slices * kLutsPerSlice; }
  [[nodiscard]] int ffs() const noexcept { return slices * kFfsPerSlice; }
  [[nodiscard]] int bram18() const noexcept { return bram36 * 2; }

  /// True when every field of `need` is covered.
  [[nodiscard]] bool covers(const FabricResources& need) const noexcept {
    return slices >= need.slices && slices_m >= need.slices_m &&
           bram36 >= need.bram36 && dsp >= need.dsp;
  }
};

/// Rectangular area constraint over the fabric grid (AMD "PBlock").
/// All bounds are inclusive.
struct PBlock {
  int col_lo = 0;
  int col_hi = -1;
  int row_lo = 0;
  int row_hi = -1;

  [[nodiscard]] int width() const noexcept { return col_hi - col_lo + 1; }
  [[nodiscard]] int height() const noexcept { return row_hi - row_lo + 1; }
  [[nodiscard]] bool empty() const noexcept {
    return col_hi < col_lo || row_hi < row_lo;
  }
  [[nodiscard]] long area() const noexcept {
    return empty() ? 0 : static_cast<long>(width()) * height();
  }
  [[nodiscard]] bool contains(int col, int row) const noexcept {
    return col >= col_lo && col <= col_hi && row >= row_lo && row <= row_hi;
  }
  [[nodiscard]] bool overlaps(const PBlock& other) const noexcept {
    return col_lo <= other.col_hi && other.col_lo <= col_hi &&
           row_lo <= other.row_hi && other.row_lo <= row_hi;
  }
  friend bool operator==(const PBlock&, const PBlock&) = default;
};

/// Immutable device description: a named grid of typed columns.
class Device {
 public:
  /// `columns` lists the kind of every grid column, left to right.
  /// `rows` is the slice-row count; `clock_region_rows` divides it evenly.
  Device(std::string name, std::vector<ColumnKind> columns, int rows,
         int clock_region_rows);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int num_columns() const noexcept {
    return static_cast<int>(columns_.size());
  }
  [[nodiscard]] int clock_region_rows() const noexcept {
    return clock_region_rows_;
  }
  [[nodiscard]] ColumnKind column(int col) const {
    MF_CHECK(col >= 0 && col < num_columns());
    return columns_[static_cast<std::size_t>(col)];
  }
  [[nodiscard]] const std::vector<ColumnKind>& columns() const noexcept {
    return columns_;
  }

  /// Whole-device totals.
  [[nodiscard]] const FabricResources& totals() const noexcept {
    return totals_;
  }

  /// True when the PBlock lies fully inside the grid.
  [[nodiscard]] bool in_bounds(const PBlock& pb) const noexcept;

  /// Resources available inside `pb`. BRAM/DSP sites count only when fully
  /// contained (a partially covered site is unusable, as on real parts).
  [[nodiscard]] FabricResources resources_in(const PBlock& pb) const;

  /// Column-kind sequence covered by `pb` -- the relocation footprint.
  [[nodiscard]] std::vector<ColumnKind> kinds_in(const PBlock& pb) const;

  /// Number of RAMB36 sites in one BRAM column restricted to rows
  /// [row_lo, row_hi]; sites start at rows that are multiples of
  /// kBramRowPitch and must fit entirely.
  [[nodiscard]] static int bram_sites_in_rows(int row_lo, int row_hi) noexcept;

  /// DSP48 sites for one DSP column restricted to [row_lo, row_hi].
  [[nodiscard]] static int dsp_sites_in_rows(int row_lo, int row_hi) noexcept;

 private:
  std::string name_;
  std::vector<ColumnKind> columns_;
  int rows_;
  int clock_region_rows_;
  FabricResources totals_;
};

/// Construct a device by interleaving BRAM / DSP / clock columns evenly among
/// CLB columns, with every `m_period`-th CLB column M-typed. This mirrors the
/// regular column mix of real parts without hard-coding a floorplan image.
Device make_device(std::string name, int clb_columns, int m_period,
                   int bram_columns, int dsp_columns, int rows,
                   int clock_region_rows);

}  // namespace mf
