#pragma once
// Device catalog: the two Zynq-7000 parts used in the paper, rebuilt as
// synthetic column grids with matching resource totals (within a few percent;
// exact floorplans are proprietary).
//
//   xc7z020: 13,300 slices, 53,200 LUTs, 106,400 FFs, 140 RAMB36, 220 DSP48
//   xc7z045: 54,650 slices, 218,600 LUTs, 437,200 FFs, 545 RAMB36, 900 DSP48

#include "fabric/device.hpp"

namespace mf {

/// xc7z020-like model: 89 CLB columns x 150 rows = 13,350 slices
/// (target 13,300), 150 RAMB36, 240 DSP48, three clock regions.
Device xc7z020_model();

/// xc7z045-like model: 219 CLB columns x 250 rows = 54,750 slices
/// (target 54,650), 550 RAMB36, 900 DSP48, five clock regions.
Device xc7z045_model();

}  // namespace mf
