#include "fabric/catalog.hpp"

namespace mf {

Device xc7z020_model() {
  // 89 CLB columns, every 3rd M-typed (~33% M slices, close to the real
  // part's SLICEM share); 5 BRAM columns x 30 sites = 150 RAMB36;
  // 4 DSP columns x 60 = 240 DSP48. Rows: 3 clock regions x 50.
  return make_device("xc7z020", /*clb_columns=*/89, /*m_period=*/3,
                     /*bram_columns=*/5, /*dsp_columns=*/4, /*rows=*/150,
                     /*clock_region_rows=*/50);
}

Device xc7z045_model() {
  // 219 CLB columns x 250 rows = 54,750 slices; 11 BRAM columns x 50 = 550
  // RAMB36; 9 DSP columns x 100 = 900 DSP48. Rows: 5 clock regions x 50.
  return make_device("xc7z045", /*clb_columns=*/219, /*m_period=*/3,
                     /*bram_columns=*/11, /*dsp_columns=*/9, /*rows=*/250,
                     /*clock_region_rows=*/50);
}

}  // namespace mf
