#include "fabric/pblock.hpp"

#include <sstream>

namespace mf {

std::string to_string(const PBlock& pb) {
  std::ostringstream out;
  out << "PBlock[" << pb.col_lo << ".." << pb.col_hi << " x " << pb.row_lo
      << ".." << pb.row_hi << "] (" << pb.width() << 'x' << pb.height() << ')';
  return out.str();
}

std::vector<int> clb_columns_in(const Device& device, const PBlock& pb) {
  std::vector<int> cols;
  for (int c = pb.col_lo; c <= pb.col_hi; ++c) {
    if (is_clb(device.column(c))) cols.push_back(c);
  }
  return cols;
}

std::vector<int> m_columns_in(const Device& device, const PBlock& pb) {
  std::vector<int> cols;
  for (int c = pb.col_lo; c <= pb.col_hi; ++c) {
    if (device.column(c) == ColumnKind::ClbM) cols.push_back(c);
  }
  return cols;
}

Footprint footprint_of(const Device& device, const PBlock& pb,
                       bool uses_bram_or_dsp) {
  Footprint fp;
  fp.kinds = device.kinds_in(pb);
  fp.height = pb.height();
  fp.uses_bram_or_dsp = uses_bram_or_dsp;
  return fp;
}

bool footprint_fits(const Device& device, const Footprint& fp, int col,
                    int row, int anchor_row_origin) {
  if (col < 0 || row < 0) return false;
  if (col + fp.width() > device.num_columns()) return false;
  if (row + fp.height > device.rows()) return false;
  if (fp.uses_bram_or_dsp &&
      (row - anchor_row_origin) % kBramRowPitch != 0) {
    return false;
  }
  for (int i = 0; i < fp.width(); ++i) {
    if (device.column(col + i) != fp.kinds[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<int, int>> compatible_anchors(const Device& device,
                                                    const Footprint& fp,
                                                    int anchor_row_origin) {
  std::vector<std::pair<int, int>> anchors;
  const int row_stride = fp.uses_bram_or_dsp ? kBramRowPitch : 1;
  // Start rows at the congruence class of the original anchor.
  int row0 = fp.uses_bram_or_dsp ? anchor_row_origin % kBramRowPitch : 0;
  for (int col = 0; col + fp.width() <= device.num_columns(); ++col) {
    // Cheap reject: first column kind must match before scanning rows.
    if (device.column(col) != fp.kinds.front()) continue;
    bool kinds_ok = true;
    for (int i = 1; i < fp.width(); ++i) {
      if (device.column(col + i) != fp.kinds[static_cast<std::size_t>(i)]) {
        kinds_ok = false;
        break;
      }
    }
    if (!kinds_ok) continue;
    for (int row = row0; row + fp.height <= device.rows(); row += row_stride) {
      anchors.emplace_back(col, row);
    }
  }
  return anchors;
}

}  // namespace mf
