#pragma once
// Resource report: the output of the synthesis stage of Figure 1.
//
// `est_slices` is the deliberately *naive* slice estimate RapidWright
// multiplies by the correction factor (CF): perfect packing, no control-set
// fragmentation, no congestion. The gap between this estimate and what the
// detailed placer actually needs is exactly what the CF -- and hence the
// paper's estimator -- captures.

#include "netlist/stats.hpp"

namespace mf {

struct ResourceReport {
  NetlistStats stats;

  int slices_for_luts = 0;   ///< ceil(LUT-site cells / 4)
  int slices_for_ffs = 0;    ///< ceil(FFs / 8)
  int slices_for_carry = 0;  ///< one slice per CARRY4
  int est_slices = 0;        ///< max of the three (perfect-packing bound)
  int est_slices_m = 0;      ///< M slices needed by SRL/LUTRAM cells
  int bram36 = 0;            ///< RAMB36-equivalent sites needed
  int dsp = 0;

  [[nodiscard]] bool uses_bram_or_dsp() const noexcept {
    return bram36 > 0 || dsp > 0;
  }

  /// Whether the block's PBlock is driven by hard-block columns rather than
  /// slice count (the paper's explanation for optimal CFs below 0.7).
  [[nodiscard]] bool hard_block_dominated() const noexcept;
};

ResourceReport make_report(const Netlist& netlist);

}  // namespace mf
