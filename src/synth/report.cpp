#include "synth/report.hpp"

#include <algorithm>

#include "fabric/device.hpp"

namespace mf {

bool ResourceReport::hard_block_dominated() const noexcept {
  // A rectangle tall enough for the required BRAM/DSP sites brings in at
  // least this many slices per adjacent CLB column; when the slice demand is
  // small relative to the hard-block demand, the PBlock size is set by the
  // hard blocks and the CF on slices stops mattering.
  const int rows_for_bram = bram36 * kBramRowPitch;
  const int rows_for_dsp = (dsp + kDspPerPitch - 1) / kDspPerPitch * kBramRowPitch;
  const int forced_rows = std::max(rows_for_bram, rows_for_dsp);
  return forced_rows > 0 && est_slices < 2 * forced_rows;
}

ResourceReport make_report(const Netlist& netlist) {
  ResourceReport report;
  report.stats = compute_stats(netlist);
  const NetlistStats& s = report.stats;

  const int lut_sites = s.luts + s.m_lut_cells();
  report.slices_for_luts = (lut_sites + kLutsPerSlice - 1) / kLutsPerSlice;
  report.slices_for_ffs = (s.ffs + kFfsPerSlice - 1) / kFfsPerSlice;
  report.slices_for_carry = s.carry4;
  report.est_slices = std::max({report.slices_for_luts, report.slices_for_ffs,
                                report.slices_for_carry, 1});
  report.est_slices_m =
      (s.m_lut_cells() + kLutsPerSlice - 1) / kLutsPerSlice;
  report.bram36 = s.bram36_equiv();
  report.dsp = s.dsp;
  return report;
}

}  // namespace mf
