#include "synth/optimize.hpp"

#include <map>
#include <unordered_set>
#include <vector>

namespace mf {
namespace {

/// Cells that must never be swept: they hold state or drive the outside
/// world through means other than their data output.
bool is_anchor(const Cell& cell) {
  switch (cell.kind) {
    case CellKind::Ff:
    case CellKind::Srl:
    case CellKind::LutRam:
    case CellKind::Bram18:
    case CellKind::Bram36:
    case CellKind::Dsp48:
    case CellKind::Carry4:
      return true;
    case CellKind::Lut:
      return false;
  }
  return true;
}

std::size_t sweep_dangling(Netlist& netlist) {
  std::size_t total = 0;
  // Iterate to a fixed point: removing one LUT can orphan its fan-in.
  for (;;) {
    std::unordered_set<NetId> output_ports(netlist.outputs().begin(),
                                           netlist.outputs().end());
    std::vector<bool> dead(netlist.num_cells(), false);
    std::size_t found = 0;
    for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
      const Cell& cell = netlist.cell(static_cast<CellId>(i));
      if (is_anchor(cell)) continue;
      const bool used = cell.out != kInvalidId &&
                        (!netlist.net(cell.out).sinks.empty() ||
                         netlist.net(cell.out).control_loads > 0 ||
                         output_ports.count(cell.out) > 0);
      if (!used) {
        dead[i] = true;
        ++found;
      }
    }
    if (found == 0) break;
    total += netlist.remove_cells(dead);
  }
  return total;
}

std::size_t merge_duplicate_luts(Netlist& netlist) {
  // Key: the exact input net sequence (LUT masks are not modelled, so two
  // LUTs with identical input order are considered equivalent -- this is the
  // conservative direction for a resource estimator).
  std::map<std::vector<NetId>, CellId> seen;
  std::vector<bool> dead(netlist.num_cells(), false);
  std::vector<std::pair<NetId, NetId>> rewires;  // duplicate out -> keeper out
  std::size_t merged = 0;

  for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
    const Cell& cell = netlist.cell(static_cast<CellId>(i));
    if (cell.kind != CellKind::Lut || cell.out == kInvalidId) continue;
    if (netlist.is_output(cell.out)) continue;  // keep port drivers distinct
    auto [it, inserted] =
        seen.emplace(cell.inputs, static_cast<CellId>(i));
    if (inserted) continue;
    const Cell& keeper = netlist.cell(it->second);
    rewires.emplace_back(cell.out, keeper.out);
    dead[i] = true;
    ++merged;
  }
  if (merged == 0) return 0;

  // Re-point every sink of a duplicate's output to the keeper's output.
  // Done via a rebuild of sink lists inside remove_cells semantics: we first
  // rewrite the cells' input lists, then drop the duplicates.
  std::map<NetId, NetId> rewire_map(rewires.begin(), rewires.end());
  for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
    if (dead[i]) continue;
    const Cell& cell = netlist.cell(static_cast<CellId>(i));
    for (std::size_t k = 0; k < cell.inputs.size(); ++k) {
      const auto it = rewire_map.find(cell.inputs[k]);
      if (it != rewire_map.end()) {
        netlist.rewire_input(static_cast<CellId>(i), k, it->second);
      }
    }
  }
  netlist.remove_cells(dead);
  return merged;
}

}  // namespace

OptimizeResult optimize(Netlist& netlist, const OptimizeOptions& opts) {
  OptimizeResult result;
  if (opts.merge_duplicate_luts) {
    result.merged = merge_duplicate_luts(netlist);
  }
  if (opts.sweep_dangling) {
    result.swept = sweep_dangling(netlist);
  }
  return result;
}

}  // namespace mf
