#pragma once
// Post-mapping netlist optimisation.
//
// Stands in for the "synthesize & optimize" stage of Figure 1. Two passes:
//   * dangling-logic sweep: combinational cells whose outputs reach no
//     output port, sequential element or hard block are removed (transitively);
//   // * duplicate merge: structurally identical LUTs (same kind, same input
//     nets) are folded into one, re-pointing sinks.
// Sequential cells, carry cells and hard blocks are never removed: their
// side effects (state, memory contents) are observable by construction.

#include <cstddef>

#include "netlist/netlist.hpp"

namespace mf {

struct OptimizeOptions {
  bool sweep_dangling = true;
  bool merge_duplicate_luts = true;
};

struct OptimizeResult {
  std::size_t swept = 0;   ///< dangling cells removed
  std::size_t merged = 0;  ///< duplicate LUTs folded
};

OptimizeResult optimize(Netlist& netlist, const OptimizeOptions& opts = {});

}  // namespace mf
