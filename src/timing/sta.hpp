#pragma once
// Static timing analysis over a placed netlist.
//
// Purpose: reproduce Table I's "Longest Path (ns)" columns and, crucially,
// the paper's observation that *tighter* PBlocks give *worse* timing: with
// everything packed densely, routing congestion forces detours, so wire
// delay carries a congestion multiplier fed by the routability model's grid.
//
// Delay model (loosely calibrated against 7-series -1 speed grade):
//   LUT logic          0.124 ns
//   CARRY4 segment     0.057 ns
//   FF clk->Q          0.350 ns (added at launch)
//   FF setup           0.050 ns (added at capture)
//   BRAM clk->DO       1.500 ns, DSP 1.800 ns
//   wire(driver,sink)  0.30 + 0.065 * dist^0.75, scaled by
//                      (1 + 4.5 * max(0, congestion - 0.45))
//   fanout loading     0.015 ns per extra sink
//
// The netlist is acyclic over combinational cells by construction (nets are
// created before the cells that read them), so propagation in net-id order
// is a topological traversal.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/routability.hpp"

namespace mf {

struct TimingOptions {
  double lut_delay = 0.124;
  double carry_delay = 0.057;
  double clk_to_q = 0.350;
  double setup = 0.050;
  double bram_delay = 1.500;
  double dsp_delay = 1.800;
  double wire_base = 0.30;
  double wire_per_dist = 0.065;
  double wire_dist_exp = 0.75;
  double fanout_load = 0.015;
  double congestion_knee = 0.45;   ///< congestion ratio where detours start
  double congestion_slope = 4.5;   ///< delay multiplier slope past the knee
};

struct TimingResult {
  double longest_path_ns = 0.0;
  /// Worst register-to-register (or port-to-register) arrival, per net id of
  /// the critical endpoint; -1 when the netlist has no timed paths.
  NetId critical_endpoint = kInvalidId;
  /// Nets along the critical path, start point first (one entry per logic
  /// stage, ending at critical_endpoint). Empty when nothing is timed.
  std::vector<NetId> critical_path;
};

/// Human-readable critical path report: one line per stage with the driving
/// primitive, its location and the cumulative arrival time.
std::string format_timing_report(const Netlist& netlist,
                                 const Placement& placement,
                                 const TimingResult& result);

/// Analyse `netlist` with cells placed per `placement`; `route` supplies the
/// congestion grid (pass a default-constructed estimate to disable the
/// congestion multiplier), `capacity` is the routability cell capacity used
/// to normalise it.
TimingResult analyze_timing(const Netlist& netlist, const Placement& placement,
                            const RouteEstimate& route, double capacity,
                            const TimingOptions& opts = {});

}  // namespace mf
