#include "timing/sta.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace mf {
namespace {

bool is_sequential(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::Ff:
    case CellKind::Srl:
    case CellKind::LutRam:
    case CellKind::Bram18:
    case CellKind::Bram36:
    case CellKind::Dsp48:
      return true;
    default:
      return false;
  }
}

}  // namespace

TimingResult analyze_timing(const Netlist& netlist, const Placement& placement,
                            const RouteEstimate& route, double capacity,
                            const TimingOptions& opts) {
  MF_CHECK(placement.size() == netlist.num_cells());
  TimingResult result;

  auto launch_delay = [&](CellKind kind) {
    switch (kind) {
      case CellKind::Ff:
      case CellKind::Srl:
      case CellKind::LutRam:
        return opts.clk_to_q;
      case CellKind::Bram18:
      case CellKind::Bram36:
        return opts.bram_delay;
      case CellKind::Dsp48:
        return opts.dsp_delay;
      case CellKind::Lut:
        return opts.lut_delay;
      case CellKind::Carry4:
        return opts.carry_delay;
    }
    return 0.0;
  };

  auto wire_delay = [&](const CellPlacement& from, const CellPlacement& to,
                        int fanout) {
    if (!from.placed() || !to.placed()) return opts.wire_base;
    const double dist = std::abs(static_cast<double>(from.col) - to.col) +
                        std::abs(static_cast<double>(from.row) - to.row);
    double delay = opts.wire_base +
                   opts.wire_per_dist * std::pow(dist, opts.wire_dist_exp) +
                   opts.fanout_load * std::max(fanout - 1, 0);
    if (!route.demand.empty() && capacity > 0.0) {
      const double congestion =
          0.5 * (route.congestion_at(from.col, from.row, capacity) +
                 route.congestion_at(to.col, to.row, capacity));
      delay *= 1.0 + opts.congestion_slope *
                         std::max(0.0, congestion - opts.congestion_knee);
    }
    return delay;
  };

  // arrival[net] = worst arrival at the net's driver pin plus the driver's
  // logic delay; sink-specific wire delay is added per edge. Net ids are a
  // topological order (nets precede the cells that read them). `critical_in`
  // remembers which input determined the arrival, for path tracing.
  std::vector<double> arrival(netlist.num_nets(), 0.0);
  std::vector<NetId> critical_in(netlist.num_nets(), kInvalidId);

  for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(static_cast<NetId>(n));
    if (net.is_clock) continue;
    const CellId driver = net.driver;
    if (driver == kInvalidId) {
      arrival[n] = 0.0;  // primary input
      continue;
    }
    const Cell& cell = netlist.cell(driver);
    double input_arrival = 0.0;
    if (!is_sequential(cell.kind)) {
      for (NetId in : cell.inputs) {
        MF_CHECK_MSG(static_cast<std::size_t>(in) < n,
                     "netlist is not in topological net order");
        const Net& src = netlist.net(in);
        const CellPlacement& from =
            src.driver != kInvalidId
                ? placement[static_cast<std::size_t>(src.driver)]
                : CellPlacement{};
        const double edge =
            arrival[static_cast<std::size_t>(in)] +
            wire_delay(from, placement[static_cast<std::size_t>(driver)],
                       src.fanout());
        if (edge > input_arrival) {
          input_arrival = edge;
          critical_in[n] = in;
        }
      }
    }
    arrival[n] = input_arrival + launch_delay(cell.kind);
  }

  // Endpoints: data inputs of sequential cells.
  for (std::size_t i = 0; i < netlist.num_cells(); ++i) {
    const Cell& cell = netlist.cell(static_cast<CellId>(i));
    if (!is_sequential(cell.kind)) continue;
    for (NetId in : cell.inputs) {
      const Net& src = netlist.net(in);
      const CellPlacement& from =
          src.driver != kInvalidId
              ? placement[static_cast<std::size_t>(src.driver)]
              : CellPlacement{};
      const double path =
          arrival[static_cast<std::size_t>(in)] +
          wire_delay(from, placement[i], src.fanout()) + opts.setup;
      if (path > result.longest_path_ns) {
        result.longest_path_ns = path;
        result.critical_endpoint = in;
      }
    }
  }
  // Also consider paths ending at output ports.
  for (NetId out : netlist.outputs()) {
    const double path = arrival[static_cast<std::size_t>(out)];
    if (path > result.longest_path_ns) {
      result.longest_path_ns = path;
      result.critical_endpoint = out;
    }
  }

  // Trace the critical path back from the endpoint.
  if (result.critical_endpoint != kInvalidId) {
    for (NetId n = result.critical_endpoint; n != kInvalidId;
         n = critical_in[static_cast<std::size_t>(n)]) {
      result.critical_path.push_back(n);
    }
    std::reverse(result.critical_path.begin(), result.critical_path.end());
  }
  return result;
}

std::string format_timing_report(const Netlist& netlist,
                                 const Placement& placement,
                                 const TimingResult& result) {
  std::ostringstream out;
  out << "critical path: " << result.critical_path.size() << " stages, "
      << result.longest_path_ns << " ns\n";
  for (NetId n : result.critical_path) {
    const Net& net = netlist.net(n);
    out << "  ";
    if (net.driver == kInvalidId) {
      out << "<input>";
    } else {
      const Cell& cell = netlist.cell(net.driver);
      out << to_string(cell.kind);
      const CellPlacement& p = placement[static_cast<std::size_t>(net.driver)];
      if (p.placed()) {
        out << " @(" << p.col << ',' << p.row << ')';
      }
    }
    out << " -> net " << n;
    if (!net.label.empty()) out << " '" << net.label << '\'';
    out << " (fanout " << net.fanout() << ")\n";
  }
  return out.str();
}

}  // namespace mf
