#include "nn/finn_blocks.hpp"

#include <algorithm>
#include <string>

#include "netlist/builder.hpp"

namespace mf {

Module gen_mvau(const MvauParams& params, Rng& rng) {
  MF_CHECK(params.simd >= 4 && params.pe >= 1 && params.acc_width >= 4);
  Module module;
  module.name = "mvau";
  module.params = "simd=" + std::to_string(params.simd) +
                  " pe=" + std::to_string(params.pe) +
                  " acc=" + std::to_string(params.acc_width);
  NetlistBuilder b(module.netlist);

  std::vector<ControlSetId> sets;
  for (int i = 0; i < params.control_sets; ++i) {
    sets.push_back(b.control_set(b.input("rst" + std::to_string(i)),
                                 b.input("en" + std::to_string(i))));
  }
  auto cs_of = [&](int pe) {
    return sets[static_cast<std::size_t>(pe) % sets.size()];
  };

  const std::vector<NetId> act = b.input_bus(params.simd, "act");

  // Folding-control broadcast: the MVAU's weight-phase select gates every
  // XNOR lane, a genuine high-fanout net (fanout = simd * pe) that makes
  // larger MVAUs need looser PBlocks (Section V-D).
  const NetId mode = b.lut({act[0], act[act.size() / 2], act.back()});

  for (int pe = 0; pe < params.pe; ++pe) {
    const std::vector<NetId> w =
        b.input_bus(params.simd, "w" + std::to_string(pe));

    // XNOR stage (binary multiply) + input pipeline register.
    std::vector<NetId> xnor(static_cast<std::size_t>(params.simd));
    for (int i = 0; i < params.simd; ++i) {
      xnor[static_cast<std::size_t>(i)] =
          b.lut({act[static_cast<std::size_t>(i)],
                 w[static_cast<std::size_t>(i)], mode});
    }
    const std::vector<NetId> xq = b.register_bus(xnor, cs_of(pe));

    // Popcount: 6:3 compressor LUT layers down to acc_width partial sums.
    std::vector<NetId> level = xq;
    while (static_cast<int>(level.size()) > params.acc_width) {
      const int next = std::max(params.acc_width,
                                static_cast<int>(level.size()) / 2);
      level = b.lut_layer(level, next, 6);
    }

    // Accumulate + threshold subtract: two ripple-carry adders.
    std::vector<NetId> acc(level.begin(),
                           level.begin() +
                               std::min<std::size_t>(level.size(),
                                                     static_cast<std::size_t>(
                                                         params.acc_width)));
    const std::vector<NetId> accq = b.register_bus(acc, cs_of(pe));
    const std::vector<NetId> sum = b.adder(accq, acc);
    const std::vector<NetId> sumq = b.register_bus(sum, cs_of(pe));
    const std::vector<NetId> thresholded = b.adder(sumq, accq);

    // Binary activation out.
    const NetId bit = b.reduce(thresholded, 6);
    module.netlist.mark_output(b.ff(bit, cs_of(pe)));
    (void)rng;
  }
  return module;
}

Module gen_swu(const SwuParams& params, Rng& rng) {
  MF_CHECK(params.channels >= 1 && params.line_width >= 4 &&
           params.kernel >= 2);
  Module module;
  module.name = "swu";
  module.params = "ch=" + std::to_string(params.channels) +
                  " w=" + std::to_string(params.line_width) +
                  " k=" + std::to_string(params.kernel);
  NetlistBuilder b(module.netlist);

  const ControlSetId cs = b.control_set(b.input("rst"), b.input("en"));

  // Line buffers: (kernel - 1) rows of line_width x channels bits. One SRL
  // holds 32 bits of delay, so each row needs ceil(width*channels/32) SRLs
  // chained per channel; deep buffers use BRAM instead.
  const int bits_per_row = params.line_width * params.channels;
  const std::vector<NetId> din = b.input_bus(std::min(params.channels, 32),
                                             "px");
  for (int row = 0; row < params.kernel - 1; ++row) {
    if (params.use_bram) {
      const int brams = std::max(1, bits_per_row / 18432);
      const std::span<const NetId> addr(din.data(),
                                        std::min<std::size_t>(din.size(), 10));
      for (int k = 0; k < brams; ++k) {
        module.netlist.mark_output(b.bram18(addr, addr));
      }
    } else {
      // Two buffered bits per SRL (cascaded SRLC32E halves), keeping the
      // line buffers M-flavoured without making the SWU M-slice dominated.
      const int srls = std::max(1, bits_per_row / 64);
      for (int k = 0; k < srls; ++k) {
        NetId d = din[rng.index(din.size())];
        module.netlist.mark_output(b.srl(d, cs));
      }
    }
  }

  // Read/write address counters: one incrementer per row plus the column
  // counter -- the carry content of an SWU.
  for (int c = 0; c < params.kernel; ++c) {
    const std::vector<NetId> state = b.input_bus(10, "cnt" + std::to_string(c));
    const std::vector<NetId> stateq = b.register_bus(state, cs);
    const std::vector<NetId> next = b.adder(stateq, state);
    module.netlist.mark_output(next.back());
  }

  // Window assembly muxes: kernel^2 taps per (bounded) channel group, all
  // switched by one column-phase select -- a high-fanout broadcast net.
  const int taps = params.kernel * params.kernel *
                   std::min(params.channels, 16);
  const NetId phase = b.lut({din[0], din.back()});
  std::vector<NetId> mux_in = din;
  mux_in.push_back(phase);
  std::vector<NetId> window = b.lut_layer(din, taps, 3);
  for (NetId& w : window) {
    w = b.lut({w, phase});
  }
  const std::vector<NetId> windowq = b.register_bus(window, cs);
  module.netlist.mark_output(windowq.back());
  return module;
}

Module gen_weights(const WeightsParams& params, Rng& rng) {
  MF_CHECK(params.total_bits >= 32 && params.readers >= 1);
  Module module;
  module.name = "weights";
  module.params = "bits=" + std::to_string(params.total_bits) +
                  " readers=" + std::to_string(params.readers) +
                  (params.use_bram ? " bram" : " lutram");
  NetlistBuilder b(module.netlist);

  const ControlSetId cs = b.control_set(kInvalidId, b.input("we"));
  const std::vector<NetId> addr = b.input_bus(12, "addr");
  const std::span<const NetId> low_addr(addr.data(), 5);

  std::vector<NetId> storage_outs;
  if (params.use_bram) {
    const int brams = std::max(1, params.total_bits / 18432);
    const std::span<const NetId> baddr(addr.data(), 10);
    for (int k = 0; k < brams; ++k) {
      storage_outs.push_back(b.bram18(baddr, low_addr));
    }
  } else {
    // One LUTRAM cell stores 64 bits (RAM64X1S on a 6-LUT M site).
    const int cells = std::max(1, params.total_bits / 64);
    for (int k = 0; k < cells; ++k) {
      storage_outs.push_back(
          b.lutram(low_addr, addr[rng.index(addr.size())], cs));
    }
  }

  // Address decode and weight-reshaping logic (wide in FINN's streaming
  // weight generators; this keeps large weight blocks slice-driven rather
  // than purely M-slice-driven, as observed for weights_14 in Table I).
  if (params.decode_luts > 0) {
    std::vector<NetId> decode_in = addr;
    decode_in.insert(decode_in.end(), storage_outs.begin(),
                     storage_outs.end());
    const std::vector<NetId> decode =
        b.lut_layer(decode_in, params.decode_luts, 5);
    module.netlist.mark_output(b.reduce(decode, 6));
  }

  // Read-side mux trees, one per reader, over a slice of the storage.
  const std::size_t per_reader = std::max<std::size_t>(
      1, storage_outs.size() / static_cast<std::size_t>(params.readers));
  for (int r = 0; r < params.readers; ++r) {
    const std::size_t begin =
        std::min(storage_outs.size() - 1, static_cast<std::size_t>(r) * per_reader);
    const std::size_t len =
        std::min(per_reader, storage_outs.size() - begin);
    const std::span<const NetId> bank(storage_outs.data() + begin, len);
    module.netlist.mark_output(b.reduce(bank, 4));
  }

  // Streaming address counter (small carry chain).
  const std::vector<NetId> cnt = b.register_bus(addr, cs);
  const std::vector<NetId> next = b.adder(cnt, addr);
  module.netlist.mark_output(next.back());
  return module;
}

Module gen_threshold(const ThresholdParams& params, Rng& rng) {
  MF_CHECK(params.channels >= 1 && params.bits >= 4);
  Module module;
  module.name = "threshold";
  module.params = "ch=" + std::to_string(params.channels) +
                  " bits=" + std::to_string(params.bits);
  NetlistBuilder b(module.netlist);

  // FINN thresholding cores gate each channel group's comparator registers
  // independently (per-channel stream flow control), giving these blocks a
  // rich control-set mix -- one of the Section V-B drivers.
  std::vector<ControlSetId> sets;
  const int groups = std::max(1, params.channels / 2);
  for (int g = 0; g < groups; ++g) {
    sets.push_back(b.control_set(b.input("rst" + std::to_string(g)),
                                 b.input("en" + std::to_string(g))));
  }
  const std::vector<NetId> acc = b.input_bus(params.bits, "acc");
  for (int c = 0; c < params.channels; ++c) {
    const ControlSetId cs = sets[static_cast<std::size_t>(c) % sets.size()];
    // Comparator: subtract the per-channel threshold (carry chain), register
    // the sign bit. Each channel mixes in its own threshold select net so
    // the comparators stay structurally distinct (different constants on
    // silicon).
    const NetId select = b.input("thr" + std::to_string(c));
    std::vector<NetId> threshold(static_cast<std::size_t>(params.bits));
    for (int i = 0; i < params.bits; ++i) {
      threshold[static_cast<std::size_t>(i)] =
          b.lut({acc[rng.index(acc.size())], select});
    }
    const std::vector<NetId> diff = b.adder(acc, threshold);
    module.netlist.mark_output(b.ff(diff.back(), cs));
  }
  return module;
}

Module gen_pool(const PoolParams& params, Rng& rng) {
  MF_CHECK(params.channels >= 1 && params.window >= 2);
  Module module;
  module.name = "pool";
  module.params = "ch=" + std::to_string(params.channels) +
                  " win=" + std::to_string(params.window);
  NetlistBuilder b(module.netlist);

  const ControlSetId cs = b.control_set(b.input("rst"), b.input("en"));
  const std::vector<NetId> din = b.input_bus(std::min(params.channels, 32),
                                             "px");
  for (int c = 0; c < params.channels; ++c) {
    // Binary max over the window = OR tree; a row delay via SRL.
    std::vector<NetId> taps;
    const NetId src = din[rng.index(din.size())];
    NetId delayed = src;
    for (int wdw = 0; wdw < params.window - 1; ++wdw) {
      delayed = b.srl(delayed, cs);
      taps.push_back(delayed);
    }
    taps.push_back(src);
    for (int wdw = 0; wdw < params.window; ++wdw) {
      taps.push_back(b.ff(taps[rng.index(taps.size())], cs));
    }
    module.netlist.mark_output(b.reduce(taps, 4));
  }
  return module;
}

}  // namespace mf
