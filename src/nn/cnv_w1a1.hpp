#pragma once
// The cnvW1A1 block design (Figure 2 of the paper).
//
// cnvW1A1 (BNN-PYNQ) is a VGG-style binarised CNN: six convolutional and
// three fully connected layers plus two max-pool layers. The paper
// partitions it RapidWright-style into SWU / MVAU / weights / threshold /
// pool blocks: 175 block instances of which only 74 are unique, with the
// largest reuse on the MVAUs (layers 1+2 share one MVAU configuration across
// 48 instances, layers 3+4 across 20; the paper's `mvau_18` has four
// instances and `weights_14` is the largest block). This builder reproduces
// that inventory exactly (asserted) and sizes the blocks so the whole
// design fills ~99% of the model xc7z020 -- the regime where PBlock quality
// decides how many blocks the stitcher can place.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "stitch/macro.hpp"

namespace mf {

/// The cnvW1A1 instance of the generic BlockDesign (74 unique blocks, 175
/// instances, dataflow + weight-feed connectivity).
using CnvDesign = BlockDesign;

/// Build the full design. Deterministic per seed.
CnvDesign build_cnv_w1a1(std::uint64_t seed = 2024);

/// The TFC-W1A1 network from the same BNN-PYNQ suite: a small binarised MLP
/// (784-64-64-64-10) with fully connected layers only. Included to show the
/// flow's transferability beyond the paper's convolutional case study -- it
/// is far below device capacity, so every block places and the flow's value
/// is pure recompilation speed.
BlockDesign build_tfc_w1a1(std::uint64_t seed = 2025);

/// Expected inventory constants (asserted by the builder and the tests).
inline constexpr int kCnvTotalInstances = 175;
inline constexpr int kCnvUniqueBlocks = 74;
inline constexpr int kCnvLayer12MvauInstances = 48;
inline constexpr int kCnvLayer34MvauInstances = 20;

}  // namespace mf
