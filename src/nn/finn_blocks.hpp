#pragma once
// FINN-like hardware blocks of the cnvW1A1 network (Section III).
//
// The paper partitions the FINN-generated cnvW1A1 into matrix-vector
// activation units (MVAU), sliding-window units (SWU), weight storage,
// thresholding (activation) and max-pool blocks. These generators emit
// mapped netlists with the characteristic resource mix of the binarised
// (W1A1) FINN cores:
//   MVAU      -- XNOR layers + popcount adder trees + accumulators:
//                LUT and carry heavy, pipeline FFs;
//   SWU       -- line buffers in SRLs plus address counters:
//                M-slice heavy with carry counters;
//   weights   -- LUTRAM (or BRAM) weight storage plus read muxes:
//                strongly M-slice / BRAM dominated (e.g. weights_14);
//   threshold -- per-channel comparators: LUTs + short carries;
//   maxpool   -- comparators + SRL delay lines.
//
// Parameters are FINN-ish (SIMD/PE/channels); the cnvW1A1 table in
// cnv_w1a1.cpp picks them so the whole design fills ~99.9% of the model
// xc7z020, the regime the paper studies.

#include "common/rng.hpp"
#include "netlist/netlist.hpp"

namespace mf {

struct MvauParams {
  int simd = 32;       ///< dot-product lanes per PE
  int pe = 2;          ///< processing elements
  int acc_width = 16;  ///< accumulator bits
  int control_sets = 2;
};
Module gen_mvau(const MvauParams& params, Rng& rng);

struct SwuParams {
  int channels = 64;   ///< input feature-map channels
  int line_width = 32; ///< pixels per row buffered
  int kernel = 3;
  bool use_bram = false;  ///< deep buffers spill to BRAM
};
Module gen_swu(const SwuParams& params, Rng& rng);

struct WeightsParams {
  int total_bits = 4096;  ///< binary weight bits stored (64 bits per LUTRAM)
  int readers = 4;        ///< parallel read ports (mux trees)
  int decode_luts = 64;   ///< address decode / reshaping logic (plain LUTs)
  bool use_bram = false;  ///< BRAM instead of LUTRAM storage
};
Module gen_weights(const WeightsParams& params, Rng& rng);

struct ThresholdParams {
  int channels = 64;
  int bits = 16;  ///< comparator width
};
Module gen_threshold(const ThresholdParams& params, Rng& rng);

struct PoolParams {
  int channels = 64;
  int window = 2;  ///< pooling window (window x window)
};
Module gen_pool(const PoolParams& params, Rng& rng);

}  // namespace mf
