#include "nn/cnv_w1a1.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "nn/finn_blocks.hpp"

namespace mf {
namespace {

/// Incremental design assembly: tracks unique modules, instances and the
/// dataflow nets between consecutive pipeline stages.
class DesignBuilder {
 public:
  explicit DesignBuilder(std::uint64_t seed) : rng_(seed) {}

  /// Register a unique module under `name`, instantiating it `count` times.
  /// Returns the instance ids created.
  template <typename Params, typename Gen>
  std::vector<int> add(const std::string& name, int count,
                       const Params& params, const Gen& gen) {
    Rng module_rng = rng_.fork(static_cast<std::uint64_t>(
        design_.unique_modules.size() + 1));
    Module module = gen(params, module_rng);
    module.name = name;
    const int unique = static_cast<int>(design_.unique_modules.size());
    design_.unique_modules.push_back(std::move(module));

    std::vector<int> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const int inst = static_cast<int>(design_.instances.size());
      design_.instances.push_back(
          BlockInstance{name + "_i" + std::to_string(i), unique});
      ids.push_back(inst);
    }
    return ids;
  }

  /// Connect a set of instances with one block-level net.
  void net(std::vector<int> instances, double weight = 1.0) {
    if (instances.size() < 2) return;
    design_.nets.push_back(BlockNet{std::move(instances), weight});
  }

  CnvDesign take() { return std::move(design_); }

 private:
  CnvDesign design_;
  Rng rng_;
};

/// Per-layer weight-block inventory: how many instances and how they fold
/// onto unique configurations ({unique_count, duplicated} pairs; the
/// duplicated uniques get two instances each).
struct WeightsLayout {
  int instances = 0;
  int uniques = 0;
  int bits = 4096;
  int decode = 64;
  bool bram = false;
};

}  // namespace

CnvDesign build_cnv_w1a1(std::uint64_t seed) {
  DesignBuilder b(seed);

  // -- MVAU configurations ---------------------------------------------------
  // Names follow the paper's exemplars: `mvau_18` is the four-instance FC
  // MVAU of Table I (~31 slices); layers 1+2 share `mvau_2` (48 instances),
  // layers 3+4 share `mvau_6` (20 instances).
  const MvauParams mvau_a{34, 2, 16, 2};   // conv1/conv2
  const MvauParams mvau_b{56, 2, 16, 2};   // conv3/conv4
  const MvauParams mvau_c{53, 3, 16, 6};   // conv5/conv6 (deep folding)
  const MvauParams mvau_d{70, 4, 16, 8};   // fc1 (deep folding)
  const MvauParams mvau_e{44, 1, 16, 1};   // fc2 (mvau_18)
  const MvauParams mvau_f{70, 2, 16, 2};   // fc3

  // -- per-layer structural parameters ----------------------------------------
  const SwuParams swu_l1{3, 32, 3, false};
  const SwuParams swu_l2{64, 32, 3, false};
  const SwuParams swu_l3{64, 16, 3, false};
  const SwuParams swu_l4{128, 16, 3, false};
  const SwuParams swu_l5{128, 8, 3, false};
  const SwuParams swu_l6{256, 8, 3, false};

  const ThresholdParams thr[9] = {
      {6, 16},  {8, 16},  {10, 16}, {10, 16}, {12, 16},
      {12, 16}, {14, 16}, {10, 16}, {6, 16},
  };

  const PoolParams pool1{64, 2};
  const PoolParams pool2{128, 2};

  // Weight storage per layer. Conv1/conv2 kernels live in BRAM (tiny slice
  // footprint, hard-block-driven PBlocks -- the sub-0.7 CF bins of Fig. 4);
  // the big FC matrix (weights_14) is the LUTRAM giant of Table I.
  const WeightsLayout wl[9] = {
      {4, 4, 2 * 18432, 24, true},    // L1
      {6, 6, 2 * 18432, 24, true},    // L2
      {6, 6, 4000, 130, false},       // L3
      {7, 7, 4000, 130, false},       // L4
      {8, 4, 4800, 155, false},       // L5 (4 uniques x 2 instances)
      {9, 6, 4800, 155, false},       // L6 (3 x 2 + 3 x 1)
      {9, 5, 5500, 180, false},     // L7 (4 x 2 + 1 x 1; + weights_14)
      {7, 7, 4000, 140, false},       // L8
      {5, 5, 3100, 115, false},       // L9
  };
  // weights_14: the fc1 weight matrix, 512x256 binary weights.
  const WeightsParams weights_14{110080, 16, 2600, false};

  // -- assemble ----------------------------------------------------------------
  // MVAU uniques (shared across layers).
  const std::vector<int> mvau_a_ids = b.add("mvau_2", 48, mvau_a, gen_mvau);
  const std::vector<int> mvau_b_ids = b.add("mvau_6", 20, mvau_b, gen_mvau);
  const std::vector<int> mvau_c_ids = b.add("mvau_10", 16, mvau_c, gen_mvau);
  const std::vector<int> mvau_d_ids = b.add("mvau_14", 6, mvau_d, gen_mvau);
  const std::vector<int> mvau_e_ids = b.add("mvau_18", 4, mvau_e, gen_mvau);
  const std::vector<int> mvau_f_ids = b.add("mvau_22", 2, mvau_f, gen_mvau);

  // Slice the shared MVAU instance pools per layer.
  auto pool_slice = [](const std::vector<int>& ids, int from, int count) {
    return std::vector<int>(ids.begin() + from, ids.begin() + from + count);
  };
  const std::vector<std::vector<int>> layer_mvaus = {
      pool_slice(mvau_a_ids, 0, 24), pool_slice(mvau_a_ids, 24, 24),
      pool_slice(mvau_b_ids, 0, 10), pool_slice(mvau_b_ids, 10, 10),
      pool_slice(mvau_c_ids, 0, 8),  pool_slice(mvau_c_ids, 8, 8),
      mvau_d_ids,                    mvau_e_ids,
      mvau_f_ids};

  // SWUs (conv layers only).
  std::vector<std::vector<int>> layer_swus(9);
  layer_swus[0] = b.add("swu_0", 1, swu_l1, gen_swu);
  layer_swus[1] = b.add("swu_1", 1, swu_l2, gen_swu);
  layer_swus[2] = b.add("swu_2", 1, swu_l3, gen_swu);
  layer_swus[3] = b.add("swu_3", 1, swu_l4, gen_swu);
  layer_swus[4] = b.add("swu_4", 1, swu_l5, gen_swu);
  layer_swus[5] = b.add("swu_5", 1, swu_l6, gen_swu);

  // Thresholding (activation) blocks, one per layer.
  std::vector<std::vector<int>> layer_thr(9);
  for (int layer = 0; layer < 9; ++layer) {
    layer_thr[static_cast<std::size_t>(layer)] =
        b.add("thres_" + std::to_string(layer), 1,
              thr[static_cast<std::size_t>(layer)], gen_threshold);
  }

  // Max pools after layers 2 and 4 (0-indexed: after layer index 1 and 3).
  const std::vector<int> pool1_ids = b.add("pool_0", 1, pool1, gen_pool);
  const std::vector<int> pool2_ids = b.add("pool_1", 1, pool2, gen_pool);

  // Weight blocks. Unique names are numbered in creation order, except that
  // the fc1 giant takes the paper's name `weights_14`.
  std::vector<std::vector<int>> layer_weights(9);
  int weights_counter = 0;
  auto next_weights_name = [&] {
    // Skip 14: that name is reserved for the fc1 block.
    if (weights_counter == 14) ++weights_counter;
    return "weights_" + std::to_string(weights_counter++);
  };
  for (int layer = 0; layer < 9; ++layer) {
    const WeightsLayout& layout = wl[static_cast<std::size_t>(layer)];
    WeightsParams params;
    params.total_bits = layout.bits;
    params.decode_luts = layout.decode;
    params.use_bram = layout.bram;
    params.readers = 4;

    const int duplicated = layout.instances - layout.uniques;
    MF_CHECK(duplicated >= 0 && duplicated <= layout.uniques);
    std::vector<int>& ids = layer_weights[static_cast<std::size_t>(layer)];
    for (int u = 0; u < layout.uniques; ++u) {
      // Vary sizes slightly so uniques inside a layer differ (they hold
      // different weight sub-matrices but similar structure).
      WeightsParams p = params;
      p.total_bits += 256 * u;
      p.decode_luts += 4 * u;
      const int count = u < duplicated ? 2 : 1;
      const std::vector<int> made = b.add(next_weights_name(), count, p,
                                          gen_weights);
      ids.insert(ids.end(), made.begin(), made.end());
    }
    if (layer == 6) {
      // fc1: add the giant block as one more unique with one instance.
      const std::vector<int> made =
          b.add("weights_14", 1, weights_14, gen_weights);
      ids.insert(ids.end(), made.begin(), made.end());
    }
  }

  // -- connectivity -------------------------------------------------------------
  // Dataflow: [swu ->] mvaus -> threshold -> (pool ->) next stage.
  std::vector<int> previous_stage;  // instances driving the current layer
  for (int layer = 0; layer < 9; ++layer) {
    const auto& mvaus = layer_mvaus[static_cast<std::size_t>(layer)];
    const auto& thresh = layer_thr[static_cast<std::size_t>(layer)];
    const auto& weights = layer_weights[static_cast<std::size_t>(layer)];
    const auto& swus = layer_swus[static_cast<std::size_t>(layer)];

    std::vector<int> feed = previous_stage;
    if (!swus.empty()) {
      // previous stage -> SWU, SWU -> MVAUs.
      if (!feed.empty()) {
        std::vector<int> link = feed;
        link.push_back(swus.front());
        b.net(std::move(link));
      }
      feed = swus;
    }
    // Activation broadcast: feeder(s) + every MVAU of the layer.
    {
      std::vector<int> link = feed;
      link.insert(link.end(), mvaus.begin(), mvaus.end());
      b.net(std::move(link), 2.0);
    }
    // Weights feed: distribute weight blocks round-robin over the MVAUs.
    for (std::size_t wi = 0; wi < weights.size(); ++wi) {
      b.net({weights[wi], mvaus[wi % mvaus.size()]});
    }
    // MVAUs -> threshold.
    {
      std::vector<int> link = mvaus;
      link.push_back(thresh.front());
      b.net(std::move(link), 2.0);
    }
    previous_stage = thresh;
    if (layer == 1) {
      b.net({thresh.front(), pool1_ids.front()});
      previous_stage = pool1_ids;
    } else if (layer == 3) {
      b.net({thresh.front(), pool2_ids.front()});
      previous_stage = pool2_ids;
    }
  }

  CnvDesign design = b.take();
  MF_CHECK(static_cast<int>(design.instances.size()) == kCnvTotalInstances);
  MF_CHECK(static_cast<int>(design.unique_modules.size()) == kCnvUniqueBlocks);
  return design;
}

BlockDesign build_tfc_w1a1(std::uint64_t seed) {
  DesignBuilder b(seed);

  // Four FC layers (784-64, 64-64, 64-64, 64-10), each: a few MVAUs sharing
  // one configuration within the layer, a weight block, a threshold block.
  struct FcLayer {
    const char* mvau_name;
    MvauParams mvau;
    int mvau_count;
    const char* weights_name;
    WeightsParams weights;
    const char* thr_name;
    ThresholdParams thr;
  };
  const FcLayer layers[] = {
      {"tfc_mvau_0", {49, 4, 16, 2}, 4, "tfc_weights_0",
       {784 * 64 / 16, 8, 400, false}, "tfc_thres_0", {8, 16}},
      {"tfc_mvau_1", {32, 2, 16, 2}, 2, "tfc_weights_1",
       {64 * 64, 4, 120, false}, "tfc_thres_1", {8, 16}},
      {"tfc_mvau_2", {32, 2, 16, 2}, 2, "tfc_weights_2",
       {64 * 64, 4, 120, false}, "tfc_thres_2", {8, 16}},
      {"tfc_mvau_3", {32, 1, 16, 1}, 1, "tfc_weights_3",
       {64 * 10, 2, 48, false}, "tfc_thres_3", {4, 16}},
  };

  std::vector<int> previous;
  for (const FcLayer& layer : layers) {
    const std::vector<int> mvaus =
        b.add(layer.mvau_name, layer.mvau_count, layer.mvau, gen_mvau);
    const std::vector<int> weights =
        b.add(layer.weights_name, 1, layer.weights, gen_weights);
    const std::vector<int> thr =
        b.add(layer.thr_name, 1, layer.thr, gen_threshold);

    std::vector<int> feed = previous;
    feed.insert(feed.end(), mvaus.begin(), mvaus.end());
    b.net(std::move(feed), 2.0);
    for (std::size_t wi = 0; wi < weights.size(); ++wi) {
      b.net({weights[wi], mvaus[wi % mvaus.size()]});
    }
    std::vector<int> collect = mvaus;
    collect.push_back(thr.front());
    b.net(std::move(collect), 2.0);
    previous = thr;
  }
  return b.take();
}

}  // namespace mf
