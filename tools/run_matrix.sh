#!/bin/sh
# Build + test the whole matrix of sanitizer flavours in one command:
#
#   tools/run_matrix.sh              # plain, asan, tsan (in that order)
#   tools/run_matrix.sh plain tsan   # just the named flavours
#   JOBS=4 tools/run_matrix.sh       # cap build/test parallelism
#
# Each flavour gets its own build directory (build-matrix-<flavour>) so the
# matrix never invalidates an existing ./build, and a failure in one flavour
# stops the run with that flavour's name on stderr. This is the one-command
# pre-merge gate: the farm chaos suites, the parallel-engine suites, the
# serving suites, the persistence gate (bench_persist_quick: binary
# load >= 10x text, text<->binary byte-identity), and the stitcher
# portfolio gates (bench_stitch_quick: portfolio >= 1.5x time-to-equal-cost
# or >= 5% cost-at-equal-budget vs lone SA, plus the stitch_portfolio_jobs
# bit-identity rerun at MF_TEST_JOBS=8), and the serving-daemon gates
# (bench_serving_load_quick: >= 5x coalesced QPS with bit-identical
# responses, p99 within the coalesce budget + slack, canary rollback with
# zero client-visible errors, and chaos recovery -- a SIGKILLed supervised
# daemon costs chaos clients only latency, never a wrong answer;
# srv_parallel_jobs: the protocol/coalescer/reload suites under
# contention; srv_chaos: the resilient-client retry machinery crossed
# with the supervisor's respawn loop) all re-run under ASan/UBSan and
# TSan here via each flavour's ctest.

set -eu

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
FLAVOURS="${*:-plain asan tsan}"

sanitize_value() {
  case "$1" in
    plain) echo "OFF" ;;
    asan)  echo "ON" ;;
    tsan)  echo "tsan" ;;
    *) echo "unknown flavour '$1' (expected plain, asan, tsan)" >&2; exit 1 ;;
  esac
}

for flavour in $FLAVOURS; do
  sanitize="$(sanitize_value "$flavour")"
  dir="build-matrix-$flavour"
  echo "== [$flavour] configure ($dir, MF_SANITIZE=$sanitize) =="
  cmake -B "$dir" -S . -DMF_SANITIZE="$sanitize" >/dev/null
  echo "== [$flavour] build =="
  cmake --build "$dir" -j "$JOBS"
  echo "== [$flavour] ctest =="
  if ! (cd "$dir" && ctest --output-on-failure -j "$JOBS"); then
    echo "matrix flavour '$flavour' FAILED" >&2
    exit 1
  fi
done
echo "matrix OK: $FLAVOURS"
