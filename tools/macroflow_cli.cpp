// macroflow command-line interface.
//
// Subcommands:
//   devices                    -- list the device catalog
//   sweep [N]                  -- enumerate the RTL dataset specs
//   implement <module> [--cf X | --min] [--verilog out.v]
//                              -- implement one dataset module (by sweep
//                                 name) or a cnvW1A1 block (by block name)
//   estimate <module>          -- predict the module's CF with a registry
//                                 bundle (training + saving one on a miss)
//   train                      -- train a CF estimator and store it as a
//                                 model bundle (file or registry)
//   predict <module>           -- answer from a stored bundle, never
//                                 retraining
//   cnv [--xdc out.xdc] [--dot out.dot]
//                              -- run the cnvW1A1 flow and export artefacts
//   convert <input> <output> [--to text|binary]
//                              -- migrate a persisted artifact (ground
//                                 truth, module cache, or model bundle)
//                                 between the text and binary formats;
//                                 the artifact kind and source format are
//                                 auto-detected, and the default target is
//                                 the opposite of the source
//   serve (--socket PATH | --stdio) [...]
//                              -- long-running estimator serving daemon: a
//                                 line protocol (ESTIMATE/INFO/STATS/PING/
//                                 TRACE) over a Unix socket or stdin/stdout,
//                                 with cross-request batch coalescing,
//                                 per-client quotas, hot reload, canary
//                                 rollout, and per-request trace ids; with
//                                 --supervised a tiny supervisor owns the
//                                 listening socket and respawns crashed or
//                                 wedged daemon children, so a kill -9 under
//                                 load costs clients only a retry
//   ping --socket PATH         -- one resilient-client PING against a
//                                 serving daemon (0 = pong, 2 = unreachable
//                                 within --deadline-seconds)
//   farm --dir DIR [...]       -- supervise a multi-process dataset farm:
//                                 shard the sweep deterministically, spawn
//                                 worker processes (this binary re-executed
//                                 with --farm-worker), respawn crashed or
//                                 hung workers, quarantine poison shards,
//                                 and merge the shard checkpoints into a
//                                 dataset bit-identical to a single-process
//                                 run
//
// Exit status (uniform across subcommands, asserted by tests/cli_exit_codes.sh):
//   0   -- success
//   1   -- usage / user error (unknown flag, bad value, unknown module)
//   2   -- runtime failure (flow found no solution, file not writable)
//   130 -- cancelled: SIGINT/SIGTERM or an expired --deadline-seconds.
//          A first SIGINT cancels cooperatively (running work drains and
//          checkpoints); a second hard-exits with the same status.

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/binfile.hpp"
#include "common/cancel.hpp"
#include "common/parse_num.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/cf_search.hpp"
#include "core/estimator.hpp"
#include "core/features.hpp"
#include "fabric/catalog.hpp"
#include "farm/supervisor.hpp"
#include "farm/worker.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "netlist/writer.hpp"
#include "nn/cnv_w1a1.hpp"
#include "serve/bundle.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "serve/trainer.hpp"
#include "srv/client.hpp"
#include "srv/server.hpp"
#include "srv/supervised.hpp"
#include "synth/optimize.hpp"

namespace {

using namespace mf;

// Documented exit codes (keep in sync with the header comment, usage(), and
// tests/cli_exit_codes.sh).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitRuntime = 2;
constexpr int kExitCancelled = 130;

/// Process-wide cancellation token: tripped by SIGINT/SIGTERM (installed in
/// main) or by --deadline-seconds, polled by every long-running stage.
CancelToken g_cancel;

int usage() {
  std::fputs(
      "usage: macroflow_cli <command> [options]\n"
      "  devices\n"
      "  sweep [N]\n"
      "  implement <module> [--cf X | --min] [--verilog FILE]\n"
      "  estimate <module> [--jobs N] [--seed S] [--registry DIR]\n"
      "           [--socket PATH]\n"
      "  train [--kind linreg|mlp|dtree|rforest|gboost] [--name NAME]\n"
      "        [--count N] [--trees N] [--seed S] [--jobs N]\n"
      "        [--deadline-seconds S] [--out FILE | --registry DIR]\n"
      "  predict <module> (--model FILE | --name NAME [--registry DIR]\n"
      "          [--socket PATH])\n"
      "  cnv [--xdc FILE] [--dot FILE] [--jobs N] [--model FILE-or-NAME]\n"
      "      [--stitch-engine sa|evo|analytic|portfolio|LIST]\n"
      "      [--stitch-restarts K] [--stitch-jobs N] [--stitch-budget N]\n"
      "      [--stitch-target C] [--stitch-population N]\n"
      "      [--stitch-warm-start] [--checkpoint FILE]\n"
      "      [--deadline-seconds S]\n"
      "  convert <input> <output> [--to text|binary]\n"
      "  serve (--socket PATH | --stdio) [--registry DIR] [--jobs N]\n"
      "        [--coalesce-us U] [--max-batch N] [--queue-capacity N]\n"
      "        [--quota-rate R] [--quota-burst B] [--canary-percent P]\n"
      "        [--canary-fail-threshold N] [--canary-promote-after N]\n"
      "        [--reload-poll-seconds S] [--stats-json FILE]\n"
      "        [--stats-interval S] [--max-connections N] [--max-loaded N]\n"
      "        [--deadline-seconds S] [--supervised] [--listen-fd N]\n"
      "  ping --socket PATH [--deadline-seconds S]\n"
      "  farm --dir DIR [--count N] [--seed S] [--grid A,B,C]\n"
      "       [--workers N] [--shards N] [--worker-jobs N]\n"
      "       [--checkpoint-every N] [--max-attempts N]\n"
      "       [--hang-timeout-seconds S] [--deadline-seconds S] [--quiet]\n"
      "       [--chaos-kill P] [--chaos-hang P] [--chaos-slow P]\n"
      "       [--chaos-faults N] [--chaos-seed S]\n"
      "--jobs: worker threads (1 = sequential, 0 = all hardware threads);\n"
      "results are bit-identical at any value.\n"
      "--deadline-seconds: end-to-end wall-clock budget; on expiry (or\n"
      "SIGINT) the run drains in-flight work, checkpoints what finished\n"
      "(cnv with --checkpoint), and exits with status 130.\n"
      "--checkpoint: module-cache file; loaded before the cnv flow and\n"
      "rewritten (atomically) after it, so a cancelled run resumes with its\n"
      "completed blocks and recomputes only the rest.\n"
      "exit codes: 0 success, 1 usage error, 2 runtime failure,\n"
      "130 cancelled.\n"
      "convert: migrate a ground-truth, module-cache, or model-bundle file\n"
      "between text and binary (kind and source format auto-detected;\n"
      "--to defaults to the opposite of the source). Conversion refuses\n"
      "incomplete or corrupt inputs: migration must be lossless.\n"
      "--seed: estimator training seed (default 3).\n"
      "--registry: model-bundle directory (default $MACROFLOW_MODEL_DIR or\n"
      "./macroflow-models). `estimate` serves a matching bundle from it and\n"
      "only trains (then saves) on a miss; `predict` never trains.\n"
      "--stitch-engine: stitch placement engine, or a comma list of engines\n"
      "to race ('portfolio' = analytic,sa,evo; winner = lowest cost, ties\n"
      "to the lowest config index). Unknown names are an error, never a\n"
      "silent fallback.\n"
      "--stitch-restarts: independent runs per raced engine, best result\n"
      "wins (default 1 = the single-start run).\n"
      "--stitch-jobs: worker threads for the raced configurations (same 0/1\n"
      "semantics and bit-identical guarantee as --jobs).\n"
      "--stitch-budget: move budget per raced configuration (> 0;\n"
      "default = each engine's natural schedule).\n"
      "--stitch-target: first-to-target race -- the config reaching this\n"
      "cost in the fewest moves wins (> 0; default off).\n"
      "--stitch-population: evolutionary population size (>= 2,\n"
      "default 12).\n"
      "--stitch-warm-start: seed SA / evolutionary individual 0 with the\n"
      "deterministic analytic pre-placement.\n"
      "serve: answers 'ESTIMATE <client> <model> <f1..fN>' lines with\n"
      "'OK <cf>' / 'ERR <code> <reason>'; also INFO <model>, STATS, PING,\n"
      "and TRACE <id> (per-request queue wait, batch size, and predict\n"
      "latency for a request stamped 'id=<client>:<seq>').\n"
      "Requests from all connections coalesce into one predict batch per\n"
      "--coalesce-us window (bit-identical to sequential answers); the\n"
      "registry is rescanned every --reload-poll-seconds, and with\n"
      "--canary-percent P a newer bundle version first serves P% of\n"
      "clients, auto-promoted after --canary-promote-after successes or\n"
      "rolled back after --canary-fail-threshold failures. stdio mode\n"
      "serves stdin/stdout and exits 0 at EOF; SIGINT drains and exits\n"
      "130.\n"
      "--supervised: a supervisor process binds and keeps the socket while\n"
      "daemon children (this binary re-executed with --listen-fd) serve on\n"
      "it; crashed or heartbeat-stale children are respawned with capped\n"
      "backoff, and connections made during a respawn park in the listen\n"
      "backlog instead of being refused.\n"
      "ping/predict/estimate --socket: talk to a running daemon through\n"
      "the resilient client (retries with backoff, trace ids, automatic\n"
      "reconnect); predict/estimate extract the module's features locally\n"
      "for the feature set the daemon reports and print the exact served\n"
      "CF.\n"
      "farm: the merged dataset lands in DIR/ground_truth.gt (one file per\n"
      "--grid value when several are given); rerunning over the same DIR\n"
      "resumes completed shards. Crashed/hung workers respawn from their\n"
      "checkpoints; a shard that keeps dying is quarantined (exit 2, the\n"
      "merged output covers the surviving shards). --chaos-* enable seeded\n"
      "fault injection in the workers for testing the supervisor.\n",
      stderr);
  return 1;
}

// -- checked numeric option parsing -----------------------------------------
// std::atof/atoi silently turn a malformed value into 0 (and a flag given
// last would read past argv); every numeric option instead goes through the
// shared common/parse_num.hpp from_chars wrappers (full consumption, range,
// no wrapping), and a bad option exits non-zero with a message naming the
// flag.

std::optional<double> parse_double(const char* text) {
  return parse_double_text(text);
}

std::optional<int> parse_int(const char* text) {
  return parse_number<int>(text);
}

/// Value of option `flag` at argv[i + 1]; exits via the returned nullopt
/// after printing a "missing value" message when the list ends at the flag.
const char* option_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    return nullptr;
  }
  return argv[++i];
}

std::optional<double> parse_double_option(int argc, char** argv, int& i,
                                          const char* flag, double min,
                                          double max) {
  const char* text = option_value(argc, argv, i, flag);
  if (text == nullptr) return std::nullopt;
  const std::optional<double> value = parse_double(text);
  if (!value || !(*value >= min && *value <= max)) {
    std::fprintf(stderr, "invalid value '%s' for %s (expected %g..%g)\n",
                 text, flag, min, max);
    return std::nullopt;
  }
  return value;
}

std::optional<int> parse_int_option(int argc, char** argv, int& i,
                                    const char* flag, int min, int max) {
  const char* text = option_value(argc, argv, i, flag);
  if (text == nullptr) return std::nullopt;
  const std::optional<int> value = parse_int(text);
  if (!value || *value < min || *value > max) {
    std::fprintf(stderr, "invalid value '%s' for %s (expected %d..%d)\n",
                 text, flag, min, max);
    return std::nullopt;
  }
  return value;
}

bool write_file(const std::string& path, const std::string& content) {
  // Atomic temp+rename with stream-state checks: exported artefacts are
  // either complete or absent, and ENOSPC surfaces as a failure.
  return atomic_write_file(path, content);
}

/// Look the module up in the dataset sweep first, then in cnvW1A1.
std::optional<Module> find_module(const std::string& name) {
  for (const GenSpec& spec : dataset_sweep({2000, 42})) {
    if (spec.name == name) return realize(spec);
  }
  const CnvDesign design = build_cnv_w1a1();
  const int idx = design.unique_index(name);
  if (idx >= 0) {
    return design.unique_modules[static_cast<std::size_t>(idx)];
  }
  return std::nullopt;
}

int cmd_devices() {
  Table table({"device", "slices", "M slices", "RAMB36", "DSP48", "grid"});
  for (const Device& dev : {xc7z020_model(), xc7z045_model()}) {
    table.row()
        .cell(dev.name())
        .cell(dev.totals().slices)
        .cell(dev.totals().slices_m)
        .cell(dev.totals().bram36)
        .cell(dev.totals().dsp)
        .cell(std::to_string(dev.num_columns()) + "x" +
              std::to_string(dev.rows()));
  }
  table.print();
  return 0;
}

int cmd_sweep(int count) {
  const std::vector<GenSpec> specs = dataset_sweep({count, 42});
  Table table({"name", "kind"});
  for (const GenSpec& spec : specs) {
    table.row().cell(spec.name).cell(to_string(spec.kind));
  }
  table.print();
  return 0;
}

int cmd_implement(const std::string& name, std::optional<double> cf,
                  bool min_search, const std::string& verilog_path) {
  const std::optional<Module> found = find_module(name);
  if (!found) {
    std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
    return 1;
  }
  Module module = *found;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);
  const Device dev = xc7z020_model();

  std::printf("%s: %d LUTs, %d FFs, %d CARRY4, %d SRL/RAM, est %d slices\n",
              name.c_str(), report.stats.luts, report.stats.ffs,
              report.stats.carry4, report.stats.m_lut_cells(),
              report.est_slices);

  PBlock pblock;
  PlaceResult place;
  double used_cf = 0.0;
  if (min_search || !cf) {
    CfSearchOptions opts;
    opts.start = 0.5;
    const CfSearchResult result =
        find_min_cf(module, report, shape, dev, opts);
    if (!result.found) {
      std::fprintf(stderr, "no feasible CF found\n");
      return 2;
    }
    pblock = result.pblock;
    place = result.place;
    used_cf = result.min_cf;
    std::printf("minimal CF: %.2f (%d tool runs)\n", used_cf,
                result.tool_runs);
  } else {
    const auto pb = generate_pblock(dev, report, shape, *cf);
    if (!pb) {
      std::fprintf(stderr, "no PBlock at CF %.2f\n", *cf);
      return 2;
    }
    place = place_in_pblock(module, report, dev, *pb, {});
    if (!place.feasible) {
      std::fprintf(stderr, "infeasible at CF %.2f: %s\n", *cf,
                   place.fail_reason.c_str());
      return 2;
    }
    pblock = *pb;
    used_cf = *cf;
  }
  std::printf("PBlock %s, %d used slices, fill ratio %.2f\n",
              to_string(pblock).c_str(), place.used_slices, place.fill_ratio);

  if (!verilog_path.empty()) {
    if (!write_file(verilog_path, write_verilog(module))) {
      std::fprintf(stderr, "cannot write %s\n", verilog_path.c_str());
      return 2;
    }
    std::printf("structural netlist written to %s\n", verilog_path.c_str());
  }
  return 0;
}

/// Registry directory: --registry beats $MACROFLOW_MODEL_DIR beats ./.
std::string default_registry_dir(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("MACROFLOW_MODEL_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "macroflow-models";
}

/// Apply the checked --seed flag to every family's training stream. The
/// sub-seeds are derived (not copied) so different families trained from
/// the same flag value still draw independent streams.
void apply_seed(CfEstimator::Options& options, std::uint64_t seed) {
  options.seed = seed;
  options.rforest.seed = task_seed(seed, "cli:rforest");
  options.mlp.seed = task_seed(seed, "cli:mlp");
  options.gboost.seed = task_seed(seed, "cli:gboost");
}

void print_bundle_info(const ModelBundle& bundle) {
  const BundleProvenance& p = bundle.provenance;
  std::printf("bundle '%s' v%d: %s on %s, seed %llu, %lld train rows",
              bundle.name.c_str(), bundle.version,
              to_string(bundle.estimator.kind()),
              to_string(bundle.estimator.features()),
              static_cast<unsigned long long>(p.seed),
              static_cast<long long>(p.dataset_rows));
  if (p.holdout_rows > 0) {
    std::printf(", holdout mean rel. err %.1f%% (median %.1f%%)",
                100.0 * p.holdout_mean_rel_err,
                100.0 * p.holdout_median_rel_err);
  }
  std::printf("\n");
}

int cmd_estimate(const std::string& name, int jobs, std::uint64_t seed,
                 const std::string& registry_dir) {
  const std::optional<Module> found = find_module(name);
  if (!found) {
    std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
    return 1;
  }
  Module module = *found;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);
  const Device dev = xc7z020_model();

  // Registry first: retraining the estimator for every invocation is the
  // exact cost the serving layer exists to remove. The bundle name encodes
  // the training seed so --seed never serves a mismatched model.
  const std::string model_name = "cli-rforest-s" + std::to_string(seed);
  ModelRegistry registry(default_registry_dir(registry_dir));
  ResolveStats resolve_stats;
  std::optional<ModelBundle> bundle =
      registry.resolve(model_name, FeatureSet::All,
                       EstimatorKind::RandomForest, &resolve_stats);
  Timer timer;
  if (bundle) {
    std::printf("estimator source: registry %s (no retraining)\n",
                registry.dir().c_str());
  } else {
    if (resolve_stats.corrupt > 0) {
      std::fprintf(stderr, "warning: %d corrupt bundle(s) skipped: %s\n",
                   resolve_stats.corrupt, resolve_stats.last_error.c_str());
    }
    std::printf("estimator source: trained from scratch (no bundle named "
                "'%s' in %s); ~15 s at --jobs 1\n",
                model_name.c_str(), registry.dir().c_str());
    TrainSpec spec;
    spec.name = model_name;
    spec.kind = EstimatorKind::RandomForest;
    spec.features = FeatureSet::All;
    spec.options.rforest.trees = 200;
    apply_seed(spec.options, seed);
    spec.jobs = jobs;
    bundle = train_bundle(spec, dev);
    if (const auto entry = registry.put(*bundle)) {
      std::printf("saved bundle to %s for future runs\n",
                  entry->path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write bundle into %s\n",
                   registry.dir().c_str());
    }
  }
  print_bundle_info(*bundle);

  const double predicted = bundle->estimator.estimate(report, shape);
  std::printf("ready in %.1fs\npredicted CF for '%s': %.3f\n",
              timer.seconds(), name.c_str(), predicted);

  CfSearchOptions opts;
  opts.start = 0.5;
  const CfSearchResult actual = find_min_cf(module, report, shape, dev, opts);
  if (actual.found) {
    std::printf("actual minimal CF: %.2f (error %.1f%%)\n", actual.min_cf,
                100.0 * std::abs(predicted - actual.min_cf) / actual.min_cf);
  }
  return 0;
}

int cmd_train(const std::string& kind_text, const std::string& model_name,
              int count, int trees, std::uint64_t seed, int jobs,
              const std::string& out_path, const std::string& registry_dir) {
  const std::optional<EstimatorKind> kind =
      estimator_kind_from_string(kind_text);
  if (!kind) {
    std::fprintf(stderr, "unknown estimator kind '%s'\n", kind_text.c_str());
    return 1;
  }
  TrainSpec spec;
  spec.name = model_name;
  spec.kind = *kind;
  spec.features = *kind == EstimatorKind::LinearRegression
                      ? FeatureSet::LinReg9
                      : FeatureSet::All;
  spec.dataset_count = count;
  spec.options.rforest.trees = trees;
  apply_seed(spec.options, seed);
  spec.jobs = jobs;
  // Forest training honours the global deadline/SIGINT token; cancellation
  // surfaces as CancelledError and exits 130 from main (a partial forest is
  // not a resumable artifact, so there is nothing to checkpoint).
  spec.options.rforest.cancel = &g_cancel;

  std::printf("training %s on a %d-spec sweep (seed %llu)...\n",
              to_string(*kind), count,
              static_cast<unsigned long long>(seed));
  Timer timer;
  const ModelBundle bundle = train_bundle(spec, xc7z020_model());
  std::printf("trained in %.1fs\n", timer.seconds());

  if (!out_path.empty()) {
    if (!save_bundle(out_path, bundle)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("bundle written to %s\n", out_path.c_str());
    print_bundle_info(bundle);
    return 0;
  }
  ModelRegistry registry(default_registry_dir(registry_dir));
  const auto entry = registry.put(bundle);
  if (!entry) {
    std::fprintf(stderr, "cannot write bundle into %s\n",
                 registry.dir().c_str());
    return 2;
  }
  std::printf("bundle stored as %s\n", entry->path.c_str());
  ModelBundle stored = bundle;
  stored.version = entry->version;
  print_bundle_info(stored);
  return 0;
}

int cmd_predict(const std::string& name, const std::string& model_path,
                const std::string& model_name,
                const std::string& registry_dir) {
  const std::optional<Module> found = find_module(name);
  if (!found) {
    std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
    return 1;
  }
  Module module = *found;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);

  Timer timer;
  std::optional<double> predicted;
  if (!model_path.empty()) {
    std::string error;
    const std::optional<ModelBundle> bundle =
        load_bundle(model_path, &error);
    if (!bundle) {
      std::fprintf(stderr, "cannot serve %s: %s\n", model_path.c_str(),
                   error.c_str());
      return 2;
    }
    print_bundle_info(*bundle);
    predicted = bundle->estimator.estimate(report, shape);
  } else {
    EstimatorService service(default_registry_dir(registry_dir));
    predicted = service.estimate(model_name, report, shape);
    if (!predicted) {
      std::fprintf(stderr, "cannot serve '%s': %s\n", model_name.c_str(),
                   service.last_error().c_str());
      return 2;
    }
    print_bundle_info(*service.bundle(model_name));
  }
  std::printf("predicted CF for '%s': %.3f (%.0f ms, no retraining)\n",
              name.c_str(), *predicted, timer.seconds() * 1e3);
  return 0;
}

int cmd_cnv(const std::string& xdc_path, const std::string& dot_path,
            int jobs, const StitchOptions& stitch, const std::string& model,
            const std::string& registry_dir,
            const std::string& checkpoint_path) {
  // Fail fast on unusable stitch knobs -- before any flow work runs.
  if (const auto error = stitch_options_error(stitch)) {
    std::fprintf(stderr, "invalid stitch options: %s\n", error->c_str());
    return kExitRuntime;
  }
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  if (!dot_path.empty()) {
    if (!write_file(dot_path, write_dot(design))) return kExitRuntime;
    std::printf("block diagram written to %s\n", dot_path.c_str());
  }
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.jobs = jobs;
  opts.stitch = stitch;
  opts.cancel = &g_cancel;
  opts.checkpoint_path = checkpoint_path;
  CfPolicy policy;
  policy.mode = CfPolicy::Mode::MinSearch;

  // --model swaps the exhaustive per-block min-CF search for one trained
  // estimator call per block -- the paper's headline trade. The value is a
  // bundle file first, a registry name second.
  std::optional<ModelBundle> bundle;
  if (!model.empty()) {
    std::string error;
    bundle = load_bundle(model, &error);
    if (bundle) {
      std::printf("cf policy: estimator from bundle file %s\n",
                  model.c_str());
    } else {
      const ModelRegistry registry(default_registry_dir(registry_dir));
      bundle = registry.resolve(model);
      if (!bundle) {
        std::fprintf(stderr,
                     "cannot load '%s' as a bundle file (%s) or resolve it "
                     "in registry %s\n",
                     model.c_str(), error.c_str(), registry.dir().c_str());
        return 1;
      }
      std::printf("cf policy: estimator from registry %s\n",
                  registry.dir().c_str());
    }
    print_bundle_info(*bundle);
    policy.mode = CfPolicy::Mode::Estimator;
    policy.estimator = &bundle->estimator;
  }
  Timer timer;
  RwFlowResult result;
  if (!checkpoint_path.empty()) {
    // Checkpointed flow: resume completed blocks, rewrite the checkpoint
    // after the run (ModuleCache::run does both; the write is atomic).
    ModuleCache cache;
    const CacheLoadStats loaded = load_module_cache(checkpoint_path, cache);
    if (loaded.loaded > 0 || loaded.corrupted > 0) {
      std::printf("checkpoint %s: %d block(s) resumed, %d corrupt entr%s "
                  "dropped\n",
                  checkpoint_path.c_str(), loaded.loaded, loaded.corrupted,
                  loaded.corrupted == 1 ? "y" : "ies");
    }
    result = cache.run(design, dev, policy, opts);
  } else {
    result = run_rw_flow(design, dev, policy, opts);
  }
  if (result.cancelled) {
    const std::size_t total = design.unique_modules.size();
    std::fprintf(stderr,
                 "cancelled: %zu/%zu unique blocks implemented%s\n",
                 total - static_cast<std::size_t>(result.cancelled_blocks),
                 total,
                 checkpoint_path.empty()
                     ? " (no --checkpoint: progress not persisted)"
                     : ", checkpointed -- rerun to resume");
    return kExitCancelled;
  }
  std::printf("flow: %d tool runs, %d failed blocks, %d/%zu unplaced "
              "(%.1fs)\n",
              result.total_tool_runs, result.failed_blocks,
              result.stitch.unplaced, result.problem.instances.size(),
              timer.seconds());
  if (result.stitch.engines.size() > 1) {
    std::printf("stitch race: %zu configs, winner '%s' (config %d, cost "
                "%.1f)\n",
                result.stitch.engines.size(), result.stitch.engine.c_str(),
                result.stitch.restart_index, result.stitch.cost);
  }
  if (!xdc_path.empty()) {
    if (!write_file(xdc_path,
                    write_xdc(result.problem, result.stitch.positions))) {
      return kExitRuntime;
    }
    std::printf("floorplan constraints written to %s\n", xdc_path.c_str());
  }
  return kExitOk;
}

/// Parse --stitch-engine: one engine name, or a comma-separated list which
/// becomes a portfolio racing exactly those engines. False on any unknown
/// name (the caller reports and exits 2 -- no silent SA fallback).
bool parse_stitch_engines(const char* text, StitchOptions& stitch) {
  std::vector<StitchEngine> list;
  const std::string input = text;
  std::size_t begin = 0;
  while (begin <= input.size()) {
    const std::size_t comma = input.find(',', begin);
    const std::size_t end = comma == std::string::npos ? input.size() : comma;
    const std::optional<StitchEngine> parsed =
        stitch_engine_from_string(input.substr(begin, end - begin));
    if (!parsed) return false;
    list.push_back(*parsed);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (list.empty()) return false;
  if (list.size() == 1) {
    stitch.engine = list.front();
    stitch.portfolio.clear();
  } else {
    stitch.engine = StitchEngine::Portfolio;
    stitch.portfolio = std::move(list);
  }
  return true;
}

/// Comma-separated positive-double list ("0.5,0.9") for --grid.
std::optional<std::vector<double>> parse_double_list(const char* text) {
  std::vector<double> values;
  const std::string input = text;
  std::size_t begin = 0;
  while (begin <= input.size()) {
    const std::size_t comma = input.find(',', begin);
    const std::size_t end = comma == std::string::npos ? input.size() : comma;
    const std::optional<double> value =
        parse_double(input.substr(begin, end - begin).c_str());
    if (!value || !(*value > 0.0)) return std::nullopt;
    values.push_back(*value);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (values.empty()) return std::nullopt;
  return values;
}

int cmd_farm(const FarmOptions& options) {
  Timer timer;
  const FarmResult result = run_farm(options);
  if (result.cancelled) {
    std::fprintf(stderr, "cancelled\n");
    return kExitCancelled;
  }
  for (const std::string& warning : result.merge.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
  if (!result.ok && result.shards_quarantined == 0) {
    std::fprintf(stderr, "farm failed: %s\n", result.error.c_str());
    return kExitRuntime;
  }
  std::printf(
      "farm: %d/%d shards done (%d resumed), %ld spawns (%ld respawns, "
      "%ld hung killed), %ld samples + %ld infeasible in %.1fs\n",
      result.shards_done, result.shards_total, result.shards_resumed,
      result.spawns, result.respawns, result.hung_killed, result.samples,
      result.infeasible, timer.seconds());
  for (const std::string& path : result.merged_paths) {
    std::printf("merged dataset written to %s\n", path.c_str());
  }
  if (result.shards_quarantined > 0) {
    std::fprintf(stderr, "farm degraded: %s (see %s)\n",
                 result.error.c_str(),
                 farm_quarantine_dir(options.dir).c_str());
    return kExitRuntime;
  }
  return kExitOk;
}

// -- serve ------------------------------------------------------------------

int cmd_serve(ServerOptions options) {
  options.cancel = &g_cancel;
  // Fail-fast semantic validation: a bad combination exits 2 before any
  // socket is bound or request read (never a partial listen).
  if (const std::optional<std::string> error = server_options_error(options)) {
    std::fprintf(stderr, "serve: %s\n", error->c_str());
    return kExitRuntime;
  }
  EstimatorServer server(std::move(options));
  const int code = server.run();
  if (code == kExitRuntime) {
    std::fprintf(stderr, "serve: %s\n", server.last_error().c_str());
  } else if (code == kExitCancelled) {
    std::fprintf(stderr, "cancelled\n");
  }
  return code;
}

/// `serve --supervised`: a supervisor owns the listening socket and
/// fork/execs `serve ... --listen-fd N` children (this very binary),
/// respawning on crashes and heartbeat stalls (DESIGN.md section 14). The
/// server options are validated up front so a bad flag combination exits 2
/// immediately instead of crash-looping the child against its budget.
int cmd_serve_supervised(ServerOptions options,
                         std::vector<std::string> child_args) {
  if (options.stdio || options.socket_path.empty()) {
    std::fprintf(stderr,
                 "serve: --supervised needs a socket (--socket PATH, not "
                 "--stdio)\n");
    return kExitRuntime;
  }
  if (options.listen_fd >= 0) {
    std::fprintf(
        stderr,
        "serve: --supervised and --listen-fd are mutually exclusive\n");
    return kExitRuntime;
  }
  if (const std::optional<std::string> error = server_options_error(options)) {
    std::fprintf(stderr, "serve: %s\n", error->c_str());
    return kExitRuntime;
  }
  SupervisedOptions sup;
  sup.socket_path = options.socket_path;
  sup.cancel = &g_cancel;
  // The child's stats-JSON snapshot doubles as the liveness heartbeat
  // (uptime_s changes every interval, so fresh bytes == alive); force one
  // next to the socket when the user did not ask for a snapshot file.
  double interval = options.stats_interval_seconds;
  sup.heartbeat_path = options.stats_json_path;
  if (sup.heartbeat_path.empty()) {
    interval = 0.25;
    sup.heartbeat_path = options.socket_path + ".stats.json";
    child_args.push_back("--stats-json");
    child_args.push_back(sup.heartbeat_path);
    child_args.push_back("--stats-interval");
    child_args.push_back("0.25");
  }
  sup.heartbeat_timeout_s = std::max(5.0, 20.0 * interval);
  child_args.insert(child_args.begin(), "serve");
  child_args.push_back("--listen-fd");
  child_args.push_back("{LISTEN_FD}");
  sup.child_args = std::move(child_args);
  const SupervisedResult result = run_supervised(sup);
  if (result.exit_code == kExitRuntime && !result.error.empty()) {
    std::fprintf(stderr, "serve: %s\n", result.error.c_str());
  } else if (result.exit_code == kExitCancelled) {
    std::fprintf(stderr, "cancelled\n");
  }
  return result.exit_code;
}

// -- ping / remote predict --------------------------------------------------

/// Shared resilient-client options for the CLI's daemon-facing verbs.
ClientOptions cli_client_options(const std::string& socket_path,
                                 const char* name, double deadline_s) {
  ClientOptions options;
  options.socket_path = socket_path;
  options.client_name = name;
  options.connect_deadline_s = deadline_s;
  options.request_deadline_s = deadline_s;
  options.cancel = &g_cancel;
  return options;
}

int cmd_ping(const std::string& socket_path, double deadline_s) {
  ClientOptions copts = cli_client_options(socket_path, "cli-ping",
                                           deadline_s);
  if (const std::optional<std::string> error = client_options_error(copts)) {
    std::fprintf(stderr, "ping: %s\n", error->c_str());
    return kExitUsage;
  }
  Timer timer;
  ServeClient client(std::move(copts));
  std::string error;
  if (!client.ping(&error)) {
    if (g_cancel.cancelled()) {
      std::fprintf(stderr, "cancelled\n");
      return kExitCancelled;
    }
    std::fprintf(stderr, "ping: %s unreachable: %s\n", socket_path.c_str(),
                 error.c_str());
    return kExitRuntime;
  }
  std::printf("pong from %s in %.1f ms\n", socket_path.c_str(),
              timer.seconds() * 1e3);
  return kExitOk;
}

/// predict/estimate with --socket: INFO names the served bundle's feature
/// set, the module's features are extracted locally for that set, and
/// ESTIMATE goes through the resilient client (retries, backoff, trace
/// ids), so the printed CF is the exact value the daemon served.
int cmd_remote_predict(const std::string& name,
                       const std::string& socket_path,
                       const std::string& model_name) {
  const std::optional<Module> found = find_module(name);
  if (!found) {
    std::fprintf(stderr, "unknown module '%s'\n", name.c_str());
    return kExitUsage;
  }
  Module module = *found;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);

  ClientOptions copts = cli_client_options(socket_path, "cli", 10.0);
  if (const std::optional<std::string> error = client_options_error(copts)) {
    std::fprintf(stderr, "predict: %s\n", error->c_str());
    return kExitUsage;
  }
  Timer timer;
  ServeClient client(std::move(copts));
  std::string error;
  const std::optional<std::string> info = client.info(model_name, &error);
  if (!info) {
    if (g_cancel.cancelled()) {
      std::fprintf(stderr, "cancelled\n");
      return kExitCancelled;
    }
    std::fprintf(stderr, "cannot serve '%s' via %s: %s\n",
                 model_name.c_str(), socket_path.c_str(), error.c_str());
    return kExitRuntime;
  }
  std::optional<FeatureSet> set;
  const std::size_t pos = info->find("features=");
  if (pos != std::string::npos) {
    std::string token = info->substr(pos + 9);
    if (const std::size_t space = token.find(' ');
        space != std::string::npos) {
      token.resize(space);
    }
    for (const FeatureSet candidate :
         {FeatureSet::Classical, FeatureSet::ClassicalStar,
          FeatureSet::Additional, FeatureSet::All, FeatureSet::LinReg9}) {
      if (token == to_string(candidate)) set = candidate;
    }
  }
  if (!set) {
    std::fprintf(stderr,
                 "predict: daemon INFO names no known feature set (%s)\n",
                 info->c_str());
    return kExitRuntime;
  }
  const std::vector<double> row = extract_features(*set, report, shape);
  const std::optional<double> cf =
      client.estimate("cli", model_name, row, &error);
  if (!cf) {
    std::fprintf(stderr, "cannot serve '%s' via %s: %s\n",
                 model_name.c_str(), socket_path.c_str(), error.c_str());
    return kExitRuntime;
  }
  const ClientStats& stats = client.stats();
  std::string suffix;
  if (stats.retries > 0) {
    suffix = ", " + std::to_string(stats.retries) +
             (stats.retries == 1 ? " retry" : " retries");
  }
  std::printf("daemon bundle: %s\n", info->c_str());
  std::printf("predicted CF for '%s': %.3f (served via %s, %.0f ms%s)\n",
              name.c_str(), *cf, socket_path.c_str(), timer.seconds() * 1e3,
              suffix.c_str());
  return kExitOk;
}

// -- convert ----------------------------------------------------------------

/// What kind of persisted artifact a file holds, detected without loading it.
enum class ArtifactKind { GroundTruth, ModuleCache, ModelBundle, Unknown };

ArtifactKind detect_kind(const std::string& bytes) {
  if (is_binfile(bytes)) {
    // The meta section names the kind; a damaged container is reported by
    // the kind-specific loader below, so be permissive here.
    std::string error;
    const std::optional<BinFile> file = BinFile::open(bytes, &error);
    if (!file) return ArtifactKind::Unknown;
    const std::optional<std::string_view> meta = file->section("meta");
    if (!meta) return ArtifactKind::Unknown;
    BinCursor cursor(*meta);
    const std::string kind = cursor.str(256);
    if (kind == "ground-truth") return ArtifactKind::GroundTruth;
    if (kind == "module-cache") return ArtifactKind::ModuleCache;
    if (kind == "model-bundle") return ArtifactKind::ModelBundle;
    return ArtifactKind::Unknown;
  }
  if (bytes.rfind("macroflow-ground-truth ", 0) == 0)
    return ArtifactKind::GroundTruth;
  if (bytes.rfind("macroflow-module-cache ", 0) == 0)
    return ArtifactKind::ModuleCache;
  if (bytes.rfind("macroflow-model-bundle ", 0) == 0)
    return ArtifactKind::ModelBundle;
  return ArtifactKind::Unknown;
}

int cmd_convert(const std::string& input_path, const std::string& output_path,
                std::optional<PersistFormat> target) {
  const std::optional<std::string> bytes = read_file(input_path);
  if (!bytes) {
    std::fprintf(stderr, "convert: cannot read %s\n", input_path.c_str());
    return kExitRuntime;
  }
  const bool source_binary = is_binfile(*bytes);
  // Default target: the opposite representation of the source.
  const PersistFormat format = target.value_or(
      source_binary ? PersistFormat::Text : PersistFormat::Binary);
  const ArtifactKind kind = detect_kind(*bytes);

  std::string out;
  std::string error = "unrecognised format";
  switch (kind) {
    case ArtifactKind::GroundTruth: {
      const std::optional<std::vector<LabeledModule>> samples =
          source_binary ? ground_truth_from_binary(*bytes, &error)
                        : ground_truth_from_text(*bytes);
      if (!samples) {
        std::fprintf(stderr, "convert: %s: corrupt ground truth (%s)\n",
                     input_path.c_str(), error.c_str());
        return kExitRuntime;
      }
      out = format == PersistFormat::Binary ? ground_truth_to_binary(*samples)
                                            : ground_truth_to_text(*samples);
      std::printf("convert: %zu ground-truth samples -> %s (%s)\n",
                  samples->size(), output_path.c_str(),
                  format == PersistFormat::Binary ? "binary" : "text");
      break;
    }
    case ArtifactKind::ModuleCache: {
      // Migration must be lossless: a cache that loads partially (dropped
      // corrupt entries) is fine for flow resume but wrong to convert --
      // the damage would be silently laundered into a clean-looking file.
      ModuleCache cache;
      const CacheLoadStats stats = source_binary
                                       ? module_cache_from_binary(*bytes, cache)
                                       : module_cache_from_text(*bytes, cache);
      if (!stats.header_ok || !stats.complete || stats.corrupted != 0) {
        std::fprintf(stderr,
                     "convert: %s: incomplete or corrupt module cache "
                     "(loaded %d, corrupted %d)\n",
                     input_path.c_str(), stats.loaded, stats.corrupted);
        return kExitRuntime;
      }
      out = format == PersistFormat::Binary ? module_cache_to_binary(cache)
                                            : module_cache_to_text(cache);
      std::printf("convert: %d cache entries -> %s (%s)\n", stats.loaded,
                  output_path.c_str(),
                  format == PersistFormat::Binary ? "binary" : "text");
      break;
    }
    case ArtifactKind::ModelBundle: {
      const std::optional<ModelBundle> bundle =
          source_binary ? bundle_from_binary(*bytes, &error)
                        : bundle_from_text(*bytes, &error);
      if (!bundle) {
        std::fprintf(stderr, "convert: %s: corrupt model bundle (%s)\n",
                     input_path.c_str(), error.c_str());
        return kExitRuntime;
      }
      out = format == PersistFormat::Binary ? bundle_to_binary(*bundle)
                                            : bundle_to_text(*bundle);
      std::printf("convert: bundle %s v%d -> %s (%s)\n",
                  bundle->name.c_str(), bundle->version, output_path.c_str(),
                  format == PersistFormat::Binary ? "binary" : "text");
      break;
    }
    case ArtifactKind::Unknown:
      std::fprintf(stderr,
                   "convert: %s is not a recognised macroflow artifact\n",
                   input_path.c_str());
      return kExitRuntime;
  }
  if (!write_file(output_path, out)) {
    std::fprintf(stderr, "convert: cannot write %s\n", output_path.c_str());
    return kExitRuntime;
  }
  return kExitOk;
}

/// Full command dispatch; main() wraps it with signal installation and the
/// CancelledError -> 130 mapping.
int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "devices") return cmd_devices();
  if (command == "sweep") {
    if (argc > 3) return usage();
    int count = 100;
    if (argc == 3) {
      const std::optional<int> parsed = parse_int(argv[2]);
      if (!parsed || *parsed <= 0) {
        std::fprintf(stderr,
                     "invalid sweep size '%s' (expected a positive integer)\n",
                     argv[2]);
        return 1;
      }
      count = *parsed;
    }
    return cmd_sweep(count);
  }
  if (command == "implement") {
    if (argc < 3) return usage();
    std::optional<double> cf;
    bool min_search = false;
    std::string verilog;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--cf") == 0) {
        cf = parse_double_option(argc, argv, i, "--cf", 0.01, 100.0);
        if (!cf) return 1;
      } else if (std::strcmp(argv[i], "--min") == 0) {
        min_search = true;
      } else if (std::strcmp(argv[i], "--verilog") == 0) {
        const char* path = option_value(argc, argv, i, "--verilog");
        if (path == nullptr) return 1;
        verilog = path;
      } else {
        return usage();
      }
    }
    return cmd_implement(argv[2], cf, min_search, verilog);
  }
  if (command == "estimate") {
    if (argc < 3) return usage();
    int jobs = MF_JOBS_DEFAULT;
    int seed = 3;  // the historical hard-coded Options::seed
    std::string registry_dir;
    std::string socket_path;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--jobs") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--jobs", 0, 1024);
        if (!parsed) return 1;
        jobs = *parsed;
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--seed", 0, 1 << 30);
        if (!parsed) return 1;
        seed = *parsed;
      } else if (std::strcmp(argv[i], "--registry") == 0) {
        const char* path = option_value(argc, argv, i, "--registry");
        if (path == nullptr) return 1;
        registry_dir = path;
      } else if (std::strcmp(argv[i], "--socket") == 0) {
        const char* path = option_value(argc, argv, i, "--socket");
        if (path == nullptr) return 1;
        socket_path = path;
      } else {
        return usage();
      }
    }
    if (!socket_path.empty()) {
      // Same model name cmd_estimate would resolve, but answered by a
      // running daemon instead of an in-process registry load.
      return cmd_remote_predict(argv[2], socket_path,
                                "cli-rforest-s" + std::to_string(seed));
    }
    return cmd_estimate(argv[2], jobs, static_cast<std::uint64_t>(seed),
                        registry_dir);
  }
  if (command == "train") {
    std::string kind = "rforest";
    std::string name = "default";
    int count = 2000;
    int trees = 200;
    int seed = 3;
    int jobs = MF_JOBS_DEFAULT;
    std::string out;
    std::string registry_dir;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--kind") == 0) {
        const char* text = option_value(argc, argv, i, "--kind");
        if (text == nullptr) return 1;
        kind = text;
      } else if (std::strcmp(argv[i], "--name") == 0) {
        const char* text = option_value(argc, argv, i, "--name");
        if (text == nullptr) return 1;
        name = text;
      } else if (std::strcmp(argv[i], "--count") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--count", 10, 100000);
        if (!parsed) return 1;
        count = *parsed;
      } else if (std::strcmp(argv[i], "--trees") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--trees", 1, 100000);
        if (!parsed) return 1;
        trees = *parsed;
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--seed", 0, 1 << 30);
        if (!parsed) return 1;
        seed = *parsed;
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--jobs", 0, 1024);
        if (!parsed) return 1;
        jobs = *parsed;
      } else if (std::strcmp(argv[i], "--out") == 0) {
        const char* path = option_value(argc, argv, i, "--out");
        if (path == nullptr) return 1;
        out = path;
      } else if (std::strcmp(argv[i], "--registry") == 0) {
        const char* path = option_value(argc, argv, i, "--registry");
        if (path == nullptr) return 1;
        registry_dir = path;
      } else if (std::strcmp(argv[i], "--deadline-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--deadline-seconds", 0.0, 1e9);
        if (!parsed) return 1;
        g_cancel.set_deadline_seconds(*parsed);
      } else {
        return usage();
      }
    }
    return cmd_train(kind, name, count, trees,
                     static_cast<std::uint64_t>(seed), jobs, out,
                     registry_dir);
  }
  if (command == "predict") {
    if (argc < 3) return usage();
    std::string model_path;
    std::string model_name;
    std::string registry_dir;
    std::string socket_path;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--model") == 0) {
        const char* path = option_value(argc, argv, i, "--model");
        if (path == nullptr) return 1;
        model_path = path;
      } else if (std::strcmp(argv[i], "--name") == 0) {
        const char* text = option_value(argc, argv, i, "--name");
        if (text == nullptr) return 1;
        model_name = text;
      } else if (std::strcmp(argv[i], "--registry") == 0) {
        const char* path = option_value(argc, argv, i, "--registry");
        if (path == nullptr) return 1;
        registry_dir = path;
      } else if (std::strcmp(argv[i], "--socket") == 0) {
        const char* path = option_value(argc, argv, i, "--socket");
        if (path == nullptr) return 1;
        socket_path = path;
      } else {
        return usage();
      }
    }
    if (!socket_path.empty()) {
      // The daemon serves registry bundles by name; a local --model file
      // cannot be routed through it.
      if (model_name.empty() || !model_path.empty()) {
        std::fprintf(stderr,
                     "predict --socket needs --name NAME (a registry bundle "
                     "the daemon serves), not --model\n");
        return 1;
      }
      return cmd_remote_predict(argv[2], socket_path, model_name);
    }
    if (model_path.empty() == model_name.empty()) {
      std::fprintf(stderr,
                   "predict needs exactly one of --model FILE or --name "
                   "NAME\n");
      return 1;
    }
    return cmd_predict(argv[2], model_path, model_name, registry_dir);
  }
  if (command == "cnv") {
    std::string xdc;
    std::string dot;
    int jobs = MF_JOBS_DEFAULT;
    StitchOptions stitch;
    std::string model;
    std::string registry_dir;
    std::string checkpoint;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--xdc") == 0) {
        const char* path = option_value(argc, argv, i, "--xdc");
        if (path == nullptr) return 1;
        xdc = path;
      } else if (std::strcmp(argv[i], "--dot") == 0) {
        const char* path = option_value(argc, argv, i, "--dot");
        if (path == nullptr) return 1;
        dot = path;
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--jobs", 0, 1024);
        if (!parsed) return 1;
        jobs = *parsed;
      } else if (std::strcmp(argv[i], "--stitch-engine") == 0) {
        const char* text = option_value(argc, argv, i, "--stitch-engine");
        if (text == nullptr) return 1;
        if (!parse_stitch_engines(text, stitch)) {
          // A typo'd engine must fail the run (exit 2), never silently fall
          // back to SA.
          std::fprintf(stderr,
                       "unknown stitch engine in '%s' (expected sa, evo, "
                       "analytic, portfolio, or a comma list to race)\n",
                       text);
          return kExitRuntime;
        }
      } else if (std::strcmp(argv[i], "--stitch-restarts") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--stitch-restarts", 1, 4096);
        if (!parsed) return 1;
        stitch.restarts = *parsed;
      } else if (std::strcmp(argv[i], "--stitch-jobs") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--stitch-jobs", 0, 1024);
        if (!parsed) return 1;
        stitch.jobs = *parsed;
      } else if (std::strcmp(argv[i], "--stitch-budget") == 0) {
        const char* text = option_value(argc, argv, i, "--stitch-budget");
        if (text == nullptr) return 1;
        const std::optional<long> parsed = parse_number<long>(text);
        if (!parsed || *parsed <= 0) {
          std::fprintf(stderr,
                       "invalid value '%s' for --stitch-budget (expected a "
                       "positive move count)\n",
                       text);
          return kExitRuntime;
        }
        stitch.engine_budget = *parsed;
      } else if (std::strcmp(argv[i], "--stitch-target") == 0) {
        const char* text = option_value(argc, argv, i, "--stitch-target");
        if (text == nullptr) return 1;
        const std::optional<double> parsed = parse_double(text);
        if (!parsed || !(*parsed > 0.0)) {
          std::fprintf(stderr,
                       "invalid value '%s' for --stitch-target (expected a "
                       "positive cost)\n",
                       text);
          return kExitRuntime;
        }
        stitch.target_cost = *parsed;
      } else if (std::strcmp(argv[i], "--stitch-population") == 0) {
        // Parse permissively; population < 2 is rejected by the library's
        // fail-fast validation in cmd_cnv (exit 2).
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--stitch-population", 0, 65536);
        if (!parsed) return 1;
        stitch.evo_population = *parsed;
      } else if (std::strcmp(argv[i], "--stitch-warm-start") == 0) {
        stitch.warm_start = true;
      } else if (std::strcmp(argv[i], "--model") == 0) {
        const char* text = option_value(argc, argv, i, "--model");
        if (text == nullptr) return 1;
        model = text;
      } else if (std::strcmp(argv[i], "--registry") == 0) {
        const char* path = option_value(argc, argv, i, "--registry");
        if (path == nullptr) return 1;
        registry_dir = path;
      } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
        const char* path = option_value(argc, argv, i, "--checkpoint");
        if (path == nullptr) return 1;
        checkpoint = path;
      } else if (std::strcmp(argv[i], "--deadline-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--deadline-seconds", 0.0, 1e9);
        if (!parsed) return 1;
        g_cancel.set_deadline_seconds(*parsed);
      } else {
        return usage();
      }
    }
    return cmd_cnv(xdc, dot, jobs, stitch, model, registry_dir, checkpoint);
  }
  if (command == "convert") {
    if (argc < 4) return usage();
    std::optional<PersistFormat> target;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--to") == 0) {
        const char* value = option_value(argc, argv, i, "--to");
        if (value == nullptr) return kExitUsage;
        if (std::strcmp(value, "text") == 0) {
          target = PersistFormat::Text;
        } else if (std::strcmp(value, "binary") == 0) {
          target = PersistFormat::Binary;
        } else {
          std::fprintf(stderr,
                       "invalid value '%s' for --to (expected text|binary)\n",
                       value);
          return kExitUsage;
        }
      } else {
        return usage();
      }
    }
    return cmd_convert(argv[2], argv[3], target);
  }
  if (command == "serve") {
    ServerOptions options;
    std::string registry_flag;
    bool supervised = false;
    // With --supervised, every flag except the supervisor-owned ones
    // (--supervised, --socket, --listen-fd, --deadline-seconds) is forwarded
    // verbatim to the re-executed daemon child.
    std::vector<std::string> passthrough;
    for (int i = 2; i < argc; ++i) {
      const int arg_start = i;
      bool forward = true;
      if (std::strcmp(argv[i], "--registry") == 0) {
        const char* path = option_value(argc, argv, i, "--registry");
        if (path == nullptr) return 1;
        registry_flag = path;
      } else if (std::strcmp(argv[i], "--socket") == 0) {
        const char* path = option_value(argc, argv, i, "--socket");
        if (path == nullptr) return 1;
        options.socket_path = path;
        forward = false;
      } else if (std::strcmp(argv[i], "--supervised") == 0) {
        supervised = true;
        forward = false;
      } else if (std::strcmp(argv[i], "--listen-fd") == 0) {
        // Internal handoff flag: the supervisor spawns children with the
        // inherited listening descriptor's number here.
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--listen-fd", 0, 1 << 20);
        if (!parsed) return 1;
        options.listen_fd = *parsed;
        forward = false;
      } else if (std::strcmp(argv[i], "--stdio") == 0) {
        options.stdio = true;
      } else if (std::strcmp(argv[i], "--jobs") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--jobs", 0, 1024);
        if (!parsed) return 1;
        options.jobs = *parsed;
      } else if (std::strcmp(argv[i], "--max-loaded") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--max-loaded", 1, 4096);
        if (!parsed) return 1;
        options.max_loaded_bundles = static_cast<std::size_t>(*parsed);
      } else if (std::strcmp(argv[i], "--coalesce-us") == 0) {
        const std::optional<double> parsed =
            parse_double_option(argc, argv, i, "--coalesce-us", 0.0, 1e7);
        if (!parsed) return 1;
        options.coalesce.coalesce_us = *parsed;
      } else if (std::strcmp(argv[i], "--max-batch") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--max-batch", 1, 65536);
        if (!parsed) return 1;
        options.coalesce.max_batch = static_cast<std::size_t>(*parsed);
      } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
        // Capacity < max-batch is a semantic error: caught by
        // server_options_error in cmd_serve (exit 2), not here.
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--queue-capacity", 1, 1 << 20);
        if (!parsed) return 1;
        options.coalesce.queue_capacity = static_cast<std::size_t>(*parsed);
      } else if (std::strcmp(argv[i], "--quota-rate") == 0) {
        const std::optional<double> parsed =
            parse_double_option(argc, argv, i, "--quota-rate", 0.0, 1e9);
        if (!parsed) return 1;
        options.quota.rate_per_second = *parsed;
      } else if (std::strcmp(argv[i], "--quota-burst") == 0) {
        const std::optional<double> parsed =
            parse_double_option(argc, argv, i, "--quota-burst", 1.0, 1e9);
        if (!parsed) return 1;
        options.quota.burst = *parsed;
      } else if (std::strcmp(argv[i], "--canary-percent") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--canary-percent", 0, 100);
        if (!parsed) return 1;
        options.canary.percent = *parsed;
      } else if (std::strcmp(argv[i], "--canary-fail-threshold") == 0) {
        const std::optional<int> parsed = parse_int_option(
            argc, argv, i, "--canary-fail-threshold", 1, 1 << 20);
        if (!parsed) return 1;
        options.canary.fail_threshold = *parsed;
      } else if (std::strcmp(argv[i], "--canary-promote-after") == 0) {
        const std::optional<int> parsed = parse_int_option(
            argc, argv, i, "--canary-promote-after", 1, 1 << 30);
        if (!parsed) return 1;
        options.canary.promote_after = *parsed;
      } else if (std::strcmp(argv[i], "--reload-poll-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--reload-poll-seconds", 0.001, 1e6);
        if (!parsed) return 1;
        options.reload_poll_seconds = *parsed;
      } else if (std::strcmp(argv[i], "--stats-json") == 0) {
        const char* path = option_value(argc, argv, i, "--stats-json");
        if (path == nullptr) return 1;
        options.stats_json_path = path;
      } else if (std::strcmp(argv[i], "--stats-interval") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--stats-interval", 0.001, 1e6);
        if (!parsed) return 1;
        options.stats_interval_seconds = *parsed;
      } else if (std::strcmp(argv[i], "--max-connections") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--max-connections", 1, 4096);
        if (!parsed) return 1;
        options.max_connections = *parsed;
      } else if (std::strcmp(argv[i], "--deadline-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--deadline-seconds", 0.0, 1e9);
        if (!parsed) return 1;
        g_cancel.set_deadline_seconds(*parsed);
        forward = false;  // the supervisor's deadline governs teardown
      } else {
        return usage();
      }
      if (forward) {
        for (int k = arg_start; k <= i; ++k) passthrough.emplace_back(argv[k]);
      }
    }
    options.registry_dir = default_registry_dir(registry_flag);
    if (supervised) {
      return cmd_serve_supervised(std::move(options), std::move(passthrough));
    }
    return cmd_serve(std::move(options));
  }
  if (command == "ping") {
    std::string socket_path;
    double deadline = 2.0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--socket") == 0) {
        const char* path = option_value(argc, argv, i, "--socket");
        if (path == nullptr) return 1;
        socket_path = path;
      } else if (std::strcmp(argv[i], "--deadline-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--deadline-seconds", 0.001, 1e9);
        if (!parsed) return 1;
        deadline = *parsed;
      } else {
        return usage();
      }
    }
    if (socket_path.empty()) {
      std::fprintf(stderr, "ping needs --socket PATH\n");
      return kExitUsage;
    }
    return cmd_ping(socket_path, deadline);
  }
  if (command == "farm") {
    FarmOptions options;
    options.cancel = &g_cancel;
    options.plan.count = 48;  // small default; real sweeps pass --count
    bool hang_timeout_set = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--dir") == 0) {
        const char* path = option_value(argc, argv, i, "--dir");
        if (path == nullptr) return 1;
        options.dir = path;
      } else if (std::strcmp(argv[i], "--count") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--count", 1, 100000);
        if (!parsed) return 1;
        options.plan.count = *parsed;
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--seed", 0, 1 << 30);
        if (!parsed) return 1;
        options.plan.seed = static_cast<std::uint64_t>(*parsed);
      } else if (std::strcmp(argv[i], "--grid") == 0) {
        const char* text = option_value(argc, argv, i, "--grid");
        if (text == nullptr) return 1;
        const std::optional<std::vector<double>> grid =
            parse_double_list(text);
        if (!grid) {
          std::fprintf(stderr,
                       "invalid value '%s' for --grid (expected a comma-"
                       "separated list of positive CF starts)\n",
                       text);
          return 1;
        }
        options.plan.grid = *grid;
      } else if (std::strcmp(argv[i], "--workers") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--workers", 1, 256);
        if (!parsed) return 1;
        options.workers = *parsed;
      } else if (std::strcmp(argv[i], "--shards") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--shards", 1, 4096);
        if (!parsed) return 1;
        options.plan.shards_per_grid = *parsed;
      } else if (std::strcmp(argv[i], "--worker-jobs") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--worker-jobs", 0, 1024);
        if (!parsed) return 1;
        options.plan.worker_jobs = *parsed;
      } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--checkpoint-every", 1, 100000);
        if (!parsed) return 1;
        options.plan.checkpoint_every = *parsed;
      } else if (std::strcmp(argv[i], "--max-attempts") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--max-attempts", 1, 1000);
        if (!parsed) return 1;
        options.max_attempts = *parsed;
      } else if (std::strcmp(argv[i], "--hang-timeout-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--hang-timeout-seconds", 0.01, 1e6);
        if (!parsed) return 1;
        options.hang_timeout_seconds = *parsed;
        hang_timeout_set = true;
      } else if (std::strcmp(argv[i], "--deadline-seconds") == 0) {
        const std::optional<double> parsed = parse_double_option(
            argc, argv, i, "--deadline-seconds", 0.0, 1e9);
        if (!parsed) return 1;
        g_cancel.set_deadline_seconds(*parsed);
      } else if (std::strcmp(argv[i], "--chaos-kill") == 0) {
        const std::optional<double> parsed =
            parse_double_option(argc, argv, i, "--chaos-kill", 0.0, 1.0);
        if (!parsed) return 1;
        options.plan.chaos.p_kill = *parsed;
        options.plan.chaos.enabled = true;
      } else if (std::strcmp(argv[i], "--chaos-hang") == 0) {
        const std::optional<double> parsed =
            parse_double_option(argc, argv, i, "--chaos-hang", 0.0, 1.0);
        if (!parsed) return 1;
        options.plan.chaos.p_hang = *parsed;
        options.plan.chaos.enabled = true;
      } else if (std::strcmp(argv[i], "--chaos-slow") == 0) {
        const std::optional<double> parsed =
            parse_double_option(argc, argv, i, "--chaos-slow", 0.0, 1.0);
        if (!parsed) return 1;
        options.plan.chaos.p_slow = *parsed;
        options.plan.chaos.enabled = true;
      } else if (std::strcmp(argv[i], "--chaos-faults") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--chaos-faults", 0, 1 << 30);
        if (!parsed) return 1;
        options.plan.chaos.faults_per_shard = *parsed;
      } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
        const std::optional<int> parsed =
            parse_int_option(argc, argv, i, "--chaos-seed", 0, 1 << 30);
        if (!parsed) return 1;
        options.plan.chaos.seed = static_cast<std::uint64_t>(*parsed);
      } else if (std::strcmp(argv[i], "--quiet") == 0) {
        options.quiet = true;
      } else {
        return usage();
      }
    }
    if (options.dir.empty()) {
      std::fprintf(stderr, "farm needs --dir DIR\n");
      return 1;
    }
    // Hung chaos workers are detected via the heartbeat; keep the default
    // timeout tight enough that an injected hang resolves promptly.
    if (!hang_timeout_set && options.plan.chaos.enabled &&
        options.plan.chaos.p_hang > 0.0) {
      options.hang_timeout_seconds = 2.0;
    }
    return cmd_farm(options);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Farm worker mode first: a supervisor re-executes this very binary with
  // --farm-worker, and the worker entry installs its own signal handling.
  if (const std::optional<int> code = maybe_run_farm_worker(argc, argv)) {
    return *code;
  }
  // First SIGINT/SIGTERM trips g_cancel (cooperative: work drains and
  // checkpoints), a second hard-exits 130.
  install_signal_cancel(&g_cancel);
  try {
    const int status = dispatch(argc, argv);
    // A deadline that expired after the last cancellation point still means
    // the run was cut short somewhere -- report it uniformly.
    if (status == kExitOk && g_cancel.cancelled()) {
      std::fprintf(stderr, "cancelled\n");
      return kExitCancelled;
    }
    return status;
  } catch (const CancelledError&) {
    std::fprintf(stderr, "cancelled\n");
    return kExitCancelled;
  }
}
