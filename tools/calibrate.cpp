// Calibration tool: sweeps a slice of the RTL dataset through the minimal-CF
// search and prints the resulting CF distribution plus per-generator module
// sizes. Used to tune the routability / packing constants so the oracle's
// CF distribution matches the paper's 0.9..1.7 range (Figure 8), and to size
// the cnvW1A1 blocks against the device budget.
//
// Usage: calibrate [num_modules] [--cnv | --cnvcf | --mono | --flow]

#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/cf_search.hpp"
#include "fabric/catalog.hpp"
#include "flow/monolithic.hpp"
#include "flow/rw_flow.hpp"
#include "nn/cnv_w1a1.hpp"
#include "rtlgen/sweep.hpp"
#include "synth/optimize.hpp"

using namespace mf;

namespace {

void sweep_dataset(int count) {
  const Device device = xc7z020_model();
  std::vector<GenSpec> specs = dataset_sweep({2000, 42});
  if (count < static_cast<int>(specs.size())) {
    // Stride-sample so every generator family is represented.
    std::vector<GenSpec> sampled;
    const double stride =
        static_cast<double>(specs.size()) / static_cast<double>(count);
    for (int i = 0; i < count; ++i) {
      sampled.push_back(specs[static_cast<std::size_t>(i * stride)]);
    }
    specs = std::move(sampled);
  }
  std::vector<double> cfs;
  Table table({"module", "luts", "ffs", "carry", "srl+ram", "cs", "fanout",
               "est", "minCF", "runs"});
  Timer timer;
  int infeasible = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Module module = realize(specs[i]);
    optimize(module.netlist);
    const ResourceReport report = make_report(module.netlist);
    const ShapeReport shape = quick_place(report);
    const CfSearchResult found = find_min_cf(module, report, shape, device);
    if (!found.found) {
      ++infeasible;
      std::string reason = "no pblock";
      double peak = 0.0;
      if (const auto pb = generate_pblock(device, report, shape, 3.0)) {
        const PlaceResult res = place_in_pblock(module, report, device, *pb);
        reason = res.fail_reason;
        peak = res.route.peak;
      }
      std::printf("INFEASIBLE: %s (%s) est=%d reason@3.0=%s peak=%.2f\n",
                  module.name.c_str(), module.params.c_str(),
                  report.est_slices, reason.c_str(), peak);
      continue;
    }
    cfs.push_back(found.min_cf);
    if (i % 7 == 0) {  // sample rows to keep output readable
      table.row()
          .cell(module.name)
          .cell(report.stats.luts)
          .cell(report.stats.ffs)
          .cell(report.stats.carry4)
          .cell(report.stats.srls + report.stats.lutrams)
          .cell(report.stats.control_sets)
          .cell(report.stats.max_fanout)
          .cell(report.est_slices)
          .cell(found.min_cf, 2)
          .cell(found.tool_runs);
    }
  }
  table.print();
  std::printf("\nCF distribution over %zu modules (%d infeasible), %.1fs:\n",
              cfs.size(), infeasible, timer.seconds());
  std::fputs(histogram(cfs, 0.5, 2.2, 0.05).c_str(), stdout);
}

void cnv_sizes() {
  const Device device = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  Table table({"block", "insts", "luts", "ffs", "carry", "mem", "bram", "cs",
               "est", "estM"});
  long total_est = 0;
  for (std::size_t u = 0; u < design.unique_modules.size(); ++u) {
    Module module = design.unique_modules[u];
    optimize(module.netlist);
    const ResourceReport report = make_report(module.netlist);
    int insts = 0;
    for (const BlockInstance& inst : design.instances) {
      if (inst.macro == static_cast<int>(u)) ++insts;
    }
    total_est += static_cast<long>(report.est_slices) * insts;
    table.row()
        .cell(module.name)
        .cell(insts)
        .cell(report.stats.luts)
        .cell(report.stats.ffs)
        .cell(report.stats.carry4)
        .cell(report.stats.srls + report.stats.lutrams)
        .cell(report.bram36)
        .cell(report.stats.control_sets)
        .cell(report.est_slices)
        .cell(report.est_slices_m);
  }
  table.print();
  std::printf("\ntotal est slices x instances: %ld (device %d, ratio %.3f)\n",
              total_est, device.totals().slices,
              static_cast<double>(total_est) / device.totals().slices);
}

void cnv_min_cf() {
  const Device device = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  std::vector<double> cfs;
  Timer timer;
  Table table({"block", "est", "minCF", "used", "pblock", "runs"});
  for (const Module& original : design.unique_modules) {
    Module module = original;
    optimize(module.netlist);
    const ResourceReport report = make_report(module.netlist);
    const ShapeReport shape = quick_place(report);
    CfSearchOptions opts;
    opts.start = 0.5;  // expose hard-block-dominated minima (Fig. 4)
    const CfSearchResult found = find_min_cf(module, report, shape, device, opts);
    if (!found.found) {
      std::printf("INFEASIBLE: %s est=%d\n", module.name.c_str(),
                  report.est_slices);
      continue;
    }
    cfs.push_back(found.min_cf);
    table.row()
        .cell(module.name)
        .cell(report.est_slices)
        .cell(found.min_cf, 2)
        .cell(found.place.used_slices)
        .cell(to_string(found.pblock))
        .cell(found.tool_runs);
  }
  table.print();
  std::printf("\nminimal CF distribution over %zu cnv blocks (%.1fs):\n",
              cfs.size(), timer.seconds());
  std::fputs(histogram(cfs, 0.4, 2.4, 0.1).c_str(), stdout);
}

void mono() {
  const Device device = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  Timer timer;
  MonolithicResult result = place_monolithic(design, device);
  std::printf("monolithic: %s (%s), used=%d util=%.4f longest=%.2fns %.1fs\n",
              result.feasible ? "OK" : "FAIL", result.fail_reason.c_str(),
              result.used_slices, result.utilization, result.longest_path_ns,
              timer.seconds());
  const int m18 = design.unique_index("mvau_18");
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    if (design.instances[i].macro == m18) {
      std::printf("  mvau_18 instance %s: %d slices\n",
                  design.instances[i].name.c_str(),
                  result.instance_slices[i]);
    }
  }
  const int w14 = design.unique_index("weights_14");
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    if (design.instances[i].macro == w14) {
      std::printf("  weights_14 instance: %d slices\n",
                  result.instance_slices[i]);
    }
  }
}

void flow_experiment() {
  const Device device = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  RwFlowOptions opts;
  opts.compute_timing = false;

  Timer t1;
  CfPolicy min_policy;
  min_policy.mode = CfPolicy::Mode::MinSearch;
  RwFlowResult min_run = run_rw_flow(design, device, min_policy, opts);
  double max_cf = 0.0;
  for (const ImplementedBlock& blk : min_run.blocks) {
    if (blk.ok()) max_cf = std::max(max_cf, blk.macro.cf);
  }
  std::printf(
      "min-CF flow: %.1fs, failed=%d, tool_runs=%d, max_cf=%.2f\n"
      "  stitch: unplaced=%d/%zu wl=%.0f cost=%.0f converge=%ld/%ld moves "
      "coverage=%.3f %.1fs\n",
      t1.seconds(), min_run.failed_blocks, min_run.total_tool_runs, max_cf,
      min_run.stitch.unplaced, min_run.problem.instances.size(),
      min_run.stitch.wirelength, min_run.stitch.cost,
      min_run.stitch.converge_move, min_run.stitch.total_moves,
      min_run.stitch.coverage, min_run.stitch.seconds);

  Timer t2;
  CfPolicy const_policy;
  const_policy.mode = CfPolicy::Mode::Constant;
  const_policy.constant_cf = max_cf;
  RwFlowResult const_run = run_rw_flow(design, device, const_policy, opts);
  std::printf(
      "const-CF=%.2f flow: %.1fs, failed=%d, tool_runs=%d\n"
      "  stitch: unplaced=%d/%zu wl=%.0f cost=%.0f converge=%ld/%ld moves "
      "coverage=%.3f %.1fs\n",
      max_cf, t2.seconds(), const_run.failed_blocks,
      const_run.total_tool_runs, const_run.stitch.unplaced,
      const_run.problem.instances.size(), const_run.stitch.wirelength,
      const_run.stitch.cost, const_run.stitch.converge_move,
      const_run.stitch.total_moves, const_run.stitch.coverage,
      const_run.stitch.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  int count = 120;
  const char* mode = "dataset";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      mode = argv[i] + 2;
    } else {
      count = std::atoi(argv[i]);
    }
  }
  if (std::strcmp(mode, "cnv") == 0) {
    cnv_sizes();
  } else if (std::strcmp(mode, "cnvcf") == 0) {
    cnv_min_cf();
  } else if (std::strcmp(mode, "mono") == 0) {
    mono();
  } else if (std::strcmp(mode, "flow") == 0) {
    flow_experiment();
  } else {
    sweep_dataset(count);
  }
  return 0;
}
