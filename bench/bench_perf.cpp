// google-benchmark microbenchmarks over the library's computational kernels:
// module realisation + synthesis, PBlock generation, detailed placement,
// routability estimation, minimal-CF search, forest training and stitching.
// These quantify the "rapid" in rapid prototyping: one full feasibility
// check runs in ~1 ms, which is what makes exhaustive CF sweeps and
// dataset-scale labelling practical on a laptop.

#include <benchmark/benchmark.h>

#include "core/cf_search.hpp"
#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "ml/rforest.hpp"
#include "nn/cnv_w1a1.hpp"
#include "rtlgen/generators.hpp"
#include "stitch/sa_stitcher.hpp"
#include "synth/optimize.hpp"

namespace {

using namespace mf;

struct Prepared {
  Module module;
  ResourceReport report;
  ShapeReport shape;
};

Prepared prepared_module(int luts) {
  Rng rng(1);
  MixedParams params;
  params.luts = luts;
  params.ffs = luts;
  params.carry_adders = 2;
  params.control_sets = 4;
  Prepared p{gen_mixed(params, rng), {}, {}};
  optimize(p.module.netlist);
  p.report = make_report(p.module.netlist);
  p.shape = quick_place(p.report);
  return p;
}

void BM_RealizeAndSynthesize(benchmark::State& state) {
  Rng rng(1);
  MixedParams params;
  params.luts = static_cast<int>(state.range(0));
  params.ffs = params.luts;
  for (auto _ : state) {
    Module m = gen_mixed(params, rng);
    optimize(m.netlist);
    benchmark::DoNotOptimize(make_report(m.netlist).est_slices);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RealizeAndSynthesize)->Arg(100)->Arg(1000)->Arg(4000);

void BM_GeneratePBlock(benchmark::State& state) {
  const Device dev = xc7z020_model();
  const Prepared p = prepared_module(800);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_pblock(dev, p.report, p.shape, 1.2));
  }
}
BENCHMARK(BM_GeneratePBlock);

void BM_DetailedPlace(benchmark::State& state) {
  const Device dev = xc7z020_model();
  const Prepared p = prepared_module(static_cast<int>(state.range(0)));
  const auto pb = generate_pblock(dev, p.report, p.shape, 1.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        place_in_pblock(p.module, p.report, dev, *pb, {}).feasible);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(p.module.netlist.num_cells()));
}
BENCHMARK(BM_DetailedPlace)->Arg(200)->Arg(2000);

void BM_MinCfSearch(benchmark::State& state) {
  const Device dev = xc7z020_model();
  const Prepared p = prepared_module(500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_min_cf(p.module, p.report, p.shape, dev).min_cf);
  }
}
BENCHMARK(BM_MinCfSearch);

void BM_ForestTrain(benchmark::State& state) {
  // Small synthetic regression task; trees scale linearly.
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 800; ++i) {
    std::vector<double> row(8);
    for (double& v : row) v = rng.uniform();
    x.push_back(row);
    y.push_back(row[0] * 0.5 + row[3] + 0.9);
  }
  RForestOptions opts;
  opts.trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RandomForest forest;
    forest.fit(x, y, opts);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_ForestTrain)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_StitchCnv(benchmark::State& state) {
  // Stitch the pre-implemented cnvW1A1 (macros built once outside the loop).
  const Device dev = xc7z020_model();
  static const StitchProblem problem = [] {
    const Device d = xc7z020_model();
    const CnvDesign design = build_cnv_w1a1();
    RwFlowOptions opts;
    opts.compute_timing = false;
    opts.run_stitch = false;
    CfPolicy policy;
    policy.constant_cf = 1.2;
    return run_rw_flow(design, d, policy, opts).problem;
  }();
  StitchOptions opts;
  opts.moves_per_temp = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stitch(dev, problem, opts).cost);
  }
}
BENCHMARK(BM_StitchCnv)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
