// Farm bench: what multi-process supervision buys and what recovery costs.
//
// Two claims are measured and *checked*, not just timed:
//   1. throughput scaling: the same labelling plan run with 1, 2, and 4
//      worker processes produces byte-identical merged datasets (the
//      headline guarantee), with wall time expected to drop as workers are
//      added (reported, not asserted -- tiny plans are scheduling-noise
//      dominated);
//   2. recovery latency: a chaos campaign that SIGKILLs every shard's first
//      attempts must still complete with the same bytes, and the extra wall
//      time over the clean run is the price of detection + backoff +
//      resume-from-checkpoint.
// A violated invariant aborts the bench via MF_CHECK -- the ctest entry
// (`--quick`) relies on that to turn this into a correctness gate.
//
// Results land in BENCH_FARM.json. Plain main (the fork/exec structure does
// not fit the BM_ harness); like every farm host binary, it answers
// --farm-worker before doing anything else.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "farm/supervisor.hpp"
#include "farm/worker.hpp"
#include "flow/serialize.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;
namespace fs = std::filesystem;

FarmResult run_plan(const std::string& dir, const FarmPlan& plan,
                    int workers, int max_attempts = 3) {
  fs::remove_all(dir);
  FarmOptions options;
  options.dir = dir;
  options.plan = plan;
  options.workers = workers;
  options.max_attempts = max_attempts;
  options.quiet = true;
  options.poll_ms = 2.0;
  options.backoff_base_ms = 5.0;
  options.backoff_cap_ms = 50.0;
  return run_farm(options);
}

std::string merged_bytes(const FarmResult& result) {
  MF_CHECK(result.merged_paths.size() == 1);
  return read_file(result.merged_paths[0]).value_or("");
}

}  // namespace

int main(int argc, char** argv) {
  if (const std::optional<int> code = maybe_run_farm_worker(argc, argv)) {
    return *code;
  }
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::banner("DSE farm: multi-process scaling and crash recovery",
                "robustness infrastructure; no table in the paper");

  const std::string work_dir =
      (fs::temp_directory_path() / "mf_bench_farm").string();
  fs::remove_all(work_dir);
  fs::create_directories(work_dir);

  FarmPlan plan;
  plan.count = quick ? 24 : 96;
  plan.seed = 42;
  plan.shards_per_grid = 4;
  plan.checkpoint_every = 2;
  plan.worker_jobs = 1;

  // -- 1. worker-count scaling, byte-identity asserted ----------------------
  const std::vector<int> worker_sweep = {1, 2, 4};
  std::printf("\n%-10s %10s %10s %10s %12s\n", "workers", "wall ms", "spawns",
              "samples", "bytes");
  std::string reference;
  std::vector<std::pair<int, double>> scaling;
  for (const int workers : worker_sweep) {
    Timer timer;
    const FarmResult result =
        run_plan(work_dir + "/w" + std::to_string(workers), plan, workers);
    const double seconds = timer.seconds();
    MF_CHECK_MSG(result.ok, "clean farm run must complete");
    const std::string bytes = merged_bytes(result);
    if (reference.empty()) {
      reference = bytes;
    } else {
      MF_CHECK_MSG(bytes == reference,
                   "merged dataset must be byte-identical at any worker "
                   "count");
    }
    std::printf("%-10d %10.1f %10ld %10ld %12zu\n", workers, seconds * 1e3,
                result.spawns, result.samples, bytes.size());
    scaling.emplace_back(workers, seconds * 1e3);
  }

  // -- 2. chaos recovery: kill-heavy campaign vs the clean run --------------
  FarmPlan chaos_plan = plan;
  chaos_plan.chaos.enabled = true;
  chaos_plan.chaos.p_kill = 1.0;
  chaos_plan.chaos.faults_per_shard = 1;  // every shard dies exactly once
  Timer chaos_timer;
  const FarmResult chaos =
      run_plan(work_dir + "/chaos", chaos_plan, 2, /*max_attempts=*/3);
  const double chaos_ms = chaos_timer.seconds() * 1e3;
  MF_CHECK_MSG(chaos.ok, "kill-chaos farm must recover and complete");
  MF_CHECK_MSG(chaos.respawns >= chaos_plan.shards_per_grid,
               "every shard's injected death must be detected and respawned");
  MF_CHECK_MSG(merged_bytes(chaos) == reference,
               "recovery must not change a byte of the merged dataset");
  const double clean_ms = scaling[1].second;  // the same 2-worker topology
  std::printf("\nchaos recovery: %ld respawns, %.1f ms vs %.1f ms clean "
              "(+%.1f ms for detection + backoff + resume)\n",
              chaos.respawns, chaos_ms, clean_ms, chaos_ms - clean_ms);

  std::string json;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                " \"count\": %d,\n \"shards\": %d,\n"
                " \"chaos_respawns\": %ld,\n \"chaos_wall_ms\": %.1f,\n"
                " \"runs\": [",
                plan.count, plan.shards_per_grid, chaos.respawns, chaos_ms);
  json += buf;
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s\n  {\"workers\": %d, \"wall_ms\": %.1f}",
                  i == 0 ? "" : ",", scaling[i].first, scaling[i].second);
    json += buf;
  }
  json += "\n ]\n";
  std::printf("\n");
  if (!bench::write_bench_json("BENCH_FARM.json", json)) return 1;
  fs::remove_all(work_dir);
  return 0;
}
