// Figure 11 -- actual versus estimated CF when a *linear regression* trained
// on the synthetic dataset predicts the cnvW1A1 blocks (the 63 modules left
// after dropping one-/two-tile blocks).
//
// Paper: median absolute error 11.03% for linear regression; the NN-based
// estimator using the Additional features reaches 9.5% on the same blocks.

#include <algorithm>

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace mf;
  bench::banner("Figure 11: linear regression on the cnvW1A1 blocks",
                "median absolute error 11.03% (linreg); NN on Additional "
                "features: 9.5%");

  const Device dev = xc7z020_model();
  const GroundTruth dataset = bench::dataset_truth(dev);
  const GroundTruth cnv = bench::cnv_truth(dev, /*drop_tiny=*/true);
  std::printf("estimator test set: %zu cnvW1A1 blocks [paper: 63]\n\n",
              cnv.samples.size());

  // Train on the balanced synthetic dataset, test on the real NN's blocks.
  Rng rng(7);
  const Dataset train = balance_by_target(
      make_dataset(FeatureSet::LinReg9, dataset.samples), bench::kBinWidth,
      bench::kBinCap, rng);
  CfEstimator lin(EstimatorKind::LinearRegression, FeatureSet::LinReg9);
  lin.train(train);

  const Dataset test = make_dataset(FeatureSet::LinReg9, cnv.samples);
  const std::vector<double> pred = lin.predict_rows(test.x);

  Table table({"block", "actual CF", "estimated CF", "error"});
  CsvWriter csv({"block", "actual", "estimated"});
  // Order by actual CF like the figure's x-axis.
  std::vector<std::size_t> order(test.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return test.y[a] < test.y[b];
  });
  for (std::size_t i : order) {
    table.row()
        .cell(test.labels[i])
        .cell(test.y[i], 2)
        .cell(pred[i], 2)
        .cell(fmt(100.0 * std::abs(pred[i] - test.y[i]) / test.y[i], 1) + "%");
    csv.row().cell(test.labels[i]).cell(test.y[i], 3).cell(pred[i], 3);
  }
  table.print();

  std::printf("\nlinear regression: median abs error %.2f%% "
              "[paper: 11.03%%], mean %.2f%%\n",
              100.0 * median_relative_error(pred, test.y),
              100.0 * mean_relative_error(pred, test.y));

  // The paper's companion result: the NN estimator on Additional features.
  {
    Rng rng2(7);
    const Dataset nn_train = balance_by_target(
        make_dataset(FeatureSet::Additional, dataset.samples),
        bench::kBinWidth, bench::kBinCap, rng2);
    CfEstimator nn(EstimatorKind::NeuralNetwork, FeatureSet::Additional);
    nn.train(nn_train);
    const Dataset nn_test = make_dataset(FeatureSet::Additional, cnv.samples);
    const std::vector<double> nn_pred = nn.predict_rows(nn_test.x);
    std::printf("NN (Additional features): median abs error %.2f%% "
                "[paper: 9.5%%]\n",
                100.0 * median_relative_error(nn_pred, nn_test.y));
  }
  if (csv.write("fig11_linreg_cnv.csv")) {
    std::printf("raw series written to fig11_linreg_cnv.csv\n");
  }
  return 0;
}
