// Figure 8 -- distribution of the training data over the correction factor,
// after balancing: the minimal CF of every dataset module is determined at
// 0.02 resolution (starting from 0.9), then each CF bin is capped at 75
// samples, shrinking the dataset from ~2,000 to ~1,500 modules.

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace mf;
  bench::banner("Figure 8: CF distribution of the (balanced) training set",
                "cap of 75 samples per CF bin flattens the distribution; "
                "2,000 -> ~1,500 samples; CF range 0.9 .. ~1.7");

  const Device dev = xc7z020_model();
  Timer timer;
  const GroundTruth truth = bench::dataset_truth(dev);
  std::printf("labelled modules: %zu (%d infeasible dropped), %.1fs\n\n",
              truth.samples.size(), truth.infeasible, timer.seconds());

  const Dataset raw = make_dataset(FeatureSet::All, truth.samples);
  Rng rng(7);
  const Dataset balanced =
      balance_by_target(raw, bench::kBinWidth, bench::kBinCap, rng);

  std::printf("raw CF distribution (%zu samples):\n", raw.size());
  std::fputs(histogram(raw.y, 0.85, 2.3, 0.05).c_str(), stdout);
  std::printf("\nbalanced CF distribution (%zu samples) "
              "[paper: ~1,500 after the 75-per-bin cap]:\n",
              balanced.size());
  std::fputs(histogram(balanced.y, 0.85, 2.3, 0.05).c_str(), stdout);

  CsvWriter csv({"module", "min_cf"});
  for (std::size_t i = 0; i < balanced.size(); ++i) {
    csv.row().cell(balanced.labels[i]).cell(balanced.y[i], 2);
  }
  if (csv.write("fig8_balanced_cf.csv")) {
    std::printf("\nraw series written to fig8_balanced_cf.csv\n");
  }
  return 0;
}
