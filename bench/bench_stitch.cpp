// Stitcher engine bench: incremental-vs-reference A/B, multi-start
// scaling, and the engine-portfolio race, on the fig5-scale cnvW1A1
// stitch problem (constant CF 1.5) plus a device-filling synthetic.
//
// Four claims are measured and *checked*, not just timed:
//   1. the incremental cost engine (cached net boxes, bitset occupancy,
//      memoized anchor scans) returns bit-identical placements to the
//      pre-change reference engine while moving >= 3x faster;
//   2. multi-start annealing (restarts > 1) returns bit-identical results
//      at every `jobs` value;
//   3. the engine portfolio beats lone SA on both problems: >= 1.5x fewer
//      moves to reach SA's final cost OR >= 5% lower cost at SA's move
//      budget (the ISSUE-8 acceptance gate);
//   4. a portfolio race is bit-identical at any `jobs` value, and racing
//      `portfolio = {sa}` at restarts = 1 reproduces the plain historical
//      anneal move for move.
// A violated invariant aborts the bench via MF_CHECK -- the ctest entry
// (`--quick`) relies on that to turn this into a correctness gate.
//
// Results land in BENCH_STITCH.json (machine-readable: moves/sec, final
// cost, wall ms per configuration) next to a human-readable table on
// stdout. Plain main, not google-benchmark: the A/B structure (interleaved
// best-of-N with cross-run equality asserts) does not fit the BM_ harness.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "nn/cnv_w1a1.hpp"
#include "stitch/engine.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;

struct Sample {
  std::string name;
  long moves = 0;
  double seconds = 0.0;
  double cost = 0.0;
  int unplaced = 0;
  [[nodiscard]] double moves_per_sec() const {
    return seconds > 0.0 ? moves / seconds : 0.0;
  }
};

/// Same positions, cost, and counters -- the bit-identity contract.
void check_identical(const StitchResult& a, const StitchResult& b) {
  MF_CHECK(a.cost == b.cost);
  MF_CHECK(a.wirelength == b.wirelength);
  MF_CHECK(a.unplaced == b.unplaced);
  MF_CHECK(a.total_moves == b.total_moves);
  MF_CHECK(a.positions.size() == b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    MF_CHECK(a.positions[i].col == b.positions[i].col);
    MF_CHECK(a.positions[i].row == b.positions[i].row);
  }
}

/// Move-for-move identity: counters, trace samples, and per-engine stats
/// (wall seconds excluded -- everything else must match).
void check_move_for_move(const StitchResult& a, const StitchResult& b) {
  check_identical(a, b);
  MF_CHECK(a.accepted == b.accepted);
  MF_CHECK(a.rejected == b.rejected);
  MF_CHECK(a.illegal == b.illegal);
  MF_CHECK(a.engine == b.engine);
  MF_CHECK(a.restart_index == b.restart_index);
  MF_CHECK(a.cost_trace.size() == b.cost_trace.size());
  for (std::size_t i = 0; i < a.cost_trace.size(); ++i) {
    MF_CHECK(a.cost_trace[i].first == b.cost_trace[i].first);
    MF_CHECK(a.cost_trace[i].second == b.cost_trace[i].second);
  }
  MF_CHECK(a.engines.size() == b.engines.size());
  for (std::size_t i = 0; i < a.engines.size(); ++i) {
    const EngineStats& x = a.engines[i];
    const EngineStats& y = b.engines[i];
    MF_CHECK(x.engine == y.engine);
    MF_CHECK(x.config == y.config);
    MF_CHECK(x.seed == y.seed);
    MF_CHECK(x.warm_start == y.warm_start);
    MF_CHECK(x.moves == y.moves);
    MF_CHECK(x.evals == y.evals);
    MF_CHECK(x.best_cost == y.best_cost);
    MF_CHECK(x.unplaced == y.unplaced);
    MF_CHECK(x.target_move == y.target_move);
  }
}

/// Device-filling synthetic: two mid-size macro shapes chained with star
/// nets, enough copies to oversubscribe the xc7z020 fabric. This is the
/// regime where lone SA spends most of its budget shuffling parked blocks.
StitchProblem filling_problem(const Device& dev) {
  StitchProblem problem;
  auto add_macro = [&](const char* name, int col0, int w, int h) {
    Macro m;
    m.name = name;
    m.pblock = PBlock{col0, col0 + w - 1, 0, h - 1};
    m.footprint = footprint_of(dev, m.pblock, false);
    m.used_slices = w * h;
    problem.macros.push_back(std::move(m));
  };
  add_macro("mid", 0, 5, 20);
  add_macro("tall", 6, 4, 34);
  int next = 0;
  auto instances = [&](int macro, int count) {
    for (int i = 0; i < count; ++i) {
      problem.instances.push_back(
          BlockInstance{"f" + std::to_string(next++), macro});
    }
  };
  instances(0, 90);
  instances(1, 60);
  for (int i = 0; i + 1 < next; ++i) {
    problem.nets.push_back(BlockNet{{i, i + 1}, 1.0});
  }
  for (int i = 0; i + 8 < next; i += 8) {
    problem.nets.push_back(BlockNet{{i, i + 4, i + 8}, 0.5});
  }
  return problem;
}

Sample run_once(const char* name, const Device& dev,
                const StitchProblem& problem, const StitchOptions& opts,
                StitchResult* out = nullptr) {
  Timer t;
  StitchResult r = stitch(dev, problem, opts);
  Sample s;
  s.name = name;
  s.moves = r.restart_moves;
  s.seconds = t.seconds();
  s.cost = r.cost;
  s.unplaced = r.unplaced;
  if (out != nullptr) *out = std::move(r);
  return s;
}

/// The ISSUE-8 portfolio gate on one problem: race the default portfolio
/// against lone SA under both policies and require >= 1.5x time-to-equal-
/// cost OR >= 5% cost-at-equal-budget. Returns the two measured margins.
std::pair<double, double> portfolio_gate(const char* tag, const Device& dev,
                                         const StitchProblem& problem,
                                         const StitchResult& sa,
                                         std::vector<Sample>& samples) {
  StitchOptions pf;
  pf.engine = StitchEngine::Portfolio;
  pf.jobs = 4;

  // First-to-target: how many moves does the winning engine need to reach
  // the cost lone SA ends at? (target_move can be 0 when an engine's very
  // first placement already beats SA -- clamp the divisor.)
  StitchOptions to_target = pf;
  to_target.target_cost = sa.cost;
  StitchResult r_target;
  samples.push_back(run_once((std::string("pf_to_target_") + tag).c_str(),
                             dev, problem, to_target, &r_target));
  const double speedup =
      r_target.target_move >= 0
          ? static_cast<double>(sa.total_moves) /
                static_cast<double>(std::max(r_target.target_move, 1L))
          : 0.0;

  // Cost-at-equal-budget: every raced engine capped at SA's move count.
  StitchOptions budgeted = pf;
  budgeted.engine_budget = sa.total_moves;
  StitchResult r_budget;
  samples.push_back(run_once((std::string("pf_equal_budget_") + tag).c_str(),
                             dev, problem, budgeted, &r_budget));
  const double improvement = (sa.cost - r_budget.cost) / sa.cost;

  std::printf(
      "portfolio vs sa [%s]: time-to-equal-cost %.2fx (sa %ld moves, "
      "winner %s at %ld), cost-at-equal-budget %+.2f%% (%.1f -> %.1f, "
      "winner %s)\n",
      tag, speedup, sa.total_moves, r_target.engine.c_str(),
      r_target.target_move, improvement * 100.0, sa.cost, r_budget.cost,
      r_budget.engine.c_str());
  MF_CHECK_MSG(speedup >= 1.5 || improvement >= 0.05,
               "portfolio gate failed: need >= 1.5x speedup or >= 5% cost");
  return {speedup, improvement};
}

void append_json(std::string& json, const Sample& s, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s\n  {\"name\": \"%s\", \"moves\": %ld, \"wall_ms\": %.3f, "
                "\"moves_per_sec\": %.0f, \"cost\": %.6f, \"unplaced\": %d}",
                first ? "" : ",", s.name.c_str(), s.moves, s.seconds * 1e3,
                s.moves_per_sec(), s.cost, s.unplaced);
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Fig5-scale stitch problem: every cnvW1A1 block implemented at the
  // paper's constant CF 1.5, stitch deferred to the measured runs below.
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  RwFlowOptions fopts;
  fopts.compute_timing = false;
  fopts.run_stitch = false;
  fopts.jobs = 0;
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult flow = run_rw_flow(design, dev, policy, fopts);
  const StitchProblem& problem = flow.problem;
  std::printf("stitch problem: %zu instances, %zu nets, %zu macros\n",
              problem.instances.size(), problem.nets.size(),
              problem.macros.size());

  std::vector<Sample> samples;
  std::string json;

  // -- A/B: reference vs incremental engine, interleaved best-of-N --------
  StitchOptions ref_opts;
  ref_opts.reference_engine = true;
  StitchOptions inc_opts;
  const int reps = quick ? 1 : 3;
  Sample ref, inc;
  StitchResult ref_result, inc_result;
  for (int rep = 0; rep < reps; ++rep) {
    const Sample a = run_once("reference", dev, problem, ref_opts, &ref_result);
    const Sample b = run_once("incremental", dev, problem, inc_opts,
                              &inc_result);
    check_identical(ref_result, inc_result);
    if (rep == 0 || a.seconds < ref.seconds) ref = a;
    if (rep == 0 || b.seconds < inc.seconds) inc = b;
  }
  samples.push_back(ref);
  samples.push_back(inc);
  const double speedup = inc.moves_per_sec() / ref.moves_per_sec();
  std::printf("\n%-16s %10s %10s %12s %12s %9s\n", "engine", "moves",
              "wall ms", "moves/sec", "cost", "unplaced");
  for (const Sample& s : {ref, inc}) {
    std::printf("%-16s %10ld %10.1f %12.0f %12.1f %9d\n", s.name.c_str(),
                s.moves, s.seconds * 1e3, s.moves_per_sec(), s.cost,
                s.unplaced);
  }
  std::printf("incremental speedup: %.2fx (acceptance target >= 3x)\n",
              speedup);

  // -- multi-start scaling: restarts fixed, jobs swept --------------------
  const int restarts = quick ? 4 : 8;
  const std::vector<int> jobs_sweep = quick ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 2, 4, 8};
  std::printf("\n%-16s %10s %10s %12s %12s %9s\n", "restarts x jobs", "moves",
              "wall ms", "moves/sec", "cost", "unplaced");
  StitchResult jobs1_result;
  for (std::size_t i = 0; i < jobs_sweep.size(); ++i) {
    StitchOptions opts;
    opts.restarts = restarts;
    opts.jobs = jobs_sweep[i];
    const std::string name = std::to_string(restarts) + "x" +
                             std::to_string(jobs_sweep[i]);
    StitchResult result;
    Sample s = run_once(("multistart_" + name).c_str(), dev, problem, opts,
                        &result);
    if (i == 0) {
      jobs1_result = std::move(result);
    } else {
      // Determinism across the fan-out width: bit-identical winner.
      check_identical(jobs1_result, result);
      MF_CHECK(jobs1_result.restart_index == result.restart_index);
    }
    std::printf("%-16s %10ld %10.1f %12.0f %12.1f %9d\n", name.c_str(),
                s.moves, s.seconds * 1e3, s.moves_per_sec(), s.cost,
                s.unplaced);
    samples.push_back(std::move(s));
  }
  std::printf("multi-start winner: restart %d of %d (cost %.1f)\n",
              jobs1_result.restart_index, restarts, jobs1_result.cost);

  // -- engine portfolio: race analytic + warm SA + evo against lone SA ----
  // inc_result above IS the lone-SA baseline on the fig5 problem (default
  // options); the filling problem needs its own baseline run.
  std::printf("\n");
  const StitchProblem filling = filling_problem(dev);
  StitchResult filling_sa;
  samples.push_back(
      run_once("sa_filling", dev, filling, StitchOptions{}, &filling_sa));
  const auto [fig5_speedup, fig5_improvement] =
      portfolio_gate("fig5", dev, problem, inc_result, samples);
  const auto [fill_speedup, fill_improvement] =
      portfolio_gate("filling", dev, filling, filling_sa, samples);

  // Determinism gate 1: the same portfolio race is bit-identical at any
  // fan-out width, per-engine stats included.
  {
    StitchOptions pf;
    pf.engine = StitchEngine::Portfolio;
    pf.jobs = 1;
    const StitchResult serial = stitch(dev, problem, pf);
    pf.jobs = 4;
    const StitchResult wide = stitch(dev, problem, pf);
    check_move_for_move(serial, wide);
    std::printf("portfolio jobs=1 vs jobs=4: bit-identical (%zu configs, "
                "winner %s, cost %.1f)\n",
                serial.engines.size(), serial.engine.c_str(), serial.cost);
  }

  // Determinism gate 2: racing portfolio={sa} at restarts=1 reproduces the
  // plain historical anneal move for move (the portfolio layer is inert
  // for a pure-SA run).
  {
    StitchOptions plain;
    const StitchResult historical = stitch(dev, problem, plain);
    StitchOptions raced = plain;
    raced.engine = StitchEngine::Portfolio;
    raced.portfolio = {StitchEngine::Sa};
    check_move_for_move(historical, stitch(dev, problem, raced));
    std::printf("portfolio={sa} restarts=1: reproduces the historical "
                "anneal move for move (%ld moves)\n",
                historical.total_moves);
  }

  json += " \"problem\": {\"instances\": " +
          std::to_string(problem.instances.size()) +
          ", \"nets\": " + std::to_string(problem.nets.size()) +
          ", \"macros\": " + std::to_string(problem.macros.size()) + "},\n";
  char head[320];
  std::snprintf(head, sizeof head,
                " \"incremental_speedup\": %.3f,\n"
                " \"portfolio_gate\": {"
                "\"fig5_speedup\": %.3f, \"fig5_improvement\": %.4f, "
                "\"filling_speedup\": %.3f, \"filling_improvement\": %.4f},\n"
                " \"runs\": [",
                speedup, fig5_speedup, fig5_improvement, fill_speedup,
                fill_improvement);
  json += head;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    append_json(json, samples[i], i == 0);
  }
  json += "\n ]\n";
  std::printf("\n");
  if (!bench::write_bench_json("BENCH_STITCH.json", json)) return 1;
  return 0;
}
