// Stitcher engine bench: incremental-vs-reference A/B plus multi-start
// scaling, on the fig5-scale cnvW1A1 stitch problem (constant CF 1.5).
//
// Two claims are measured and *checked*, not just timed:
//   1. the incremental cost engine (cached net boxes, bitset occupancy,
//      memoized anchor scans) returns bit-identical placements to the
//      pre-change reference engine while moving >= 3x faster;
//   2. multi-start annealing (restarts > 1) returns bit-identical results
//      at every `jobs` value.
// A violated invariant aborts the bench via MF_CHECK -- the ctest entry
// (`--quick`) relies on that to turn this into a correctness gate.
//
// Results land in BENCH_STITCH.json (machine-readable: moves/sec, final
// cost, wall ms per configuration) next to a human-readable table on
// stdout. Plain main, not google-benchmark: the A/B structure (interleaved
// best-of-N with cross-run equality asserts) does not fit the BM_ harness.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "nn/cnv_w1a1.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;

struct Sample {
  std::string name;
  long moves = 0;
  double seconds = 0.0;
  double cost = 0.0;
  int unplaced = 0;
  [[nodiscard]] double moves_per_sec() const {
    return seconds > 0.0 ? moves / seconds : 0.0;
  }
};

/// Same positions, cost, and counters -- the bit-identity contract.
void check_identical(const StitchResult& a, const StitchResult& b) {
  MF_CHECK(a.cost == b.cost);
  MF_CHECK(a.wirelength == b.wirelength);
  MF_CHECK(a.unplaced == b.unplaced);
  MF_CHECK(a.total_moves == b.total_moves);
  MF_CHECK(a.positions.size() == b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    MF_CHECK(a.positions[i].col == b.positions[i].col);
    MF_CHECK(a.positions[i].row == b.positions[i].row);
  }
}

Sample run_once(const char* name, const Device& dev,
                const StitchProblem& problem, const StitchOptions& opts,
                StitchResult* out = nullptr) {
  Timer t;
  StitchResult r = stitch(dev, problem, opts);
  Sample s;
  s.name = name;
  s.moves = r.restart_moves;
  s.seconds = t.seconds();
  s.cost = r.cost;
  s.unplaced = r.unplaced;
  if (out != nullptr) *out = std::move(r);
  return s;
}

void append_json(std::string& json, const Sample& s, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s\n  {\"name\": \"%s\", \"moves\": %ld, \"wall_ms\": %.3f, "
                "\"moves_per_sec\": %.0f, \"cost\": %.6f, \"unplaced\": %d}",
                first ? "" : ",", s.name.c_str(), s.moves, s.seconds * 1e3,
                s.moves_per_sec(), s.cost, s.unplaced);
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Fig5-scale stitch problem: every cnvW1A1 block implemented at the
  // paper's constant CF 1.5, stitch deferred to the measured runs below.
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  RwFlowOptions fopts;
  fopts.compute_timing = false;
  fopts.run_stitch = false;
  fopts.jobs = 0;
  CfPolicy policy;
  policy.constant_cf = 1.5;
  const RwFlowResult flow = run_rw_flow(design, dev, policy, fopts);
  const StitchProblem& problem = flow.problem;
  std::printf("stitch problem: %zu instances, %zu nets, %zu macros\n",
              problem.instances.size(), problem.nets.size(),
              problem.macros.size());

  std::vector<Sample> samples;
  std::string json;

  // -- A/B: reference vs incremental engine, interleaved best-of-N --------
  StitchOptions ref_opts;
  ref_opts.reference_engine = true;
  StitchOptions inc_opts;
  const int reps = quick ? 1 : 3;
  Sample ref, inc;
  StitchResult ref_result, inc_result;
  for (int rep = 0; rep < reps; ++rep) {
    const Sample a = run_once("reference", dev, problem, ref_opts, &ref_result);
    const Sample b = run_once("incremental", dev, problem, inc_opts,
                              &inc_result);
    check_identical(ref_result, inc_result);
    if (rep == 0 || a.seconds < ref.seconds) ref = a;
    if (rep == 0 || b.seconds < inc.seconds) inc = b;
  }
  samples.push_back(ref);
  samples.push_back(inc);
  const double speedup = inc.moves_per_sec() / ref.moves_per_sec();
  std::printf("\n%-16s %10s %10s %12s %12s %9s\n", "engine", "moves",
              "wall ms", "moves/sec", "cost", "unplaced");
  for (const Sample& s : {ref, inc}) {
    std::printf("%-16s %10ld %10.1f %12.0f %12.1f %9d\n", s.name.c_str(),
                s.moves, s.seconds * 1e3, s.moves_per_sec(), s.cost,
                s.unplaced);
  }
  std::printf("incremental speedup: %.2fx (acceptance target >= 3x)\n",
              speedup);

  // -- multi-start scaling: restarts fixed, jobs swept --------------------
  const int restarts = quick ? 4 : 8;
  const std::vector<int> jobs_sweep = quick ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 2, 4, 8};
  std::printf("\n%-16s %10s %10s %12s %12s %9s\n", "restarts x jobs", "moves",
              "wall ms", "moves/sec", "cost", "unplaced");
  StitchResult jobs1_result;
  for (std::size_t i = 0; i < jobs_sweep.size(); ++i) {
    StitchOptions opts;
    opts.restarts = restarts;
    opts.jobs = jobs_sweep[i];
    const std::string name = std::to_string(restarts) + "x" +
                             std::to_string(jobs_sweep[i]);
    StitchResult result;
    Sample s = run_once(("multistart_" + name).c_str(), dev, problem, opts,
                        &result);
    if (i == 0) {
      jobs1_result = std::move(result);
    } else {
      // Determinism across the fan-out width: bit-identical winner.
      check_identical(jobs1_result, result);
      MF_CHECK(jobs1_result.restart_index == result.restart_index);
    }
    std::printf("%-16s %10ld %10.1f %12.0f %12.1f %9d\n", name.c_str(),
                s.moves, s.seconds * 1e3, s.moves_per_sec(), s.cost,
                s.unplaced);
    samples.push_back(std::move(s));
  }
  std::printf("multi-start winner: restart %d of %d (cost %.1f)\n",
              jobs1_result.restart_index, restarts, jobs1_result.cost);

  json += " \"problem\": {\"instances\": " +
          std::to_string(problem.instances.size()) +
          ", \"nets\": " + std::to_string(problem.nets.size()) +
          ", \"macros\": " + std::to_string(problem.macros.size()) + "},\n";
  char head[128];
  std::snprintf(head, sizeof head, " \"incremental_speedup\": %.3f,\n \"runs\": [",
                speedup);
  json += head;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    append_json(json, samples[i], i == 0);
  }
  json += "\n ]\n";
  std::printf("\n");
  if (!bench::write_bench_json("BENCH_STITCH.json", json)) return 1;
  return 0;
}
