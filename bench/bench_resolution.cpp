// Section VI-C -- CF search resolution: small designs (<~100 LUTs) do not
// need steps below 0.1 (PBlock quantization swallows smaller changes), while
// designs around ~2,500 LUTs need ~0.02-0.03 steps; 85% of the dataset is
// below 2,500 LUTs.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "core/cf_search.hpp"
#include "synth/optimize.hpp"

namespace {

using namespace mf;

double min_cf_with_step(const Module& original, const Device& dev,
                        double step) {
  Module module = original;
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);
  CfSearchOptions opts;
  opts.step = step;
  const CfSearchResult found = find_min_cf(module, report, shape, dev, opts);
  return found.found ? found.min_cf : -1.0;
}

}  // namespace

int main() {
  using namespace mf;
  bench::banner("Section VI-C: CF search-step resolution study",
                "<100 LUT designs need no step below 0.1; ~2,500 LUT designs "
                "need ~0.03; 85% of the dataset is below 2,500 LUTs");

  const Device dev = xc7z020_model();
  const std::vector<GenSpec> specs = dataset_sweep(bench::kSweep);

  // How often does coarsening the step from 0.02 to 0.1 change the result,
  // per size class? "Changed" means the coarse search lands more than half a
  // coarse step above the fine minimum.
  struct Bucket {
    const char* label;
    int lo;
    int hi;
    int modules = 0;
    int changed = 0;
    double waste = 0.0;  ///< mean extra CF paid by the coarse search
  };
  Bucket buckets[] = {{"< 100 LUTs", 0, 100, 0, 0, 0.0},
                      {"100 - 1000", 100, 1000, 0, 0, 0.0},
                      {"1000 - 2500", 1000, 2500, 0, 0, 0.0},
                      {">= 2500", 2500, 1 << 30, 0, 0, 0.0}};

  int below_2500 = 0;
  int total = 0;
  // Stride-sample the sweep for runtime; every family appears.
  for (std::size_t i = 0; i < specs.size(); i += 5) {
    Module module = realize(specs[i]);
    optimize(module.netlist);
    const ResourceReport report = make_report(module.netlist);
    const int lut_sites = report.stats.luts + report.stats.m_lut_cells();
    ++total;
    if (lut_sites < 2500) ++below_2500;

    const double fine = min_cf_with_step(module, dev, 0.02);
    const double coarse = min_cf_with_step(module, dev, 0.1);
    if (fine < 0.0 || coarse < 0.0) continue;
    for (Bucket& b : buckets) {
      if (lut_sites >= b.lo && lut_sites < b.hi) {
        ++b.modules;
        if (coarse > fine + 0.05) ++b.changed;
        b.waste += coarse - fine;
        break;
      }
    }
  }

  Table table({"size class", "modules", "coarse step differs", "mean extra CF",
               ""});
  for (const Bucket& b : buckets) {
    table.row()
        .cell(b.label)
        .cell(b.modules)
        .cell(fmt(100.0 * b.changed / std::max(1, b.modules), 1) + "%")
        .cell(b.modules ? b.waste / b.modules : 0.0, 3)
        .cell(b.lo == 0 ? "[paper: step 0.1 suffices]"
                        : (b.lo >= 1000 ? "[paper: needs ~0.02-0.03]" : ""));
  }
  table.print();

  std::printf("\ndataset below 2,500 LUTs: %.0f%% [paper: 85%%]\n",
              100.0 * below_2500 / std::max(1, total));

  // PBlock quantization mechanism: for a tiny module, consecutive CF steps
  // often produce the *same* PBlock.
  {
    Module module = realize(specs[0]);  // smallest shift register
    optimize(module.netlist);
    const ResourceReport report = make_report(module.netlist);
    const ShapeReport shape = quick_place(report);
    int distinct = 0;
    PBlock last{};
    for (double cf = 0.9; cf <= 1.7; cf += 0.02) {
      const auto pb = generate_pblock(dev, report, shape, cf);
      if (pb && !(*pb == last)) {
        ++distinct;
        last = *pb;
      }
    }
    std::printf(
        "tiny module '%s': %d distinct PBlocks across 41 CF steps of 0.02 "
        "(quantization swallows small steps)\n",
        module.name.c_str(), distinct);
  }
  return 0;
}
