// Persistence bench: the text tier vs the binary tier (common/binfile) for
// the three persisted artifact kinds. Two claims are measured and *checked*,
// not just timed -- a violated invariant aborts via MF_CHECK, and the ctest
// entry (`--quick`) relies on that to turn this into a correctness gate:
//
//   1. loading a 100k-row ground-truth dataset from the binary format is
//      >= 10x faster than loading the same rows from text (the point of the
//      binary tier: bulk section reads instead of per-line istringstream
//      parsing);
//   2. text -> binary -> text is *byte-identical* for all three formats
//      (ground truth, module cache, model bundle), which is what makes
//      `macroflow convert` a safe migration in either direction. This only
//      holds because every text double goes through the shortest-round-trip
//      formatter in common/parse_num.hpp.
//
// Results land in BENCH_PERSIST.json (save/load wall ms per format, the
// speedup, file sizes) next to a human-readable table on stdout. Plain
// main, like bench_serve: a fixed A/B comparison, not a BM_ sweep.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "ml/dataset.hpp"
#include "serve/bundle.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;

/// Deterministic synthetic labelled samples. Serialization cost does not
/// care how labels were produced, so 100k rows are generated directly (a
/// real 100k-module sweep would dominate the bench with flow time). The
/// doubles deliberately include awkward values (0.1 steps, tiny offsets)
/// so the byte-identity gate exercises shortest-round-trip formatting.
std::vector<LabeledModule> make_samples(std::size_t n) {
  Rng rng(2026);
  std::vector<LabeledModule> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    LabeledModule& s = samples[i];
    s.name = "synth_mod_" + std::to_string(i);
    s.min_cf = 0.1 + 0.01 * static_cast<double>(i % 190) +
               rng.uniform(0.0, 1e-9);
    NetlistStats& st = s.report.stats;
    st.luts = static_cast<int>(rng.uniform(1.0, 4000.0));
    st.ffs = static_cast<int>(rng.uniform(1.0, 4000.0));
    st.carry4 = static_cast<int>(rng.uniform(0.0, 64.0));
    st.srls = static_cast<int>(rng.uniform(0.0, 128.0));
    st.lutrams = static_cast<int>(rng.uniform(0.0, 128.0));
    st.bram18 = i % 7 == 0 ? 2 : 0;
    st.bram36 = i % 11 == 0 ? 1 : 0;
    st.dsp = i % 5 == 0 ? 3 : 0;
    st.cells = st.luts + st.ffs;
    st.control_sets = static_cast<int>(rng.uniform(1.0, 40.0));
    st.max_fanout = static_cast<int>(rng.uniform(1.0, 900.0));
    const int chains = static_cast<int>(i % 4);
    for (int c = 0; c < chains; ++c) {
      st.carry_chains.push_back(static_cast<int>(rng.uniform(1.0, 30.0)));
    }
    s.report.slices_for_luts = (st.luts + 3) / 4;
    s.report.slices_for_ffs = (st.ffs + 7) / 8;
    s.report.slices_for_carry = st.carry4;
    s.report.est_slices = s.report.slices_for_luts;
    s.report.est_slices_m = (st.srls + st.lutrams + 3) / 4;
    s.report.bram36 = st.bram36_equiv();
    s.report.dsp = st.dsp;
    s.shape.bbox_w = 1 + static_cast<int>(i % 40);
    s.shape.bbox_h = 1 + static_cast<int>(i % 25);
    s.shape.min_height = 1 + st.longest_chain();
    s.shape.carry_columns = chains;
  }
  return samples;
}

/// A cache entry with every persisted field exercised (mirrors the
/// robustness tests' fake_block).
ImplementedBlock fake_block(const std::string& name, int salt) {
  ImplementedBlock b;
  b.name = name;
  b.status = salt % 2 == 0 ? FlowStatus::Ok : FlowStatus::Degraded;
  b.seed_cf = 1.5 + 0.1 * salt;
  b.first_run_success = salt % 2 == 0;
  b.attempts = 1 + salt % 3;
  b.macro.name = name;
  b.macro.cf = 1.25 + 0.05 * salt;
  b.macro.fill_ratio = 0.5 + 1e-3 * (salt % 100);
  b.macro.tool_runs = 2 + salt % 4;
  b.macro.used_slices = 30 + salt;
  b.macro.est_slices = 28 + salt;
  b.macro.pblock = PBlock{1 + salt % 8, 3 + salt % 8, 0, 5};
  b.macro.footprint.height = 6;
  b.macro.footprint.kinds = {ColumnKind::ClbL, ColumnKind::ClbM};
  return b;
}

/// A trained (cheap) bundle for the bundle byte-identity leg.
ModelBundle tiny_bundle() {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(7);
  for (std::size_t i = 0; i < 60; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.4;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  CfEstimator::Options options;
  options.dtree.max_depth = 6;
  ModelBundle bundle;
  bundle.name = "bench-persist";
  bundle.provenance.seed = 7;
  bundle.provenance.dataset_rows = 60;
  bundle.provenance.holdout_mean_rel_err = 0.1;  // awkward in binary, easy here
  bundle.estimator =
      CfEstimator(EstimatorKind::DecisionTree, FeatureSet::Classical, options);
  bundle.estimator.train(data);
  return bundle;
}

/// Best-of-N wall seconds for `fn`; `prepare` runs before each rep, outside
/// the timed region.
template <typename Fn, typename Prep = void (*)()>
double best_of(int reps, Fn&& fn, Prep&& prepare = [] {}) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    prepare();
    mf::Timer timer;
    fn();
    const double s = timer.seconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  mf::bench::banner(
      "persistence: text vs binary tier (ground truth / cache / bundle)",
      "infrastructure gate, no paper counterpart; targets: binary load >= "
      "10x text load at 100k rows, text<->binary byte-identical");

  // The gate is defined at 100k rows in both modes; --quick merely trims
  // the repetition count.
  const std::size_t n_rows = 100000;
  const int reps = quick ? 5 : 7;
  const std::vector<LabeledModule> samples = make_samples(n_rows);

  // -- ground truth: the scale leg ----------------------------------------
  std::string text;
  const double text_save_s = best_of(reps, [&] {
    text = ground_truth_to_text(samples);
  });
  std::string binary;
  const double bin_save_s = best_of(reps, [&] {
    binary = ground_truth_to_binary(samples);
  });

  // The holders are cleared *outside* the timed region: tearing down the
  // previous rep's 100k-sample vector costs milliseconds and belongs to
  // neither format's load time.
  std::optional<std::vector<LabeledModule>> from_text;
  const double text_load_s = best_of(reps, [&] {
    from_text = ground_truth_from_text(text);
  }, [&] { from_text.reset(); });
  MF_CHECK_MSG(from_text && from_text->size() == n_rows,
               "text ground truth failed to load");
  std::optional<std::vector<LabeledModule>> from_binary;
  const double bin_load_s = best_of(reps, [&] {
    from_binary = ground_truth_from_binary(binary);
  }, [&] { from_binary.reset(); });
  MF_CHECK_MSG(from_binary && from_binary->size() == n_rows,
               "binary ground truth failed to load");

  const double speedup = bin_load_s > 0.0 ? text_load_s / bin_load_s : 0.0;
  std::printf("%-28s %12s %12s %10s\n", "ground truth (100k rows)", "text",
              "binary", "ratio");
  std::printf("%-28s %10.1f MB %9.1f MB %9.2fx\n", "file size",
              static_cast<double>(text.size()) / 1e6,
              static_cast<double>(binary.size()) / 1e6,
              static_cast<double>(text.size()) /
                  static_cast<double>(binary.size()));
  std::printf("%-28s %10.1f ms %9.1f ms %9.2fx\n", "save", text_save_s * 1e3,
              bin_save_s * 1e3, text_save_s / bin_save_s);
  std::printf("%-28s %10.1f ms %9.1f ms %9.2fx\n", "load", text_load_s * 1e3,
              bin_load_s * 1e3, speedup);
  std::printf("binary load speedup: %.1fx (acceptance target >= 10x)\n",
              speedup);
  MF_CHECK_MSG(speedup >= 10.0,
               "binary ground-truth load must beat text by >= 10x");

  // -- byte-identity: text -> binary -> text, all three formats -----------
  // Ground truth: parse the text, re-encode via binary, and re-serialise;
  // every byte must survive (the lossless-conversion contract).
  MF_CHECK_MSG(ground_truth_to_text(*from_binary) == text,
               "ground truth text->binary->text must be byte-identical");

  ModuleCache cache;
  for (int i = 0; i < 500; ++i) {
    cache.restore(fake_block("blk_" + std::to_string(i), i));
  }
  const std::string cache_text = module_cache_to_text(cache);
  ModuleCache cache_rt;
  const CacheLoadStats stats =
      module_cache_from_binary(module_cache_to_binary(cache), cache_rt);
  MF_CHECK_MSG(stats.complete && stats.corrupted == 0,
               "binary module cache failed to load");
  MF_CHECK_MSG(module_cache_to_text(cache_rt) == cache_text,
               "module cache text->binary->text must be byte-identical");

  const ModelBundle bundle = tiny_bundle();
  const std::string bundle_text = bundle_to_text(bundle);
  const std::optional<ModelBundle> bundle_rt =
      bundle_from_binary(bundle_to_binary(bundle));
  MF_CHECK_MSG(bundle_rt.has_value(), "binary bundle failed to load");
  MF_CHECK_MSG(bundle_to_text(*bundle_rt) == bundle_text,
               "model bundle text->binary->text must be byte-identical");
  std::printf("text<->binary byte-identity: ground truth OK, module cache "
              "OK, model bundle OK\n");

  std::string json;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      " \"rows\": %zu,\n"
      " \"text_bytes\": %zu,\n \"binary_bytes\": %zu,\n"
      " \"text_save_ms\": %.3f,\n \"binary_save_ms\": %.3f,\n"
      " \"text_load_ms\": %.3f,\n \"binary_load_ms\": %.3f,\n"
      " \"load_speedup\": %.1f,\n \"byte_identical_formats\": 3\n",
      n_rows, text.size(), binary.size(), text_save_s * 1e3, bin_save_s * 1e3,
      text_load_s * 1e3, bin_load_s * 1e3, speedup);
  json += buf;
  if (!mf::bench::write_bench_json("BENCH_PERSIST.json", json)) return 1;
  return 0;
}
