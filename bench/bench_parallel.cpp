// Scaling bench for the deterministic parallel flow engine: the three hot
// loops the thread pool fans out (per-block CF search on cnvW1A1, the
// ground-truth dataset sweep, random-forest training) measured at
// jobs = 1 / 2 / 4 / 8.
//
// google-benchmark binary, so `--benchmark_format=json` emits the same JSON
// the perf bench does. A speedup-vs-jobs=1 summary is printed to stderr
// after the runs (stderr so a JSON stdout stays machine-parseable). The
// results themselves are bit-identical at every jobs value -- the parallel
// suite asserts that; this bench only measures wall clock. Speedup tops out
// at the machine's core count (this is the acceptance target: >= 2x at 4+
// hardware threads).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "flow/ground_truth.hpp"
#include "flow/rw_flow.hpp"
#include "ml/rforest.hpp"
#include "nn/cnv_w1a1.hpp"
#include "rtlgen/sweep.hpp"

namespace {

using namespace mf;

// Best (minimum) wall-clock seconds per (loop, jobs), for the summary.
std::mutex g_times_mutex;
std::map<std::string, std::map<int, double>> g_times;

void record(const std::string& loop, int jobs, double seconds) {
  std::lock_guard<std::mutex> lock(g_times_mutex);
  auto [it, inserted] = g_times[loop].try_emplace(jobs, seconds);
  if (!inserted) it->second = std::min(it->second, seconds);
}

const CnvDesign& cnv_design() {
  static const CnvDesign design = build_cnv_w1a1();
  return design;
}

const std::vector<GenSpec>& sweep_slice() {
  static const std::vector<GenSpec> specs = dataset_sweep({200, 42});
  return specs;
}

void BM_CnvPerBlockSearch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const Device dev = xc7z020_model();
  CfPolicy policy;
  policy.constant_cf = 1.5;
  RwFlowOptions opts;
  opts.compute_timing = false;
  opts.run_stitch = false;  // the stitch is sequential; measure the fan-out
  opts.jobs = jobs;
  for (auto _ : state) {
    Timer t;
    RwFlowResult r = run_rw_flow(cnv_design(), dev, policy, opts);
    benchmark::DoNotOptimize(r.total_tool_runs);
    record("cnv_per_block_search", jobs, t.seconds());
  }
}
BENCHMARK(BM_CnvPerBlockSearch)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DatasetSweepLabel(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const Device dev = xc7z020_model();
  for (auto _ : state) {
    Timer t;
    GroundTruth truth = build_ground_truth(sweep_slice(), dev, {}, jobs);
    benchmark::DoNotOptimize(truth.samples.size());
    record("dataset_sweep_label", jobs, t.seconds());
  }
}
BENCHMARK(BM_DatasetSweepLabel)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ForestFit(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  static const auto data = [] {
    Rng rng(3);
    std::pair<std::vector<std::vector<double>>, std::vector<double>> d;
    for (int i = 0; i < 800; ++i) {
      const double a = rng.uniform(-2.0, 2.0);
      const double b = rng.uniform(-2.0, 2.0);
      const double c = rng.uniform(-2.0, 2.0);
      d.first.push_back({a, b, c});
      d.second.push_back((a > 0.3 ? 2.0 : -1.0) + 0.5 * b - 0.2 * c);
    }
    return d;
  }();
  RForestOptions opts;
  opts.trees = 120;
  opts.jobs = jobs;
  for (auto _ : state) {
    Timer t;
    RandomForest forest;
    forest.fit(data.first, data.second, opts);
    benchmark::DoNotOptimize(forest.tree_count());
    record("forest_fit", jobs, t.seconds());
  }
}
BENCHMARK(BM_ForestFit)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void print_speedup_summary() {
  std::lock_guard<std::mutex> lock(g_times_mutex);
  if (g_times.empty()) return;
  std::fprintf(stderr, "\nspeedup vs jobs=1 (best wall clock; %u hardware threads)\n",
               std::thread::hardware_concurrency());
  std::fprintf(stderr, "%-24s %6s %10s %8s\n", "loop", "jobs", "ms", "speedup");
  for (const auto& [loop, by_jobs] : g_times) {
    const auto base = by_jobs.find(1);
    for (const auto& [jobs, seconds] : by_jobs) {
      const double speedup =
          base != by_jobs.end() && seconds > 0.0 ? base->second / seconds : 0.0;
      std::fprintf(stderr, "%-24s %6d %10.2f %7.2fx\n", loop.c_str(), jobs,
                   seconds * 1e3, speedup);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_speedup_summary();
  return 0;
}
