// Ablations over the reproduction's own design choices (DESIGN.md sec. 5):
//   A. congestion-aware timing on/off -- without the congestion multiplier,
//      the Table I timing inversion disappears;
//   B. random-forest size sweep -- error vs number of trees (the paper picked
//      1,000 of depth 20);
//   C. balancing on/off -- the 75-per-bin cap trades samples for high-CF
//      accuracy;
//   D. stitcher move set -- disabling the unpark/compaction machinery leaves
//      more blocks unplaced on the full device.

#include "bench_common.hpp"
#include "route/maze_router.hpp"
#include "core/cf_search.hpp"
#include "flow/rw_flow.hpp"
#include "synth/optimize.hpp"
#include "timing/sta.hpp"

namespace {

using namespace mf;

void ablation_timing(const Device& dev, const CnvDesign& design) {
  std::printf("\n[A] congestion-aware timing -------------------------------\n");
  const int unique = design.unique_index("weights_14");
  Module module = design.unique_modules[static_cast<std::size_t>(unique)];
  optimize(module.netlist);
  const ResourceReport report = make_report(module.netlist);
  const ShapeReport shape = quick_place(report);

  CfSearchOptions sopts;
  sopts.start = 0.5;
  const CfSearchResult tight = find_min_cf(module, report, shape, dev, sopts);
  const auto loose_pb = generate_pblock(dev, report, shape, 1.5);
  const PlaceResult loose =
      place_in_pblock(module, report, dev, *loose_pb, {});
  MF_CHECK(tight.found && loose.feasible);

  const double cap = DetailedPlaceOptions{}.route.cell_capacity;
  TimingOptions with;
  TimingOptions without = with;
  without.congestion_slope = 0.0;

  auto longest = [&](const PlaceResult& place, const TimingOptions& topts) {
    return analyze_timing(module.netlist, place.placement, place.route, cap,
                          topts)
        .longest_path_ns;
  };
  Table t({"timing model", "tight CF (ns)", "CF 1.5 (ns)", "inversion?"});
  const double t_tight_on = longest(tight.place, with);
  const double t_loose_on = longest(loose, with);
  const double t_tight_off = longest(tight.place, without);
  const double t_loose_off = longest(loose, without);
  t.row()
      .cell("congestion-aware")
      .cell(t_tight_on, 3)
      .cell(t_loose_on, 3)
      .cell(t_tight_on > t_loose_on ? "yes (paper's Table I)" : "no");
  t.row()
      .cell("distance only")
      .cell(t_tight_off, 3)
      .cell(t_loose_off, 3)
      .cell(t_tight_off > t_loose_off ? "yes" : "no (inversion lost)");
  t.print();
}

void ablation_forest(const Device& dev) {
  std::printf("\n[B] random-forest size sweep ------------------------------\n");
  const GroundTruth truth = bench::dataset_truth(dev);
  Rng rng(7);
  const Dataset balanced = balance_by_target(
      make_dataset(FeatureSet::All, truth.samples), bench::kBinWidth,
      bench::kBinCap, rng);
  Rng split_rng(8);
  const auto [train, test] =
      train_test_split(balanced, bench::kTrainFraction, split_rng);

  Table t({"trees", "test error", "train seconds"});
  for (int trees : {1, 10, 100, 1000}) {
    CfEstimator::Options options;
    options.rforest.trees = trees;
    CfEstimator rf(EstimatorKind::RandomForest, FeatureSet::All, options);
    Timer timer;
    rf.train(train);
    const double err = mean_relative_error(rf.predict_rows(test.x), test.y);
    t.row().cell(trees).cell(fmt(100.0 * err, 2) + "%").cell(timer.seconds(),
                                                             2);
  }
  t.print();
  std::printf("(diminishing returns past ~100 trees; the paper uses 1,000)\n");
}

void ablation_balance(const Device& dev) {
  std::printf("\n[C] training-set balancing --------------------------------\n");
  const GroundTruth truth = bench::dataset_truth(dev);

  auto eval = [&](bool balance) {
    Dataset data = make_dataset(FeatureSet::All, truth.samples);
    if (balance) {
      Rng rng(7);
      data = balance_by_target(data, bench::kBinWidth, bench::kBinCap, rng);
    }
    Rng split_rng(8);
    const auto [train, test] = train_test_split(data, bench::kTrainFraction,
                                                split_rng);
    CfEstimator rf(EstimatorKind::RandomForest, FeatureSet::All);
    rf.train(train);
    const std::vector<double> pred = rf.predict_rows(test.x);
    double high_err = 0.0;
    int high_n = 0;
    for (std::size_t i = 0; i < test.y.size(); ++i) {
      if (test.y[i] < 1.4) continue;
      high_err += std::abs(pred[i] - test.y[i]) / test.y[i];
      ++high_n;
    }
    return std::tuple<std::size_t, double, double>(
        train.size(), mean_relative_error(pred, test.y),
        high_n ? high_err / high_n : 0.0);
  };

  Table t({"training set", "samples", "overall error", "error at CF>=1.4"});
  const auto [n_raw, e_raw, h_raw] = eval(false);
  const auto [n_bal, e_bal, h_bal] = eval(true);
  t.row()
      .cell("raw (biased)")
      .cell(n_raw)
      .cell(fmt(100.0 * e_raw, 2) + "%")
      .cell(fmt(100.0 * h_raw, 2) + "%");
  t.row()
      .cell("balanced (75/bin)")
      .cell(n_bal)
      .cell(fmt(100.0 * e_bal, 2) + "%")
      .cell(fmt(100.0 * h_bal, 2) + "%");
  t.print();
  std::printf("(the paper balances to keep high CFs learnable; Section VII)\n");
}

void ablation_anchor(const Device& dev, const CnvDesign& design) {
  std::printf("\n[E] PBlock position policy (the paper's future work) ------\n");
  RwFlowOptions first_fit;
  first_fit.compute_timing = false;
  RwFlowOptions min_waste = first_fit;
  min_waste.search.pblock.policy = AnchorPolicy::MinWaste;

  CfPolicy policy;
  policy.mode = CfPolicy::Mode::MinSearch;
  const RwFlowResult base = run_rw_flow(design, dev, policy, first_fit);
  const RwFlowResult tuned = run_rw_flow(design, dev, policy, min_waste);

  // Relocation freedom: total compatible anchors across unique macros.
  auto anchor_total = [&](const RwFlowResult& r) {
    long total = 0;
    for (const Macro& m : r.problem.macros) {
      total += static_cast<long>(
          compatible_anchors(dev, m.footprint, m.pblock.row_lo).size());
    }
    return total;
  };

  Table t({"anchor policy", "unplaced", "coverage", "total reloc anchors"});
  t.row()
      .cell("first fit")
      .cell(base.stitch.unplaced)
      .cell(base.stitch.coverage, 3)
      .cell(static_cast<int>(anchor_total(base)));
  t.row()
      .cell("min waste")
      .cell(tuned.stitch.unplaced)
      .cell(tuned.stitch.coverage, 3)
      .cell(static_cast<int>(anchor_total(tuned)));
  t.print();
  std::printf(
      "(on this design most PBlocks are narrow enough to dodge special\n"
      " columns under either policy, so the position question the paper\n"
      " defers to future work stays open -- the hook is in place)\n");
}

void ablation_boosting(const Device& dev) {
  std::printf("\n[F] gradient boosting extension ---------------------------\n");
  const GroundTruth truth = bench::dataset_truth(dev);
  Rng rng(7);
  const Dataset balanced = balance_by_target(
      make_dataset(FeatureSet::All, truth.samples), bench::kBinWidth,
      bench::kBinCap, rng);
  Rng split_rng(8);
  const auto [train, test] =
      train_test_split(balanced, bench::kTrainFraction, split_rng);

  Table t({"model", "test error"});
  const EstimatorKind kinds[] = {EstimatorKind::DecisionTree,
                                 EstimatorKind::RandomForest,
                                 EstimatorKind::GradientBoosting};
  for (EstimatorKind kind : kinds) {
    CfEstimator est(kind, FeatureSet::All);
    est.train(train);
    t.row().cell(to_string(kind)).cell(
        fmt(100.0 * mean_relative_error(est.predict_rows(test.x), test.y),
            2) +
        "%");
  }
  t.print();
  std::printf("(tests the paper's remark that more expressive estimators do "
              "not automatically win)\n");
}

void ablation_stitcher(const Device& dev, const CnvDesign& design) {
  std::printf("\n[D] stitcher move set -------------------------------------\n");
  RwFlowOptions opts;
  opts.compute_timing = false;
  CfPolicy policy;
  policy.mode = CfPolicy::Mode::MinSearch;

  const RwFlowResult base = run_rw_flow(design, dev, policy, opts);
  RwFlowOptions crippled = opts;
  crippled.stitch.place_retry_every = 0;  // no unparking during annealing
  const RwFlowResult no_retry = run_rw_flow(design, dev, policy, crippled);

  Table t({"stitcher", "unplaced", "coverage", "wirelength"});
  t.row()
      .cell("full move set")
      .cell(base.stitch.unplaced)
      .cell(base.stitch.coverage, 3)
      .cell(base.stitch.wirelength, 0);
  t.row()
      .cell("no unpark retries")
      .cell(no_retry.stitch.unplaced)
      .cell(no_retry.stitch.coverage, 3)
      .cell(no_retry.stitch.wirelength, 0);
  t.print();
}

void ablation_router(const Device& dev) {
  std::printf("\n[G] routability proxy vs maze router ----------------------\n");
  // The minimal-CF oracle uses the ~1 ms congestion proxy; cross-check its
  // verdicts against the PathFinder-style router on a sample of modules:
  // placements at the minimal CF must route (far) better than placements
  // squeezed one coarse step below it.
  const std::vector<GenSpec> specs = dataset_sweep(bench::kSweep);
  int at_min_clean = 0;
  int at_min_total = 0;
  int rank_ok = 0;
  int rank_total = 0;
  long overuse_min = 0;
  long overuse_below = 0;
  for (std::size_t i = 60; i < specs.size(); i += 137) {
    Module m = realize(specs[i]);
    optimize(m.netlist);
    const ResourceReport report = make_report(m.netlist);
    const ShapeReport shape = quick_place(report);
    const CfSearchResult found = find_min_cf(m, report, shape, dev);
    if (!found.found) continue;
    const MazeRouteResult r_min =
        maze_route(m.netlist, found.place.placement, found.pblock);
    ++at_min_total;
    if (r_min.routed) ++at_min_clean;
    overuse_min += r_min.max_overuse;

    if (found.min_cf < 1.1) continue;
    const auto pb = generate_pblock(dev, report, shape, found.min_cf - 0.2);
    if (!pb) continue;
    DetailedPlaceOptions no_proxy;
    no_proxy.check_routability = false;
    const PlaceResult tight = place_in_pblock(m, report, dev, *pb, no_proxy);
    if (tight.used_slices == 0) continue;
    const MazeRouteResult r_below =
        maze_route(m.netlist, tight.placement, *pb);
    ++rank_total;
    overuse_below += r_below.max_overuse;
    if (r_below.max_overuse >= r_min.max_overuse) ++rank_ok;
  }
  Table t({"check", "result"});
  t.row()
      .cell("min-CF placements routing cleanly")
      .cell(std::to_string(at_min_clean) + "/" + std::to_string(at_min_total));
  t.row()
      .cell("router ranks below-min worse (or equal)")
      .cell(std::to_string(rank_ok) + "/" + std::to_string(rank_total));
  t.row()
      .cell("mean max over-use at min CF")
      .cell(at_min_total ? static_cast<double>(overuse_min) / at_min_total
                         : 0.0,
            2);
  t.row()
      .cell("mean max over-use below min CF")
      .cell(rank_total ? static_cast<double>(overuse_below) / rank_total : 0.0,
            2);
  t.print();
  std::printf("(the 1 ms proxy and the real router agree directionally; the "
              "proxy is what makes 40-run CF sweeps affordable)\n");
}

}  // namespace

int main() {
  using namespace mf;
  bench::banner("Ablations over the reproduction's design choices",
                "see DESIGN.md section 5");
  const Device dev = xc7z020_model();
  const CnvDesign design = build_cnv_w1a1();
  ablation_timing(dev, design);
  ablation_forest(dev);
  ablation_balance(dev);
  ablation_stitcher(dev, design);
  ablation_anchor(dev, design);
  ablation_boosting(dev);
  ablation_router(dev);
  return 0;
}
