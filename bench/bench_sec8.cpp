// Section VIII -- estimator impact on the cnvW1A1 flow:
//   * 52.7% of the modules implement on the first run with the NN estimator;
//   * versus a constant-CF=0.9 search, the estimator needs 1.8x fewer tool
//     runs for block compilation;
//   * on the xc7z045, the SA stitcher converges 1.37x faster and its final
//     cost is 40% lower with the estimator than with a constant CF of 1.68
//     (Figure 13's tighter packing).

#include "bench_common.hpp"
#include "flow/rw_flow.hpp"

namespace {

using namespace mf;

struct FlowStats {
  int tool_runs = 0;
  int first_run = 0;
  int blocks = 0;
  long converge = 0;
  long total_moves = 0;
  long illegal = 0;
  double cost = 0.0;
  double wirelength = 0.0;
  int unplaced = 0;
  double coverage = 0.0;
  double stitch_seconds = 0.0;
  std::vector<std::pair<long, double>> trace;
};

/// First move at which `trace` reaches `target` cost (the cross-quality
/// convergence point: how long one run needs to match the other's final
/// result).
long moves_to_reach(const std::vector<std::pair<long, double>>& trace,
                    double target, long fallback) {
  for (const auto& [move, cost] : trace) {
    if (cost <= target) return std::max<long>(move, 1);
  }
  return fallback;
}

FlowStats run_flow(const CnvDesign& design, const Device& dev,
                   const CfPolicy& policy) {
  RwFlowOptions opts;
  opts.compute_timing = false;
  const RwFlowResult r = run_rw_flow(design, dev, policy, opts);
  FlowStats s;
  for (const ImplementedBlock& blk : r.blocks) {
    if (!blk.ok()) continue;
    ++s.blocks;
    s.tool_runs += blk.macro.tool_runs;
    if (blk.first_run_success) ++s.first_run;
  }
  s.converge = r.stitch.converge_move;
  s.total_moves = r.stitch.total_moves;
  s.illegal = r.stitch.illegal;
  s.cost = r.stitch.cost;
  s.wirelength = r.stitch.wirelength;
  s.unplaced = r.stitch.unplaced;
  s.coverage = r.stitch.coverage;
  s.stitch_seconds = r.stitch.seconds;
  s.trace = r.stitch.cost_trace;
  return s;
}

}  // namespace

int main() {
  using namespace mf;
  bench::banner("Section VIII / Figure 13: estimator impact on the flow",
                "52.7% first-run success; constant CF=0.9 search needs 1.8x "
                "the tool runs; SA converges 1.37x faster with 40% lower "
                "final cost vs constant CF=1.68 (xc7z045)");

  const Device z20 = xc7z020_model();
  const Device z45 = xc7z045_model();
  const CnvDesign design = build_cnv_w1a1();

  // Train the paper's production estimator: the NN on the relative features.
  Timer t_train;
  const GroundTruth dataset = bench::dataset_truth(z20);
  Rng rng(7);
  const Dataset train = balance_by_target(
      make_dataset(FeatureSet::Additional, dataset.samples), bench::kBinWidth,
      bench::kBinCap, rng);
  CfEstimator nn(EstimatorKind::NeuralNetwork, FeatureSet::Additional);
  nn.train(train);
  std::printf("trained NN estimator on %zu samples (%.1fs)\n\n", train.size(),
              t_train.seconds());

  // -- block-compilation cost: estimator vs constant CF=0.9 ----------------
  CfPolicy est_policy;
  est_policy.mode = CfPolicy::Mode::Estimator;
  est_policy.estimator = &nn;
  CfPolicy low_policy;
  low_policy.constant_cf = 0.9;

  const FlowStats est20 = run_flow(design, z20, est_policy);
  const FlowStats low20 = run_flow(design, z20, low_policy);

  std::printf("block compilation on the xc7z020 (74 unique blocks):\n");
  Table runs({"policy", "tool runs", "first-run success"});
  runs.row()
      .cell("NN estimator")
      .cell(est20.tool_runs)
      .cell(fmt(100.0 * est20.first_run / std::max(1, est20.blocks), 1) +
            "% [paper: 52.7%]");
  runs.row()
      .cell("constant CF=0.9")
      .cell(low20.tool_runs)
      .cell(fmt(100.0 * low20.first_run / std::max(1, low20.blocks), 1) + "%");
  runs.print();
  std::printf("tool-run ratio (constant 0.9 / estimator): %.2fx "
              "[paper: 1.8x]\n\n",
              static_cast<double>(low20.tool_runs) /
                  std::max(1, est20.tool_runs));

  // -- stitching quality on the xc7z045 -------------------------------------
  // The constant baseline uses the per-design maximum CF (the paper's 1.68).
  CfPolicy min_policy;
  min_policy.mode = CfPolicy::Mode::MinSearch;
  RwFlowOptions probe;
  probe.compute_timing = false;
  probe.run_stitch = false;
  const RwFlowResult min45 = run_rw_flow(design, z45, min_policy, probe);
  double max_cf = 0.0;
  for (const ImplementedBlock& blk : min45.blocks) {
    if (blk.ok()) max_cf = std::max(max_cf, blk.macro.cf);
  }
  CfPolicy const_policy;
  const_policy.constant_cf = max_cf;

  const FlowStats est45 = run_flow(design, z45, est_policy);
  const FlowStats const45 = run_flow(design, z45, const_policy);

  std::printf("stitching the full design on the xc7z045:\n");
  Table stitch_table({"policy", "unplaced", "coverage",
                      "SA moves to quiescence", "final cost"});
  stitch_table.row()
      .cell("NN estimator")
      .cell(est45.unplaced)
      .cell(est45.coverage, 3)
      .cell(static_cast<int>(est45.total_moves))
      .cell(est45.cost, 0);
  stitch_table.row()
      .cell("constant CF=" + fmt(max_cf, 2))
      .cell(const45.unplaced)
      .cell(const45.coverage, 3)
      .cell(static_cast<int>(const45.total_moves))
      .cell(const45.cost, 0);
  stitch_table.print();

  // Convergence, quality-normalised (the paper's "converged 1.37x
  // faster"): annealing effort until the estimator run matches the constant
  // run's final cost, versus the constant run's own effort. Also report the
  // paper's stated mechanism directly: the fraction of SA moves rejected as
  // illegal (overlaps / no legal anchor).
  const long est_to_const_quality =
      moves_to_reach(est45.trace, const45.cost, est45.total_moves);
  const double converge_ratio =
      static_cast<double>(const45.total_moves) /
      std::max<long>(1, est_to_const_quality);
  const double cost_drop = 1.0 - est45.cost / std::max(1.0, const45.cost);
  std::printf(
      "\nSA effort to reach the constant run's final quality: %ld moves "
      "(estimator) vs %ld (constant) => %.1fx faster [paper: 1.37x]\n"
      "illegal-move fraction: %.1f%% (estimator) vs %.1f%% (constant) -- "
      "looser macros overlap more (Section IV)\n"
      "final cost reduction with the estimator: %.0f%% [paper: 40%%]\n"
      "device area covered by macros: %.1f%% vs %.1f%% (tighter PBlocks "
      "waste less area between blocks, Figure 13)\n",
      est_to_const_quality, const45.total_moves, converge_ratio,
      100.0 * est45.illegal / std::max<long>(1, est45.total_moves),
      100.0 * const45.illegal / std::max<long>(1, const45.total_moves),
      100.0 * cost_drop, 100.0 * est45.coverage, 100.0 * const45.coverage);
  return 0;
}
