// Serving bench: load-once-vs-retrain and batched prediction throughput.
//
// Two claims are measured and *checked*, not just timed:
//   1. resolving a warm registry bundle is >= 10x faster than retraining
//      the same model from scratch (the point of persisting bundles), and
//      the loaded model's predictions are bit-identical to the freshly
//      trained one;
//   2. EstimatorService micro-batched prediction returns bit-identical
//      results at every `jobs` value.
// A violated invariant aborts the bench via MF_CHECK -- the ctest entry
// (`--quick`) relies on that to turn this into a correctness gate.
//
// Results land in BENCH_SERVE.json (train/load wall ms, speedup, rows/sec
// per jobs value) next to a human-readable table on stdout. Plain main,
// like bench_stitch: the train-once / compare-everything structure does
// not fit the BM_ harness.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "serve/trainer.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;

/// Random feature rows with the width of `set`; prediction is pure math,
/// so synthetic rows measure throughput as well as labelled ones would.
std::vector<std::vector<double>> make_rows(FeatureSet set, std::size_t n) {
  const std::size_t dim = feature_names(set).size();
  Rng rng(1234);
  std::vector<std::vector<double>> rows(n);
  for (std::vector<double>& row : rows) {
    row.resize(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 5000.0) : rng.uniform(0.0, 1.0);
    }
  }
  return rows;
}

void check_identical(const std::vector<double>& a,
                     const std::vector<double>& b) {
  MF_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    MF_CHECK(a[i] == b[i]);  // bitwise, the serving contract
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  namespace fs = std::filesystem;
  const std::string registry_dir =
      (fs::temp_directory_path() / "mf_bench_serve_registry").string();
  std::error_code ec;
  fs::remove_all(registry_dir, ec);

  const Device dev = xc7z020_model();
  TrainSpec spec;
  spec.name = "bench";
  spec.dataset_count = quick ? 250 : 500;
  spec.options.rforest.trees = quick ? 120 : 300;
  spec.jobs = 0;

  // -- cold path: the full train recipe (labelled sweep + forest) ---------
  Timer train_timer;
  const ModelBundle trained = train_bundle(spec, dev);
  const double train_s = train_timer.seconds();
  std::printf("trained '%s' (%s, %lld rows, holdout mean rel err %.3f): "
              "%.1f ms\n",
              trained.name.c_str(), to_string(trained.estimator.kind()),
              static_cast<long long>(trained.provenance.dataset_rows),
              trained.provenance.holdout_mean_rel_err, train_s * 1e3);

  ModelRegistry registry(registry_dir);
  MF_CHECK_MSG(registry.put(trained).has_value(),
               "registry directory not writable");

  // -- warm path: resolve the stored bundle, best of N --------------------
  const int reps = quick ? 3 : 5;
  double load_s = 0.0;
  std::optional<ModelBundle> loaded;
  for (int rep = 0; rep < reps; ++rep) {
    Timer load_timer;
    loaded = registry.resolve("bench");
    const double s = load_timer.seconds();
    MF_CHECK_MSG(loaded.has_value(), "stored bundle failed to resolve");
    if (rep == 0 || s < load_s) load_s = s;
  }
  const double speedup = load_s > 0.0 ? train_s / load_s : 0.0;
  std::printf("warm registry load: %.2f ms -> %.0fx faster than retraining "
              "(acceptance target >= 10x)\n",
              load_s * 1e3, speedup);
  MF_CHECK_MSG(speedup >= 10.0,
               "warm bundle load must beat retraining by >= 10x");

  // Loaded model must predict bit-identically to the one just trained.
  const std::size_t n_rows = quick ? 2000 : 20000;
  const auto rows = make_rows(trained.estimator.features(), n_rows);
  const std::vector<double> reference = trained.estimator.predict_rows(rows);
  check_identical(reference, loaded->estimator.predict_rows(rows));

  // -- batched serving throughput, jobs swept -----------------------------
  const std::vector<int> jobs_sweep = quick ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 2, 4, 8};
  std::printf("\n%-8s %10s %12s %14s\n", "jobs", "rows", "wall ms",
              "rows/sec");
  std::vector<std::pair<int, double>> throughput;
  for (int jobs : jobs_sweep) {
    ServiceOptions options;
    options.jobs = jobs;
    EstimatorService service(registry_dir, options);
    // Warm the LRU first so the sweep times prediction, not disk.
    MF_CHECK(service.predict_rows("bench", {rows.front()}).has_value());
    Timer predict_timer;
    const auto out = service.predict_rows("bench", rows);
    const double s = predict_timer.seconds();
    MF_CHECK(out.has_value());
    check_identical(reference, *out);  // any-jobs bit-identity
    const double rows_per_sec = s > 0.0 ? static_cast<double>(n_rows) / s
                                        : 0.0;
    std::printf("%-8d %10zu %12.1f %14.0f\n", jobs, n_rows, s * 1e3,
                rows_per_sec);
    throughput.emplace_back(jobs, rows_per_sec);
  }

  std::string json;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                " \"train_ms\": %.3f,\n \"warm_load_ms\": %.3f,\n"
                " \"load_speedup\": %.1f,\n \"rows\": %zu,\n \"runs\": [",
                train_s * 1e3, load_s * 1e3, speedup, n_rows);
  json += buf;
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"jobs\": %d, \"rows_per_sec\": %.0f}",
                  i == 0 ? "" : ",", throughput[i].first,
                  throughput[i].second);
    json += buf;
  }
  json += "\n ]\n";
  std::printf("\n");
  if (!bench::write_bench_json("BENCH_SERVE.json", json)) return 1;
  fs::remove_all(registry_dir, ec);
  return 0;
}
