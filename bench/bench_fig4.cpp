// Figure 4 -- distribution of the optimal (minimal feasible) CF over the
// blocks of the cnvW1A1 design, determined at 0.02 resolution.
//
// Paper: values below 0.7 are very small modules or modules whose area
// constraints are driven by the block RAMs; the highest CF was 1.68.

#include "bench_common.hpp"
#include "common/csv.hpp"

int main() {
  using namespace mf;
  bench::banner("Figure 4: optimal CF distribution over cnvW1A1 blocks",
                "bulk between 0.7 and ~1.2; sub-0.7 bins are tiny or "
                "BRAM-driven blocks; maximum 1.68");

  const Device dev = xc7z020_model();
  Timer timer;
  const GroundTruth truth = bench::cnv_truth(dev, /*drop_tiny=*/false);
  MF_CHECK(truth.infeasible == 0);

  std::vector<double> cfs;
  double max_cf = 0.0;
  std::string max_name;
  int below_07 = 0;
  int hard_block_driven = 0;
  for (const LabeledModule& s : truth.samples) {
    cfs.push_back(s.min_cf);
    if (s.min_cf > max_cf) {
      max_cf = s.min_cf;
      max_name = s.name;
    }
    if (s.min_cf < 0.7) {
      ++below_07;
      // BRAM/DSP-driven, LUTRAM-column-driven (M slices force the PBlock the
      // same way BRAM columns do) or tiny blocks: the paper's explanation.
      const bool m_driven = 3 * s.report.est_slices_m >= s.report.est_slices;
      if (s.report.hard_block_dominated() || m_driven ||
          s.report.est_slices <= 10) {
        ++hard_block_driven;
      }
    }
  }

  std::printf("blocks: %zu, %.1fs\n\n", cfs.size(), timer.seconds());
  std::fputs(histogram(cfs, 0.4, 2.0, 0.1).c_str(), stdout);
  std::printf(
      "\nmax CF: %.2f (%s)   [paper: 1.68]\n"
      "blocks below 0.7: %d, of which tiny or hard-column-driven: %d "
      "[paper: all]\n",
      max_cf, max_name.c_str(), below_07, hard_block_driven);

  CsvWriter csv({"block", "min_cf", "est_slices", "bram_driven"});
  for (const LabeledModule& s : truth.samples) {
    csv.row()
        .cell(s.name)
        .cell(s.min_cf, 2)
        .cell(s.report.est_slices)
        .cell(s.report.hard_block_dominated() ? 1 : 0);
  }
  if (csv.write("fig4_min_cf.csv")) {
    std::printf("raw series written to fig4_min_cf.csv\n");
  }
  return 0;
}
