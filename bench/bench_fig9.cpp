// Figure 9 -- feature importance of a single decision tree per feature set.
//
// Paper: for the "Additional" set, Carry/All carries ~0.5 of the decision;
// with all features available, the relative (hand-crafted) features keep
// dominating the raw counts.

#include "bench_common.hpp"

int main() {
  using namespace mf;
  bench::banner("Figure 9: decision-tree feature importance per feature set",
                "relative features dominate; Carry/All ~0.5 within "
                "'Additional' and ~0.4 of 'All'");

  const Device dev = xc7z020_model();
  const GroundTruth truth = bench::dataset_truth(dev);

  const FeatureSet sets[] = {FeatureSet::Classical, FeatureSet::ClassicalStar,
                             FeatureSet::Additional, FeatureSet::All};
  for (FeatureSet set : sets) {
    Rng rng(7);
    const Dataset balanced = balance_by_target(
        make_dataset(set, truth.samples), bench::kBinWidth, bench::kBinCap,
        rng);
    Rng split_rng(8);
    const auto [train, test] =
        train_test_split(balanced, bench::kTrainFraction, split_rng);
    CfEstimator dt(EstimatorKind::DecisionTree, set);
    dt.train(train);

    const std::vector<std::string> names = feature_names(set);
    const std::vector<double> importance = dt.feature_importance();
    std::vector<std::pair<std::string, double>> bars;
    for (std::size_t i = 0; i < names.size(); ++i) {
      bars.emplace_back(names[i], importance[i]);
    }
    std::printf("\n%s (test error %.1f%%):\n", to_string(set),
                100.0 * mean_relative_error(dt.predict_rows(test.x), test.y));
    std::fputs(bar_chart(bars, 40).c_str(), stdout);
  }

  // Shape check: within "All", how much weight lands on the relative
  // features as a group?
  {
    Rng rng(7);
    const Dataset balanced = balance_by_target(
        make_dataset(FeatureSet::All, truth.samples), bench::kBinWidth,
        bench::kBinCap, rng);
    CfEstimator dt(EstimatorKind::DecisionTree, FeatureSet::All);
    dt.train(balanced);
    const std::vector<double> importance = dt.feature_importance();
    // All = Classical(6) + Placement(2) + Additional(6).
    double relative = 0.0;
    for (std::size_t i = 8; i < importance.size(); ++i) {
      relative += importance[i];
    }
    std::printf("\nrelative features' share of 'All' importance: %.2f "
                "[paper: dominant, Carry/All alone ~0.4]\n",
                relative);
  }
  return 0;
}
