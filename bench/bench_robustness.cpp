// Robustness bench: what the crash-safety and self-healing machinery costs.
//
// Three prices are measured, and the invariants behind them are *checked*
// (MF_CHECK aborts on violation, which the ctest `--quick` entry relies on
// to turn this into a correctness gate):
//   1. atomic checkpoint writes (temp + fsync + rename) vs a raw ofstream
//      dump of the same payload -- plus a mini crash sweep asserting the
//      old-or-new invariant at a spread of byte boundaries;
//   2. cancellation latency: how long a pre-cancelled token takes to stop a
//      large batched prediction and a stitch anneal (the amortised watchdog
//      bounds the stitch to < 32 moves);
//   3. open-circuit-breaker serving vs cold registry misses: once the
//      breaker trips, a request must not pay the directory-scan + parse
//      attempt, so fallback throughput should dwarf the miss path.
//
// Results land in BENCH_ROBUSTNESS.json next to a table on stdout. Plain
// main, like bench_serve: cross-phase checks do not fit the BM_ harness.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fabric/catalog.hpp"
#include "flow/rw_flow.hpp"
#include "flow/serialize.hpp"
#include "rtlgen/generators.hpp"
#include "serve/bundle.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "stitch/sa_stitcher.hpp"

#include "bench_common.hpp"

namespace {

using namespace mf;
namespace fs = std::filesystem;

/// A checkpoint-sized payload: a module cache with `n` synthetic entries.
std::string checkpoint_payload(int n) {
  ModuleCache cache;
  for (int i = 0; i < n; ++i) {
    ImplementedBlock b;
    b.name = "block_" + std::to_string(i);
    b.status = FlowStatus::Ok;
    b.seed_cf = 1.3 + 0.01 * i;
    b.macro.name = b.name;
    b.macro.cf = 1.2;
    b.macro.used_slices = 20 + i;
    b.macro.est_slices = 20 + i;
    b.macro.pblock = PBlock{0, 4, 0, 7};
    b.macro.footprint.height = 8;
    b.macro.footprint.kinds = {ColumnKind::ClbL, ColumnKind::ClbM};
    cache.restore(std::move(b));
  }
  return module_cache_to_text(cache);
}

std::vector<std::vector<double>> make_rows(std::size_t n) {
  const std::size_t dim = feature_names(FeatureSet::Classical).size();
  Rng rng(99);
  std::vector<std::vector<double>> rows(n);
  for (std::vector<double>& row : rows) {
    row.resize(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 5000.0) : rng.uniform(0.0, 1.0);
    }
  }
  return rows;
}

ModelBundle quick_bundle() {
  Dataset data;
  data.feature_names = feature_names(FeatureSet::Classical);
  Rng rng(5);
  for (std::size_t i = 0; i < 120; ++i) {
    std::vector<double> row(data.feature_names.size());
    double target = 0.5;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = j % 2 == 0 ? rng.uniform(0.0, 4000.0) : rng.uniform(0.0, 1.0);
      target += row[j] * (j % 3 == 0 ? 2.5e-4 : 0.05);
    }
    data.add(std::move(row), target, "s" + std::to_string(i));
  }
  CfEstimator::Options options;
  options.dtree.max_depth = 6;
  ModelBundle bundle;
  bundle.name = "bench";
  bundle.estimator =
      CfEstimator(EstimatorKind::DecisionTree, FeatureSet::Classical, options);
  bundle.estimator.train(data);
  return bundle;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::string work_dir =
      (fs::temp_directory_path() / "mf_bench_robustness").string();
  std::error_code ec;
  fs::remove_all(work_dir, ec);
  fs::create_directories(work_dir);

  // -- 1. atomic-write overhead + old-or-new under injected crashes -------
  const std::string payload = checkpoint_payload(quick ? 64 : 512);
  const std::string atomic_path = work_dir + "/atomic.ckpt";
  const std::string raw_path = work_dir + "/raw.ckpt";
  const int write_reps = quick ? 20 : 200;

  Timer raw_timer;
  for (int i = 0; i < write_reps; ++i) {
    std::ofstream out(raw_path, std::ios::binary | std::ios::trunc);
    out << payload;
  }
  const double raw_ms = raw_timer.seconds() * 1e3 / write_reps;

  Timer atomic_timer;
  for (int i = 0; i < write_reps; ++i) {
    MF_CHECK(atomic_write_file(atomic_path, payload));
  }
  const double atomic_ms = atomic_timer.seconds() * 1e3 / write_reps;
  MF_CHECK(read_file(atomic_path).value_or("") == payload);

  // Mini crash sweep: old-or-new must hold at a spread of byte boundaries
  // (the exhaustive every-byte sweep lives in tests/test_robustness.cpp).
  const std::string old_payload = checkpoint_payload(quick ? 63 : 511);
  MF_CHECK(atomic_write_file(atomic_path, old_payload));
  const long step = quick ? 97 : 13;
  int crash_points = 0;
  for (long n = 0; n <= static_cast<long>(payload.size()); n += step) {
    ScopedWriteCrash crash(n);
    MF_CHECK(!atomic_write_file(atomic_path, payload));
    MF_CHECK_MSG(read_file(atomic_path).value_or("") == old_payload,
                 "crash left a torn checkpoint on disk");
    ++crash_points;
  }
  std::printf("atomic write %.3f ms vs raw %.3f ms (%.1fx, %zu-byte "
              "payload); old-or-new held at %d crash points\n",
              atomic_ms, raw_ms, raw_ms > 0.0 ? atomic_ms / raw_ms : 0.0,
              payload.size(), crash_points);

  // -- 2. cancellation latency --------------------------------------------
  ModelRegistry registry(work_dir);
  MF_CHECK(registry.put(quick_bundle()).has_value());
  const auto rows = make_rows(quick ? 20000 : 200000);

  CancelToken cancelled;
  cancelled.cancel();
  ServiceOptions cancel_options;
  cancel_options.jobs = 4;
  cancel_options.cancel = &cancelled;
  EstimatorService cancel_service(work_dir, cancel_options);
  MF_CHECK(cancel_service.predict_rows("bench", {rows.front()}).has_value() ==
           false);  // already cancelled: no partial batches, ever
  Timer cancel_timer;
  const auto cancelled_batch = cancel_service.predict_rows("bench", rows);
  const double cancel_ms = cancel_timer.seconds() * 1e3;
  MF_CHECK(!cancelled_batch.has_value());

  const BlockDesign design = [] {
    BlockDesign d;
    Rng rng(1);
    MixedParams p;
    p.luts = 120;
    p.ffs = 100;
    d.unique_modules.push_back(gen_mixed(p, rng));
    for (int i = 0; i < 6; ++i) {
      d.instances.push_back(BlockInstance{"i" + std::to_string(i), 0});
    }
    for (int i = 0; i + 1 < 6; ++i) d.nets.push_back(BlockNet{{i, i + 1}, 1.0});
    return d;
  }();
  RwFlowOptions flow_opts;
  flow_opts.compute_timing = false;
  const RwFlowResult flow =
      run_rw_flow(design, xc7z020_model(), CfPolicy{}, flow_opts);
  StitchOptions stitch_opts = flow_opts.stitch;
  stitch_opts.cancel = &cancelled;
  Timer stitch_timer;
  const StitchResult aborted = stitch(xc7z020_model(), flow.problem,
                                      stitch_opts);
  const double stitch_cancel_ms = stitch_timer.seconds() * 1e3;
  MF_CHECK(aborted.watchdog_fired);
  MF_CHECK_MSG(aborted.total_moves < 32,
               "stitch watchdog must fire within one amortised check window");
  std::printf("cancel latency: predict_rows(%zu rows) %.2f ms, stitch %.2f "
              "ms (%ld moves)\n",
              rows.size(), cancel_ms, stitch_cancel_ms, aborted.total_moves);

  // -- 3. breaker fallback vs cold registry misses ------------------------
  const std::string empty_dir = work_dir + "/empty_registry";
  fs::create_directories(empty_dir);
  const int requests = quick ? 500 : 5000;
  ResourceReport report;
  ShapeReport shape;

  ServiceOptions miss_options;  // breaker disabled: every miss hits disk
  EstimatorService miss_service(empty_dir, miss_options);
  Timer miss_timer;
  for (int i = 0; i < requests; ++i) {
    MF_CHECK(!miss_service.estimate("ghost", report, shape).has_value());
  }
  const double miss_per_sec = requests / miss_timer.seconds();

  ServiceOptions breaker_options;
  breaker_options.breaker_failure_threshold = 3;
  breaker_options.breaker_cooldown_seconds = 3600.0;
  breaker_options.fallback_cf = 1.5;
  EstimatorService breaker_service(empty_dir, breaker_options);
  Timer breaker_timer;
  for (int i = 0; i < requests; ++i) {
    const auto cf = breaker_service.estimate("ghost", report, shape);
    MF_CHECK(cf.has_value() && *cf == 1.5);  // degraded, never an error
  }
  const double breaker_per_sec = requests / breaker_timer.seconds();
  const ServiceStats stats = breaker_service.stats();
  MF_CHECK_MSG(stats.breaker_trips == 1 && stats.resolve_failures == 3,
               "open breaker must stop consulting the registry");
  std::printf("degraded serving: %.0f req/s open-breaker vs %.0f req/s "
              "cold-miss (%.1fx)\n",
              breaker_per_sec, miss_per_sec,
              miss_per_sec > 0.0 ? breaker_per_sec / miss_per_sec : 0.0);

  char buf[512];
  std::snprintf(buf, sizeof buf,
                " \"atomic_write_ms\": %.4f,\n \"raw_write_ms\": %.4f,\n"
                " \"crash_points\": %d,\n \"cancel_predict_ms\": %.3f,\n"
                " \"cancel_stitch_ms\": %.3f,\n"
                " \"breaker_req_per_sec\": %.0f,\n"
                " \"cold_miss_req_per_sec\": %.0f\n",
                atomic_ms, raw_ms, crash_points, cancel_ms, stitch_cancel_ms,
                breaker_per_sec, miss_per_sec);
  if (!bench::write_bench_json("BENCH_ROBUSTNESS.json", buf)) return 1;
  fs::remove_all(work_dir, ec);
  return 0;
}
